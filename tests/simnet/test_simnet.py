"""Tests for the simulated WAN substrate."""

import pytest

from repro.simnet import (
    PipelineCosts,
    SimError,
    SimNetwork,
    cluster_throughput,
    leader_amortized_tx,
    paper_wan_topology,
    same_datacenter,
    wan_subset,
)


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------


def test_paper_topology_shape():
    topo = paper_wan_topology()
    assert topo.n_sites == 5
    assert "frankfurt" in topo.names
    # Symmetric, zero diagonal.
    for a in range(5):
        assert topo.latency(a, a) == 0.0
        for b in range(5):
            assert topo.latency(a, b) == topo.latency(b, a)


def test_transatlantic_slower_than_coastal():
    topo = paper_wan_topology()
    nva, nca, ire = 0, 1, 3
    assert topo.latency(nca, ire) > topo.latency(nva, nca)


def test_same_datacenter_uniform():
    topo = same_datacenter(4)
    assert topo.n_sites == 4
    lat = topo.latency(0, 1)
    assert all(
        topo.latency(a, b) == lat
        for a in range(4) for b in range(4) if a != b
    )


def test_wan_subset_wraps():
    topo = wan_subset(8)
    assert topo.n_sites == 8
    # Site 5 cycles back to region 0: zero latency to site 0.
    assert topo.latency(0, 5) == 0.0


# ----------------------------------------------------------------------
# Event network
# ----------------------------------------------------------------------


def test_message_delivery_order():
    topo = paper_wan_topology()
    net = SimNetwork(topo)
    log = []
    for node in range(topo.n_sites):
        net.register(node, lambda _net, src, msg, n=node: log.append((n, msg)))
    # Frankfurt (4) -> Ireland (3) is fast; Frankfurt -> N.Ca (1) slow.
    net.send(4, 1, "slow", 100)
    net.send(4, 3, "fast", 100)
    net.run()
    assert log == [(3, "fast"), (1, "slow")]


def test_clock_advances_by_latency_plus_transfer():
    topo = same_datacenter(2, latency_ms=1.0, bandwidth_gbps=0.001)  # 1 Mbps
    net = SimNetwork(topo)
    net.register(0, lambda *_: None)
    net.register(1, lambda *_: None)
    net.send(0, 1, "payload", 125_000)  # 1 second at 1 Mbps
    elapsed = net.run()
    assert elapsed == pytest.approx(1.001, rel=1e-6)


def test_byte_accounting():
    topo = same_datacenter(3)
    net = SimNetwork(topo)
    for node in range(3):
        net.register(node, lambda *_: None)
    net.send(0, 1, "a", 100)
    net.send(0, 2, "b", 50)
    net.run()
    assert net.bytes_sent[0][1] == 100
    assert net.total_bytes_from(0) == 150
    assert net.messages_sent == 2


def test_broadcast():
    topo = same_datacenter(3)
    net = SimNetwork(topo)
    received = []
    for node in range(3):
        net.register(node, lambda _n, _s, m, node=node: received.append(node))
    net.broadcast(0, "hello", 10)
    net.run()
    assert sorted(received) == [1, 2]


def test_handler_chaining():
    """Handlers can send more messages (multi-round protocols)."""
    topo = same_datacenter(2)
    net = SimNetwork(topo)
    transcript = []

    def ping(net_, src, msg):
        transcript.append(("ping", msg))
        if msg < 3:
            net_.send(0, 1, msg + 1, 10)

    def pong(net_, src, msg):
        transcript.append(("pong", msg))
        net_.send(1, 0, msg, 10)

    net.register(0, ping)
    net.register(1, pong)
    net.send(0, 1, 0, 10)
    net.run()
    assert ("pong", 3) in transcript


def test_send_to_unregistered_node():
    net = SimNetwork(same_datacenter(2))
    net.register(0, lambda *_: None)
    with pytest.raises(SimError):
        net.send(0, 1, "x", 1)


def test_event_budget():
    topo = same_datacenter(2)
    net = SimNetwork(topo)
    net.register(0, lambda n, s, m: n.send(0, 1, m, 1))
    net.register(1, lambda n, s, m: n.send(1, 0, m, 1))
    net.send(0, 1, "loop", 1)
    with pytest.raises(SimError):
        net.run(max_events=100)


# ----------------------------------------------------------------------
# Throughput model
# ----------------------------------------------------------------------


def test_compute_bound_throughput():
    topo = paper_wan_topology()
    costs = PipelineCosts(server_cpu_s=0.008, server_tx_bytes=100)
    # 8 cores, 1 ms/core-submission -> 1000/s.
    assert cluster_throughput(costs, topo) == pytest.approx(1000.0)


def test_network_bound_throughput():
    topo = paper_wan_topology(bandwidth_gbps=0.000001)  # 1 kbps
    costs = PipelineCosts(server_cpu_s=1e-9, server_tx_bytes=1000)
    rate = cluster_throughput(costs, topo)
    assert rate == pytest.approx(0.125)  # 1000 bytes at 1 kbps = 8 s


def test_zero_cost_rejected():
    topo = paper_wan_topology()
    with pytest.raises(ValueError):
        cluster_throughput(PipelineCosts(0.0, 0.0), topo)


def test_leader_amortized_tx():
    # s=2: leader sends b, non-leader sends b, each leads half the
    # time -> b per submission on average.
    assert leader_amortized_tx(100, 2) == pytest.approx(100.0)
    # Large s approaches 2b.
    assert leader_amortized_tx(100, 50) == pytest.approx(196.0)
