"""Integration: the full Prio protocol over the simulated WAN.

These tests exercise genuinely asynchronous message delivery — round-1
broadcasts can overtake uploads across transatlantic links — and check
that correctness, robustness, and agreement are timing-independent.
"""

import random

import pytest

from repro.afe import FrequencyCountAfe, IntegerSumAfe
from repro.field import FIELD87
from repro.simnet import paper_wan_topology, same_datacenter
from repro.simnet.prio_cluster import run_cluster


@pytest.fixture
def rng():
    return random.Random(999)


def test_wan_cluster_sums_correctly(rng):
    afe = IntegerSumAfe(FIELD87, 6)
    values = [rng.randrange(64) for _ in range(12)]
    report = run_cluster(afe, paper_wan_topology(), values, rng)
    assert report.n_accepted == 12
    assert report.n_rejected == 0
    assert report.aggregate == sum(values)


def test_same_datacenter_cluster(rng):
    afe = FrequencyCountAfe(FIELD87, 4)
    values = [rng.randrange(4) for _ in range(10)]
    report = run_cluster(afe, same_datacenter(3), values, rng)
    assert report.aggregate is not None
    assert sum(report.aggregate) == 10


def test_client_batching_leaves_cluster_report_unchanged():
    """The batched client prover is bit-identical to the scalar client,
    so batching the *client* half changes nothing in the cluster run —
    not decisions, not bytes, not the message schedule."""
    afe = IntegerSumAfe(FIELD87, 6)
    values_rng = random.Random(7)
    values = [values_rng.randrange(64) for _ in range(9)]
    scalar = run_cluster(
        afe, paper_wan_topology(), values, random.Random(31), batch_size=4
    )
    batched = run_cluster(
        afe, paper_wan_topology(), values, random.Random(31), batch_size=4,
        client_batch_size=4,
    )
    assert batched.n_accepted == scalar.n_accepted == 9
    assert batched.aggregate == scalar.aggregate
    assert batched.wall_clock_s == scalar.wall_clock_s
    assert batched.server_tx_bytes == scalar.server_tx_bytes
    assert batched.first_decision_s == scalar.first_decision_s


def test_wan_latency_dominates_wall_clock(rng):
    """Two broadcast rounds across the WAN: the wall clock must be at
    least two one-way worst-case latencies, and under a second for a
    small batch."""
    afe = IntegerSumAfe(FIELD87, 4)
    report = run_cluster(afe, paper_wan_topology(), [3], rng)
    worst_one_way = 0.079  # Oregon <-> Frankfurt
    assert report.wall_clock_s >= 2 * worst_one_way
    assert report.wall_clock_s < 1.0


def test_datacenter_faster_than_wan(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    wan = run_cluster(afe, paper_wan_topology(), [1, 2], rng)
    lan = run_cluster(
        afe, same_datacenter(5), [1, 2], random.Random(999)
    )
    assert lan.wall_clock_s < wan.wall_clock_s


def test_malicious_submission_rejected_over_wan(rng):
    from repro.protocol.wire import ClientPacket, PacketKind

    afe = IntegerSumAfe(FIELD87, 4)
    values = [5, 9, 2]

    def corrupt_second(index, submission):
        if index != 1:
            return
        packet = submission.packets[-1]
        vec = FIELD87.decode_vector(packet.body)
        vec[0] = (vec[0] + 12345) % FIELD87.modulus
        submission.packets[-1] = ClientPacket(
            submission_id=packet.submission_id,
            server_index=packet.server_index,
            kind=PacketKind.EXPLICIT,
            n_elements=packet.n_elements,
            body=FIELD87.encode_vector(vec),
        )

    report = run_cluster(
        afe, paper_wan_topology(), values, rng, mutate=corrupt_second
    )
    assert report.n_accepted == 2
    assert report.n_rejected == 1
    assert report.aggregate == 5 + 2


def test_servers_agree_under_interleaving(rng):
    """Many submissions in flight at once; every server must reach the
    same accept/reject decisions (asserted inside run_cluster)."""
    afe = IntegerSumAfe(FIELD87, 4)
    values = [rng.randrange(16) for _ in range(30)]
    report = run_cluster(afe, paper_wan_topology(), values, rng)
    assert report.n_accepted == 30


@pytest.mark.parametrize("batch_size", [2, 5, 32])
def test_batched_cluster_matches_unbatched(batch_size):
    """Group-granular verification: outcomes and per-peer byte totals
    must be identical to one-at-a-time verification."""
    afe = IntegerSumAfe(FIELD87, 6)
    values = [random.Random(4).randrange(64) for _ in range(12)]
    base = run_cluster(
        afe, paper_wan_topology(), values, random.Random(999)
    )
    batched = run_cluster(
        afe, paper_wan_topology(), values, random.Random(999),
        batch_size=batch_size,
    )
    assert batched.n_accepted == base.n_accepted == 12
    assert batched.aggregate == base.aggregate == sum(values)
    assert batched.server_tx_bytes == base.server_tx_bytes


def test_batched_cluster_rejects_corruption(rng):
    from repro.protocol.wire import ClientPacket, PacketKind

    afe = IntegerSumAfe(FIELD87, 4)

    def corrupt_third(index, submission):
        if index != 2:
            return
        packet = submission.packets[-1]
        vec = FIELD87.decode_vector(packet.body)
        vec[0] = (vec[0] + 7) % FIELD87.modulus
        submission.packets[-1] = ClientPacket(
            submission_id=packet.submission_id,
            server_index=packet.server_index,
            kind=PacketKind.EXPLICIT,
            n_elements=packet.n_elements,
            body=FIELD87.encode_vector(vec),
        )

    report = run_cluster(
        afe, same_datacenter(3), [5, 9, 2, 7], rng,
        mutate=corrupt_third, batch_size=4,
    )
    assert report.n_accepted == 3
    assert report.n_rejected == 1
    assert report.aggregate == 5 + 9 + 7


def test_byte_accounting_over_wan(rng):
    """Per-peer verification traffic: 4 elements across 2 rounds."""
    afe = IntegerSumAfe(FIELD87, 4)
    n = 10
    report = run_cluster(afe, paper_wan_topology(), [1] * n, rng)
    element = FIELD87.encoded_size
    n_servers = 5
    # Server 1 (a non-leader, no client traffic in this model):
    # 2 rounds x 2 elements to each of 4 peers per submission.
    expected = n * 2 * (2 * element) * (n_servers - 1)
    assert report.server_tx_bytes[1] == expected


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_cluster_executor_backends_match_inline(executor):
    """The fan-out backend must be unobservable: same decisions, same
    aggregate, same wire bytes whether each simulated server's CPU work
    runs inline, on threads, or in a dedicated worker process."""
    import multiprocessing

    afe = IntegerSumAfe(FIELD87, 6)
    values = [random.Random(11).randrange(64) for _ in range(9)]
    base = run_cluster(
        afe, paper_wan_topology(), values, random.Random(999), batch_size=3
    )
    other = run_cluster(
        afe, paper_wan_topology(), values, random.Random(999),
        batch_size=3, executor=executor,
    )
    assert other.n_accepted == base.n_accepted == 9
    assert other.aggregate == base.aggregate == sum(values)
    assert other.server_tx_bytes == base.server_tx_bytes
    assert other.wall_clock_s == base.wall_clock_s
    assert multiprocessing.active_children() == []


def test_cluster_rejects_foreign_fanout_instances():
    """run_cluster builds its own servers; a caller fanout is bound to
    different ones and would yield a silently empty report."""
    from repro.protocol import PrioDeployment, ProcessFanout
    from repro.simnet.network import SimError

    deployment = PrioDeployment.create(
        IntegerSumAfe(FIELD87, 4), 3, rng=random.Random(3)
    )
    fanout = ProcessFanout(deployment.servers)
    try:
        with pytest.raises(SimError, match="owns its servers"):
            run_cluster(
                IntegerSumAfe(FIELD87, 4), same_datacenter(3), [1],
                random.Random(1), executor=fanout,
            )
    finally:
        fanout.close()
