"""Adversarial tests for batched SNIP verification.

Batching must not weaken Prio's robustness guarantee: a malformed
submission hidden at a *random position* inside an otherwise-valid
batch must be rejected alone — every honest submission in the batch is
accepted, and the published aggregate equals the honest-only sum.
Exercised for three AFEs (integer sum, boolean vector sum, frequency
count), at both the SNIP layer (``verify_snip_batch``) and the full
deployment pipeline (``batch_size`` knob), on both backends.
"""

import random
from dataclasses import replace

import pytest

from repro.afe import FrequencyCountAfe, IntegerSumAfe, VectorSumAfe
from repro.field import FIELD87, use_numpy
from repro.protocol import PrioDeployment
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    prove_and_share_many,
    verify_snip,
    verify_snip_batch,
)

BACKENDS = [True] + ([False] if use_numpy(None) else [])


def backend_id(force_pure):
    return "pure" if force_pure else "numpy"


@pytest.fixture
def rng():
    return random.Random(0x5EED5)


#: (afe factory, draw one honest client value)
AFE_CASES = [
    ("sum", lambda: IntegerSumAfe(FIELD87, 8),
     lambda rng: rng.randrange(256)),
    ("boolean", lambda: VectorSumAfe(FIELD87, 12, 1),
     lambda rng: [rng.randrange(2) for _ in range(12)]),
    ("frequency", lambda: FrequencyCountAfe(FIELD87, 6),
     lambda rng: rng.randrange(6)),
]


def _context(afe, epoch=0):
    circuit = afe.valid_circuit()
    challenge = ServerRandomness(b"batch-soundness").challenge(
        afe.field, circuit, epoch
    )
    return circuit, VerificationContext(afe.field, circuit, challenge)


CORRUPTIONS = ["x_share", "h_eval", "triple", "f0"]


def _corrupt_submission(sub, how, rng, field):
    """Tamper one server's slice of a shared submission in-place."""
    x_shares, proof_shares = sub
    server = rng.randrange(len(x_shares))
    p = field.modulus
    if how == "x_share":
        pos = rng.randrange(len(x_shares[server]))
        x_shares[server][pos] = (x_shares[server][pos] + 1) % p
    elif how == "h_eval":
        share = proof_shares[server]
        pos = rng.randrange(len(share.h_evals))
        share.h_evals[pos] = (share.h_evals[pos] + 1) % p
    elif how == "triple":
        proof_shares[server] = replace(
            proof_shares[server], c=(proof_shares[server].c + 1) % p
        )
    else:  # f0
        proof_shares[server] = replace(
            proof_shares[server], f0=(proof_shares[server].f0 + 1) % p
        )


@pytest.mark.parametrize("afe_name,mk_afe,mk_value", AFE_CASES,
                         ids=[c[0] for c in AFE_CASES])
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_malformed_submission_rejected_alone(
    afe_name, mk_afe, mk_value, force_pure, rng
):
    afe = mk_afe()
    circuit, ctx = _context(afe)
    batch = 12
    subs = prove_and_share_many(
        FIELD87, circuit,
        [afe.encode(mk_value(rng)) for _ in range(batch)],
        n_servers=3, rng=rng,
    )
    bad = rng.randrange(batch)
    how = CORRUPTIONS[rng.randrange(len(CORRUPTIONS))]
    _corrupt_submission(subs[bad], how, rng, FIELD87)

    outcomes = verify_snip_batch(ctx, subs, force_pure=force_pure)
    assert [o.accepted for o in outcomes] == [
        i != bad for i in range(batch)
    ], f"corruption {how} at {bad}"
    # and the batch decision matches scalar verification, submission
    # by submission
    scalar = [verify_snip(ctx, xs, ps) for xs, ps in subs]
    assert [o.accepted for o in outcomes] == [o.accepted for o in scalar]
    assert [o.sigma_total for o in outcomes] == \
        [o.sigma_total for o in scalar]
    assert [o.assertion_total for o in outcomes] == \
        [o.assertion_total for o in scalar]


@pytest.mark.parametrize("afe_name,mk_afe,mk_value", AFE_CASES,
                         ids=[c[0] for c in AFE_CASES])
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_deployment_batch_publishes_honest_only_aggregate(
    afe_name, mk_afe, mk_value, force_pure, rng
):
    """Full pipeline: a corrupted upload inside a batch must not leak
    into the published aggregate."""
    afe = mk_afe()
    deployment = PrioDeployment.create(
        afe, n_servers=3, batch_size=8, rng=rng,
        force_pure_backend=force_pure,
    )
    values = [mk_value(rng) for _ in range(16)]
    bad = rng.randrange(16)

    def corrupt(index, submission):
        if index != bad % deployment.batch_size:
            return
        # flip one byte of one server's share body (seed or explicit —
        # either way the reconstructed encoding changes)
        packet = submission.packets[-1]
        body = bytearray(packet.body)
        body[rng.randrange(len(body))] ^= 0x01
        submission.packets[-1] = replace(packet, body=bytes(body))

    results = []
    for start in range(0, 16, 8):
        chunk = values[start:start + 8]
        hook = corrupt if start <= bad < start + 8 else None
        results.extend(deployment.submit_batch(chunk, mutate=hook))

    assert results == [i != bad for i in range(16)]
    honest = [v for i, v in enumerate(values) if i != bad]
    aggregate = deployment.publish()
    if afe_name == "sum":
        assert aggregate == sum(honest)
    elif afe_name == "boolean":
        assert aggregate == [
            sum(v[i] for v in honest) for i in range(12)
        ]
    else:
        counts = [0] * 6
        for v in honest:
            counts[v] += 1
        assert aggregate == counts
    assert deployment.stats.n_accepted == 15
    assert deployment.stats.n_rejected == 1
    assert deployment.stats.n_submitted == 16


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_multiple_corruptions_each_rejected(force_pure, rng):
    """Several bad submissions scattered in one batch: each rejected,
    every honest one accepted."""
    afe = IntegerSumAfe(FIELD87, 6)
    circuit, ctx = _context(afe)
    batch = 16
    subs = prove_and_share_many(
        FIELD87, circuit,
        [afe.encode(rng.randrange(64)) for _ in range(batch)],
        n_servers=2, rng=rng,
    )
    bad = set(rng.sample(range(batch), 5))
    for idx in sorted(bad):
        how = CORRUPTIONS[rng.randrange(len(CORRUPTIONS))]
        _corrupt_submission(subs[idx], how, rng, FIELD87)
    outcomes = verify_snip_batch(ctx, subs, force_pure=force_pure)
    assert [o.accepted for o in outcomes] == [
        i not in bad for i in range(batch)
    ]


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_all_honest_batch_accepted(force_pure, rng):
    afe = FrequencyCountAfe(FIELD87, 4)
    circuit, ctx = _context(afe)
    subs = prove_and_share_many(
        FIELD87, circuit,
        [afe.encode(rng.randrange(4)) for _ in range(10)],
        n_servers=4, rng=rng,
    )
    assert all(
        o.accepted for o in verify_snip_batch(ctx, subs, force_pure)
    )


def test_invalid_encoding_rejected_via_batch_prover_bypass(rng):
    """A client that skips the validity check and proves a lie is still
    caught by batched verification."""
    from repro.snip import prove_many, share_proof
    from repro.sharing.additive import share_vector

    afe = IntegerSumAfe(FIELD87, 4)
    circuit, ctx = _context(afe)
    good = afe.encode(9)
    evil = afe.encode(9)
    evil[0] = 1_000_000  # claims to be a 4-bit value
    proofs = prove_many(
        FIELD87, circuit, [good, evil], rng, check_valid=False
    )
    subs = []
    for enc, proof in zip([good, evil], proofs):
        subs.append((
            share_vector(FIELD87, enc, 2, rng),
            share_proof(FIELD87, proof, 2, rng),
        ))
    outcomes = verify_snip_batch(ctx, subs)
    assert [o.accepted for o in outcomes] == [True, False]
