"""Tests driving the Appendix D.1 soundness game end to end."""

import random

import pytest

from repro.circuit import CircuitBuilder, assert_bit
from repro.field import FIELD87, FIELD_SMALL
from repro.sharing import share_vector
from repro.snip import build_proof, share_proof
from repro.snip.soundness import run_soundness_experiment


def bits_circuit(field, n_bits):
    builder = CircuitBuilder(field, name="game-bits")
    for wire in builder.inputs(n_bits):
        assert_bit(builder, wire)
    return builder.build()


def make_cheater(field, circuit, good, bad, seed):
    """Adversary: honest proof for a *valid* input, attached to an
    invalid input's shares (the strongest simple strategy — the
    polynomial test is the only thing standing in its way)."""

    def adversary(trial):
        rng = random.Random(seed * 1_000_003 + trial)
        proof = build_proof(field, circuit, good, rng)
        x_shares = share_vector(field, bad, 2, rng)
        proof_shares = share_proof(field, proof, 2, rng)
        return x_shares, proof_shares

    return adversary


def make_honest(field, circuit, x, seed):
    def adversary(trial):
        rng = random.Random(seed * 1_000_003 + trial)
        proof = build_proof(field, circuit, x, rng)
        x_shares = share_vector(field, x, 2, rng)
        proof_shares = share_proof(field, proof, 2, rng)
        return x_shares, proof_shares

    return adversary


def test_honest_strategy_always_accepted():
    field = FIELD_SMALL
    circuit = bits_circuit(field, 3)
    report = run_soundness_experiment(
        field, circuit, make_honest(field, circuit, [1, 0, 1], 1), trials=50
    )
    assert report.accepted == 50


def test_cheater_rate_within_schwartz_zippel_bound():
    """On F_3329 with M = 3 the bound is 7/3329 ~ 0.21%; the measured
    acceptance rate over 400 trials must be consistent with it."""
    field = FIELD_SMALL
    circuit = bits_circuit(field, 3)
    report = run_soundness_experiment(
        field, circuit,
        make_cheater(field, circuit, [1, 0, 1], [1, 2, 1], 7),
        trials=400,
    )
    assert report.within_bound, str(report)
    assert report.theoretical_bound == pytest.approx(7 / 3329)


def test_cheater_never_accepted_on_production_field():
    """At |F| ~ 2^87 the acceptance probability is ~2^-80: zero
    acceptances, every time."""
    field = FIELD87
    circuit = bits_circuit(field, 4)
    report = run_soundness_experiment(
        field, circuit,
        make_cheater(field, circuit, [1, 0, 1, 0], [1, 3, 1, 0], 9),
        trials=25,
    )
    assert report.accepted == 0


def test_report_formatting():
    field = FIELD_SMALL
    circuit = bits_circuit(field, 2)
    report = run_soundness_experiment(
        field, circuit, make_honest(field, circuit, [1, 1], 3), trials=5
    )
    text = str(report)
    assert "trials=5" in text and "accepted=5" in text
