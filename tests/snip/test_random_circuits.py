"""Property-based SNIP tests over randomly generated circuits.

The SNIP must be complete and sound for *every* Valid circuit, not
just the AFE shapes the library ships.  These tests generate random
arithmetic-circuit DAGs with hypothesis, make the input valid by
construction (assert the final wire equals its own evaluated value),
and check: honest proofs verify; corrupted proofs do not; the NTT
variant agrees with the textbook reference variant.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder
from repro.field import FIELD87, FIELD_SMALL
from repro.sharing import share_vector
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    build_proof,
    build_reference_proof,
    prove_and_share,
    share_proof,
    share_reference_proof,
    verify_reference_snip,
    verify_snip,
)


@st.composite
def valid_circuit_and_input(draw, field, max_inputs=4, max_ops=10):
    """A random circuit whose assertions the generated input satisfies."""
    n_inputs = draw(st.integers(1, max_inputs))
    ops = draw(
        st.lists(
            st.sampled_from(["add", "sub", "mul", "mul_const"]),
            min_size=1,
            max_size=max_ops,
        )
    )
    seed = draw(st.integers(0, 2**32))
    rng = random.Random(seed)
    inputs = [rng.randrange(field.modulus) for _ in range(n_inputs)]

    # Pass 1: evaluate the op sequence on the inputs in plain Python to
    # learn the wire values.
    values = list(inputs)
    recorded = []
    p = field.modulus
    for op in ops:
        i = rng.randrange(len(values))
        j = rng.randrange(len(values))
        c = rng.randrange(p)
        recorded.append((op, i, j, c))
        if op == "add":
            values.append((values[i] + values[j]) % p)
        elif op == "sub":
            values.append((values[i] - values[j]) % p)
        elif op == "mul":
            values.append((values[i] * values[j]) % p)
        else:
            values.append((c * values[i]) % p)

    # Pass 2: build the circuit, asserting the last wire equals its
    # known value (affine assertion; input is valid by construction).
    builder = CircuitBuilder(field, name="rand-valid")
    wires = builder.inputs(n_inputs)
    pool = list(wires)
    for op, i, j, c in recorded:
        if op == "add":
            pool.append(builder.add(pool[i], pool[j]))
        elif op == "sub":
            pool.append(builder.sub(pool[i], pool[j]))
        elif op == "mul":
            pool.append(builder.mul(pool[i], pool[j]))
        else:
            pool.append(builder.mul_const(c, pool[i]))
    builder.assert_equals_const(pool[-1], values[-1])
    circuit = builder.build()
    return circuit, inputs, seed


@given(case=valid_circuit_and_input(FIELD87))
@settings(max_examples=40, deadline=None)
def test_honest_proof_accepted_for_random_circuits(case):
    circuit, inputs, seed = case
    rng = random.Random(seed ^ 0xA5A5)
    assert circuit.check(FIELD87, inputs)
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, inputs, 3, rng
    )
    challenge = ServerRandomness(b"rand-ok").challenge(FIELD87, circuit, 0)
    ctx = VerificationContext(FIELD87, circuit, challenge)
    assert verify_snip(ctx, x_shares, proof_shares).accepted


@given(case=valid_circuit_and_input(FIELD87))
@settings(max_examples=25, deadline=None)
def test_corrupted_proof_rejected_for_random_circuits(case):
    circuit, inputs, seed = case
    rng = random.Random(seed ^ 0x5A5A)
    proof = build_proof(FIELD87, circuit, inputs, rng)
    x_shares = share_vector(FIELD87, inputs, 2, rng)
    proof_shares = share_proof(FIELD87, proof, 2, rng)
    if circuit.n_mul_gates:
        # Corrupt an odd-indexed h evaluation: breaks h = f*g without
        # touching any wire value, so only the polynomial test can
        # catch it.
        proof_shares[0].h_evals[1] = (
            proof_shares[0].h_evals[1] + 1
        ) % FIELD87.modulus
    else:
        # Affine-only circuit: corrupt the data share instead.  If the
        # random circuit's assertion happens not to depend on x[0]
        # (e.g. everything multiplied by zero), the shifted input is
        # *still valid* and acceptance is correct — skip those.
        corrupted = list(inputs)
        corrupted[0] = (corrupted[0] + 1) % FIELD87.modulus
        if circuit.check(FIELD87, corrupted):
            return
        x_shares[0][0] = (x_shares[0][0] + 1) % FIELD87.modulus
    challenge = ServerRandomness(b"rand-bad").challenge(FIELD87, circuit, 0)
    ctx = VerificationContext(FIELD87, circuit, challenge)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted


@given(case=valid_circuit_and_input(FIELD87, max_inputs=3, max_ops=6))
@settings(max_examples=15, deadline=None)
def test_reference_variant_agrees_on_random_circuits(case):
    circuit, inputs, seed = case
    rng = random.Random(seed ^ 0x1111)
    challenge = ServerRandomness(b"rand-ref").challenge(FIELD87, circuit, 0)

    x_shares, proof_shares = prove_and_share(FIELD87, circuit, inputs, 2, rng)
    ctx = VerificationContext(FIELD87, circuit, challenge)
    ntt_outcome = verify_snip(ctx, x_shares, proof_shares)

    ref_proof = build_reference_proof(FIELD87, circuit, inputs, rng)
    ref_shares = share_reference_proof(FIELD87, ref_proof, 2, rng)
    ref_x = share_vector(FIELD87, inputs, 2, rng)
    ref_outcome = verify_reference_snip(
        FIELD87, circuit, ref_x, ref_shares, challenge
    )
    assert ntt_outcome.accepted and ref_outcome.accepted


@given(case=valid_circuit_and_input(FIELD_SMALL, max_inputs=3, max_ops=5))
@settings(max_examples=20, deadline=None)
def test_small_field_roundtrip(case):
    """The whole stack also works over small fields (used by the
    soundness experiments), as long as the domain fits the 2-adicity."""
    circuit, inputs, seed = case
    if circuit.n_mul_gates > 100:
        return  # would exceed F_3329's NTT domain budget
    rng = random.Random(seed)
    x_shares, proof_shares = prove_and_share(
        FIELD_SMALL, circuit, inputs, 2, rng
    )
    challenge = ServerRandomness(b"small").challenge(FIELD_SMALL, circuit, 0)
    ctx = VerificationContext(FIELD_SMALL, circuit, challenge)
    assert verify_snip(ctx, x_shares, proof_shares).accepted
