"""SNIP soundness (Appendix D.1): cheating clients are rejected.

Each test plays a different malicious-client strategy from the paper's
analysis and checks the servers reject.  Tests on the 87-bit field
should reject with overwhelming probability (failure odds ~2^-80); the
final test measures the acceptance *rate* on a deliberately small field
and checks it against the (2M+1)/|F| Schwartz-Zippel bound.
"""

import random

import pytest

from repro.circuit import CircuitBuilder, assert_bit
from repro.field import FIELD87, FIELD_SMALL
from repro.sharing import share_vector
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    build_proof,
    prove_and_share,
    share_proof,
    verify_snip,
)


@pytest.fixture
def rng():
    return random.Random(666)


def bits_circuit(field, n_bits):
    b = CircuitBuilder(field, name="bits")
    wires = b.inputs(n_bits)
    for w in wires:
        assert_bit(b, w)
    return b.build()


def fresh_ctx(field, circuit, rng):
    challenge = ServerRandomness(rng.randbytes(16)).challenge(
        field, circuit, 0
    )
    return VerificationContext(field, circuit, challenge)


def test_invalid_input_with_consistent_proof_rejected(rng):
    """Cheater runs the honest prover on an out-of-range input: the
    polynomial test passes (h really is f*g) but the batched assertion
    check catches the nonzero Valid output."""
    f = FIELD87
    circuit = bits_circuit(f, 4)
    x = [1, 0, 5, 0]  # 5 is not a bit
    proof = build_proof(f, circuit, x, rng, check_valid=False)
    x_shares = share_vector(f, x, 3, rng)
    proof_shares = share_proof(f, proof, 3, rng)
    ctx = fresh_ctx(f, circuit, rng)
    outcome = verify_snip(ctx, x_shares, proof_shares)
    assert not outcome.accepted
    assert outcome.sigma_total == 0          # h is consistent
    assert outcome.assertion_total != 0      # but Valid(x) != ok


def test_lying_h_rejected_by_polynomial_test(rng):
    """Cheater submits an invalid input but fakes the mul-gate output
    wires inside h so the assertions *look* satisfied; then h != f*g and
    the Schwartz-Zippel test fires (the Section 4.2 core argument)."""
    f = FIELD87
    circuit = bits_circuit(f, 4)
    good = [1, 0, 1, 0]
    bad = [1, 0, 5, 0]
    # Build an honest proof for the *valid* input, then attach it to the
    # invalid input's shares: mul outputs in h now disagree with the
    # real wire values derived from x.
    proof = build_proof(f, circuit, good, rng)
    x_shares = share_vector(f, bad, 3, rng)
    proof_shares = share_proof(f, proof, 3, rng)
    ctx = fresh_ctx(f, circuit, rng)
    outcome = verify_snip(ctx, x_shares, proof_shares)
    assert not outcome.accepted
    assert outcome.sigma_total != 0


def test_corrupted_h_evaluation_rejected(rng):
    """Flipping a single h evaluation breaks h = f*g."""
    f = FIELD87
    circuit = bits_circuit(f, 3)
    x = [1, 1, 0]
    x_shares, proof_shares = prove_and_share(f, circuit, x, 2, rng)
    proof_shares[0].h_evals[1] = (proof_shares[0].h_evals[1] + 1) % f.modulus
    ctx = fresh_ctx(f, circuit, rng)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted


def test_corrupted_even_h_point_rejected(rng):
    """Corrupting an even (gate output) point changes a wire share, so
    either the assertions or the polynomial test must catch it."""
    f = FIELD87
    circuit = bits_circuit(f, 3)
    x = [1, 1, 0]
    x_shares, proof_shares = prove_and_share(f, circuit, x, 2, rng)
    proof_shares[1].h_evals[2] = (proof_shares[1].h_evals[2] + 17) % f.modulus
    ctx = fresh_ctx(f, circuit, rng)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted


def test_bad_beaver_triple_rejected(rng):
    """c = ab + alpha shifts sigma by alpha (Appendix D.1's P-hat)."""
    f = FIELD87
    circuit = bits_circuit(f, 3)
    x = [0, 1, 1]
    x_shares, proof_shares = prove_and_share(f, circuit, x, 2, rng)
    proof_shares[0].c = (proof_shares[0].c + 99) % f.modulus
    ctx = fresh_ctx(f, circuit, rng)
    outcome = verify_snip(ctx, x_shares, proof_shares)
    assert not outcome.accepted
    assert outcome.sigma_total != 0


def test_bad_triple_with_bad_h_still_rejected(rng):
    """A cheater cannot use a crooked triple to cancel a crooked h:
    the t-multiplier makes P-hat nonzero whenever fg != h, for *any*
    adversarial alpha chosen before r (the Appendix D.1 theorem)."""
    f = FIELD87
    circuit = bits_circuit(f, 4)
    x = [1, 0, 5, 0]
    proof = build_proof(f, circuit, x, rng, check_valid=False)
    # Fake the third gate's output inside h to look like a valid bit
    # check result, and shift c to try to cancel the sigma offset.
    x_shares = share_vector(f, x, 2, rng)
    proof_shares = share_proof(f, proof, 2, rng)
    proof_shares[0].h_evals[6] = (proof_shares[0].h_evals[6] + 3) % f.modulus
    proof_shares[0].c = (proof_shares[0].c + 1234567) % f.modulus
    ctx = fresh_ctx(f, circuit, rng)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted


def test_corrupted_f0_g0_rejected(rng):
    """f(0)/g(0) shares feed the interpolation; corrupting them breaks
    h = f*g."""
    f = FIELD87
    circuit = bits_circuit(f, 2)
    x = [1, 0]
    for attr in ("f0", "g0"):
        x_shares, proof_shares = prove_and_share(f, circuit, x, 2, rng)
        setattr(
            proof_shares[0], attr,
            (getattr(proof_shares[0], attr) + 5) % f.modulus,
        )
        ctx = fresh_ctx(f, circuit, rng)
        assert not verify_snip(ctx, x_shares, proof_shares).accepted


def test_inconsistent_x_share_rejected(rng):
    """Tampering one server's x share changes the wire values, which
    must be caught (this is what robustness means end-to-end)."""
    f = FIELD87
    circuit = bits_circuit(f, 4)
    x = [1, 0, 1, 1]
    x_shares, proof_shares = prove_and_share(f, circuit, x, 3, rng)
    x_shares[2][1] = (x_shares[2][1] + 1) % f.modulus
    ctx = fresh_ctx(f, circuit, rng)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted


def test_rejection_rate_respects_schwartz_zippel_bound(rng):
    """On a small field, measure the cheater's acceptance probability
    and compare it with the (2M+1)/|F| bound.

    Strategy: proof for a valid input attached to an invalid input.
    The polynomial test operates on P(t) = t*(fg - h): acceptance
    requires r to hit a root, probability <= (2M+1)/|F|; because the
    assertion batch must also vanish (an extra 1/|F| event on an
    independent challenge), the joint rate is well under the bound.
    """
    f = FIELD_SMALL  # |F| = 3329
    circuit = bits_circuit(f, 3)  # M = 3, bound = 7/3329 ~ 0.0021
    good = [1, 1, 0]
    bad = [1, 2, 0]
    trials = 600
    accepted = 0
    for trial in range(trials):
        proof = build_proof(f, circuit, good, rng)
        x_shares = share_vector(f, bad, 2, rng)
        proof_shares = share_proof(f, proof, 2, rng)
        challenge = ServerRandomness(rng.randbytes(16)).challenge(
            f, circuit, trial
        )
        ctx = VerificationContext(f, circuit, challenge)
        if verify_snip(ctx, x_shares, proof_shares).accepted:
            accepted += 1
    bound = (2 * circuit.n_mul_gates + 1) / f.modulus
    # With 600 trials the expected count under the bound is ~1.3;
    # allow generous slack while still catching a broken test.
    assert accepted <= max(5, 3 * bound * trials)


def test_all_zero_proof_rejected(rng):
    f = FIELD87
    circuit = bits_circuit(f, 2)
    x = [1, 3]
    x_shares = share_vector(f, x, 2, rng)
    proof = build_proof(f, circuit, [1, 1], rng)
    proof_shares = share_proof(f, proof, 2, rng)
    for share in proof_shares:
        share.h_evals = [0] * len(share.h_evals)
        share.f0 = share.g0 = share.a = share.b = share.c = 0
    ctx = fresh_ctx(f, circuit, rng)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted
