"""SNIP zero-knowledge (Appendix D.2): simulated views match real views.

The simulator never sees the client's input; if the distribution of
the adversarial server's view matches the real protocol's, the protocol
leaks nothing about x.  We compare distributions empirically on a small
field, and check the structural invariants exactly.
"""

import random
from collections import Counter

import pytest

from repro.circuit import CircuitBuilder, assert_bit
from repro.field import FIELD_SMALL, FIELD87
from repro.snip import (
    ServerRandomness,
    SnipSimulator,
    VerificationContext,
    real_adversary_view,
)


@pytest.fixture
def rng():
    return random.Random(777)


def bit_circuit(field):
    b = CircuitBuilder(field, name="zk-bit")
    x = b.input()
    assert_bit(b, x)
    return b.build()


def make_ctx(field, circuit, seed=b"zk-seed"):
    challenge = ServerRandomness(seed).challenge(field, circuit, 0)
    return VerificationContext(field, circuit, challenge)


def chi_square_close(real_counts, sim_counts, n_buckets, trials):
    """Loose distribution comparison: every bucket's real/sim counts
    within 6 sigma of each other under a Poisson model."""
    for bucket in range(n_buckets):
        a = real_counts.get(bucket, 0)
        b = sim_counts.get(bucket, 0)
        sigma = max(1.0, (a + b) ** 0.5)
        assert abs(a - b) < 8 * sigma, (bucket, a, b)


N_BUCKETS = 16


def bucket(value, field):
    return value * N_BUCKETS // field.modulus


@pytest.mark.parametrize("x", [[0], [1]])
def test_honest_round1_view_distribution_matches(x, rng):
    """[d]_h and [e]_h marginals: real (with secret x) vs simulated."""
    f = FIELD_SMALL
    circuit = bit_circuit(f)
    ctx = make_ctx(f, circuit)
    sim = SnipSimulator(ctx, rng)
    trials = 1500
    real_d, sim_d = Counter(), Counter()
    real_e, sim_e = Counter(), Counter()
    for _ in range(trials):
        rv = real_adversary_view(ctx, x, rng)
        sv = sim.simulate()
        real_d[bucket(rv.honest_round1.d, f)] += 1
        sim_d[bucket(sv.honest_round1.d, f)] += 1
        real_e[bucket(rv.honest_round1.e, f)] += 1
        sim_e[bucket(sv.honest_round1.e, f)] += 1
    chi_square_close(real_d, sim_d, N_BUCKETS, trials)
    chi_square_close(real_e, sim_e, N_BUCKETS, trials)


def test_views_for_different_inputs_indistinguishable(rng):
    """Semantic security: views for x=0 and x=1 have the same
    distribution (neither reveals the bit)."""
    f = FIELD_SMALL
    circuit = bit_circuit(f)
    ctx = make_ctx(f, circuit)
    trials = 1500
    c0, c1 = Counter(), Counter()
    for _ in range(trials):
        v0 = real_adversary_view(ctx, [0], rng)
        v1 = real_adversary_view(ctx, [1], rng)
        c0[bucket(v0.honest_round2.sigma, f)] += 1
        c1[bucket(v1.honest_round2.sigma, f)] += 1
    chi_square_close(c0, c1, N_BUCKETS, trials)


def test_honest_sigma_invariant(rng):
    """With an honest adversary, sigma shares cancel: [sigma]_h equals
    the negation of what the adversary computes. The simulator must
    preserve this exactly, which we verify through the accept path."""
    f = FIELD87
    circuit = bit_circuit(f)
    ctx = make_ctx(f, circuit)
    for x in ([0], [1]):
        view = real_adversary_view(ctx, x, rng)
        # Assertion shares always cancel for a valid input.
        # (The adversary's own assertion share is derived from its
        # shares; here we just check the honest side is well-formed.)
        assert 0 <= view.honest_round2.assertion < f.modulus
        assert 0 <= view.honest_round2.sigma < f.modulus


def test_deviating_adversary_sigma_is_randomized(rng):
    """Appendix D.2's key case: if the adversary shifts d or e, the
    honest server's sigma becomes uniform (masked by f(r), g(r)) —
    in both the real world and the simulation."""
    f = FIELD_SMALL
    circuit = bit_circuit(f)
    ctx = make_ctx(f, circuit)
    sim = SnipSimulator(ctx, rng)
    trials = 1500
    real_sigma, sim_sigma = Counter(), Counter()
    for _ in range(trials):
        rv = real_adversary_view(ctx, [1], rng, adversary_delta_d=3)
        sv = sim.simulate(adversary_delta_d=3)
        real_sigma[bucket(rv.honest_round2.sigma, f)] += 1
        sim_sigma[bucket(sv.honest_round2.sigma, f)] += 1
    chi_square_close(real_sigma, sim_sigma, N_BUCKETS, trials)
    # And the real-world sigma really is spread out (not concentrated).
    assert len(real_sigma) == N_BUCKETS


def test_simulator_never_sees_input(rng):
    """API-level guarantee: the simulator has no input parameter."""
    f = FIELD_SMALL
    circuit = bit_circuit(f)
    ctx = make_ctx(f, circuit)
    sim = SnipSimulator(ctx, rng)
    view = sim.simulate()
    assert len(view.x_share) == circuit.n_inputs
    assert len(view.proof_share.h_evals) == 4  # 2N for M=1


def test_affine_only_simulation(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f, name="affine-zk")
    x, y = b.inputs(2)
    b.assert_zero(b.sub(b.add(x, y), b.constant(7)))
    circuit = b.build()
    ctx = make_ctx(f, circuit)
    sim = SnipSimulator(ctx, rng)
    view = sim.simulate()
    assert view.honest_round1.d == 0 and view.honest_round1.e == 0
    rv = real_adversary_view(ctx, [3, 4], rng)
    assert rv.honest_round1.d == 0 and rv.honest_round1.e == 0


def test_proof_share_components_uniform(rng):
    """Real proof shares received by the adversary are uniform field
    elements — compare each component's histogram against simulation."""
    f = FIELD_SMALL
    circuit = bit_circuit(f)
    ctx = make_ctx(f, circuit)
    sim = SnipSimulator(ctx, rng)
    trials = 1200
    real_h0, sim_h0 = Counter(), Counter()
    real_a, sim_a = Counter(), Counter()
    for _ in range(trials):
        rv = real_adversary_view(ctx, [1], rng)
        sv = sim.simulate()
        real_h0[bucket(rv.proof_share.h_evals[0], f)] += 1
        sim_h0[bucket(sv.proof_share.h_evals[0], f)] += 1
        real_a[bucket(rv.proof_share.a, f)] += 1
        sim_a[bucket(sv.proof_share.a, f)] += 1
    chi_square_close(real_h0, sim_h0, N_BUCKETS, trials)
    chi_square_close(real_a, sim_a, N_BUCKETS, trials)
