"""Tests for the Prio-MPC variant (server-side Valid evaluation)."""

import random

import pytest

from repro.circuit import CircuitBuilder, assert_bit, assert_binary_decomposition
from repro.field import FIELD87, FIELD_SMALL
from repro.snip import ServerRandomness, SnipError
from repro.snip.mpc_variant import (
    MpcSubmissionShare,
    build_mpc_submission,
    build_triple_validity_circuit,
    mpc_upload_elements,
    verify_mpc_submission,
)


@pytest.fixture
def rng():
    return random.Random(2468)


def bits_circuit(field, n_bits):
    b = CircuitBuilder(field, name="mpc-bits")
    wires = b.inputs(n_bits)
    for w in wires:
        assert_bit(b, w)
    return b.build()


def test_triple_circuit_shape():
    circuit = build_triple_validity_circuit(FIELD_SMALL, 4)
    assert circuit.n_inputs == 12
    assert circuit.n_mul_gates == 4


def test_triple_circuit_requires_positive_count():
    with pytest.raises(SnipError):
        build_triple_validity_circuit(FIELD_SMALL, 0)


def test_triple_circuit_accepts_valid_triples(rng):
    f = FIELD_SMALL
    circuit = build_triple_validity_circuit(f, 2)
    a1, b1 = f.rand(rng), f.rand(rng)
    a2, b2 = f.rand(rng), f.rand(rng)
    good = [a1, b1, f.mul(a1, b1), a2, b2, f.mul(a2, b2)]
    assert circuit.check(f, good)
    bad = list(good)
    bad[2] = (bad[2] + 1) % f.modulus
    assert not circuit.check(f, bad)


@pytest.mark.parametrize("n_servers", [2, 3, 5])
def test_honest_mpc_submission_accepted(n_servers, rng):
    f = FIELD87
    circuit = bits_circuit(f, 4)
    x = [1, 0, 1, 1]
    shares = build_mpc_submission(f, circuit.n_mul_gates, x, n_servers, rng)
    randomness = ServerRandomness(rng.randbytes(16))
    outcome = verify_mpc_submission(f, circuit, shares, randomness)
    assert outcome.accepted
    assert outcome.triple_check is not None and outcome.triple_check.accepted
    assert outcome.n_rounds == 1  # independent bit checks, one level


def test_invalid_input_rejected(rng):
    f = FIELD87
    circuit = bits_circuit(f, 4)
    x = [1, 0, 9, 1]
    shares = build_mpc_submission(f, circuit.n_mul_gates, x, 3, rng)
    randomness = ServerRandomness(rng.randbytes(16))
    outcome = verify_mpc_submission(f, circuit, shares, randomness)
    assert not outcome.accepted
    assert outcome.triple_check.accepted  # triples were fine
    assert outcome.assertion_total != 0   # the input was not


def test_bad_triples_rejected_before_mpc(rng):
    f = FIELD87
    circuit = bits_circuit(f, 3)
    shares = build_mpc_submission(f, circuit.n_mul_gates, [1, 0, 1], 2, rng)
    # Corrupt one c-component of the dealt triples.
    shares[0].triple_vector_share[2] = (
        shares[0].triple_vector_share[2] + 1
    ) % f.modulus
    randomness = ServerRandomness(rng.randbytes(16))
    outcome = verify_mpc_submission(f, circuit, shares, randomness)
    assert not outcome.accepted
    assert not outcome.triple_check.accepted
    assert outcome.n_rounds == 0  # MPC never ran


def test_affine_circuit_no_triples(rng):
    f = FIELD87
    b = CircuitBuilder(f, name="affine-mpc")
    x, y = b.inputs(2)
    b.assert_zero(b.sub(b.add(x, y), b.constant(9)))
    circuit = b.build()
    shares = build_mpc_submission(f, 0, [4, 5], 2, rng)
    randomness = ServerRandomness(rng.randbytes(16))
    outcome = verify_mpc_submission(f, circuit, shares, randomness)
    assert outcome.accepted
    assert outcome.triple_check is None


def test_client_does_not_need_circuit(rng):
    """The client builds its upload from M alone — e.g. a proprietary
    Valid circuit whose structure the servers keep secret."""
    f = FIELD87
    # Server-secret circuit: input must be a 4-bit int equal to 7 mod 9.
    b = CircuitBuilder(f, name="proprietary")
    value = b.input()
    bits = b.inputs(4)
    assert_binary_decomposition(b, value, bits)
    circuit = b.build()

    x_value = 13
    x = [x_value] + [(x_value >> i) & 1 for i in range(4)]
    shares = build_mpc_submission(f, circuit.n_mul_gates, x, 3, rng)
    randomness = ServerRandomness(rng.randbytes(16))
    assert verify_mpc_submission(f, circuit, shares, randomness).accepted


def test_missing_proof_share_raises(rng):
    f = FIELD87
    circuit = bits_circuit(f, 2)
    shares = build_mpc_submission(f, 2, [1, 0], 2, rng)
    shares[1] = MpcSubmissionShare(
        x_share=shares[1].x_share,
        triple_vector_share=shares[1].triple_vector_share,
        triple_proof_share=None,
    )
    randomness = ServerRandomness(rng.randbytes(16))
    with pytest.raises(SnipError):
        verify_mpc_submission(f, circuit, shares, randomness)


def test_ragged_triple_vector_raises():
    share = MpcSubmissionShare(
        x_share=[1], triple_vector_share=[1, 2], triple_proof_share=None
    )
    with pytest.raises(SnipError):
        share.triple_shares()


def test_upload_cost_grows_with_m():
    assert mpc_upload_elements(10, 0) == 10
    small = mpc_upload_elements(10, 4)
    large = mpc_upload_elements(10, 64)
    assert small < large
    # Theta(M): triples alone are 3M elements.
    assert large >= 10 + 3 * 64


def test_bandwidth_theta_m(rng):
    """Server-to-server traffic grows with M (Figure 6's contrast)."""
    f = FIELD87
    randomness = ServerRandomness(rng.randbytes(16))
    costs = []
    for n_bits in (2, 8):
        circuit = bits_circuit(f, n_bits)
        x = [1] * n_bits
        shares = build_mpc_submission(f, circuit.n_mul_gates, x, 2, rng)
        outcome = verify_mpc_submission(f, circuit, shares, randomness)
        assert outcome.accepted
        costs.append(outcome.elements_broadcast_per_server)
    assert costs[1] > costs[0]
