"""Client↔server differential suite for the batched plane prover.

The batched client path (``PrioClient.prepare_submissions(batched=True)``
→ ``repro.snip.batch_prover`` → ``share_vectors_client_batch`` →
``encode_bytes_batch``) must be *bit-identical* to the scalar
``prepare_submission`` loop under a shared rng: same submission ids,
same seeds, same wire bytes, same ``upload_bytes`` — on every shipped
NTT-friendly modulus, on both backends, at every batch size, in both
the PRG-seed-compressed and the explicit share forms.  The same
order-preservation contract is pinned for the SNIP-level batch entry
points (``prove_and_share_many`` / ``prove_and_share_planes`` /
``share_proof_batch`` vs their scalar counterparts).

The adversarial half round-trips batched uploads through real
``PrioServer`` instances (``receive_batch`` → plane verification →
``accumulate_batch``) with exactly one corrupted plane row — an input
share, a proof share, or a raw wire byte — and asserts that exactly
that submission is rejected while the rest of the batch accepts and
aggregates to the right answer.

Small deterministic cases run in tier-1; the randomized batch-64 sweep
is ``slow``-marked (run with ``-m slow``).
"""

import random

import pytest

from repro.afe import (
    ApproxMaxAfe,
    BoolAndAfe,
    BoolOrAfe,
    CountMinSketchAfe,
    FrequencyCountAfe,
    GeometricMeanAfe,
    IntegerMeanAfe,
    IntegerSumAfe,
    LinRegAfe,
    MaxAfe,
    MinAfe,
    MostPopularStringAfe,
    ProductAfe,
    R2Afe,
    SetIntersectionAfe,
    SetUnionAfe,
    StddevAfe,
    VarianceAfe,
    VectorSumAfe,
)
from repro.field import FIELD64, FIELD87, FIELD265, FIELD_SMALL, use_numpy
from repro.protocol import PrioClient, PrioServer
from repro.snip import (
    ServerRandomness,
    prove_and_share,
    prove_and_share_many,
    prove_and_share_planes,
    prove_many,
    share_proof,
    share_proof_batch,
)

BACKENDS = [True] + ([False] if use_numpy(None) else [])
MODULI = [FIELD_SMALL, FIELD64, FIELD87, FIELD265]
MODULI_IDS = [f.name for f in MODULI]


def backend_id(force_pure):
    return "pure" if force_pure else "numpy"


def _afe_for(field):
    return VectorSumAfe(field, length=5, n_bits=1)


def _values(n, rng):
    return [[rng.randrange(2) for _ in range(5)] for _ in range(n)]


def _assert_same_submissions(scalar_subs, batched_subs):
    assert len(scalar_subs) == len(batched_subs)
    for scalar, batched in zip(scalar_subs, batched_subs):
        assert scalar.submission_id == batched.submission_id
        assert scalar.upload_bytes == batched.upload_bytes
        assert len(scalar.packets) == len(batched.packets)
        for p, q in zip(scalar.packets, batched.packets):
            assert p.encode() == q.encode()


# ----------------------------------------------------------------------
# Differential: batched client vs the scalar prepare_submission loop
# ----------------------------------------------------------------------


@pytest.mark.parametrize("compress", [True, False], ids=["seeds", "explicit"])
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("field", MODULI, ids=MODULI_IDS)
@pytest.mark.parametrize("batch", [1, 2, 7])
def test_batched_client_bit_identical(field, force_pure, compress, batch):
    afe = _afe_for(field)
    values = _values(batch, random.Random(0xC11E + batch))
    scalar_client = PrioClient(
        afe, 3, use_prg_compression=compress, rng=random.Random(1207)
    )
    batched_client = PrioClient(
        afe, 3, use_prg_compression=compress, rng=random.Random(1207)
    )
    scalar_subs = [scalar_client.prepare_submission(v) for v in values]
    batched_subs = batched_client.prepare_submissions(
        values, batched=True, force_pure=force_pure
    )
    _assert_same_submissions(scalar_subs, batched_subs)
    # Both clients end at the same rng state: the draw sequences match.
    assert scalar_client.rng.getstate() == batched_client.rng.getstate()


@pytest.mark.slow
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("field", MODULI, ids=MODULI_IDS)
def test_batched_client_bit_identical_sweep(field, force_pure):
    """The randomized batch-64 sweep, both share forms."""
    afe = _afe_for(field)
    rng = random.Random(0x5EED)
    for compress in (True, False):
        seed = rng.randrange(1 << 30)
        values = _values(64, rng)
        scalar_client = PrioClient(
            afe, 3, use_prg_compression=compress, rng=random.Random(seed)
        )
        batched_client = PrioClient(
            afe, 3, use_prg_compression=compress, rng=random.Random(seed)
        )
        _assert_same_submissions(
            [scalar_client.prepare_submission(v) for v in values],
            batched_client.prepare_submissions(
                values, batched=True, force_pure=force_pure
            ),
        )


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_batched_client_proof_free_afe(force_pure):
    """AFEs without a Valid circuit skip the SNIP on both paths alike."""
    afe = BoolOrAfe(lambda_bits=8)
    values = [True, False, True, True]
    for compress in (True, False):
        scalar_client = PrioClient(
            afe, 3, use_prg_compression=compress, rng=random.Random(99)
        )
        batched_client = PrioClient(
            afe, 3, use_prg_compression=compress, rng=random.Random(99)
        )
        _assert_same_submissions(
            [scalar_client.prepare_submission(v) for v in values],
            batched_client.prepare_submissions(
                values, batched=True, force_pure=force_pure
            ),
        )


def test_batched_false_falls_back_to_scalar_loop():
    afe = _afe_for(FIELD87)
    values = _values(3, random.Random(4))
    a = PrioClient(afe, 3, rng=random.Random(11))
    b = PrioClient(afe, 3, rng=random.Random(11))
    _assert_same_submissions(
        a.prepare_submissions(values, batched=False),
        b.prepare_submissions(values, batched=True),
    )


def test_batched_client_rejects_invalid_value_at_scalar_rng_point():
    """An invalid input raises from the same per-submission draw point."""
    afe = IntegerSumAfe(FIELD87, 4)
    client = PrioClient(afe, 3, rng=random.Random(5))
    good_then_bad = [3, 2**4]  # second value does not fit 4 bits
    with pytest.raises(Exception) as batched_exc:
        client.prepare_submissions(good_then_bad, batched=True)
    scalar = PrioClient(afe, 3, rng=random.Random(5))
    with pytest.raises(Exception) as scalar_exc:
        [scalar.prepare_submission(v) for v in good_then_bad]
    assert type(batched_exc.value) is type(scalar_exc.value)
    assert client.rng.getstate() == scalar.rng.getstate()


# ----------------------------------------------------------------------
# SNIP-level order guarantee: prove_and_share_many / planes / proof batch
# ----------------------------------------------------------------------


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("field", MODULI, ids=MODULI_IDS)
def test_prove_and_share_many_matches_sequential(field, force_pure):
    """The documented guarantee: bit-identical to scalar prove_and_share.

    Earlier revisions drew all input sharings before any proof
    randomness (equivalent in distribution only); the batched path now
    replays scalar draw order exactly.
    """
    afe = _afe_for(field)
    circuit = afe.valid_circuit()
    rng = random.Random(21)
    xs = [afe.encode(v, rng) for v in _values(5, rng)]
    seq_rng, batch_rng = random.Random(77), random.Random(77)
    sequential = [
        prove_and_share(field, circuit, x, 3, seq_rng) for x in xs
    ]
    batched = prove_and_share_many(
        field, circuit, xs, 3, batch_rng, force_pure=force_pure
    )
    assert seq_rng.getstate() == batch_rng.getstate()
    for (sx, sp), (bx, bp) in zip(sequential, batched):
        assert sx == bx
        for scalar_share, batch_share in zip(sp, bp):
            assert scalar_share.flatten() == batch_share.flatten()


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_prove_and_share_planes_rows_match_scalar(force_pure):
    afe = _afe_for(FIELD87)
    circuit = afe.valid_circuit()
    rng = random.Random(31)
    xs = [afe.encode(v, rng) for v in _values(4, rng)]
    seq_rng, plane_rng = random.Random(13), random.Random(13)
    sequential = [
        prove_and_share(FIELD87, circuit, x, 3, seq_rng) for x in xs
    ]
    planes = prove_and_share_planes(
        FIELD87, circuit, xs, 3, plane_rng, force_pure=force_pure
    )
    for i, (sx, sp) in enumerate(sequential):
        for j in range(3):
            assert planes[j].row_ints(i) == sx[j] + sp[j].flatten()


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_share_proof_batch_matches_scalar(force_pure):
    afe = _afe_for(FIELD87)
    circuit = afe.valid_circuit()
    rng = random.Random(41)
    xs = [afe.encode(v, rng) for v in _values(3, rng)]
    proofs = prove_many(FIELD87, circuit, xs, random.Random(1))
    seq_rng, batch_rng = random.Random(2), random.Random(2)
    scalar_shares = [share_proof(FIELD87, p, 3, seq_rng) for p in proofs]
    batch_shares = share_proof_batch(
        FIELD87, proofs, 3, batch_rng, force_pure=force_pure
    )
    assert seq_rng.getstate() == batch_rng.getstate()
    for i in range(len(proofs)):
        for j in range(3):
            assert (
                batch_shares[j].row_ints(i) == scalar_shares[i][j].flatten()
            )


# ----------------------------------------------------------------------
# Adversarial round-trips: one corrupted plane row per batched upload
# ----------------------------------------------------------------------


def _servers(afe, n_servers=3, force_pure=None):
    randomness = ServerRandomness(b"client-batch-eq")
    return [
        PrioServer(
            afe, i, n_servers, randomness, force_pure_backend=force_pure
        )
        for i in range(n_servers)
    ]


def _run_batch(servers, submissions):
    """receive_batch → plane rounds → accumulate; per-submission results."""
    n_servers = len(servers)
    outs = [
        server.receive_batch([sub.packets[s] for sub in submissions])
        for s, server in enumerate(servers)
    ]
    results = [None] * len(submissions)
    survivors = []
    for pos in range(len(submissions)):
        if any(isinstance(outs[s][pos], Exception) for s in range(n_servers)):
            for s, server in enumerate(servers):
                if not isinstance(outs[s][pos], Exception):
                    server.abandon(outs[s][pos])
            results[pos] = False
        else:
            survivors.append(pos)
    parties, round1 = [], []
    for s, server in enumerate(servers):
        party, batch = server.begin_verification_batch(
            [outs[s][pos] for pos in survivors]
        )
        parties.append(party)
        round1.append(batch)
    round2 = [
        server.finish_verification_batch(party, round1)
        for server, party in zip(servers, parties)
    ]
    decisions = servers[0].decide_batch(round2)
    for s, server in enumerate(servers):
        server.accumulate_batch(
            [outs[s][pos] for pos in survivors], decisions
        )
    for pos, accepted in zip(survivors, decisions):
        results[pos] = accepted
    return results


def _corrupt_element(field, packet, element, delta=1):
    """Re-encode one element of an EXPLICIT body shifted by ``delta``."""
    size = field.encoded_size
    body = bytearray(packet.body)
    start = element * size
    value = int.from_bytes(body[start:start + size], "big")
    body[start:start + size] = field.encode_element(
        (value + delta) % field.modulus
    )
    return packet.__class__(
        submission_id=packet.submission_id,
        server_index=packet.server_index,
        kind=packet.kind,
        n_elements=packet.n_elements,
        body=bytes(body),
    )


#: fixed per-region seeds: the corrupted position must be reproducible
#: across runs (str hash() is randomized per process)
REGION_SEEDS = {"input_share": 0xA11, "proof_share": 0xB22, "seed_row": 0xC33}


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize(
    "region", ["input_share", "proof_share", "seed_row"]
)
def test_one_corrupted_row_rejects_alone(force_pure, region):
    """Corrupt one plane row of a batched upload; only it must fall."""
    rng = random.Random(REGION_SEEDS[region])
    afe = _afe_for(FIELD87)
    client = PrioClient(afe, 3, rng=random.Random(61))
    values = _values(6, rng)
    submissions = client.prepare_submissions(
        values, batched=True, force_pure=force_pure
    )
    bad = rng.randrange(len(submissions))
    sub = submissions[bad]
    if region == "input_share":
        # Shift an input-share element in the explicit (last) packet.
        sub.packets[-1] = _corrupt_element(
            FIELD87, sub.packets[-1], rng.randrange(afe.k)
        )
    elif region == "proof_share":
        # Shift a proof-share element (an h evaluation) instead.
        sub.packets[-1] = _corrupt_element(
            FIELD87, sub.packets[-1],
            afe.k + 2 + rng.randrange(8),
        )
    else:
        # Replace one SEED packet: that server's whole row goes wrong.
        seed_packet = sub.packets[0]
        sub.packets[0] = seed_packet.__class__(
            submission_id=seed_packet.submission_id,
            server_index=seed_packet.server_index,
            kind=seed_packet.kind,
            n_elements=seed_packet.n_elements,
            body=bytes(16 - len(b"x")) + b"x",
        )
    servers = _servers(afe, force_pure=force_pure)
    results = _run_batch(servers, submissions)
    assert results == [pos != bad for pos in range(len(submissions))]
    sigma = FIELD87.vec_sum([server.publish() for server in servers])
    expected = [
        sum(v[i] for pos, v in enumerate(values) if pos != bad)
        for i in range(afe.k_prime)
    ]
    assert afe.decode(sigma, servers[0].n_accepted) == expected


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_one_corrupted_wire_byte_rejects_at_receive(force_pure):
    """An out-of-range wire element evicts only its submission, at
    receive time (``receive_batch`` offender isolation)."""
    afe = _afe_for(FIELD87)
    client = PrioClient(afe, 3, rng=random.Random(71))
    rng = random.Random(72)
    values = _values(5, rng)
    submissions = client.prepare_submissions(
        values, batched=True, force_pure=force_pure
    )
    bad = rng.randrange(len(submissions))
    packet = submissions[bad].packets[-1]
    size = FIELD87.encoded_size
    element = rng.randrange(packet.n_elements)
    body = bytearray(packet.body)
    body[element * size:(element + 1) * size] = b"\xff" * size  # >= p
    submissions[bad].packets[-1] = packet.__class__(
        submission_id=packet.submission_id,
        server_index=packet.server_index,
        kind=packet.kind,
        n_elements=packet.n_elements,
        body=bytes(body),
    )
    servers = _servers(afe, force_pure=force_pure)
    # The corrupted server's receive_batch rejects exactly that packet.
    outs = servers[-1].receive_batch(
        [sub.packets[-1] for sub in submissions]
    )
    assert [isinstance(o, Exception) for o in outs] == [
        pos == bad for pos in range(len(submissions))
    ]
    # And the full round-trip still accepts + aggregates the rest.
    fresh = _servers(afe, force_pure=force_pure)
    results = _run_batch(fresh, submissions)
    assert results == [pos != bad for pos in range(len(submissions))]
    sigma = FIELD87.vec_sum([server.publish() for server in fresh])
    expected = [
        sum(v[i] for pos, v in enumerate(values) if pos != bad)
        for i in range(afe.k_prime)
    ]
    assert afe.decode(sigma, fresh[0].n_accepted) == expected


# ----------------------------------------------------------------------
# upload_bytes property: reported == actual encoded length, every AFE
# ----------------------------------------------------------------------

AFE_CASES = [
    (BoolAndAfe(lambda_bits=8), [True, False, True]),
    (BoolOrAfe(lambda_bits=8), [False, True, False]),
    (FrequencyCountAfe(FIELD87, 12), [7, 0, 11]),
    (SetUnionAfe(universe_size=6, lambda_bits=8), [{1, 2}, {0}, set()]),
    (
        SetIntersectionAfe(universe_size=6, lambda_bits=8),
        [{1, 2}, {2, 3}, {2}],
    ),
    (MinAfe(domain_size=8, lambda_bits=8), [3, 7, 2]),
    (MaxAfe(domain_size=8, lambda_bits=8), [3, 7, 2]),
    (
        ApproxMaxAfe(domain_size=1 << 10, factor=2.0, lambda_bits=8),
        [100, 5, 800],
    ),
    (MostPopularStringAfe(FIELD87, 16), [0xCAFE, 0xBEEF, 0xCAFE]),
    (LinRegAfe(FIELD87, dimension=2, n_bits=8), [([12, 34], 200)] * 2),
    (R2Afe(FIELD87, [1, 2, 1], n_bits=8), [([10, 20], 55)] * 2),
    (
        CountMinSketchAfe(FIELD87, epsilon=1 / 4, delta=0.1),
        ["example.org", "example.com"],
    ),
    (GeometricMeanAfe(FIELD87, n_bits=16), [2.0, 4.0]),
    (VectorSumAfe(FIELD87, length=5, n_bits=2), [[1, 2, 3, 0, 1]] * 2),
    (IntegerMeanAfe(FIELD87, 8), [100, 3]),
    (IntegerSumAfe(FIELD87, 4), [5, 11]),
    (ProductAfe(FIELD87, n_bits=16), [2.0, 3.0]),
    (StddevAfe(FIELD87, 8), [99, 4]),
    (VarianceAfe(FIELD87, 8), [99, 4]),
]


@pytest.mark.parametrize(
    "afe,values", AFE_CASES, ids=[a.name for a, _ in AFE_CASES]
)
def test_upload_bytes_matches_encoded_length_every_afe(afe, values):
    """Figure 6's overhead accounting: the reported client upload cost
    must equal the bytes actually on the wire, for every AFE, on both
    the batched and the scalar framer, in both share forms."""
    for compress in (True, False):
        batched_client = PrioClient(
            afe, 3, use_prg_compression=compress, rng=random.Random(83)
        )
        scalar_client = PrioClient(
            afe, 3, use_prg_compression=compress, rng=random.Random(83)
        )
        batched = batched_client.prepare_submissions(values, batched=True)
        scalar = [scalar_client.prepare_submission(v) for v in values]
        for sub, ref in zip(batched, scalar):
            actual = sum(len(p.encode()) for p in sub.packets)
            assert sub.upload_bytes == actual
            assert ref.upload_bytes == actual
            # Every packet's claimed element count matches its body.
            for packet in sub.packets:
                if packet.kind.name == "EXPLICIT":
                    assert (
                        len(packet.body)
                        == packet.n_elements * afe.field.encoded_size
                    )
