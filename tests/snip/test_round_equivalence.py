"""Round-message equivalence: plane-form batches vs scalar reference.

The unified pipeline computes the round-1/round-2 broadcasts, the
accept/reject decisions, and the accumulator entirely in limb-plane
form.  This suite pins them — bit for bit — to an independent scalar
reference implementation embedded below: the pre-unification verifier
(wire-share reconstruction + Lagrange inner products + per-message
Python-int algebra), which the deleted scalar path used to run.

Sweeps cover every shipped NTT-friendly modulus, both backends, and
adversarially corrupted submissions at random batch positions.  The
small deterministic cases run in tier-1; the randomized full sweep is
``slow``-marked (run with ``-m slow``).
"""

import random
from dataclasses import replace

import pytest

from repro.afe import FrequencyCountAfe, IntegerSumAfe, VectorSumAfe
from repro.circuit.circuit import batched_assertion_share
from repro.field import FIELD64, FIELD87, FIELD265, FIELD_SMALL, use_numpy
from repro.snip import (
    BatchedSnipVerifierParty,
    Round1Batch,
    Round2Batch,
    ServerRandomness,
    SnipVerifierParty,
    VerificationContext,
    prove_and_share_many,
)

BACKENDS = [True] + ([False] if use_numpy(None) else [])


def backend_id(force_pure):
    return "pure" if force_pure else "numpy"


@pytest.fixture
def rng():
    return random.Random(0xE09)


class ReferenceParty:
    """The pre-unification scalar verifier, kept as an oracle.

    Computes f(r)/r*g(r)/r*h(r) through wire-share reconstruction and
    Lagrange inner products (never through the batch functionals), and
    the round messages with plain Python-int arithmetic.
    """

    def __init__(self, ctx, server_index, n_servers, x_share, proof_share):
        self.ctx = ctx
        self.field = ctx.field
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.proof_share = proof_share
        field, circuit, m = ctx.field, ctx.circuit, ctx.n_mul_gates
        mul_out = proof_share.mul_output_shares(m)
        wires = circuit.reconstruct_wire_shares(
            field, x_share, mul_out, is_leader=self.is_leader
        )
        self.assertion_share = batched_assertion_share(
            field, wires.assertion_shares,
            list(ctx.challenge.assertion_coefficients),
        )
        if m:
            pad = [0] * (ctx.size_n - m - 1)
            f_evals = [proof_share.f0] + wires.mul_inputs_left + pad
            g_evals = [proof_share.g0] + wires.mul_inputs_right + pad
            p = field.modulus
            r = ctx.challenge.r
            self.f_r = field.inner_product(ctx.weights_n, f_evals)
            g_r = field.inner_product(ctx.weights_n, g_evals)
            h_r = field.inner_product(ctx.weights_2n, proof_share.h_evals)
            self.rg_r = (r * g_r) % p
            self.rh_r = (r * h_r) % p
        else:
            self.f_r = self.rg_r = self.rh_r = 0

    def round1(self):
        if self.ctx.n_mul_gates == 0:
            return (0, 0)
        f = self.field
        return (
            f.sub(self.f_r, self.proof_share.a),
            f.sub(self.rg_r, self.proof_share.b),
        )

    def round2(self, round1_messages):
        p = self.field.modulus
        if self.ctx.n_mul_gates == 0:
            return (0, self.assertion_share)
        d = sum(m[0] for m in round1_messages) % p
        e = sum(m[1] for m in round1_messages) % p
        s_inv = pow(self.n_servers % p, -1, p)
        share = self.proof_share
        sigma = (
            d * e % p * s_inv
            + d * share.b
            + e * share.a
            + share.c
            - self.rh_r
        ) % p
        return (sigma, self.assertion_share)


def _context(afe, seed=b"round-equivalence"):
    circuit = afe.valid_circuit()
    challenge = ServerRandomness(seed).challenge(afe.field, circuit, 0)
    return circuit, VerificationContext(afe.field, circuit, challenge)


CORRUPTIONS = ("x_share", "h_eval", "triple", "f0")


def _corrupt(sub, how, rng, field):
    x_shares, proof_shares = sub
    server = rng.randrange(len(x_shares))
    p = field.modulus
    if how == "x_share":
        pos = rng.randrange(len(x_shares[server]))
        x_shares[server][pos] = (x_shares[server][pos] + 1) % p
    elif how == "h_eval":
        share = proof_shares[server]
        pos = rng.randrange(len(share.h_evals))
        share.h_evals[pos] = (share.h_evals[pos] + 1) % p
    elif how == "triple":
        proof_shares[server] = replace(
            proof_shares[server], c=(proof_shares[server].c + 1) % p
        )
    else:
        proof_shares[server] = replace(
            proof_shares[server], f0=(proof_shares[server].f0 + 1) % p
        )


def _run_reference(ctx, submissions, n_servers):
    """Per-submission reference messages + decisions."""
    out = []
    for x_shares, proof_shares in submissions:
        parties = [
            ReferenceParty(ctx, i, n_servers, x_shares[i], proof_shares[i])
            for i in range(n_servers)
        ]
        round1 = [party.round1() for party in parties]
        round2 = [party.round2(round1) for party in parties]
        p = ctx.field.modulus
        accepted = (
            sum(m[0] for m in round2) % p == 0
            and sum(m[1] for m in round2) % p == 0
        )
        out.append((round1, round2, accepted))
    return out


def _run_planes(ctx, submissions, n_servers, force_pure):
    """Plane-form batched rounds for the same submissions."""
    parties = [
        BatchedSnipVerifierParty(
            ctx, i, n_servers,
            [sub[0][i] for sub in submissions],
            [sub[1][i] for sub in submissions],
            force_pure,
        )
        for i in range(n_servers)
    ]
    round1_batches = [party.round1_all() for party in parties]
    round2_batches = [party.round2_all(round1_batches) for party in parties]
    decisions = Round2Batch.decide_all(round2_batches)
    return round1_batches, round2_batches, decisions


def _assert_equivalent(ctx, submissions, n_servers, force_pure, rng):
    reference = _run_reference(ctx, submissions, n_servers)
    round1_batches, round2_batches, decisions = _run_planes(
        ctx, submissions, n_servers, force_pure
    )
    assert isinstance(round1_batches[0], Round1Batch)
    for s in range(n_servers):
        msgs1 = round1_batches[s].messages()
        msgs2 = round2_batches[s].messages()
        for i, (ref_r1, ref_r2, _) in enumerate(reference):
            assert (msgs1[i].d, msgs1[i].e) == ref_r1[s]
            assert (msgs2[i].sigma, msgs2[i].assertion) == ref_r2[s]
    assert decisions == [ref[2] for ref in reference]
    # The scalar wrapper (a batch of one) agrees message-for-message.
    spot = rng.randrange(len(submissions))
    x_shares, proof_shares = submissions[spot]
    scalar_parties = [
        SnipVerifierParty(ctx, i, n_servers, x_shares[i], proof_shares[i])
        for i in range(n_servers)
    ]
    scalar_r1 = [party.round1() for party in scalar_parties]
    ref_r1 = reference[spot][0]
    assert [(m.d, m.e) for m in scalar_r1] == list(ref_r1)
    scalar_r2 = [party.round2(scalar_r1) for party in scalar_parties]
    assert [
        (m.sigma, m.assertion) for m in scalar_r2
    ] == list(reference[spot][1])


def _make_submissions(afe, circuit, batch, n_servers, rng, n_bad):
    values = [afe.random_value(rng) for _ in range(batch)]
    encodings = [afe.encode(v) for v in values]
    submissions = prove_and_share_many(
        afe.field, circuit, encodings, n_servers, rng
    )
    submissions = [list(sub) for sub in submissions]
    bad_positions = rng.sample(range(batch), n_bad) if n_bad else []
    for pos in bad_positions:
        _corrupt(
            submissions[pos], rng.choice(CORRUPTIONS), rng, afe.field
        )
    return submissions, set(bad_positions)


def _afe_cases(field):
    return [
        ("sum", IntegerSumAfe(field, 5), lambda rng: rng.randrange(32)),
        (
            "vector",
            VectorSumAfe(field, 6, 1),
            lambda rng: [rng.randrange(2) for _ in range(6)],
        ),
        ("frequency", FrequencyCountAfe(field, 4), lambda rng: rng.randrange(4)),
    ]


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_round_equivalence_fast(force_pure, rng):
    """Tier-1 case: F87, one adversarial submission at a random slot."""
    name, afe, draw = _afe_cases(FIELD87)[1]
    del name
    afe.random_value = draw
    circuit, ctx = _context(afe)
    submissions, bad = _make_submissions(afe, circuit, 7, 3, rng, n_bad=2)
    _assert_equivalent(ctx, submissions, 3, force_pure, rng)
    _, _, decisions = _run_planes(ctx, submissions, 3, force_pure)
    for i, accepted in enumerate(decisions):
        assert accepted == (i not in bad)


@pytest.mark.slow
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize(
    "field",
    [FIELD87, FIELD64, FIELD265, FIELD_SMALL],
    ids=lambda f: f.name,
)
def test_round_equivalence_randomized(field, force_pure, rng):
    """Randomized sweep: all shipped moduli, random circuits/corruption."""
    for case_index, (name, afe, draw) in enumerate(_afe_cases(field)):
        del name
        afe.random_value = draw
        circuit, ctx = _context(afe, seed=b"sweep-%d" % case_index)
        for trial in range(3):
            batch = rng.randrange(1, 9)
            n_servers = rng.choice([2, 3, 5])
            n_bad = rng.randrange(0, min(3, batch + 1))
            submissions, bad = _make_submissions(
                afe, circuit, batch, n_servers, rng, n_bad
            )
            _assert_equivalent(ctx, submissions, n_servers, force_pure, rng)
            _, _, decisions = _run_planes(
                ctx, submissions, n_servers, force_pure
            )
            # Honest rows always accept; corrupted rows reject except
            # with the (tiny, field-dependent) soundness error — on
            # FIELD_SMALL a corrupted share *can* verify, so only the
            # honest direction is asserted there.
            for i, accepted in enumerate(decisions):
                if i not in bad:
                    assert accepted
                elif field is not FIELD_SMALL:
                    assert not accepted


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_plane_accumulator_matches_scalar_sum(force_pure, rng):
    """The plane-resident accumulator equals the scalar fold, and stays
    plane-resident until publish."""
    from repro.field.batch import BatchVector
    from repro.protocol import PrioDeployment

    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(
        afe, 2, batch_size=4, force_pure_backend=force_pure, rng=rng
    )
    values = [rng.randrange(256) for _ in range(13)]
    assert deployment.submit_many(values) == 13
    server = deployment.servers[0]
    assert isinstance(server._accumulator, BatchVector)
    # reference: scalar fold over the published shares
    shares = [srv.publish() for srv in deployment.servers]
    total = FIELD87.vec_sum(shares)
    assert afe.decode(total, 13) == sum(values)


@pytest.mark.slow
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize(
    "field", [FIELD87, FIELD64, FIELD265], ids=lambda f: f.name
)
def test_deployment_equivalence_randomized(field, force_pure, rng):
    """Full deployments: batched/pipelined streams with adversarial
    submissions at random positions publish the honest-only aggregate."""
    from repro.protocol import PrioDeployment

    afe = IntegerSumAfe(field, 6)
    for trial in range(2):
        batch_size = rng.choice([1, 3, 5])
        deployment = PrioDeployment.create(
            afe, rng.choice([2, 3]), batch_size=batch_size,
            force_pure_backend=force_pure, rng=rng,
        )
        values = [rng.randrange(64) for _ in range(11)]
        submissions = deployment.client.prepare_submissions(values)
        bad = rng.randrange(len(values))
        packet = submissions[bad].packets[0]
        body = bytearray(packet.body)
        body[-1] ^= 1
        submissions[bad].packets[0] = replace(packet, body=bytes(body))
        results = deployment.deliver_pipelined(submissions)
        assert [r for i, r in enumerate(results) if i != bad] == [True] * 10
        assert not results[bad]
        honest = sum(v for i, v in enumerate(values) if i != bad)
        assert deployment.publish() == honest
