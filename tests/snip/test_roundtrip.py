"""SNIP correctness: honest clients are always accepted."""

import random

import pytest

from repro.circuit import (
    CircuitBuilder,
    assert_binary_decomposition,
    assert_bit,
    assert_one_hot,
)
from repro.field import FIELD87, FIELD265, FIELD_SMALL
from repro.snip import (
    ServerRandomness,
    SnipError,
    VerificationContext,
    build_proof,
    proof_num_elements,
    prove_and_share,
    share_proof,
    snip_domain_sizes,
    verify_snip,
)


@pytest.fixture
def rng():
    return random.Random(1234)


def bits_circuit(field, n_bits, name="bits"):
    b = CircuitBuilder(field, name=name)
    wires = b.inputs(n_bits)
    for w in wires:
        assert_bit(b, w)
    return b.build()


def make_ctx(field, circuit, rng, epoch=0):
    randomness = ServerRandomness(seed=rng.randbytes(16))
    challenge = randomness.challenge(field, circuit, epoch)
    return VerificationContext(field, circuit, challenge)


# ----------------------------------------------------------------------
# Domain sizing / layout
# ----------------------------------------------------------------------


def test_domain_sizes():
    assert snip_domain_sizes(0) == (0, 0)
    assert snip_domain_sizes(1) == (2, 4)
    assert snip_domain_sizes(3) == (4, 8)
    assert snip_domain_sizes(4) == (8, 16)
    assert snip_domain_sizes(1024) == (2048, 4096)


def test_proof_num_elements_matches_flatten(rng):
    f = FIELD_SMALL
    circuit = bits_circuit(f, 5)
    x = [1, 0, 1, 1, 0]
    proof = build_proof(f, circuit, x, rng)
    shares = share_proof(f, proof, 3, rng)
    for share in shares:
        assert len(share.flatten()) == proof_num_elements(5)


def test_flatten_unflatten_roundtrip(rng):
    from repro.snip import SnipProofShare

    f = FIELD_SMALL
    circuit = bits_circuit(f, 3)
    proof = build_proof(f, circuit, [1, 1, 0], rng)
    share = share_proof(f, proof, 2, rng)[0]
    restored = SnipProofShare.unflatten(f, share.flatten(), 3)
    assert restored == share


def test_unflatten_rejects_bad_length():
    from repro.snip import SnipProofShare

    with pytest.raises(SnipError):
        SnipProofShare.unflatten(FIELD_SMALL, [0] * 4, 3)


# ----------------------------------------------------------------------
# Honest acceptance
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_servers", [2, 3, 5])
@pytest.mark.parametrize("n_bits", [1, 3, 8])
def test_honest_client_accepted(n_servers, n_bits, rng):
    f = FIELD87
    circuit = bits_circuit(f, n_bits)
    x = [rng.randrange(2) for _ in range(n_bits)]
    x_shares, proof_shares = prove_and_share(f, circuit, x, n_servers, rng)
    ctx = make_ctx(f, circuit, rng)
    outcome = verify_snip(ctx, x_shares, proof_shares)
    assert outcome.accepted
    assert outcome.sigma_total == 0
    assert outcome.assertion_total == 0


def test_honest_acceptance_large_field(rng):
    f = FIELD265
    circuit = bits_circuit(f, 4)
    x = [0, 1, 1, 0]
    x_shares, proof_shares = prove_and_share(f, circuit, x, 2, rng)
    ctx = make_ctx(f, circuit, rng)
    assert verify_snip(ctx, x_shares, proof_shares).accepted


def test_honest_acceptance_many_epochs(rng):
    """Acceptance must hold for every challenge epoch (fresh r each)."""
    f = FIELD87
    circuit = bits_circuit(f, 4)
    x = [1, 0, 0, 1]
    randomness = ServerRandomness(seed=b"epoch-test-seed!")
    for epoch in range(5):
        challenge = randomness.challenge(f, circuit, epoch)
        ctx = VerificationContext(f, circuit, challenge)
        x_shares, proof_shares = prove_and_share(f, circuit, x, 3, rng)
        assert verify_snip(ctx, x_shares, proof_shares).accepted


def test_affine_only_circuit(rng):
    """M = 0: no polynomial test, assertions still enforced."""
    f = FIELD87
    b = CircuitBuilder(f, name="affine")
    x, y = b.inputs(2)
    b.assert_zero(b.sub(b.add(x, y), b.constant(10)))
    circuit = b.build()
    assert circuit.n_mul_gates == 0

    ctx = make_ctx(f, circuit, rng)
    x_shares, proof_shares = prove_and_share(f, circuit, [4, 6], 3, rng)
    assert verify_snip(ctx, x_shares, proof_shares).accepted

    bad_shares, bad_proof = prove_and_share(f, circuit, [4, 6], 3, rng)
    bad_shares[0][0] = (bad_shares[0][0] + 1) % f.modulus
    assert not verify_snip(ctx, bad_shares, bad_proof).accepted


def test_binary_decomposition_circuit(rng):
    """The integer-sum AFE's Valid circuit verifies end-to-end."""
    f = FIELD87
    b = CircuitBuilder(f, name="int-sum")
    value = b.input()
    bits = b.inputs(8)
    assert_binary_decomposition(b, value, bits)
    circuit = b.build()
    x_value = 173
    x = [x_value] + [(x_value >> i) & 1 for i in range(8)]
    ctx = make_ctx(f, circuit, rng)
    x_shares, proof_shares = prove_and_share(f, circuit, x, 2, rng)
    assert verify_snip(ctx, x_shares, proof_shares).accepted


def test_one_hot_circuit(rng):
    f = FIELD87
    b = CircuitBuilder(f, name="one-hot")
    wires = b.inputs(6)
    assert_one_hot(b, wires)
    circuit = b.build()
    x = [0, 0, 1, 0, 0, 0]
    ctx = make_ctx(f, circuit, rng)
    x_shares, proof_shares = prove_and_share(f, circuit, x, 4, rng)
    assert verify_snip(ctx, x_shares, proof_shares).accepted


# ----------------------------------------------------------------------
# Prover guards
# ----------------------------------------------------------------------


def test_prover_refuses_invalid_input(rng):
    f = FIELD87
    circuit = bits_circuit(f, 2)
    with pytest.raises(SnipError):
        build_proof(f, circuit, [1, 7], rng)


def test_prover_allows_invalid_with_flag(rng):
    f = FIELD87
    circuit = bits_circuit(f, 2)
    proof = build_proof(f, circuit, [1, 7], rng, check_valid=False)
    assert len(proof.h_evals) == snip_domain_sizes(2)[1]


def test_share_proof_needs_two_servers(rng):
    f = FIELD_SMALL
    circuit = bits_circuit(f, 1)
    proof = build_proof(f, circuit, [1], rng)
    with pytest.raises(SnipError):
        share_proof(f, proof, 1, rng)


# ----------------------------------------------------------------------
# Challenge derivation
# ----------------------------------------------------------------------


def test_challenge_deterministic_across_servers():
    f = FIELD87
    circuit = bits_circuit(f, 3)
    a = ServerRandomness(b"shared-seed").challenge(f, circuit, 7)
    b = ServerRandomness(b"shared-seed").challenge(f, circuit, 7)
    assert a == b


def test_challenge_varies_with_epoch():
    f = FIELD87
    circuit = bits_circuit(f, 3)
    rand = ServerRandomness(b"shared-seed")
    assert rand.challenge(f, circuit, 0) != rand.challenge(f, circuit, 1)


def test_challenge_avoids_degenerate_points():
    from repro.field import EvaluationDomain

    f = FIELD_SMALL  # small field: collisions actually plausible
    circuit = bits_circuit(f, 7)
    _, size_2n = snip_domain_sizes(7)
    domain = EvaluationDomain(f, size_2n)
    rand = ServerRandomness(b"!")
    for epoch in range(200):
        challenge = rand.challenge(f, circuit, epoch)
        assert challenge.r != 0
        assert not domain.contains_point(challenge.r)


def test_context_rejects_degenerate_r():
    f = FIELD87
    circuit = bits_circuit(f, 2)
    from repro.snip import VerificationChallenge

    bad = VerificationChallenge(r=0, assertion_coefficients=(1, 1))
    with pytest.raises(SnipError):
        VerificationContext(f, circuit, bad)


def test_context_rejects_wrong_challenge_arity():
    f = FIELD87
    circuit = bits_circuit(f, 2)
    from repro.snip import VerificationChallenge

    bad = VerificationChallenge(r=5, assertion_coefficients=(1,))
    with pytest.raises(SnipError):
        VerificationContext(f, circuit, bad)


# ----------------------------------------------------------------------
# Cross-validation against the textbook construction
# ----------------------------------------------------------------------


def test_reference_and_ntt_variants_agree(rng):
    from repro.snip import (
        build_reference_proof,
        share_reference_proof,
        verify_reference_snip,
    )

    f = FIELD87
    circuit = bits_circuit(f, 5)
    x = [1, 1, 0, 1, 0]
    randomness = ServerRandomness(b"xval")
    challenge = randomness.challenge(f, circuit, 0)

    ctx = VerificationContext(f, circuit, challenge)
    x_shares, proof_shares = prove_and_share(f, circuit, x, 3, rng)
    assert verify_snip(ctx, x_shares, proof_shares).accepted

    ref_proof = build_reference_proof(f, circuit, x, rng)
    ref_shares = share_reference_proof(f, ref_proof, 3, rng)
    outcome = verify_reference_snip(f, circuit, x_shares, ref_shares, challenge)
    assert outcome.accepted


def test_reference_variant_rejects_invalid(rng):
    from repro.snip import (
        build_reference_proof,
        share_reference_proof,
        verify_reference_snip,
    )

    f = FIELD87
    circuit = bits_circuit(f, 3)
    x = [1, 2, 0]  # invalid
    randomness = ServerRandomness(b"xval2")
    challenge = randomness.challenge(f, circuit, 0)
    ref_proof = build_reference_proof(f, circuit, x, rng, check_valid=False)
    ref_shares = share_reference_proof(f, ref_proof, 2, rng)
    from repro.sharing import share_vector

    x_shares = share_vector(f, x, 2, rng)
    outcome = verify_reference_snip(f, circuit, x_shares, ref_shares, challenge)
    assert not outcome.accepted
