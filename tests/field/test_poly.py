"""Unit and property tests for reference polynomial arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import (
    FIELD87,
    FIELD_SMALL,
    FIELD_TINY,
    FieldError,
    lagrange_coefficients_at,
    lagrange_interpolate,
    poly_add,
    poly_degree,
    poly_eval,
    poly_mul,
    poly_normalize,
    poly_scale,
    poly_sub,
)


@pytest.fixture
def rng():
    return random.Random(7)


def test_normalize_strips_trailing_zeros():
    assert poly_normalize([1, 2, 0, 0]) == [1, 2]
    assert poly_normalize([0, 0]) == []
    assert poly_normalize([]) == []


def test_degree():
    assert poly_degree([]) == -1
    assert poly_degree([5]) == 0
    assert poly_degree([0, 0, 3]) == 2
    assert poly_degree([1, 0, 0]) == 0


def test_eval_constant_and_linear():
    f = FIELD_TINY
    assert poly_eval(f, [], 12) == 0
    assert poly_eval(f, [42], 12) == 42
    assert poly_eval(f, [1, 2], 10) == 21  # 1 + 2*10


def test_add_sub_roundtrip(rng):
    f = FIELD_SMALL
    a = f.rand_vector(5, rng)
    b = f.rand_vector(3, rng)
    total = poly_add(f, a, b)
    assert poly_normalize(poly_sub(f, total, b)) == poly_normalize(a)


def test_mul_degrees():
    f = FIELD_TINY
    a = [1, 1]  # 1 + x
    b = [1, 96]  # 1 - x
    assert poly_mul(f, a, b) == [1, 0, 96]  # 1 - x^2


def test_mul_by_zero():
    assert poly_mul(FIELD_TINY, [1, 2, 3], []) == []
    assert poly_mul(FIELD_TINY, [], []) == []


def test_mul_evaluates_correctly(rng):
    f = FIELD_SMALL
    a = f.rand_vector(6, rng)
    b = f.rand_vector(4, rng)
    prod = poly_mul(f, a, b)
    for _ in range(10):
        x = f.rand(rng)
        assert poly_eval(f, prod, x) == f.mul(
            poly_eval(f, a, x), poly_eval(f, b, x)
        )


def test_scale():
    f = FIELD_TINY
    assert poly_scale(f, 2, [1, 2, 3]) == [2, 4, 6]


def test_interpolate_through_points(rng):
    f = FIELD_SMALL
    xs = list(range(8))
    ys = f.rand_vector(8, rng)
    coeffs = lagrange_interpolate(f, xs, ys)
    assert len(coeffs) <= 8
    for x, y in zip(xs, ys):
        assert poly_eval(f, coeffs, x) == y


def test_interpolate_recovers_polynomial(rng):
    f = FIELD_SMALL
    coeffs = poly_normalize(f.rand_vector(5, rng))
    xs = list(range(len(coeffs)))
    ys = [poly_eval(f, coeffs, x) for x in xs]
    assert poly_normalize(lagrange_interpolate(f, xs, ys)) == coeffs


def test_interpolate_rejects_duplicate_points():
    with pytest.raises(FieldError):
        lagrange_interpolate(FIELD_TINY, [1, 1], [2, 3])


def test_interpolate_rejects_mismatched_lengths():
    with pytest.raises(FieldError):
        lagrange_interpolate(FIELD_TINY, [1, 2], [3])


def test_lagrange_coefficients_match_interpolation(rng):
    """The Appendix I inner-product trick equals interpolate-then-evaluate."""
    f = FIELD87
    xs = list(range(9))
    ys = f.rand_vector(9, rng)
    r = f.rand(rng)
    coeffs = lagrange_interpolate(f, xs, ys)
    weights = lagrange_coefficients_at(f, xs, r)
    assert f.inner_product(weights, ys) == poly_eval(f, coeffs, r)


def test_lagrange_coefficients_at_domain_point():
    # At a domain point the weights collapse to an indicator vector.
    f = FIELD_SMALL
    xs = [2, 5, 11]
    weights = lagrange_coefficients_at(f, xs, 5)
    assert weights == [0, 1, 0]


def test_lagrange_coefficients_reject_duplicates():
    with pytest.raises(FieldError):
        lagrange_coefficients_at(FIELD_TINY, [3, 3], 1)


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=FIELD_SMALL.modulus - 1),
    min_size=0,
    max_size=8,
)


@given(a=coeff_lists, b=coeff_lists, x=st.integers(0, FIELD_SMALL.modulus - 1))
@settings(max_examples=80, deadline=None)
def test_eval_is_ring_homomorphism(a, b, x):
    f = FIELD_SMALL
    assert poly_eval(f, poly_add(f, a, b), x) == f.add(
        poly_eval(f, a, x), poly_eval(f, b, x)
    )
    assert poly_eval(f, poly_mul(f, a, b), x) == f.mul(
        poly_eval(f, a, x), poly_eval(f, b, x)
    )


@given(a=coeff_lists, b=coeff_lists)
@settings(max_examples=60, deadline=None)
def test_mul_commutes(a, b):
    f = FIELD_SMALL
    assert poly_mul(f, a, b) == poly_mul(f, b, a)


@given(ys=st.lists(st.integers(0, 96), min_size=1, max_size=10, unique=False))
@settings(max_examples=60, deadline=None)
def test_interpolation_degree_bound(ys):
    f = FIELD_TINY
    xs = list(range(len(ys)))
    coeffs = lagrange_interpolate(f, xs, ys)
    assert poly_degree(coeffs) < len(ys)
