"""Unit tests for scalar/vector prime-field arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import (
    FIELD64,
    FIELD87,
    FIELD265,
    FIELD_SMALL,
    FIELD_TINY,
    GF2,
    FieldError,
    PrimeField,
)

ALL_FIELDS = [FIELD87, FIELD265, FIELD64, FIELD_SMALL, FIELD_TINY, GF2]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def test_modulus_too_small_rejected():
    with pytest.raises(FieldError):
        PrimeField(1)


def test_two_adicity_requires_generator():
    with pytest.raises(FieldError):
        PrimeField(97, two_adicity=5)


def test_two_adicity_must_divide_group_order():
    with pytest.raises(FieldError):
        PrimeField(97, two_adicity=6, generator=5)


def test_shipped_moduli_have_declared_two_adicity():
    for field in (FIELD87, FIELD265, FIELD64, FIELD_SMALL, FIELD_TINY):
        assert (field.modulus - 1) % (1 << field.two_adicity) == 0


def test_shipped_moduli_are_prime():
    # Fermat tests with several bases; real generation used Miller-Rabin.
    for field in ALL_FIELDS:
        for base in (2, 3, 5, 7, 11):
            if base % field.modulus == 0:
                continue
            assert pow(base, field.modulus - 1, field.modulus) == 1


def test_field_bit_lengths_match_paper():
    assert FIELD87.bits == 87
    assert FIELD265.bits == 265


def test_equality_and_hash():
    clone = PrimeField(FIELD_TINY.modulus, two_adicity=5, generator=5)
    assert clone == FIELD_TINY
    assert hash(clone) == hash(FIELD_TINY)
    assert FIELD_TINY != FIELD_SMALL
    assert FIELD_TINY != "not a field"


# ----------------------------------------------------------------------
# Scalar ops
# ----------------------------------------------------------------------


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
def test_add_sub_inverse_each_other(field, rng):
    for _ in range(50):
        a, b = field.rand(rng), field.rand(rng)
        assert field.sub(field.add(a, b), b) == a


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
def test_mul_div_inverse_each_other(field, rng):
    for _ in range(50):
        a = field.rand(rng)
        b = field.rand_nonzero(rng)
        assert field.div(field.mul(a, b), b) == a


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
def test_inv_of_zero_raises(field):
    with pytest.raises(FieldError):
        field.inv(0)


def test_neg_and_reduce():
    f = FIELD_TINY
    assert f.neg(1) == 96
    assert f.neg(0) == 0
    assert f.reduce(97 * 5 + 3) == 3
    assert f.reduce(-1) == 96


def test_pow_matches_builtin():
    f = FIELD_SMALL
    assert f.pow(7, 1000) == pow(7, 1000, f.modulus)


def test_signed_embedding_roundtrip():
    f = FIELD_TINY
    for v in range(-48, 49):
        assert f.to_signed(f.from_signed(v)) == v


def test_signed_embedding_boundary():
    f = FIELD_TINY  # p = 97, p // 2 = 48
    assert f.to_signed(48) == 48
    assert f.to_signed(49) == -48


# ----------------------------------------------------------------------
# Vector ops
# ----------------------------------------------------------------------


def test_vec_add_sub_roundtrip(rng):
    f = FIELD87
    xs = f.rand_vector(20, rng)
    ys = f.rand_vector(20, rng)
    assert f.vec_sub(f.vec_add(xs, ys), ys) == xs


def test_vec_length_mismatch_raises():
    with pytest.raises(FieldError):
        FIELD_TINY.vec_add([1, 2], [1])
    with pytest.raises(FieldError):
        FIELD_TINY.vec_sub([1], [1, 2])
    with pytest.raises(FieldError):
        FIELD_TINY.inner_product([1], [1, 2])


def test_vec_scale_distributes(rng):
    f = FIELD_SMALL
    xs = f.rand_vector(10, rng)
    ys = f.rand_vector(10, rng)
    c = f.rand(rng)
    lhs = f.vec_scale(c, f.vec_add(xs, ys))
    rhs = f.vec_add(f.vec_scale(c, xs), f.vec_scale(c, ys))
    assert lhs == rhs


def test_vec_sum_matches_repeated_add(rng):
    f = FIELD_SMALL
    vecs = [f.rand_vector(5, rng) for _ in range(7)]
    acc = vecs[0]
    for v in vecs[1:]:
        acc = f.vec_add(acc, v)
    assert f.vec_sum(vecs) == acc


def test_vec_sum_empty_raises():
    with pytest.raises(FieldError):
        FIELD_TINY.vec_sum([])


def test_inner_product_small_case():
    f = FIELD_TINY
    assert f.inner_product([1, 2, 3], [4, 5, 6]) == (4 + 10 + 18) % 97


def test_gf2_addition_is_xor():
    assert GF2.add(1, 1) == 0
    assert GF2.add(1, 0) == 1
    assert GF2.vec_add([1, 0, 1], [1, 1, 0]) == [0, 1, 1]


# ----------------------------------------------------------------------
# Randomness
# ----------------------------------------------------------------------


def test_rand_vector_in_range(rng):
    f = FIELD_TINY
    vec = f.rand_vector(1000, rng)
    assert all(0 <= v < f.modulus for v in vec)
    # All residues should appear over 1000 draws from F_97 w.h.p.
    assert len(set(vec)) > 80


def test_rand_nonzero_never_zero(rng):
    assert all(GF2.rand_nonzero(rng) == 1 for _ in range(10))
    assert all(FIELD_TINY.rand_nonzero(rng) != 0 for _ in range(200))


# ----------------------------------------------------------------------
# Roots of unity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("field", [FIELD87, FIELD265, FIELD64, FIELD_SMALL])
def test_root_of_unity_has_exact_order(field):
    for log_order in (1, 2, 4, field.two_adicity and min(8, field.two_adicity)):
        order = 1 << log_order
        w = field.root_of_unity(order)
        assert pow(w, order, field.modulus) == 1
        assert pow(w, order // 2, field.modulus) != 1


def test_root_of_unity_order_one():
    assert FIELD87.root_of_unity(1) == 1


def test_root_of_unity_rejects_non_power_of_two():
    with pytest.raises(FieldError):
        FIELD87.root_of_unity(3)


def test_root_of_unity_rejects_excessive_order():
    with pytest.raises(FieldError):
        FIELD_SMALL.root_of_unity(1 << 10)
    with pytest.raises(FieldError):
        GF2.root_of_unity(2)


def test_root_of_unity_cached():
    w1 = FIELD87.root_of_unity(16)
    w2 = FIELD87.root_of_unity(16)
    assert w1 == w2


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
def test_element_encoding_roundtrip(field, rng):
    for _ in range(20):
        a = field.rand(rng)
        assert field.decode_element(field.encode_element(a)) == a


def test_encoded_size():
    assert FIELD87.encoded_size == 11
    assert FIELD265.encoded_size == 34
    assert GF2.encoded_size == 1


def test_vector_encoding_roundtrip(rng):
    f = FIELD87
    xs = f.rand_vector(17, rng)
    assert f.decode_vector(f.encode_vector(xs)) == xs


def test_decode_element_rejects_wrong_size():
    with pytest.raises(FieldError):
        FIELD87.decode_element(b"\x00")


def test_decode_element_rejects_out_of_range():
    data = (FIELD_TINY.modulus).to_bytes(FIELD_TINY.encoded_size, "big")
    with pytest.raises(FieldError):
        FIELD_TINY.decode_element(data)


def test_decode_vector_rejects_ragged_input():
    with pytest.raises(FieldError):
        FIELD87.decode_vector(b"\x00" * 13)


# ----------------------------------------------------------------------
# Hash-to-field
# ----------------------------------------------------------------------


def test_hash_to_element_deterministic():
    a = FIELD87.hash_to_element(b"transcript", b"part2")
    b = FIELD87.hash_to_element(b"transcript", b"part2")
    assert a == b
    assert 0 <= a < FIELD87.modulus


def test_hash_to_element_domain_separated():
    # Length-prefixing means ("ab", "c") != ("a", "bc").
    assert FIELD87.hash_to_element(b"ab", b"c") != FIELD87.hash_to_element(
        b"a", b"bc"
    )


def test_contains():
    assert 0 in FIELD_TINY
    assert 96 in FIELD_TINY
    assert 97 not in FIELD_TINY
    assert "x" not in FIELD_TINY


# ----------------------------------------------------------------------
# Property-based: field axioms
# ----------------------------------------------------------------------

small_elements = st.integers(min_value=0, max_value=FIELD_SMALL.modulus - 1)


@given(a=small_elements, b=small_elements, c=small_elements)
@settings(max_examples=100, deadline=None)
def test_field_axioms(a, b, c):
    f = FIELD_SMALL
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(a, 0) == a
    assert f.mul(a, 1) == a


@given(a=small_elements)
@settings(max_examples=100, deadline=None)
def test_nonzero_elements_invertible(a):
    f = FIELD_SMALL
    if a != 0:
        assert f.mul(a, f.inv(a)) == 1
