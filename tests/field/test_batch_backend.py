"""Randomized backend-equivalence tests for the batch field backend.

The numpy-CRT-limb backend, the pure-Python fallback, and the scalar
``PrimeField`` ops must agree *exactly* — bit for bit — on every
operation, over every shipped modulus, including edge values (0, 1,
p-1) and non-power-of-two lengths.  These are property-style tests:
each run draws fresh random vectors from a seeded rng.
"""

import os
import random

import pytest

from repro.field import (
    FIELD64,
    FIELD87,
    FIELD265,
    FIELD_SMALL,
    FIELD_TINY,
    GF2,
    BatchVector,
    accumulate_rows,
    butterfly,
    dot_rows,
    dot_rows_multi,
    elementwise_mul_rows,
    intt,
    intt_batch,
    ntt,
    ntt_batch,
    numpy_available,
    poly_eval,
    poly_eval_batch,
    use_numpy,
)
from repro.field.ntt import EvaluationDomain

ALL_FIELDS = [FIELD87, FIELD265, FIELD64, FIELD_SMALL, FIELD_TINY, GF2]
NTT_FIELDS = [FIELD87, FIELD265, FIELD64, FIELD_SMALL, FIELD_TINY]

#: both backends — or just the pure one when numpy is absent / forced off
BACKENDS = [True] + ([False] if use_numpy(None) else [])


def backend_id(force_pure):
    return "pure" if force_pure else "numpy"


@pytest.fixture
def rng():
    return random.Random(0xBA7C4)


def random_vector(field, n, rng):
    """Random canonical vector with the edge values planted."""
    vec = [rng.randrange(field.modulus) for _ in range(n)]
    for i, edge in enumerate([0, 1, field.modulus - 1]):
        if i < n:
            vec[rng.randrange(n)] = edge
    return vec


# Non-power-of-two lengths are deliberate: nothing in the elementwise
# or dot paths may assume padding.
LENGTHS = [1, 3, 31, 100]


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_elementwise_matches_scalar(field, force_pure, rng):
    p = field.modulus
    for n in LENGTHS:
        a = random_vector(field, n, rng)
        b = random_vector(field, n, rng)
        va = BatchVector.from_ints(field, a, force_pure=force_pure)
        vb = BatchVector.from_ints(field, b, force_pure=force_pure)
        assert (va + vb).to_ints() == field.vec_add(a, b)
        assert (va - vb).to_ints() == field.vec_sub(a, b)
        assert (-va).to_ints() == field.vec_neg(a)
        assert (va * vb).to_ints() == [
            field.mul(x, y) for x, y in zip(a, b)
        ]
        c = rng.randrange(p)
        assert va.scale(c).to_ints() == field.vec_scale(c, a)


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_dot_matches_scalar(field, force_pure, rng):
    for n in LENGTHS:
        a = random_vector(field, n, rng)
        b = random_vector(field, n, rng)
        va = BatchVector.from_ints(field, a, force_pure=force_pure)
        assert va.dot(b) == field.inner_product(a, b)


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_dot_rows_multi_matches_scalar(field, force_pure, rng):
    n_rows, width = 9, 41
    rows = [random_vector(field, width, rng) for _ in range(n_rows)]
    weights = [random_vector(field, width, rng) for _ in range(3)]
    expected = [
        [field.inner_product(w, row) for row in rows] for w in weights
    ]
    got = dot_rows_multi(field, weights, rows, force_pure=force_pure)
    assert got == expected
    assert dot_rows(field, weights[0], rows, force_pure=force_pure) == \
        expected[0]


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_rowwise_helpers_match_scalar(field, force_pure, rng):
    p = field.modulus
    rows_a = [random_vector(field, 17, rng) for _ in range(6)]
    rows_b = [random_vector(field, 17, rng) for _ in range(6)]
    assert elementwise_mul_rows(field, rows_a, rows_b, force_pure) == [
        [x * y % p for x, y in zip(ra, rb)]
        for ra, rb in zip(rows_a, rows_b)
    ]
    assert accumulate_rows(field, rows_a, force_pure) == \
        field.vec_sum(rows_a)


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_non_canonical_inputs_are_canonicalized(field, force_pure):
    p = field.modulus
    weird = [-1, -p, p, p + 5, 2**300 + 17, 0, -(2**90), 7]
    expected = [v % p for v in weird]
    vec = BatchVector.from_ints(field, weird, force_pure=force_pure)
    assert vec.to_ints() == expected
    assert dot_rows(field, [1] * len(weird), [weird],
                    force_pure=force_pure) == [sum(expected) % p]


@pytest.mark.parametrize("field", NTT_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_ntt_roundtrip_matches_scalar(field, force_pure, rng):
    for size in (2, 8, 32):
        if size > (1 << field.two_adicity):
            continue
        root = field.root_of_unity(size)
        rows = [random_vector(field, size, rng) for _ in range(5)]
        expected = [ntt(field, row, root) for row in rows]
        got = ntt_batch(field, rows, root, force_pure=force_pure)
        assert got == expected
        back = intt_batch(field, got, root, force_pure=force_pure)
        assert back == rows
        assert back == [intt(field, e, root) for e in expected]


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_evaluation_domain_batch_entry_points(force_pure, rng):
    field = FIELD87
    domain = EvaluationDomain(field, 16)
    coeff_rows = [random_vector(field, rng.randrange(1, 17), rng)
                  for _ in range(7)]
    expected = [domain.evaluate(c) for c in coeff_rows]
    got = domain.evaluate_batch(coeff_rows, force_pure=force_pure)
    assert got == expected
    assert domain.interpolate_batch(got, force_pure=force_pure) == [
        domain.interpolate(e) for e in expected
    ]


@pytest.mark.parametrize("field", NTT_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_butterfly_matches_scalar(field, force_pure, rng):
    p = field.modulus
    n = 13
    lo = random_vector(field, n, rng)
    hi = random_vector(field, n, rng)
    w = rng.randrange(1, p)
    vlo = BatchVector.from_ints(field, lo, force_pure=force_pure)
    vhi = BatchVector.from_ints(field, hi, force_pure=force_pure)
    out_lo, out_hi = butterfly(vlo, vhi, w)
    assert out_lo.to_ints() == [(x + w * y) % p for x, y in zip(lo, hi)]
    assert out_hi.to_ints() == [(x - w * y) % p for x, y in zip(lo, hi)]


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_poly_eval_batch_matches_scalar(field, force_pure, rng):
    coeff_rows = [
        random_vector(field, rng.randrange(1, 12), rng) for _ in range(8)
    ]
    x = rng.randrange(field.modulus)
    assert poly_eval_batch(field, coeff_rows, x, force_pure=force_pure) == [
        poly_eval(field, c, x) for c in coeff_rows
    ]


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_long_dot_exercises_chunking(force_pure, rng):
    """Dots longer than the lazy-accumulation window must still be exact."""
    field = FIELD64  # smallest max_dot_terms of the shipped fields
    n = 70_001      # odd, and far beyond one chunk
    a = random_vector(field, n, rng)
    b = random_vector(field, n, rng)
    va = BatchVector.from_ints(field, a, force_pure=force_pure)
    assert va.dot(b) == field.inner_product(a, b)


def test_two_backends_agree_when_both_available(rng):
    if not use_numpy(None):
        pytest.skip("numpy backend not active")
    for field in ALL_FIELDS:
        rows = [random_vector(field, 37, rng) for _ in range(5)]
        w = random_vector(field, 37, rng)
        assert dot_rows(field, w, rows, force_pure=False) == \
            dot_rows(field, w, rows, force_pure=True)


def test_force_pure_env_var(rng):
    """REPRO_FORCE_PURE=1 must route auto-selection to the pure backend."""
    field = FIELD87
    vec = [1, 2, 3]
    old = os.environ.get("REPRO_FORCE_PURE")
    os.environ["REPRO_FORCE_PURE"] = "1"
    try:
        assert not use_numpy(None)
        bv = BatchVector.from_ints(field, vec)
        assert bv.backend == "pure"
        assert bv.to_ints() == vec
    finally:
        if old is None:
            del os.environ["REPRO_FORCE_PURE"]
        else:
            os.environ["REPRO_FORCE_PURE"] = old


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_backend_reports_itself():
    if os.environ.get("REPRO_FORCE_PURE") == "1":
        pytest.skip("pure backend forced via environment")
    bv = BatchVector.from_ints(FIELD87, [4, 5])
    assert bv.backend == "numpy"


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_signed_delta_batch_matches_scalar(field, force_pure, rng):
    """The DP noising embedding: (pos - neg) mod p over int64 inputs,
    bit-exact with scalar field arithmetic on both backends, including
    values at and beyond the modulus for small fields."""
    from repro.field.batch import signed_delta_batch

    p = field.modulus
    for n in LENGTHS:
        positives = [rng.randrange(1 << 62) for _ in range(n)]
        negatives = [rng.randrange(1 << 62) for _ in range(n)]
        positives[0] = 0
        negatives[0] = min(n, p - 1)
        batch = signed_delta_batch(
            field, positives, negatives, force_pure=force_pure
        )
        assert batch.shape == (n,)
        assert batch.backend == ("pure" if force_pure else "numpy")
        assert batch.to_ints() == [
            (a - b) % p for a, b in zip(positives, negatives)
        ]


def test_ntt_exact_fallback_on_headroom_starved_modulus():
    """The lazy-butterfly guard must fall back to the exact per-stage
    path — and still match the scalar NTT bit for bit.

    Every shipped modulus leaves lazy headroom, so this builds a
    24-bit NTT-friendly prime (one 24-bit limb, no slack: the guard
    ``(4 + 3·stages)·p <= base^L`` fails) to exercise the fallback.
    """
    if not use_numpy(None):
        pytest.skip("exercises the numpy NTT kernel")
    from repro.field import PrimeField
    from repro.field.batch import LIMB_BITS

    field = PrimeField(
        modulus=33 * (1 << 18) + 1, two_adicity=18, generator=10,
        name="F8650753",
    )
    size = 16
    n_stages = size.bit_length() - 1
    # The point of this field: the lazy guard is off at this size.
    assert (4 + 3 * n_stages) * field.modulus > (1 << LIMB_BITS)
    rng = random.Random(0xFA11)
    rows = [
        [field.rand(rng) for _ in range(size)] for _ in range(5)
    ] + [[0] * size, [field.modulus - 1] * size]
    root = field.root_of_unity(size)
    batched = BatchVector.from_ints(field, rows, force_pure=False)
    assert batched.ntt(root).to_ints() == [
        ntt(field, row, root) for row in rows
    ]
    assert batched.intt(root).to_ints() == [
        intt(field, row, root) for row in rows
    ]
