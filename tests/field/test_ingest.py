"""Randomized equivalence tests for the zero-copy ingest pipeline.

The fast path — wire bytes / PRG streams straight into limb planes
(``decode_bytes_batch`` / ``expand_seed_batch`` /
``share_vectors_batch``) — must be *bit-exact* with the scalar path
(``field.decode_vector`` / ``expand_seed`` /
``ClientPacket.share_vector``) across every shipped modulus, on both
backends, for SEED and EXPLICIT packets alike.  Adversarial bodies
(out-of-range elements, truncated/padded bodies) are planted at random
batch positions and must be rejected with the position identified.
"""

import random

import pytest

from repro.field import (
    FIELD64,
    FIELD87,
    FIELD265,
    FIELD_SMALL,
    FIELD_TINY,
    GF2,
    BatchVector,
    FieldError,
    assemble_rows,
    decode_bytes_batch,
    dot_batch_multi,
    dot_rows_multi,
    encode_bytes_batch,
    poly_mul,
    poly_mul_ntt,
    use_numpy,
)
from repro.protocol import PrioDeployment, share_vectors_batch
from repro.protocol.wire import (
    MAX_N_ELEMENTS,
    ClientPacket,
    PacketKind,
    WireError,
    new_submission_id,
)
from repro.sharing import expand_seed, expand_seed_batch, new_seed
from repro.sharing.prg import SEED_SIZE

ALL_FIELDS = [FIELD87, FIELD265, FIELD64, FIELD_SMALL, FIELD_TINY, GF2]

#: both backends — or just the pure one when numpy is absent / forced off
BACKENDS = [True] + ([None] if use_numpy(None) else [])


def backend_id(force_pure):
    return "pure" if force_pure else "numpy"


@pytest.fixture
def rng():
    return random.Random(0x1A63E57)


def random_rows(field, n_rows, width, rng):
    rows = [
        [rng.randrange(field.modulus) for _ in range(width)]
        for _ in range(n_rows)
    ]
    for edge in (0, field.modulus - 1):
        if n_rows and width:
            rows[rng.randrange(n_rows)][rng.randrange(width)] = edge
    return rows


# ----------------------------------------------------------------------
# decode_bytes_batch / encode_bytes_batch
# ----------------------------------------------------------------------


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_decode_bytes_matches_scalar(field, force_pure, rng):
    for n_rows, width in ((1, 1), (4, 19), (7, 32)):
        rows = random_rows(field, n_rows, width, rng)
        bodies = [field.encode_vector(row) for row in rows]
        batch = decode_bytes_batch(field, bodies, force_pure)
        assert batch.to_ints() == [field.decode_vector(b) for b in bodies]


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_encode_bytes_matches_scalar(field, force_pure, rng):
    rows = random_rows(field, 5, 23, rng)
    assert encode_bytes_batch(field, rows, force_pure) == [
        field.encode_vector(row) for row in rows
    ]
    # Round-trip through the plane representation.
    batch = decode_bytes_batch(
        field, [field.encode_vector(r) for r in rows], force_pure
    )
    assert encode_bytes_batch(field, batch) == [
        field.encode_vector(row) for row in rows
    ]


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_decode_bytes_rejects_out_of_range(field, force_pure, rng):
    """An out-of-range element at a random batch position is caught."""
    size = field.encoded_size
    if field.modulus == (1 << (8 * size)):
        pytest.skip("every encoding is in range for this field")
    rows = random_rows(field, 6, 11, rng)
    bodies = [bytearray(field.encode_vector(row)) for row in rows]
    r, c = rng.randrange(6), rng.randrange(11)
    # Plant the modulus itself: the smallest out-of-range encoding.
    bodies[r][c * size : (c + 1) * size] = field.modulus.to_bytes(size, "big")
    bodies = [bytes(b) for b in bodies]
    with pytest.raises(FieldError, match=f"row {r}, element {c}"):
        decode_bytes_batch(field, bodies, force_pure)
    # The unchecked variant canonicalizes instead (p -> 0).
    relaxed = decode_bytes_batch(field, bodies, force_pure, check=False)
    expected = [list(row) for row in rows]
    expected[r][c] = 0
    assert relaxed.to_ints() == expected


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_decode_bytes_rejects_ragged_and_partial(force_pure):
    f = FIELD87
    good = f.encode_vector([1, 2, 3])
    with pytest.raises(FieldError):
        decode_bytes_batch(f, [good, good[:-1]], force_pure)
    with pytest.raises(FieldError):
        decode_bytes_batch(f, [good[:-1]], force_pure)


# ----------------------------------------------------------------------
# expand_seed_batch
# ----------------------------------------------------------------------


@pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_expand_seed_batch_matches_scalar(field, force_pure, rng):
    seeds = [new_seed(rng) for _ in range(7)]
    for length in (0, 1, 3, 150):
        batch = expand_seed_batch(field, seeds, length, force_pure)
        assert batch.shape == (7, length)
        assert batch.to_ints() == [
            expand_seed(field, seed, length) for seed in seeds
        ]


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_expand_seed_batch_empty(force_pure):
    batch = expand_seed_batch(FIELD87, [], 9, force_pure)
    assert batch.shape == (0, 9)
    assert batch.to_ints() == []


def test_expand_seed_batch_rejects_bad_seed():
    with pytest.raises(FieldError):
        expand_seed_batch(FIELD87, [b"short"], 4)


# ----------------------------------------------------------------------
# share_vectors_batch (SEED + EXPLICIT dispatch)
# ----------------------------------------------------------------------


def _random_packets(field, n_packets, width, rng, kinds=None):
    packets = []
    for i in range(n_packets):
        kind = (
            kinds[i]
            if kinds is not None
            else rng.choice([PacketKind.SEED, PacketKind.EXPLICIT])
        )
        if kind is PacketKind.SEED:
            body = new_seed(rng)
        else:
            body = field.encode_vector(
                [rng.randrange(field.modulus) for _ in range(width)]
            )
        packets.append(
            ClientPacket(
                submission_id=new_submission_id(rng),
                server_index=0,
                kind=kind,
                n_elements=width,
                body=body,
            )
        )
    return packets


@pytest.mark.parametrize(
    "field", [FIELD87, FIELD265, FIELD_SMALL, GF2], ids=lambda f: f.name
)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_share_vectors_batch_matches_scalar(field, force_pure, rng):
    for kinds in (
        None,  # random mix at random positions
        [PacketKind.SEED] * 5,
        [PacketKind.EXPLICIT] * 5,
    ):
        packets = _random_packets(field, 5, 21, rng, kinds)
        batch = share_vectors_batch(field, packets, force_pure)
        assert batch.to_ints() == [
            packet.share_vector(field) for packet in packets
        ]


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_share_vectors_batch_rejects_mixed_lengths(force_pure, rng):
    packets = _random_packets(FIELD87, 3, 8, rng)
    bad = _random_packets(FIELD87, 1, 9, rng)
    with pytest.raises(WireError):
        share_vectors_batch(FIELD87, packets + bad, force_pure)


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_share_vectors_batch_rejects_adversarial_bodies(force_pure, rng):
    """Truncated or out-of-range bodies at a random batch position."""
    f = FIELD87
    packets = _random_packets(f, 6, 10, rng)
    pos = rng.randrange(6)
    # Truncated body (wrong size for its kind).
    mangled = list(packets)
    victim = mangled[pos]
    mangled[pos] = ClientPacket(
        submission_id=victim.submission_id,
        server_index=0,
        kind=victim.kind,
        n_elements=victim.n_elements,
        body=victim.body[:-1],
    )
    with pytest.raises(WireError):
        share_vectors_batch(f, mangled, force_pure)
    # Out-of-range explicit element.
    mangled = list(packets)
    body = bytearray(f.encode_vector([0] * 10))
    body[: f.encoded_size] = f.modulus.to_bytes(f.encoded_size, "big")
    mangled[pos] = ClientPacket(
        submission_id=victim.submission_id,
        server_index=0,
        kind=PacketKind.EXPLICIT,
        n_elements=10,
        body=bytes(body),
    )
    # The reported position is in the caller's packet order, even
    # though EXPLICIT bodies decode as a subset of a mixed batch.
    with pytest.raises(FieldError, match=f"row {pos}, element 0"):
        share_vectors_batch(f, mangled, force_pure)


def test_share_vectors_batch_needs_packets():
    with pytest.raises(WireError):
        share_vectors_batch(FIELD87, [])


# ----------------------------------------------------------------------
# Wire-header hardening (satellite: bound n_elements, distinct SEED
# body errors)
# ----------------------------------------------------------------------


def test_decode_bounds_n_elements():
    # Encode refuses to frame an out-of-range n_elements (PR-6
    # hardening), so splice the oversized value into honest bytes:
    # the decoder must still bound what a hostile sender hand-crafts.
    packet = ClientPacket(
        submission_id=b"\x07" * 16,
        server_index=0,
        kind=PacketKind.SEED,
        n_elements=4,
        body=b"\x00" * SEED_SIZE,
    )
    data = bytearray(packet.encode())
    data[22:26] = (MAX_N_ELEMENTS + 1).to_bytes(4, "big")
    with pytest.raises(WireError, match="exceeds the maximum"):
        ClientPacket.decode(bytes(data), FIELD87)


def test_decode_distinguishes_seed_body_errors():
    short = ClientPacket(
        submission_id=b"\x07" * 16,
        server_index=0,
        kind=PacketKind.SEED,
        n_elements=4,
        body=b"\x00" * (SEED_SIZE - 1),
    )
    with pytest.raises(WireError, match="too short"):
        ClientPacket.decode(short.encode(), FIELD87)
    trailing = ClientPacket(
        submission_id=b"\x07" * 16,
        server_index=0,
        kind=PacketKind.SEED,
        n_elements=4,
        body=b"\x00" * (SEED_SIZE + 3),
    )
    with pytest.raises(WireError, match="trailing"):
        ClientPacket.decode(trailing.encode(), FIELD87)


# ----------------------------------------------------------------------
# assemble_rows / dot_batch_multi (the plane-resident verify path)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("field", [FIELD87, FIELD_SMALL], ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_assemble_rows_mixes_sources(field, force_pure, rng):
    rows = random_rows(field, 6, 13, rng)
    batch = BatchVector.from_ints(field, rows[:3], force_pure)
    sources = [(batch, 1), rows[3], (batch, 0), rows[4], (batch, 2), rows[5]]
    assembled = assemble_rows(field, sources, force_pure)
    assert assembled.to_ints() == [
        rows[1], rows[3], rows[0], rows[4], rows[2], rows[5]
    ]


@pytest.mark.parametrize("field", [FIELD87, FIELD265], ids=lambda f: f.name)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_dot_batch_multi_matches_dot_rows_multi(field, force_pure, rng):
    rows = random_rows(field, 5, 40, rng)
    weights = random_rows(field, 3, 40, rng)
    batch = BatchVector.from_ints(field, rows, force_pure)
    assert dot_batch_multi(field, weights, batch) == dot_rows_multi(
        field, weights, rows, force_pure
    )


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_batchvector_row_column_helpers(force_pure, rng):
    f = FIELD87
    rows = random_rows(f, 4, 9, rng)
    batch = BatchVector.from_ints(f, rows, force_pure)
    assert batch.row_ints(2) == rows[2]
    assert batch.column_ints(5) == [row[5] for row in rows]
    assert batch.take_rows([3, 1]).to_ints() == [rows[3], rows[1]]
    assert batch.slice_columns(4).to_ints() == [row[:4] for row in rows]
    sub = [9, 8, 7, 6, 5, 4, 3, 2, 1]
    batch.set_row_ints(0, sub)
    assert batch.row_ints(0) == sub


# ----------------------------------------------------------------------
# poly_mul_ntt batch path
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "field", [FIELD87, FIELD64, FIELD_SMALL], ids=lambda f: f.name
)
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_poly_mul_ntt_backends_agree(field, force_pure, rng):
    for deg_a, deg_b in ((0, 0), (3, 5), (17, 30)):
        a = [rng.randrange(field.modulus) for _ in range(deg_a + 1)]
        b = [rng.randrange(field.modulus) for _ in range(deg_b + 1)]
        assert poly_mul_ntt(field, a, b, force_pure) == poly_mul(field, a, b)


# ----------------------------------------------------------------------
# End-to-end: the plane pipeline decides exactly like the scalar one
# ----------------------------------------------------------------------


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("encrypt", [False, True], ids=["plain", "sealed"])
def test_pipeline_batched_ingest_equivalence(force_pure, encrypt):
    """Batched zero-copy delivery accepts/rejects exactly like the
    one-at-a-time path, including a corrupted submission planted at a
    random batch position, and produces the same aggregate."""
    from repro.afe import IntegerSumAfe

    rng = random.Random(0xF00D)
    afe = IntegerSumAfe(FIELD87, 4)
    values = [rng.randrange(16) for _ in range(9)]
    bad_pos = rng.randrange(len(values))

    def run(batch_size):
        deployment = PrioDeployment.create(
            afe, 3, seed=b"ingest-eq", batch_size=batch_size,
            force_pure_backend=force_pure, encrypt=encrypt,
            rng=random.Random(31),
        )
        def mutate(index, submission):
            if index != bad_pos or encrypt:
                return
            packet = submission.packets[-1]
            vec = FIELD87.decode_vector(packet.body)
            vec[0] = (vec[0] + 3) % FIELD87.modulus
            submission.packets[-1] = ClientPacket(
                submission_id=packet.submission_id,
                server_index=packet.server_index,
                kind=PacketKind.EXPLICIT,
                n_elements=packet.n_elements,
                body=FIELD87.encode_vector(vec),
            )
        results = deployment.submit_batch(values, mutate=mutate)
        return results, deployment.publish()

    batched_results, batched_total = run(batch_size=len(values))
    scalar_results, scalar_total = run(batch_size=1)
    assert batched_results == scalar_results
    assert batched_total == scalar_total
    if not encrypt:
        assert batched_results.count(False) == 1
        assert batched_results[bad_pos] is False


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_out_of_range_explicit_body_rejects_alone(force_pure):
    """An out-of-range wire element rejects its own submission only —
    the rest of the batch verifies and aggregates normally."""
    from repro.afe import IntegerSumAfe

    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(
        afe, 2, seed=b"oor", batch_size=4,
        force_pure_backend=force_pure, rng=random.Random(77),
    )

    def mutate(index, submission):
        if index != 2:
            return
        packet = submission.packets[-1]
        body = bytearray(packet.body)
        size = FIELD87.encoded_size
        body[:size] = FIELD87.modulus.to_bytes(size, "big")
        submission.packets[-1] = ClientPacket(
            submission_id=packet.submission_id,
            server_index=packet.server_index,
            kind=PacketKind.EXPLICIT,
            n_elements=packet.n_elements,
            body=bytes(body),
        )

    results = deployment.submit_batch([1, 2, 3, 4], mutate=mutate)
    assert results == [True, True, False, True]
    assert deployment.publish() == 1 + 2 + 4
