"""Tests for the NTT and evaluation domains (the SNIP's fast-path math)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import (
    FIELD64,
    FIELD87,
    FIELD265,
    FIELD_SMALL,
    EvaluationDomain,
    FieldError,
    batch_inverse,
    intt,
    next_power_of_two,
    ntt,
    poly_eval,
    poly_mul,
    poly_mul_ntt,
)


@pytest.fixture
def rng():
    return random.Random(99)


def test_next_power_of_two():
    assert next_power_of_two(0) == 1
    assert next_power_of_two(1) == 1
    assert next_power_of_two(2) == 2
    assert next_power_of_two(3) == 4
    assert next_power_of_two(1025) == 2048


@pytest.mark.parametrize("size", [1, 2, 4, 8, 64, 256])
def test_ntt_intt_roundtrip(size, rng):
    f = FIELD64
    root = f.root_of_unity(size)
    values = f.rand_vector(size, rng)
    assert intt(f, ntt(f, values, root), root) == values


def test_ntt_rejects_non_power_of_two():
    f = FIELD64
    with pytest.raises(FieldError):
        ntt(f, [1, 2, 3], f.root_of_unity(4))


def test_ntt_matches_direct_evaluation(rng):
    """Forward NTT must agree with naive per-point Horner evaluation."""
    f = FIELD_SMALL
    size = 16
    root = f.root_of_unity(size)
    coeffs = f.rand_vector(size, rng)
    evals = ntt(f, coeffs, root)
    for j in range(size):
        point = pow(root, j, f.modulus)
        assert evals[j] == poly_eval(f, coeffs, point)


@pytest.mark.parametrize("field", [FIELD87, FIELD265, FIELD64])
def test_ntt_large_fields(field, rng):
    size = 32
    root = field.root_of_unity(size)
    values = field.rand_vector(size, rng)
    assert intt(field, ntt(field, values, root), root) == values


# ----------------------------------------------------------------------
# EvaluationDomain
# ----------------------------------------------------------------------


def test_domain_points_distinct_and_cyclic():
    d = EvaluationDomain(FIELD_SMALL, 16)
    assert len(set(d.points)) == 16
    assert d.points[0] == 1
    p = FIELD_SMALL.modulus
    assert (d.points[-1] * d.root) % p == 1


def test_domain_rejects_bad_size():
    with pytest.raises(FieldError):
        EvaluationDomain(FIELD_SMALL, 12)


def test_domain_evaluate_interpolate_roundtrip(rng):
    d = EvaluationDomain(FIELD87, 64)
    coeffs = FIELD87.rand_vector(64, rng)
    assert d.interpolate(d.evaluate(coeffs)) == coeffs


def test_domain_evaluate_pads_short_polynomials(rng):
    d = EvaluationDomain(FIELD_SMALL, 8)
    coeffs = [3, 1, 4]
    evals = d.evaluate(coeffs)
    for point, value in zip(d.points, evals):
        assert value == poly_eval(FIELD_SMALL, coeffs, point)


def test_domain_evaluate_rejects_oversized_polynomial():
    d = EvaluationDomain(FIELD_SMALL, 4)
    with pytest.raises(FieldError):
        d.evaluate([1] * 5)


def test_domain_interpolate_rejects_wrong_count():
    d = EvaluationDomain(FIELD_SMALL, 4)
    with pytest.raises(FieldError):
        d.interpolate([1, 2, 3])


def test_contains_point():
    d = EvaluationDomain(FIELD_SMALL, 8)
    assert d.contains_point(1)
    assert d.contains_point(d.root)
    # 0 is never in a multiplicative subgroup.
    assert not d.contains_point(0)


def test_lagrange_coefficients_match_evaluation(rng):
    """Closed-form domain Lagrange weights: P(r) = <weights, evals>."""
    f = FIELD87
    d = EvaluationDomain(f, 32)
    coeffs = f.rand_vector(32, rng)
    evals = d.evaluate(coeffs)
    for _ in range(5):
        r = f.rand(rng)
        if d.contains_point(r):
            continue
        weights = d.lagrange_coefficients_at(r)
        assert f.inner_product(weights, evals) == poly_eval(f, coeffs, r)


def test_lagrange_coefficients_reject_domain_point():
    d = EvaluationDomain(FIELD_SMALL, 8)
    with pytest.raises(FieldError):
        d.lagrange_coefficients_at(d.points[3])


def test_double_domain_even_points_coincide():
    """The h = f*g trick: domain(2N) even points == domain(N) points.

    The SNIP sends h in point-value form over the 2N-domain; servers
    read multiplication-gate outputs from the even indices, which this
    property guarantees equal h at the N-domain points.
    """
    f = FIELD87
    small = EvaluationDomain(f, 16)
    double = EvaluationDomain(f, 32)
    assert [double.points[2 * i] for i in range(16)] == small.points


# ----------------------------------------------------------------------
# batch_inverse
# ----------------------------------------------------------------------


def test_batch_inverse_matches_scalar(rng):
    f = FIELD87
    values = [f.rand_nonzero(rng) for _ in range(33)]
    for v, inv in zip(values, batch_inverse(f, values)):
        assert f.mul(v, inv) == 1


def test_batch_inverse_empty():
    assert batch_inverse(FIELD87, []) == []


def test_batch_inverse_single():
    assert batch_inverse(FIELD_SMALL, [2]) == [FIELD_SMALL.inv(2)]


def test_batch_inverse_rejects_zero():
    with pytest.raises(FieldError):
        batch_inverse(FIELD_SMALL, [1, 0, 2])


# ----------------------------------------------------------------------
# poly_mul_ntt
# ----------------------------------------------------------------------


def test_poly_mul_ntt_matches_schoolbook(rng):
    f = FIELD87
    for _ in range(10):
        a = f.rand_vector(rng.randrange(1, 20), rng)
        b = f.rand_vector(rng.randrange(1, 20), rng)
        assert poly_mul_ntt(f, a, b) == poly_mul(f, a, b)


def test_poly_mul_ntt_empty():
    assert poly_mul_ntt(FIELD87, [], [1, 2]) == []


small = st.integers(min_value=0, max_value=FIELD_SMALL.modulus - 1)


@given(
    a=st.lists(small, min_size=1, max_size=12),
    b=st.lists(small, min_size=1, max_size=12),
)
@settings(max_examples=50, deadline=None)
def test_poly_mul_ntt_property(a, b):
    assert poly_mul_ntt(FIELD_SMALL, a, b) == poly_mul(FIELD_SMALL, a, b)
