"""End-to-end robustness (Definition 6): malicious clients cannot
corrupt the aggregate beyond choosing their own in-domain value."""

import random

import pytest

from repro.afe import FrequencyCountAfe, IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import PrioDeployment
from repro.protocol.wire import ClientPacket, PacketKind


@pytest.fixture
def rng():
    return random.Random(424243)


def corrupt_explicit_element(submission, field, index, delta):
    """Mutate one element of the explicit (last-server) packet."""
    packet = submission.packets[-1]
    vec = field.decode_vector(packet.body)
    vec[index] = (vec[index] + delta) % field.modulus
    submission.packets[-1] = ClientPacket(
        submission_id=packet.submission_id,
        server_index=packet.server_index,
        kind=PacketKind.EXPLICIT,
        n_elements=packet.n_elements,
        body=field.encode_vector(vec),
    )


def test_oversized_value_attack_rejected(rng):
    """The Section 3 attack that Prio exists to stop: submitting a huge
    value where a 0/1-style bounded value is expected."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 3, rng=rng)
    deployment.submit_many([3, 7])

    def make_huge(submission):
        # Shift the x component of the explicit share by +10^6: the
        # reconstructed value no longer matches its bit decomposition.
        corrupt_explicit_element(submission, FIELD87, 0, 1_000_000)

    assert not deployment.submit(5, mutate=make_huge)
    assert deployment.publish() == 10  # unaffected by the attack
    assert deployment.stats.n_rejected == 1


def test_bit_tamper_rejected(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    deployment.submit(2)

    def flip_bit_share(submission):
        corrupt_explicit_element(submission, FIELD87, 1, 7)

    assert not deployment.submit(3, mutate=flip_bit_share)
    assert deployment.publish() == 2


def test_proof_tamper_rejected(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    deployment.submit(1)

    def corrupt_proof(submission):
        # The proof share lives after the k encoding elements.
        corrupt_explicit_element(submission, FIELD87, afe.k + 3, 1)

    assert not deployment.submit(1, mutate=corrupt_proof)
    assert deployment.publish() == 1


def test_histogram_stuffing_rejected(rng):
    """A client may vote once: multi-hot encodings are rejected, so a
    single client shifts any count by at most 1 (the robustness bound)."""
    afe = FrequencyCountAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 3, rng=rng)
    deployment.submit_many([0, 1, 1, 2])

    def stuff_ballot(submission):
        # Try to add an extra vote for candidate 3.
        corrupt_explicit_element(submission, FIELD87, 3, 1)

    assert not deployment.submit(1, mutate=stuff_ballot)
    assert deployment.publish() == [1, 2, 1, 0]


def test_many_malicious_clients_cannot_corrupt(rng):
    """Robustness holds against an unbounded number of malicious
    clients (Section 1): every bad submission is rejected."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    honest = [rng.randrange(16) for _ in range(10)]
    deployment.submit_many(honest)

    def corrupt(submission):
        corrupt_explicit_element(
            submission, FIELD87, rng.randrange(afe.k), 1 + rng.randrange(100)
        )

    rejected = 0
    for _ in range(10):
        if not deployment.submit(rng.randrange(16), mutate=corrupt):
            rejected += 1
    assert rejected == 10
    assert deployment.publish() == sum(honest)


def test_malicious_client_can_still_lie_within_domain(rng):
    """What robustness does NOT prevent (Section 2): a faulty car can
    misreport its speed, as long as the value is in-domain."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    deployment.submit(0)   # truth: 0
    deployment.submit(15)  # lie, but a valid 4-bit lie
    assert deployment.publish() == 15


def test_truncated_packet_stream_rejected(rng):
    """Dropping the proof elements entirely must be detected."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)

    def truncate(submission):
        packet = submission.packets[-1]
        vec = FIELD87.decode_vector(packet.body)[: afe.k]
        submission.packets[-1] = ClientPacket(
            submission_id=packet.submission_id,
            server_index=packet.server_index,
            kind=PacketKind.EXPLICIT,
            n_elements=afe.k,
            body=FIELD87.encode_vector(vec),
        )

    assert not deployment.submit(3, mutate=truncate)
    assert deployment.stats.n_rejected == 1
