"""Replay-cache contract and server-level replay semantics.

Every :class:`~repro.protocol.replay.ReplayCache` implementation must
be interchangeable behind ``PrioServer``: membership, delta tracking
(``mark``/``delta``/``update`` — the incremental-snapshot seam), and
lifecycle (``spawn``/``close``/pickling for worker shipment).  The
tiered implementation additionally spills its oldest L1 entries to the
SQLite L2 — eviction must never lose an id (an evicted replay is still
a replay).  Server-level tests pin the semantics that matter to the
protocol: a replay inside one batch rejects, a replay across runs
rejects, and an abandoned-then-retried honest submission does not.
"""

import os
import pickle
import random

import pytest

from repro.afe import IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import ClientSubmission, PrioDeployment
from repro.protocol.replay import (
    InMemoryReplayCache,
    ReplayCacheError,
    TieredReplayCache,
    resolve_replay_cache,
)

CACHES = [
    ("memory", lambda: InMemoryReplayCache()),
    ("tiered", lambda: TieredReplayCache(l1_capacity=1024)),
]


def _ids(n, seed=0):
    rng = random.Random(seed)
    return [rng.randbytes(16) for _ in range(n)]


# ----------------------------------------------------------------------
# Contract: every implementation behaves like a durable set
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name,make", CACHES, ids=[n for n, _ in CACHES])
def test_membership_len_iter_clear(name, make):
    cache = make()
    try:
        ids = _ids(50, seed=1)
        for sid in ids:
            assert sid not in cache
            cache.add(sid)
            assert sid in cache
        cache.add(ids[0])  # idempotent
        assert len(cache) == 50
        assert sorted(cache) == sorted(ids)
        cache.clear()
        assert len(cache) == 0
        assert ids[0] not in cache
    finally:
        cache.close()


@pytest.mark.parametrize("name,make", CACHES, ids=[n for n, _ in CACHES])
def test_mark_delta_update(name, make):
    cache = make()
    try:
        before = _ids(10, seed=2)
        cache.update(before)
        cache.mark()
        after = _ids(7, seed=3)
        cache.update(after)
        # Re-adding a pre-mark id may or may not surface in the delta —
        # merges are set unions, so either way is correct.
        cache.add(before[0])
        delta = cache.delta()
        assert set(after) <= delta <= set(after) | {before[0]}
        # delta() is a snapshot boundary too: only later adds show next
        cache.mark()
        assert cache.delta() == set()

        other = make()
        try:
            other.update(cache.delta() | set(before) | set(after))
            assert len(other) == 17
        finally:
            other.close()
    finally:
        cache.close()


@pytest.mark.parametrize("name,make", CACHES, ids=[n for n, _ in CACHES])
def test_spawn_is_empty_same_kind(name, make):
    cache = make()
    try:
        cache.update(_ids(5, seed=4))
        child = cache.spawn()
        try:
            assert type(child) is type(cache)
            assert len(child) == 0
        finally:
            child.close()
    finally:
        cache.close()


def test_resolve_replay_cache():
    default = resolve_replay_cache(None)
    assert isinstance(default, InMemoryReplayCache)
    assert isinstance(resolve_replay_cache("memory"), InMemoryReplayCache)
    tiered = resolve_replay_cache("tiered")
    try:
        assert isinstance(tiered, TieredReplayCache)
    finally:
        tiered.close()
    instance = InMemoryReplayCache()
    assert resolve_replay_cache(instance) is instance
    with pytest.raises(ReplayCacheError):
        resolve_replay_cache("lru")


# ----------------------------------------------------------------------
# Tiered specifics: eviction, persistence, pickling
# ----------------------------------------------------------------------


def test_l1_eviction_hits_l2():
    cache = TieredReplayCache(l1_capacity=16)
    try:
        ids = _ids(100, seed=5)
        for sid in ids:
            cache.add(sid)
        assert len(cache._l1) <= 16
        assert cache.n_evicted >= 84
        # The oldest ids were spilled: membership must still hold, and
        # the hit must come from L2 (the L1 no longer has them).
        l2_hits_before = cache.l2_hits
        assert ids[0] in cache
        assert cache.l2_hits == l2_hits_before + 1
        assert len(cache) == 100
        assert sorted(cache) == sorted(ids)
    finally:
        cache.close()


def test_eviction_never_loses_delta():
    """mark/delta must survive the L1 -> L2 spill: a worker that added
    millions of ids still reports every one of them at snapshot time."""
    cache = TieredReplayCache(l1_capacity=8)
    try:
        cache.update(_ids(20, seed=6))
        cache.mark()
        added = _ids(40, seed=7)
        cache.update(added)
        assert sorted(cache.delta()) == sorted(added)
    finally:
        cache.close()


def test_pickle_round_trip_preserves_membership():
    cache = TieredReplayCache(l1_capacity=8)
    try:
        ids = _ids(30, seed=8)
        cache.update(ids)  # forces spills: membership spans L1 and L2
        clone = pickle.loads(pickle.dumps(cache))
        try:
            assert all(sid in clone for sid in ids)
            clone.add(b"x" * 16)
            assert b"x" * 16 in clone
            # The clone borrows the L2 file; closing it must not unlink
            # the original's database.
        finally:
            clone.close()
        assert ids[0] in cache
    finally:
        cache.close()


def test_close_removes_owned_database():
    cache = TieredReplayCache(l1_capacity=4)
    cache.update(_ids(20, seed=9))
    path = cache.path
    assert path is not None and os.path.exists(path)
    cache.close()
    assert not os.path.exists(path)


# ----------------------------------------------------------------------
# Server-level semantics (the reason the cache exists)
# ----------------------------------------------------------------------


def _deployment(replay_cache):
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(
        afe, n_servers=2, seed=b"replay-cache-test",
        rng=random.Random(1), batch_size=4,
    )
    for server in deployment.servers:
        server._replay.close()
        server._replay = resolve_replay_cache(replay_cache)
    return deployment


@pytest.mark.parametrize("kind", ["memory", "tiered"])
def test_replay_inside_a_batch_rejects(kind):
    deployment = _deployment(kind)
    try:
        submission = deployment.client.prepare_submission(7)
        first, second = deployment.deliver_batch([submission, submission])
        assert first is True and second is False
        # The copy dies at server 0's receive; later servers never see
        # it (and must not — their ids would leak into pending).
        assert deployment.servers[0].n_replayed == 1
    finally:
        for server in deployment.servers:
            server._replay.close()


@pytest.mark.parametrize("kind", ["memory", "tiered"])
def test_replay_across_runs_rejects(kind):
    deployment = _deployment(kind)
    try:
        submissions = deployment.client.prepare_submissions([1, 2, 3])
        assert deployment.deliver_pipelined(submissions) == [True] * 3
        assert deployment.deliver_pipelined(submissions) == [False] * 3
        assert all(s.n_replayed == 3 for s in deployment.servers)
    finally:
        for server in deployment.servers:
            server._replay.close()


@pytest.mark.parametrize("kind", ["memory", "tiered"])
def test_abandon_then_retry_is_not_a_replay(kind):
    """A submission one server received but a peer rejected at framing
    is abandoned — no decision was made, so an honest retry of the very
    same upload must be accepted, not treated as a replay."""
    deployment = _deployment(kind)
    try:
        submission = deployment.client.prepare_submission(5)
        # Server 0 receives its real packet; server 1 gets server 0's
        # (wrong server index -> framing reject).  Server 0 must
        # *abandon* — no decision was made.
        sabotaged = ClientSubmission(
            submission_id=submission.submission_id,
            packets=[submission.packets[0], submission.packets[0]],
        )
        assert deployment.deliver(sabotaged) is False
        assert deployment.deliver(submission) is True
        assert all(s.n_replayed == 0 for s in deployment.servers)
    finally:
        for server in deployment.servers:
            server._replay.close()
