"""Tests for the wire format."""

import random

import pytest

from repro.field import FIELD87
from repro.protocol import (
    ClientPacket,
    PacketKind,
    WireError,
    new_submission_id,
    packets_for_explicit_shares,
    packets_for_shares,
    total_upload_bytes,
)
from repro.sharing import prg_share_vector, share_vector


@pytest.fixture
def rng():
    return random.Random(9090)


def test_explicit_packet_roundtrip(rng):
    f = FIELD87
    vec = f.rand_vector(7, rng)
    packet = ClientPacket(
        submission_id=new_submission_id(rng),
        server_index=2,
        kind=PacketKind.EXPLICIT,
        n_elements=7,
        body=f.encode_vector(vec),
    )
    decoded = ClientPacket.decode(packet.encode(), f)
    assert decoded == packet
    assert decoded.share_vector(f) == vec


def test_seed_packet_roundtrip(rng):
    f = FIELD87
    xs = f.rand_vector(10, rng)
    seeds, explicit = prg_share_vector(f, xs, 3, rng)
    packets = packets_for_shares(f, new_submission_id(rng), seeds, explicit)
    assert len(packets) == 3
    assert packets[0].kind is PacketKind.SEED
    assert packets[-1].kind is PacketKind.EXPLICIT
    # Shares reconstruct through the wire format.
    total = [0] * 10
    for packet in packets:
        decoded = ClientPacket.decode(packet.encode(), f)
        share = decoded.share_vector(f)
        total = f.vec_add(total, share)
    assert total == xs


def test_explicit_shares_builder(rng):
    f = FIELD87
    xs = f.rand_vector(4, rng)
    shares = share_vector(f, xs, 2, rng)
    packets = packets_for_explicit_shares(f, new_submission_id(rng), shares)
    assert all(p.kind is PacketKind.EXPLICIT for p in packets)
    reconstructed = f.vec_sum([p.share_vector(f) for p in packets])
    assert reconstructed == xs


def test_decode_rejects_garbage():
    f = FIELD87
    with pytest.raises(WireError):
        ClientPacket.decode(b"xx", f)
    with pytest.raises(WireError):
        ClientPacket.decode(b"XX" + b"\x00" * 30, f)  # bad magic
    good = ClientPacket(
        submission_id=b"\x01" * 16,
        server_index=0,
        kind=PacketKind.SEED,
        n_elements=5,
        body=b"\x02" * 16,
    ).encode()
    tampered = bytearray(good)
    tampered[2] = 9  # version
    with pytest.raises(WireError):
        ClientPacket.decode(bytes(tampered), f)
    tampered = bytearray(good)
    tampered[3] = 7  # kind
    with pytest.raises(WireError):
        ClientPacket.decode(bytes(tampered), f)


def test_decode_rejects_wrong_body_size():
    f = FIELD87
    packet = ClientPacket(
        submission_id=b"\x01" * 16,
        server_index=0,
        kind=PacketKind.EXPLICIT,
        n_elements=3,
        body=b"\x00" * (3 * f.encoded_size + 1),
    )
    with pytest.raises(WireError):
        ClientPacket.decode(packet.encode(), f)


def test_bad_submission_id_size():
    with pytest.raises(WireError):
        ClientPacket(
            submission_id=b"short",
            server_index=0,
            kind=PacketKind.SEED,
            n_elements=1,
            body=b"\x00" * 16,
        ).encode()


def test_compression_saves_bandwidth(rng):
    """PRG packets beat explicit packets by ~s for long vectors."""
    f = FIELD87
    xs = f.rand_vector(500, rng)
    sid = new_submission_id(rng)
    seeds, explicit = prg_share_vector(f, xs, 5, rng)
    compressed = total_upload_bytes(packets_for_shares(f, sid, seeds, explicit))
    shares = share_vector(f, xs, 5, rng)
    uncompressed = total_upload_bytes(
        packets_for_explicit_shares(f, sid, shares)
    )
    assert compressed < uncompressed / 4
