"""Sealed-upload differential suite: encryption must be outcome-invisible.

A sealed upload is the same submission in a box — so every observable
outcome (per-submission verdicts, published aggregates, replay
behavior, per-server statistics) must be bit-identical to the
cleartext delivery of the same prepared stream, at every shard count,
on both field backends, and whether the sealed bytes arrive in memory
or over a real TCP socket.  Corrupted rows are tampered *before*
sealing (and re-sealed), so both paths see the same bad submission and
must reject it identically.
"""

import asyncio
import copy
import multiprocessing
import random
from dataclasses import replace

import pytest

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.protocol import (
    PrioDeployment,
    ShardedFanout,
    resolve_fanout,
    seal_packet,
)
from repro.transport import (
    PrioTransportServer,
    Status,
    TransportClient,
    TransportConfig,
)

SHARD_COUNTS = [1, 2, 4]
SEED = b"sealed-diff-seed"


def _deployment(force_pure=None, executor=None, batch_size=8,
                encrypt=True, n_servers=2):
    afe = VectorSumAfe(FIELD87, length=4, n_bits=3)
    return PrioDeployment.create(
        afe, n_servers=n_servers, seed=SEED, rng=random.Random(0x5EA1),
        batch_size=batch_size, executor=executor,
        force_pure_backend=force_pure, encrypt=encrypt,
    )


def _corrupt(dep, submission, index=1):
    """Tamper one packet body pre-seal and re-seal it, so the sealed
    and cleartext forms carry the *same* corrupted share."""
    packet = submission.packets[index]
    body = bytearray(packet.body)
    body[0] ^= 0xFF
    tampered = replace(packet, body=bytes(body))
    submission.packets[index] = tampered
    submission.sealed_packets[index] = seal_packet(
        dep.client.server_box_keys[index], tampered, dep.client.rng
    )


def _stream(dep, n=24, corrupt=(), seed=9):
    rng = random.Random(seed)
    values = [[rng.randrange(8) for _ in range(4)] for _ in range(n)]
    submissions = dep.client.prepare_submissions(values)
    for i in corrupt:
        _corrupt(dep, submissions[i])
    return submissions


def _server_stats(dep):
    return [
        (s.n_accepted, s.n_rejected, s.n_replayed, s._pending_ids == set())
        for s in dep.servers
    ]


# ----------------------------------------------------------------------
# Sealed vs cleartext, K x backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("force_pure", [None, True],
                         ids=["auto-backend", "pure-backend"])
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sealed_matches_cleartext(n_shards, force_pure):
    executor = "inline" if n_shards == 1 else f"inline:{n_shards}"
    corrupt = (3, 10, 17)

    sealed_dep = _deployment(force_pure, executor=executor)
    submissions = _stream(sealed_dep, corrupt=corrupt)
    # the cleartext twin shares the server randomness seed; it never
    # opens a box, so box keys are irrelevant there
    clear_dep = _deployment(force_pure, executor=executor, encrypt=False)

    clear = clear_dep.deliver_pipelined(copy.deepcopy(submissions))
    sealed = sealed_dep.deliver_pipelined(submissions)
    assert sealed == clear
    assert all(sealed[i] is False for i in corrupt)
    assert sum(sealed) == len(submissions) - len(corrupt)
    assert sealed_dep.publish() == clear_dep.publish()
    assert _server_stats(sealed_dep) == _server_stats(clear_dep)

    # replay behavior: the same stream again decides all-False on both
    # paths, counted identically per server
    clear2 = clear_dep.deliver_pipelined(copy.deepcopy(submissions))
    sealed2 = sealed_dep.deliver_pipelined(submissions)
    assert sealed2 == clear2 == [False] * len(submissions)
    assert _server_stats(sealed_dep) == _server_stats(clear_dep)

    sealed_dep.close()
    clear_dep.close()


# ----------------------------------------------------------------------
# Sealed over TCP == sealed in memory
# ----------------------------------------------------------------------


def _config(**kwargs):
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("linger_s", 0.001)
    kwargs.setdefault("executor", "inline")
    return TransportConfig(**kwargs)


async def _serve_sealed(dep, submissions, config=None):
    server = PrioTransportServer(dep.servers, config or _config())
    await server.start()
    host, port = await server.serve_tcp("127.0.0.1", 0)
    client = await TransportClient.connect_tcp(host, port)
    try:
        frames = [
            (s.submission_id, client.frame_submission(s, sealed=True))
            for s in submissions
        ]
        statuses = await client.submit_many(frames, window=16)
    finally:
        await client.close()
        await server.stop()
    return statuses, server


def test_sealed_over_tcp_matches_sealed_in_memory():
    mem_dep = _deployment(executor="inline")
    submissions = _stream(mem_dep, n=17, corrupt=(2, 9))
    # same creation rng -> the transport twin holds identical box
    # keypairs, so the same sealed bytes open on both
    tx_dep = _deployment(executor="inline")
    mem_decisions = mem_dep.deliver_pipelined(copy.deepcopy(submissions))

    statuses, server = asyncio.run(_serve_sealed(tx_dep, submissions))
    tx_decisions = [s is Status.ACCEPTED for s in statuses]
    assert tx_decisions == mem_decisions
    assert tx_dep.publish() == mem_dep.publish()
    assert server.stats.n_accepted == sum(mem_decisions)
    assert server.stats.n_rejected == 17 - sum(mem_decisions)

    mem_dep.close()
    tx_dep.close()


def test_sealed_over_tcp_process4_spreads_all_shards():
    """The acceptance scenario: sealed uploads over a real socket with
    ``executor="process:4"`` partition across all 4 shards of every
    server and decide bit-identically to the cleartext pipeline."""
    mem_dep = _deployment(executor="inline", encrypt=False)
    tx_dep = _deployment(executor="inline")
    submissions = _stream(tx_dep, n=24, corrupt=(5, 13))
    mem_decisions = mem_dep.deliver_pipelined(copy.deepcopy(submissions))

    # pre-built fan-out so the driver-side shard state stays
    # inspectable after the transport server stops
    fanout, owned = resolve_fanout(tx_dep.servers, "process:4")
    assert owned and isinstance(fanout, ShardedFanout)
    try:
        statuses, _ = asyncio.run(_serve_sealed(
            tx_dep, submissions, _config(executor=fanout)
        ))
        tx_decisions = [s is Status.ACCEPTED for s in statuses]
        assert tx_decisions == mem_decisions
        assert tx_dep.publish() == mem_dep.publish()
        # the 2 corrupted rows reject at receive (FieldError), before
        # any replay id is recorded; every decided id is in exactly
        # one shard's cache, and every shard saw traffic
        for shard_row in fanout.shards:
            counts = [len(shard._replay) for shard in shard_row]
            assert all(count > 0 for count in counts), counts
            assert sum(counts) == len(submissions) - 2
    finally:
        fanout.close()
    assert multiprocessing.active_children() == []
    mem_dep.close()
    tx_dep.close()
