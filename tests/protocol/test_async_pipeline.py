"""The asyncio pipeline front end must match the synchronous path."""

import random
from dataclasses import replace

import pytest

from repro.afe import BoolOrAfe, FrequencyCountAfe, IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import AsyncPrioPipeline, PrioDeployment, run_pipelined


@pytest.fixture
def rng():
    return random.Random(0xA51C)


def _twin_deployments(afe, n_servers=3, batch_size=4, **kwargs):
    """Two identical deployments (same server seed, same client rng)."""
    return (
        PrioDeployment.create(
            afe, n_servers, seed=b"pipe", batch_size=batch_size,
            rng=random.Random(99), **kwargs,
        ),
        PrioDeployment.create(
            afe, n_servers, seed=b"pipe", batch_size=batch_size,
            rng=random.Random(99), **kwargs,
        ),
    )


def test_pipeline_matches_synchronous_decisions(rng):
    afe = IntegerSumAfe(FIELD87, 8)
    sync_dep, pipe_dep = _twin_deployments(afe)
    values = [rng.randrange(256) for _ in range(19)]
    accepted_sync = sync_dep.submit_many(values)
    accepted_pipe = pipe_dep.submit_many_pipelined(values)
    assert accepted_sync == accepted_pipe == 19
    assert sync_dep.publish() == pipe_dep.publish() == sum(values)
    assert (
        pipe_dep.stats.n_submitted,
        pipe_dep.stats.n_accepted,
        pipe_dep.stats.n_rejected,
    ) == (19, 19, 0)


def test_pipeline_bad_submission_rejects_alone(rng):
    """A corrupted share hidden mid-stream rejects alone, like the
    synchronous batch path."""
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(
        afe, 2, batch_size=4, rng=rng, seed=b"pipe"
    )
    values = [rng.randrange(256) for _ in range(10)]
    submissions = deployment.client.prepare_submissions(values)
    bad = 6
    packet = submissions[bad].packets[1]
    body = bytearray(packet.body)
    body[0] ^= 1
    submissions[bad].packets[1] = replace(packet, body=bytes(body))

    results = deployment.deliver_pipelined(submissions)
    assert results == [True] * bad + [False] + [True] * 3
    honest = sum(v for i, v in enumerate(values) if i != bad)
    assert deployment.publish() == honest
    assert deployment.stats.n_rejected == 1


def test_pipeline_framing_failure_releases_other_servers(rng):
    """A frame bad for one server only must not poison the id at the
    servers that did receive it (honest retry succeeds)."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=3, rng=rng)
    submission = deployment.client.prepare_submission(9)
    good_packet = submission.packets[1]
    submission.packets[1] = replace(
        good_packet, n_elements=good_packet.n_elements - 1,
        body=good_packet.body[: -FIELD87.encoded_size],
    )
    assert deployment.deliver_pipelined([submission]) == [False]
    submission.packets[1] = good_packet
    assert deployment.deliver_pipelined([submission]) == [True]
    assert deployment.publish() == 9
    assert deployment.servers[0].n_replayed == 0


def test_pipeline_replay_within_stream_rejected(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=4, rng=rng)
    subs = deployment.client.prepare_submissions([5, 9])
    results = deployment.deliver_pipelined([subs[0], subs[1], subs[0]])
    assert results == [True, True, False]
    assert deployment.publish() == 14
    assert deployment.servers[0].n_replayed == 1


def test_pipeline_proof_free_afe(rng):
    deployment = PrioDeployment.create(
        BoolOrAfe(lambda_bits=32), 3, batch_size=2, rng=rng
    )
    assert deployment.submit_many_pipelined(
        [False, False, True, False, False]
    ) == 5
    assert deployment.publish() is True


def test_pipeline_encrypted_transport(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(
        afe, 2, encrypt=True, batch_size=2, rng=rng
    )
    assert deployment.submit_many_pipelined([3, 7, 11]) == 3
    assert deployment.publish() == 21


def test_pipeline_histogram_many_batches(rng):
    from collections import Counter

    afe = FrequencyCountAfe(FIELD87, 5)
    deployment = PrioDeployment.create(
        afe, 2, batch_size=8, rng=rng, seed=b"hist"
    )
    values = [rng.randrange(5) for _ in range(41)]  # final partial batch
    assert deployment.submit_many_pipelined(values) == 41
    counts = Counter(values)
    assert deployment.publish() == [counts.get(i, 0) for i in range(5)]


def test_pipeline_stats_and_validation(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=3, rng=rng)
    with pytest.raises(ValueError):
        AsyncPrioPipeline(deployment.servers, batch_size=0)
    with pytest.raises(ValueError):
        AsyncPrioPipeline(deployment.servers, queue_depth=0)
    submissions = deployment.client.prepare_submissions([1, 2, 3, 4, 5])
    decisions, stats = run_pipelined(
        deployment.servers, submissions, batch_size=2
    )
    assert decisions == [True] * 5
    assert stats.n_batches == 3
    assert stats.batch_sizes == [2, 2, 1]


def test_pipeline_epoch_rotation(rng):
    afe = IntegerSumAfe(FIELD87, 2)
    deployment = PrioDeployment.create(
        afe, 2, epoch_size=3, batch_size=4, rng=rng
    )
    values = [rng.randrange(4) for _ in range(10)]
    assert deployment.submit_many_pipelined(values) == 10
    assert deployment.publish() == sum(values)
    assert deployment.servers[0]._epoch >= 1
