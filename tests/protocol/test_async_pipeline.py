"""The asyncio pipeline front end must match the synchronous path."""

import random
from dataclasses import replace

import pytest

from repro.afe import BoolOrAfe, FrequencyCountAfe, IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import AsyncPrioPipeline, PrioDeployment, run_pipelined


@pytest.fixture
def rng():
    return random.Random(0xA51C)


def _twin_deployments(afe, n_servers=3, batch_size=4, **kwargs):
    """Two identical deployments (same server seed, same client rng)."""
    return (
        PrioDeployment.create(
            afe, n_servers, seed=b"pipe", batch_size=batch_size,
            rng=random.Random(99), **kwargs,
        ),
        PrioDeployment.create(
            afe, n_servers, seed=b"pipe", batch_size=batch_size,
            rng=random.Random(99), **kwargs,
        ),
    )


def test_pipeline_matches_synchronous_decisions(rng):
    afe = IntegerSumAfe(FIELD87, 8)
    sync_dep, pipe_dep = _twin_deployments(afe)
    values = [rng.randrange(256) for _ in range(19)]
    accepted_sync = sync_dep.submit_many(values)
    accepted_pipe = pipe_dep.submit_many_pipelined(values)
    assert accepted_sync == accepted_pipe == 19
    assert sync_dep.publish() == pipe_dep.publish() == sum(values)
    assert (
        pipe_dep.stats.n_submitted,
        pipe_dep.stats.n_accepted,
        pipe_dep.stats.n_rejected,
    ) == (19, 19, 0)


def test_client_producer_stage_matches_prepared_stream(rng):
    """run_values (batched client as stage 0) must match preparing every
    upload up front — same decisions, aggregate, and byte accounting."""
    afe = IntegerSumAfe(FIELD87, 8)
    pre_dep, prod_dep = _twin_deployments(afe)
    values = [rng.randrange(256) for _ in range(11)]
    submissions = pre_dep.client.prepare_submissions(values, batched=False)
    pre_results = pre_dep.deliver_pipelined(submissions)

    pipeline = AsyncPrioPipeline(prod_dep.servers, batch_size=4)
    prod_results = pipeline.run_values(prod_dep.client, values)
    assert prod_results == pre_results == [True] * 11
    assert pre_dep.publish() == prod_dep.publish() == sum(values)
    # 11 values at batch 4 -> 3 client batches; producer byte counting
    # matches the up-front client's.
    assert pipeline.stats.client_batches == 3
    assert pipeline.stats.upload_bytes == sum(
        s.upload_bytes for s in submissions
    )


def test_submit_many_pipelined_client_batched_flag(rng):
    """Both client modes of submit_many_pipelined agree end to end."""
    afe = IntegerSumAfe(FIELD87, 8)
    batched_dep, scalar_dep = _twin_deployments(afe)
    values = [rng.randrange(256) for _ in range(9)]
    assert batched_dep.submit_many_pipelined(values) == 9
    assert scalar_dep.submit_many_pipelined(
        values, client_batched=False
    ) == 9
    assert batched_dep.publish() == scalar_dep.publish() == sum(values)
    assert (
        batched_dep.stats.upload_bytes_total
        == scalar_dep.stats.upload_bytes_total
    )


def test_pipeline_bad_submission_rejects_alone(rng):
    """A corrupted share hidden mid-stream rejects alone, like the
    synchronous batch path."""
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(
        afe, 2, batch_size=4, rng=rng, seed=b"pipe"
    )
    values = [rng.randrange(256) for _ in range(10)]
    submissions = deployment.client.prepare_submissions(values)
    bad = 6
    packet = submissions[bad].packets[1]
    body = bytearray(packet.body)
    body[0] ^= 1
    submissions[bad].packets[1] = replace(packet, body=bytes(body))

    results = deployment.deliver_pipelined(submissions)
    assert results == [True] * bad + [False] + [True] * 3
    honest = sum(v for i, v in enumerate(values) if i != bad)
    assert deployment.publish() == honest
    assert deployment.stats.n_rejected == 1


def test_pipeline_framing_failure_releases_other_servers(rng):
    """A frame bad for one server only must not poison the id at the
    servers that did receive it (honest retry succeeds)."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=3, rng=rng)
    submission = deployment.client.prepare_submission(9)
    good_packet = submission.packets[1]
    submission.packets[1] = replace(
        good_packet, n_elements=good_packet.n_elements - 1,
        body=good_packet.body[: -FIELD87.encoded_size],
    )
    assert deployment.deliver_pipelined([submission]) == [False]
    submission.packets[1] = good_packet
    assert deployment.deliver_pipelined([submission]) == [True]
    assert deployment.publish() == 9
    assert deployment.servers[0].n_replayed == 0


def test_pipeline_replay_within_stream_rejected(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=4, rng=rng)
    subs = deployment.client.prepare_submissions([5, 9])
    results = deployment.deliver_pipelined([subs[0], subs[1], subs[0]])
    assert results == [True, True, False]
    assert deployment.publish() == 14
    assert deployment.servers[0].n_replayed == 1


def test_pipeline_proof_free_afe(rng):
    deployment = PrioDeployment.create(
        BoolOrAfe(lambda_bits=32), 3, batch_size=2, rng=rng
    )
    assert deployment.submit_many_pipelined(
        [False, False, True, False, False]
    ) == 5
    assert deployment.publish() is True


def test_pipeline_encrypted_transport(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(
        afe, 2, encrypt=True, batch_size=2, rng=rng
    )
    assert deployment.submit_many_pipelined([3, 7, 11]) == 3
    assert deployment.publish() == 21


def test_pipeline_histogram_many_batches(rng):
    from collections import Counter

    afe = FrequencyCountAfe(FIELD87, 5)
    deployment = PrioDeployment.create(
        afe, 2, batch_size=8, rng=rng, seed=b"hist"
    )
    values = [rng.randrange(5) for _ in range(41)]  # final partial batch
    assert deployment.submit_many_pipelined(values) == 41
    counts = Counter(values)
    assert deployment.publish() == [counts.get(i, 0) for i in range(5)]


def test_pipeline_stats_and_validation(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=3, rng=rng)
    with pytest.raises(ValueError):
        AsyncPrioPipeline(deployment.servers, batch_size=0)
    with pytest.raises(ValueError):
        AsyncPrioPipeline(deployment.servers, queue_depth=0)
    submissions = deployment.client.prepare_submissions([1, 2, 3, 4, 5])
    decisions, stats = run_pipelined(
        deployment.servers, submissions, batch_size=2
    )
    assert decisions == [True] * 5
    assert stats.n_batches == 3
    assert stats.batch_sizes == [2, 2, 1]


def test_pipeline_run_is_repeatable_without_thread_leaks(rng):
    """PR-3 shut its self-created executor down with wait=False, which
    left a worker-thread set behind per run() call.  Repeated runs must
    keep the thread count flat."""
    import threading

    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=2, rng=rng)
    before = len(threading.enumerate())
    total = 0
    for round_index in range(5):
        values = [rng.randrange(16) for _ in range(5)]
        submissions = deployment.client.prepare_submissions(values)
        pipeline = AsyncPrioPipeline(deployment.servers, batch_size=2)
        assert pipeline.run(submissions) == [True] * 5
        total += sum(values)
    assert len(threading.enumerate()) <= before
    assert deployment.publish() == total


def test_pipeline_fatal_error_cancels_cleanly_and_recovers(rng):
    """A BaseException escaping a stage (only Exceptions are isolated
    per batch) must cancel and await the peer tasks, release the
    workers, and leave the servers usable for a fresh run."""
    import threading

    from repro.protocol import LocalFanout

    class KaboomFanout(LocalFanout):
        def call(self, s, op, *args):
            if op == "round1":
                raise KeyboardInterrupt("injected fatal error")
            return super().call(s, op, *args)

    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=2, rng=rng)
    submissions = deployment.client.prepare_submissions([1, 2, 3, 4])
    before = len(threading.enumerate())
    fanout = KaboomFanout(deployment.servers)
    pipeline = AsyncPrioPipeline(
        deployment.servers, batch_size=2, executor=fanout
    )
    with pytest.raises(KeyboardInterrupt):
        pipeline.run(submissions)
    fanout.close()
    assert len(threading.enumerate()) <= before
    # The abnormal exit abandoned the in-flight batches: nothing stays
    # pending, and retrying the *same* submissions is not a replay.
    assert deployment.servers[0]._pending_ids == set()
    decisions, _ = run_pipelined(
        deployment.servers, submissions, batch_size=2
    )
    assert decisions == [True] * 4
    assert deployment.servers[0].n_replayed == 0
    assert deployment.publish() == 10


def test_pipeline_records_executor_kind(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=2, rng=rng)
    submissions = deployment.client.prepare_submissions([1, 2])
    decisions, stats = run_pipelined(
        deployment.servers, submissions, batch_size=2, executor="inline"
    )
    assert decisions == [True, True]
    assert stats.executor == "inline"


def test_pipeline_epoch_rotation(rng):
    afe = IntegerSumAfe(FIELD87, 2)
    deployment = PrioDeployment.create(
        afe, 2, epoch_size=3, batch_size=4, rng=rng
    )
    values = [rng.randrange(4) for _ in range(10)]
    assert deployment.submit_many_pipelined(values) == 10
    assert deployment.publish() == sum(values)
    assert deployment.servers[0]._epoch >= 1
