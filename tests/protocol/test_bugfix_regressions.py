"""Regression pins for the PR-6 lifecycle/leak bugfix sweep.

Each test fails on the pre-fix code:

* ``PrioServer.abandon`` dropped the id but never released the share
  sources, pinning seeds / plane matrices via the caller's handle.
* ``PrioServer.receive_batch`` guessed row 0 for a ``FieldError``
  without ``batch_row`` attribution, silently evicting an innocent
  packet instead of failing loudly.
* ``AsyncPrioPipeline`` carried ``stats`` / ``_next_batch_id`` /
  ``_verifying`` across ``run()`` calls, so a reused pipeline reported
  cumulative nonsense.
* ``ClientPacket.encode`` let out-of-range header fields escape as a
  bare ``OverflowError`` from ``to_bytes``.
"""

import random

import pytest

from repro.afe import IntegerSumAfe
from repro.field import FIELD87, FieldError
from repro.protocol import AsyncPrioPipeline, PrioDeployment
from repro.protocol.wire import ClientPacket, PacketKind, WireError


def _deployment(n_bits=4, n_servers=3):
    return PrioDeployment.create(
        IntegerSumAfe(FIELD87, n_bits), n_servers, seed=b"regr",
        batch_size=4, rng=random.Random(42),
    )


def _explicit_packet(submission):
    """The one EXPLICIT packet of a submission (other servers get
    PRG seeds)."""
    for packet in submission.packets:
        if packet.kind is PacketKind.EXPLICIT:
            return packet
    raise AssertionError("no explicit packet in submission")


# ---------------------------------------------------------------------
# PrioServer.abandon must release share sources
# ---------------------------------------------------------------------


def test_abandon_releases_share_sources():
    dep = _deployment()
    packet = _explicit_packet(dep.client.prepare_submission(1))
    server = dep.servers[packet.server_index]
    pending = server.receive(packet)
    # receive left a live source (the whole decoded batch matrix for
    # an EXPLICIT share) hanging off the handle
    assert pending._source is not None or pending._x_share is not None

    server.abandon(pending)

    # the leak probe: every source slot must be dropped, so a held
    # handle pins nothing
    assert pending._x_share is None
    assert pending._proof_share is None
    assert pending._seed is None
    assert pending._source is None
    # and the id is free again: an honest retry is not a replay
    assert packet.submission_id not in server._pending_ids
    assert packet.submission_id not in server._seen_ids
    retried = server.receive(packet)
    assert retried.submission_id == packet.submission_id


def test_abandon_releases_seed_source():
    dep = _deployment()
    submission = dep.client.prepare_submission(1)
    seed_packet = next(
        p for p in submission.packets if p.kind is PacketKind.SEED
    )
    server = dep.servers[seed_packet.server_index]
    pending = server.receive(seed_packet)
    assert pending._seed is not None
    server.abandon(pending)
    assert pending._seed is None


# ---------------------------------------------------------------------
# receive_batch must not guess the culprit of an unattributed error
# ---------------------------------------------------------------------


def test_receive_batch_unattributed_field_error_raises(monkeypatch):
    dep = _deployment()
    packets = [
        _explicit_packet(dep.client.prepare_submission(1))
        for _ in range(4)
    ]
    server = dep.servers[packets[0].server_index]

    def unattributed_decode(*args, **kwargs):
        raise FieldError("decode failed with no row attribution")

    monkeypatch.setattr(
        "repro.protocol.server.decode_bytes_batch", unattributed_decode
    )
    # Pre-fix: getattr(exc, "batch_row", 0) evicted packet 0 (then 1,
    # then 2...) and the call "succeeded" with every honest packet
    # marked as the offender.  It must raise instead.
    with pytest.raises(FieldError):
        server.receive_batch(packets)

    # the failed sweep released every id: retries are not replays
    assert not server._pending_ids
    monkeypatch.undo()
    out = server.receive_batch(packets)
    assert all(not isinstance(r, Exception) for r in out)


def test_receive_batch_attributed_field_error_still_per_packet():
    """Contrast pin: a FieldError *with* attribution keeps its
    evict-one-and-continue behavior."""
    dep = _deployment()
    packets = [
        _explicit_packet(dep.client.prepare_submission(1))
        for _ in range(3)
    ]
    server = dep.servers[packets[0].server_index]
    # corrupt one body to an out-of-range element (all 0xFF is >= p)
    bad = ClientPacket(
        submission_id=packets[1].submission_id,
        server_index=packets[1].server_index,
        kind=packets[1].kind,
        n_elements=packets[1].n_elements,
        body=b"\xff" * len(packets[1].body),
    )
    out = server.receive_batch([packets[0], bad, packets[2]])
    assert isinstance(out[1], FieldError)
    assert not isinstance(out[0], Exception)
    assert not isinstance(out[2], Exception)


# ---------------------------------------------------------------------
# AsyncPrioPipeline must be reusable across runs
# ---------------------------------------------------------------------


def test_pipeline_reuse_resets_per_run_state():
    dep = _deployment()
    pipeline = AsyncPrioPipeline(
        dep.servers, batch_size=4, executor="inline"
    )
    first = dep.client.prepare_submissions([1] * 9)
    second = dep.client.prepare_submissions([2] * 5)

    assert pipeline.run(first) == [True] * 9
    first_batches = pipeline.stats.n_batches
    assert first_batches == 3
    assert pipeline.run(second) == [True] * 5

    # Pre-fix, stats accumulated across runs and batch ids resumed
    # from the previous stream's counter.
    assert pipeline.stats.n_batches == 2
    assert pipeline.stats.batch_sizes == [4, 1]
    assert pipeline.stats.n_receive_failures == 0
    assert not pipeline._verifying
    assert dep.publish() == 9 * 1 + 5 * 2


# ---------------------------------------------------------------------
# ClientPacket.encode must reject what its header cannot carry
# ---------------------------------------------------------------------


@pytest.mark.parametrize("server_index", [-1, 1 << 16, 1 << 30])
def test_encode_rejects_out_of_range_server_index(server_index):
    packet = ClientPacket(
        submission_id=bytes(16),
        server_index=server_index,
        kind=PacketKind.SEED,
        n_elements=4,
        body=bytes(16),
    )
    with pytest.raises(WireError):
        packet.encode()


@pytest.mark.parametrize("n_elements", [-1, (1 << 22) + 1, 1 << 40])
def test_encode_rejects_out_of_range_n_elements(n_elements):
    packet = ClientPacket(
        submission_id=bytes(16),
        server_index=0,
        kind=PacketKind.SEED,
        n_elements=n_elements,
        body=bytes(16),
    )
    with pytest.raises(WireError):
        packet.encode()


def test_encode_boundary_values_still_pass():
    packet = ClientPacket(
        submission_id=bytes(16),
        server_index=(1 << 16) - 1,
        kind=PacketKind.SEED,
        n_elements=1 << 22,
        body=bytes(16),
    )
    data = packet.encode()
    assert int.from_bytes(data[20:22], "big") == (1 << 16) - 1
    assert int.from_bytes(data[22:26], "big") == 1 << 22


# ---------------------------------------------------------------------
# encode_upload must reject oversized lengths as FrameError, not let a
# bare OverflowError escape from int.to_bytes (soundness-lint sweep)
# ---------------------------------------------------------------------


class _FakeLenBytes(bytes):
    """Bytes whose reported length exceeds a u32 (without allocating
    4 GiB): exactly what a length-prefix writer must bound-check."""

    def __len__(self):
        return 1 << 32


def test_encode_upload_oversized_packet_is_frame_error():
    from repro.transport import FrameError, encode_upload

    # pre-fix: len(data).to_bytes(4, "big") raised bare OverflowError
    with pytest.raises(FrameError):
        encode_upload([_FakeLenBytes(b"x")])


def test_encode_upload_frame_error_is_not_overflow():
    from repro.transport import FrameError, encode_upload

    try:
        encode_upload([_FakeLenBytes(b"x")])
    except FrameError:
        pass
    except OverflowError as exc:  # pragma: no cover - pre-fix behavior
        raise AssertionError(
            "oversized packet escaped as bare OverflowError"
        ) from exc


# ---------------------------------------------------------------------
# the transport's batch queue must be bounded (soundness-lint sweep):
# an unbounded queue silently absorbs broken shed accounting as memory
# growth instead of failing loudly
# ---------------------------------------------------------------------


def test_transport_batch_queue_is_bounded():
    import asyncio

    from repro.transport import PrioTransportServer, TransportConfig

    dep = _deployment()
    config = TransportConfig(batch_size=4, linger_s=0.001, executor="inline")

    async def scenario():
        async with PrioTransportServer(dep.servers, config) as server:
            return server._batch_q.maxsize

    maxsize = asyncio.run(scenario())
    assert maxsize == config.shed_limit
    assert maxsize > 0
