"""Tests for client registration and publish gating (Section 7)."""

import random

import pytest

from repro.afe import IntegerSumAfe
from repro.crypto.sign import SigningKeyPair, sign
from repro.field import FIELD87
from repro.protocol.registration import (
    ClientRegistry,
    GatedDeployment,
    RegisteredClient,
    RegistrationError,
    SignedPacket,
)


@pytest.fixture
def rng():
    return random.Random(2468)


@pytest.fixture
def deployment():
    afe = IntegerSumAfe(FIELD87, 4)
    return GatedDeployment(afe, n_servers=3, publish_threshold=3)


def test_registry_basic(rng):
    registry = ClientRegistry()
    keypair = SigningKeyPair.generate(rng)
    client_id = registry.register(keypair.public)
    assert registry.is_registered(client_id)
    assert registry.public_key(client_id) == keypair.public
    assert len(registry) == 1
    assert not registry.is_registered(b"nobody")
    with pytest.raises(RegistrationError):
        registry.public_key(b"nobody")


def test_registered_clients_accepted(deployment, rng):
    clients = [deployment.new_client(rng) for _ in range(3)]
    for i, client in enumerate(clients):
        assert deployment.deliver(client.prepare_submission(i + 1))
    assert deployment.publish() == 1 + 2 + 3


def test_unregistered_client_rejected(deployment, rng):
    afe = deployment.afe
    rogue_keypair = SigningKeyPair.generate(rng)  # never registered
    rogue = RegisteredClient(afe, 3, rogue_keypair, rng=rng)
    assert not deployment.deliver(rogue.prepare_submission(5))


def test_bad_signature_rejected(deployment, rng):
    client = deployment.new_client(rng)
    packets = client.prepare_submission(7)
    # Tamper: re-sign with a different (registered!) key.
    other = deployment.new_client(rng)
    forged = [
        SignedPacket(
            packet=sp.packet,
            client_id=client.client_id,
            signature=sign(other.keypair, sp.packet.encode(), rng),
        )
        for sp in packets
    ]
    assert not deployment.deliver(forged)


def test_publish_gated_below_threshold(deployment, rng):
    client = deployment.new_client(rng)
    assert deployment.deliver(client.prepare_submission(9))
    # Only one distinct contributor; threshold is three.
    with pytest.raises(RegistrationError):
        deployment.publish()


def test_sybil_counts_once(deployment, rng):
    """One registered key submitting many times is one contributor —
    it cannot satisfy the threshold alone (replay protection also
    limits it to distinct submissions)."""
    client = deployment.new_client(rng)
    for value in (1, 2, 3, 4):
        deployment.deliver(client.prepare_submission(value))
    assert deployment.servers[0].n_contributors == 1
    with pytest.raises(RegistrationError):
        deployment.publish()


def test_threshold_exactly_met(deployment, rng):
    for i in range(3):
        client = deployment.new_client(rng)
        deployment.deliver(client.prepare_submission(i))
    assert deployment.servers[0].n_contributors == 3
    assert deployment.publish() == 0 + 1 + 2


def test_invalid_submission_does_not_count_toward_threshold(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = GatedDeployment(afe, n_servers=2, publish_threshold=2)
    good = deployment.new_client(rng)
    deployment.deliver(good.prepare_submission(3))

    evil = deployment.new_client(rng)
    packets = evil.prepare_submission(3)
    # Corrupt the explicit packet body after signing: signature check
    # fails, so the submission is dropped before verification.
    from repro.protocol.wire import ClientPacket, PacketKind

    bad_packet = ClientPacket(
        submission_id=packets[-1].packet.submission_id,
        server_index=packets[-1].packet.server_index,
        kind=PacketKind.EXPLICIT,
        n_elements=packets[-1].packet.n_elements,
        body=b"\x00" * len(packets[-1].packet.body),
    )
    packets[-1] = SignedPacket(
        packet=bad_packet,
        client_id=packets[-1].client_id,
        signature=packets[-1].signature,
    )
    assert not deployment.deliver(packets)
    assert deployment.servers[0].n_contributors == 1
    with pytest.raises(RegistrationError):
        deployment.publish()


def test_deployment_needs_two_servers():
    from repro.protocol import ProtocolError

    with pytest.raises(ProtocolError):
        GatedDeployment(IntegerSumAfe(FIELD87, 4), 1, publish_threshold=1)
