"""Sharded fan-out: randomized differential equivalence vs unsharded.

The shard count must not be observable in any protocol outcome.  The
suite drives identical prepared streams (honest + corrupted rows,
randomized values) through the unsharded pipeline and through
``ShardedFanout`` at K ∈ {1, 2, 4}, on both field backends, and asserts
decisions, published aggregates, and statistics are identical.  Replay
protection must also survive sharding: ids partition stably across
shards (``shard_of``), shard-local caches catch replays across runs on
a reused fan-out, and the run-end fold keeps the logical servers'
state authoritative.
"""

import copy
import multiprocessing
import random
from dataclasses import replace

import pytest

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.protocol import (
    FanoutError,
    PrioDeployment,
    ShardedFanout,
    resolve_fanout,
    run_pipelined,
    shard_of,
)

SHARD_COUNTS = [1, 2, 4]


def _deployment(executor=None, force_pure=None, n_servers=3, batch_size=8,
                encrypt=False):
    afe = VectorSumAfe(FIELD87, length=5, n_bits=3)
    return PrioDeployment.create(
        afe, n_servers=n_servers, seed=b"sharded-diff-seed",
        rng=random.Random(0xD1FF), batch_size=batch_size,
        executor=executor, force_pure_backend=force_pure, encrypt=encrypt,
    )


def _stream(deployment, n=30, corrupt=(), seed=7):
    rng = random.Random(seed)
    values = [[rng.randrange(8) for _ in range(5)] for _ in range(n)]
    submissions = deployment.client.prepare_submissions(values)
    for index in corrupt:
        packet = submissions[index].packets[1]
        body = bytearray(packet.body)
        body[0] ^= 0xFF
        submissions[index].packets[1] = replace(packet, body=bytes(body))
    return values, submissions


def _outcome(deployment, submissions):
    decisions = deployment.deliver_pipelined(submissions)
    aggregate = deployment.publish()
    stats = [
        (s.n_accepted, s.n_rejected, s.n_replayed, s._pending_ids == set())
        for s in deployment.servers
    ]
    return decisions, aggregate, stats


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_shard_of_is_stable_and_total():
    rng = random.Random(3)
    for n_shards in (1, 2, 3, 8):
        seen = set()
        for _ in range(200):
            sid = rng.randbytes(16)
            k = shard_of(sid, n_shards)
            assert 0 <= k < n_shards
            assert shard_of(sid, n_shards) == k  # stable
            seen.add(k)
        if n_shards <= 4:
            assert seen == set(range(n_shards))  # all shards get traffic


def test_executor_spec_parsing():
    deployment = _deployment()
    fanout, owned = resolve_fanout(deployment.servers, "inline:3")
    assert owned and isinstance(fanout, ShardedFanout)
    assert fanout.n_shards == 3
    fanout.close()
    # ":1" is not sharded — it falls through to the plain backend
    fanout, owned = resolve_fanout(deployment.servers, "inline:1")
    assert not isinstance(fanout, ShardedFanout)
    fanout.close()
    with pytest.raises(FanoutError):
        resolve_fanout(deployment.servers, "inline:x")
    with pytest.raises(FanoutError):
        resolve_fanout(deployment.servers, "inline:2", n_shards=3)
    ready, _ = resolve_fanout(deployment.servers, "inline")
    try:
        with pytest.raises(FanoutError):
            resolve_fanout(deployment.servers, ready, n_shards=2)
    finally:
        ready.close()


# ----------------------------------------------------------------------
# Differential equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("force_pure", [None, True],
                         ids=["auto-backend", "pure-backend"])
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_sharded_matches_unsharded(n_shards, force_pure):
    """Same randomized stream with corrupted rows hidden mid-batch:
    decisions, aggregate, and per-server statistics must be identical
    at every shard count — the corrupted rows reject *individually*
    whichever shard they land on."""
    corrupt = (2, 11, 19, 28)
    base = _deployment(executor="inline", force_pure=force_pure)
    _, submissions = _stream(base, corrupt=corrupt)
    expected = _outcome(base, copy.deepcopy(submissions))
    base.close()

    sharded = _deployment(
        executor=f"inline:{n_shards}", force_pure=force_pure
    )
    got = _outcome(sharded, submissions)
    sharded.close()
    assert got == expected
    decisions = got[0]
    assert sum(decisions) == 26
    assert all(decisions[i] is False for i in corrupt)


@pytest.mark.parametrize("n_shards", [2, 4])
def test_sharded_matches_unsharded_encrypted(n_shards):
    """Sealed packets route by their cleartext envelope sid, so an
    encrypted stream genuinely partitions across every shard (no
    shard-0 fallback remains) while outcomes stay identical to the
    unsharded deployment."""
    base = _deployment(executor="inline", encrypt=True)
    _, submissions = _stream(base, n=24)
    expected = _outcome(base, copy.deepcopy(submissions))
    base.close()

    sharded = _deployment(executor=f"inline:{n_shards}", encrypt=True)
    got = _outcome(sharded, submissions)
    fanout = sharded._fanout
    assert isinstance(fanout, ShardedFanout)
    # genuine spread: every shard of every server opened (and replay-
    # recorded) at least one sealed submission
    for shard_row in fanout.shards:
        counts = [len(shard._replay) for shard in shard_row]
        assert all(count > 0 for count in counts), counts
        assert sum(counts) == len(submissions)
    sharded.close()
    assert got == expected


def test_process_backed_shards_smoke():
    """Sharded over real worker processes: same outcome, no leaked
    children."""
    base = _deployment(executor="inline", batch_size=4)
    _, submissions = _stream(base, n=12, corrupt=(5,))
    expected = _outcome(base, copy.deepcopy(submissions))
    base.close()

    sharded = _deployment(executor="process:2", batch_size=4)
    got = _outcome(sharded, submissions)
    sharded.close()
    assert got == expected
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Replay protection across runs and fold-back state
# ----------------------------------------------------------------------


def test_replay_across_runs_on_reused_fanout():
    deployment = _deployment()
    fanout, owned = resolve_fanout(deployment.servers, "inline", n_shards=3)
    assert owned
    try:
        _, submissions = _stream(deployment, n=15)
        first, _ = run_pipelined(
            deployment.servers, submissions, batch_size=8, executor=fanout
        )
        replayed, _ = run_pipelined(
            deployment.servers, submissions, batch_size=8, executor=fanout
        )
        _, fresh = _stream(deployment, n=6, seed=11)
        third, _ = run_pipelined(
            deployment.servers, fresh, batch_size=8, executor=fanout
        )
    finally:
        fanout.close()
    assert first == [True] * 15
    assert replayed == [False] * 15
    assert third == [True] * 6
    for server in deployment.servers:
        assert server.n_accepted == 21
        assert server.n_replayed == 15
        assert len(server._seen_ids) == 21


def test_fold_back_keeps_logical_server_authoritative():
    """After a sharded run the *logical* servers hold the union of all
    shard state: a later unsharded run on the same servers still
    catches replays of sharded-run submissions, and publishes see every
    accepted contribution."""
    deployment = _deployment()
    _, submissions = _stream(deployment, n=10)
    fanout, _ = resolve_fanout(deployment.servers, "inline", n_shards=2)
    try:
        first, _ = run_pipelined(
            deployment.servers, submissions, batch_size=8, executor=fanout
        )
    finally:
        fanout.close()
    assert first == [True] * 10
    # Unsharded retry against the logical servers: all replays.
    retry, _ = run_pipelined(
        deployment.servers, submissions, batch_size=8, executor="inline"
    )
    assert retry == [False] * 10
    assert all(s.n_replayed == 10 for s in deployment.servers)


def test_preexisting_seen_ids_partition_to_shards():
    """Replays of submissions seen *before* the sharded fan-out existed
    are caught by the shard that now owns their slice of the id
    space."""
    deployment = _deployment()
    _, submissions = _stream(deployment, n=8)
    first, _ = run_pipelined(
        deployment.servers, submissions, batch_size=8, executor="inline"
    )
    assert first == [True] * 8
    fanout, _ = resolve_fanout(deployment.servers, "inline", n_shards=4)
    try:
        replayed, _ = run_pipelined(
            deployment.servers, submissions, batch_size=8, executor=fanout
        )
    finally:
        fanout.close()
    assert replayed == [False] * 8
    assert all(s.n_replayed == 8 for s in deployment.servers)


def test_end_run_fold_is_idempotent():
    """A second end_run (the pipeline's finally sweep on a reused
    backend) must not double-fold shard accumulators into the logical
    servers."""
    deployment = _deployment()
    _, submissions = _stream(deployment, n=6)
    fanout, _ = resolve_fanout(deployment.servers, "inline", n_shards=2)
    try:
        run_pipelined(
            deployment.servers, submissions, batch_size=8, executor=fanout
        )
        accepted = deployment.servers[0].n_accepted
        fanout.end_run()
        fanout.end_run()
        assert deployment.servers[0].n_accepted == accepted
    finally:
        fanout.close()


def test_tiered_cache_behind_sharded_fanout():
    """The full stack: tiered caches on the logical servers, shards
    spawn tiered slices, replays across runs are caught, and close
    releases every shard database."""
    deployment = _deployment()
    from repro.protocol import TieredReplayCache

    for server in deployment.servers:
        server._replay.close()
        server._replay = TieredReplayCache(l1_capacity=4)
    _, submissions = _stream(deployment, n=10)
    fanout, _ = resolve_fanout(deployment.servers, "inline", n_shards=2)
    shard_paths = [
        shard._replay.path
        for row in fanout.shards for shard in row
    ]
    try:
        first, _ = run_pipelined(
            deployment.servers, submissions, batch_size=4, executor=fanout
        )
        replayed, _ = run_pipelined(
            deployment.servers, submissions, batch_size=4, executor=fanout
        )
    finally:
        fanout.close()
    assert first == [True] * 10
    assert replayed == [False] * 10
    import os

    assert all(not os.path.exists(p) for p in shard_paths)
    for server in deployment.servers:
        assert len(server._seen_ids) == 10
        server._replay.close()
