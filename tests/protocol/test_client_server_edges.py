"""Edge cases and misuse handling across the client/server API."""

import random

import pytest

from repro.afe import BoolOrAfe, IntegerSumAfe
from repro.crypto import BoxKeyPair
from repro.field import FIELD87
from repro.protocol import PrioClient, PrioServer, ProtocolError
from repro.protocol.wire import ClientPacket, PacketKind, WireError
from repro.snip import ServerRandomness, SnipError, SnipVerifierParty
from repro.snip.verifier import Round1Message, VerificationContext


@pytest.fixture
def rng():
    return random.Random(135791)


def make_server(afe, index=0, n=2, epoch_size=1024):
    return PrioServer(
        afe, index, n, ServerRandomness(b"edge-seed"), epoch_size=epoch_size
    )


def test_client_box_key_count_mismatch(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    keys = [BoxKeyPair.generate(rng).public]  # one key for two servers
    client = PrioClient(afe, 2, server_box_keys=keys, rng=rng)
    with pytest.raises(ValueError):
        client.prepare_submission(3)


def test_client_submission_elements_accounting(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    client = PrioClient(afe, 3, rng=rng)
    submission = client.prepare_submission(5)
    assert submission.packets[0].n_elements == client.submission_elements()
    # Proof-free AFE: elements == k.
    or_client = PrioClient(BoolOrAfe(lambda_bits=8), 3, rng=rng)
    assert or_client.submission_elements() == 8


def test_server_rejects_misdelivered_packet(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    client = PrioClient(afe, 2, rng=rng)
    submission = client.prepare_submission(3)
    server1 = make_server(afe, index=1, n=2)
    with pytest.raises(ProtocolError):
        server1.receive(submission.packets[0])  # packet for server 0


def test_server_rejects_wrong_length_vector(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    server = make_server(afe)
    packet = ClientPacket(
        submission_id=b"\x01" * 16,
        server_index=0,
        kind=PacketKind.EXPLICIT,
        n_elements=3,
        body=FIELD87.encode_vector([1, 2, 3]),
    )
    with pytest.raises(WireError):
        server.receive(packet)


def test_server_without_box_key_rejects_sealed(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    server = make_server(afe)
    with pytest.raises(ProtocolError):
        server.receive_sealed(b"\x00" * 64)


def test_verifier_party_needs_two_servers(rng):
    afe = IntegerSumAfe(FIELD87, 2)
    circuit = afe.valid_circuit()
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"x").challenge(FIELD87, circuit, 0),
    )
    from repro.snip import prove_and_share

    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, afe.encode(1), 2, rng
    )
    with pytest.raises(SnipError):
        SnipVerifierParty(ctx, 0, 1, x_shares[0], proof_shares[0])


def test_verifier_round2_needs_all_messages(rng):
    afe = IntegerSumAfe(FIELD87, 2)
    circuit = afe.valid_circuit()
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"y").challenge(FIELD87, circuit, 0),
    )
    from repro.snip import prove_and_share

    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, afe.encode(1), 2, rng
    )
    party = SnipVerifierParty(ctx, 0, 2, x_shares[0], proof_shares[0])
    with pytest.raises(SnipError):
        party.round2([Round1Message(0, 0)])  # only one of two messages


def test_verifier_rejects_wrong_h_share_size(rng):
    afe = IntegerSumAfe(FIELD87, 2)
    circuit = afe.valid_circuit()
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"z").challenge(FIELD87, circuit, 0),
    )
    from repro.snip import prove_and_share

    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, afe.encode(1), 2, rng
    )
    proof_shares[0].h_evals = proof_shares[0].h_evals[:-1]
    with pytest.raises(SnipError):
        SnipVerifierParty(ctx, 0, 2, x_shares[0], proof_shares[0])


def test_epoch_counter_only_advances_on_processed_submissions(rng):
    afe = IntegerSumAfe(FIELD87, 2)
    server = make_server(afe, epoch_size=2)
    assert server._epoch == 0
    # Force context creation without traffic; epoch stays 0.
    server._context()
    assert server._epoch == 0


def test_stats_counts_match(rng):
    from repro.protocol import PrioDeployment

    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    deployment.submit(3)
    deployment.submit(9)

    def corrupt(submission):
        packet = submission.packets[-1]
        vec = FIELD87.decode_vector(packet.body)
        vec[0] = (vec[0] + 5) % FIELD87.modulus
        submission.packets[-1] = ClientPacket(
            submission_id=packet.submission_id,
            server_index=packet.server_index,
            kind=PacketKind.EXPLICIT,
            n_elements=packet.n_elements,
            body=FIELD87.encode_vector(vec),
        )

    deployment.submit(1, mutate=corrupt)
    stats = deployment.stats
    assert stats.n_submitted == 3
    assert stats.n_accepted == 2
    assert stats.n_rejected == 1
    assert stats.upload_bytes_total > 0
    assert deployment.publish() == 12
    assert stats.broadcast_elements  # filled in by publish()
