"""Multi-process server fan-out: equivalence, failure paths, lifecycle.

The executor knob must not be observable in any protocol outcome:
decisions, aggregates, statistics, and replay protection are asserted
bit-identical across the ``inline``/``thread``/``process`` backends.
Failure paths get the adversarial treatment — a worker that dies
mid-batch (thread or process) must reject that batch alone, keep the
stream flowing, and leave no leaked executors or child processes.
"""

import multiprocessing
import random
import threading
from dataclasses import replace

import pytest

from repro.afe import IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import (
    AsyncPrioPipeline,
    FanoutError,
    PrioClient,
    PrioDeployment,
    PrioServer,
    ProcessFanout,
    resolve_fanout,
    run_pipelined,
)
from repro.snip.verifier import ServerRandomness

BACKENDS = ["inline", "thread", "process"]


@pytest.fixture
def rng():
    return random.Random(0xFA4007)


def _no_leaks():
    """Leak probe: returns (thread_count, child_processes)."""
    return len(threading.enumerate()), multiprocessing.active_children()


def _twin_deployment(batch_size=4, n_servers=3, **kwargs):
    return PrioDeployment.create(
        IntegerSumAfe(FIELD87, 8), n_servers, seed=b"fanout",
        batch_size=batch_size, rng=random.Random(1207), **kwargs,
    )


def _prepared_stream(deployment, rng, n=13, corrupt=None):
    values = [rng.randrange(256) for _ in range(n)]
    submissions = deployment.client.prepare_submissions(values)
    if corrupt is not None:
        packet = submissions[corrupt].packets[1]
        body = bytearray(packet.body)
        body[0] ^= 1
        submissions[corrupt].packets[1] = replace(packet, body=bytes(body))
    return values, submissions


# ----------------------------------------------------------------------
# Equivalence across backends
# ----------------------------------------------------------------------


def test_backends_bit_identical_decisions_and_aggregate(rng):
    """Same stream (one corrupted upload hidden mid-batch) through all
    three backends: decisions, aggregate, and stats must be identical."""
    outcomes = []
    for backend in BACKENDS:
        deployment = _twin_deployment()
        values, submissions = _prepared_stream(
            deployment, random.Random(17), n=13, corrupt=6
        )
        decisions = deployment.deliver_pipelined(
            submissions, executor=backend
        )
        honest = sum(v for i, v in enumerate(values) if i != 6)
        outcomes.append(
            (
                decisions,
                deployment.publish(),
                deployment.stats.n_accepted,
                deployment.stats.n_rejected,
                [s.n_replayed for s in deployment.servers],
            )
        )
        assert deployment.publish() == honest
    assert outcomes[0] == outcomes[1] == outcomes[2]
    assert outcomes[0][0] == [True] * 6 + [False] + [True] * 6


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_stats_and_batching(backend, rng):
    deployment = _twin_deployment(batch_size=2)
    submissions = deployment.client.prepare_submissions([1, 2, 3, 4, 5])
    decisions, stats = run_pipelined(
        deployment.servers, submissions, batch_size=2, executor=backend
    )
    assert decisions == [True] * 5
    assert stats.n_batches == 3
    assert stats.batch_sizes == [2, 2, 1]
    assert stats.executor == backend
    assert deployment.servers[0].n_accepted == 5


def test_process_backend_encrypted_transport(rng):
    deployment = _twin_deployment(batch_size=2, encrypt=True)
    submissions = deployment.client.prepare_submissions([3, 7, 11])
    assert deployment.deliver_pipelined(
        submissions, executor="process"
    ) == [True] * 3
    assert deployment.publish() == 21


def test_process_state_syncs_back_for_replay_protection(rng):
    """A submission verified inside worker processes must still be
    replay-protected afterward in the driver process (state merge)."""
    deployment = _twin_deployment(batch_size=4)
    values, submissions = _prepared_stream(deployment, rng, n=4)
    assert deployment.deliver_pipelined(
        submissions, executor="process"
    ) == [True] * 4
    # Replay through the synchronous driver-side path: must reject.
    assert deployment.deliver(submissions[0]) is False
    assert deployment.servers[0].n_replayed >= 1
    assert deployment.publish() == sum(values)


def test_replay_across_runs_and_backends(rng):
    """Replay protection spans runs executed on different backends."""
    deployment = _twin_deployment(batch_size=2)
    values, submissions = _prepared_stream(deployment, rng, n=3)
    assert deployment.deliver_pipelined(
        submissions, executor="thread"
    ) == [True] * 3
    assert deployment.deliver_pipelined(
        submissions, executor="process"
    ) == [False] * 3
    assert deployment.publish() == sum(values)


def test_persistent_process_fanout_reuse(rng):
    """A caller-owned ProcessFanout serves many runs (pools stay warm)
    and is not closed by the pipeline."""
    deployment = _twin_deployment(batch_size=4)
    fanout = ProcessFanout(deployment.servers)
    try:
        total = 0
        for round_index in range(3):
            values, submissions = _prepared_stream(deployment, rng, n=5)
            decisions = deployment.deliver_pipelined(
                submissions, executor=fanout
            )
            assert decisions == [True] * 5
            total += sum(values)
        assert deployment.publish() == total
        assert deployment.stats.n_accepted == 15
    finally:
        fanout.close()
    assert multiprocessing.active_children() == []


def test_failed_state_push_fails_run_without_clobbering_state(rng):
    """If a reused process backend cannot be re-synced (healthy workers,
    unpicklable server), the run must fail outright — not execute
    against stale worker state — and must not overwrite driver-side
    server state with a stale snapshot afterward."""
    deployment = _twin_deployment(batch_size=4)
    fanout = ProcessFanout(deployment.servers)
    try:
        values1, subs1 = _prepared_stream(deployment, rng, n=4)
        assert deployment.deliver_pipelined(
            subs1, executor=fanout
        ) == [True] * 4
        # Advance driver-side state between runs via the sync path.
        values2, subs2 = _prepared_stream(deployment, rng, n=2)
        assert deployment.deliver_batch(subs2) == [True] * 2
        accepted_before = deployment.servers[0].n_accepted
        shares_before = deployment.publish_shares()
        deployment.servers[0].poison = lambda: None  # unpicklable
        values3, subs3 = _prepared_stream(deployment, rng, n=4)
        assert deployment.deliver_pipelined(
            subs3, executor=fanout
        ) == [False] * 4
        assert deployment.servers[0].n_accepted == accepted_before
        assert deployment.publish_shares() == shares_before
        # The backend recovers once the server pickles again.
        del deployment.servers[0].poison
        values4, subs4 = _prepared_stream(deployment, rng, n=3)
        assert deployment.deliver_pipelined(
            subs4, executor=fanout
        ) == [True] * 3
    finally:
        fanout.close()


def test_resolve_fanout_rejects_unknown_kind():
    deployment = _twin_deployment()
    with pytest.raises(FanoutError):
        resolve_fanout(deployment.servers, "distributed-ledger")


def test_resolve_fanout_rejects_raw_process_pool():
    """A bare ProcessPoolExecutor would mutate throwaway pickled server
    copies (silent total rejection) — it must be refused up front."""
    from concurrent.futures import ProcessPoolExecutor

    deployment = _twin_deployment()
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        with pytest.raises(FanoutError, match="process"):
            resolve_fanout(deployment.servers, pool)
    finally:
        pool.shutdown(wait=True)


def test_resolve_auto_prefers_thread_for_tiny_batches():
    deployment = _twin_deployment()
    fanout, owned = resolve_fanout(deployment.servers, "auto", batch_size=1)
    try:
        assert fanout.kind in ("thread", "inline")
        assert owned
    finally:
        fanout.close()


def test_shuffled_server_list_routes_by_protocol_index(rng):
    """Packets must reach the server they are addressed to even when
    the servers list is not in protocol-index order."""
    deployment = _twin_deployment(batch_size=4)
    values, submissions = _prepared_stream(deployment, rng, n=5)
    shuffled = [deployment.servers[i] for i in (2, 0, 1)]
    decisions, _ = run_pipelined(
        shuffled, submissions, batch_size=4, executor="inline"
    )
    assert decisions == [True] * 5
    assert deployment.publish() == sum(values)


def test_deployment_level_process_executor_caches_pools(rng):
    """A string executor on the deployment resolves to one fan-out,
    reused across pipelined calls, and released by close()."""
    deployment = _twin_deployment(batch_size=4, executor="process")
    with deployment:
        total = 0
        for round_index in range(2):
            values, submissions = _prepared_stream(deployment, rng, n=5)
            assert deployment.deliver_pipelined(submissions) == [True] * 5
            total += sum(values)
        fanout = deployment._fanout
        assert fanout is not None and fanout.kind == "process"
        assert deployment._fanout is fanout  # reused, not rebuilt
        assert deployment.publish() == total
    assert deployment._fanout is None
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Failure paths: a worker dying mid-batch
# ----------------------------------------------------------------------


class CrashOnIngestServer(PrioServer):
    """Raises inside the ingest sweep for marked submission ids.

    Picklable (plain attributes), so the crash ships into worker
    processes with the server — the process-backend fault injection.
    """

    crash_sids: frozenset = frozenset()

    def _ingest_batch(self, pendings):
        if any(p.submission_id in self.crash_sids for p in pendings):
            raise RuntimeError("injected ingest crash")
        return super()._ingest_batch(pendings)


class CrashOnRound1Server(PrioServer):
    """Raises at round 1 (verification) for marked submission ids."""

    crash_sids: frozenset = frozenset()

    def begin_verification_batch(self, pendings):
        if any(p.submission_id in self.crash_sids for p in pendings):
            raise RuntimeError("injected round-1 crash")
        return super().begin_verification_batch(pendings)


class CrashOnAccumulateServer(PrioServer):
    """Raises at the Aggregate commit point for marked submission ids."""

    crash_sids: frozenset = frozenset()

    def accumulate_batch(self, pendings, decisions):
        if any(p.submission_id in self.crash_sids for p in pendings):
            raise RuntimeError("injected accumulate crash")
        return super().accumulate_batch(pendings, decisions)


def _crashy_setup(server_cls, crash_batch, rng, n=12, batch=4, n_servers=3):
    afe = IntegerSumAfe(FIELD87, 8)
    randomness = ServerRandomness(b"crash")
    servers = [
        server_cls(afe, i, n_servers, randomness) for i in range(n_servers)
    ]
    client = PrioClient(afe, n_servers, rng=rng)
    values = [rng.randrange(256) for _ in range(n)]
    submissions = client.prepare_submissions(values)
    marked = frozenset(
        submissions[i].packets[0].submission_id
        for i in range(crash_batch * batch, (crash_batch + 1) * batch)
    )
    servers[1].crash_sids = marked  # only one server crashes
    return servers, values, submissions


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_worker_crash_at_verification_rejects_batch_alone(backend, rng):
    before_threads, _ = _no_leaks()
    servers, values, submissions = _crashy_setup(
        CrashOnRound1Server, crash_batch=1, rng=rng
    )
    decisions, stats = run_pipelined(
        servers, submissions, batch_size=4, executor=backend
    )
    assert decisions == [True] * 4 + [False] * 4 + [True] * 4
    assert stats.n_worker_failures == 4
    # The crashed batch was rejected, not lost: every server decided it.
    assert servers[0].n_accepted == 8
    assert servers[0].n_rejected == 4
    assert servers[0]._pending_ids == set()
    after_threads, children = _no_leaks()
    assert after_threads <= before_threads
    assert children == []


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_worker_crash_at_ingest_releases_ids_for_retry(backend, rng):
    """An ingest-stage crash abandons (does not decide) the batch: an
    honest retry of the same submissions must succeed afterward."""
    servers, values, submissions = _crashy_setup(
        CrashOnIngestServer, crash_batch=1, rng=rng
    )
    decisions, stats = run_pipelined(
        servers, submissions, batch_size=4, executor=backend
    )
    assert decisions == [True] * 4 + [False] * 4 + [True] * 4
    assert stats.n_worker_failures == 4
    assert servers[0]._pending_ids == set()
    # Clear the fault and retry the abandoned batch: accepted, no replay.
    servers[1].crash_sids = frozenset()
    retry, _ = run_pipelined(
        servers, submissions[4:8], batch_size=4, executor=backend
    )
    assert retry == [True] * 4
    assert servers[0].n_accepted == 12
    assert servers[0].n_replayed == 0
    assert multiprocessing.active_children() == []


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_crash_at_commit_point_is_fatal_not_silent(backend, rng):
    """An accumulate-sweep failure cannot be isolated to the batch —
    peers that already committed cannot roll back — so the run must
    fail loudly rather than continue with divergent accumulators."""
    servers, values, submissions = _crashy_setup(
        CrashOnAccumulateServer, crash_batch=1, rng=rng
    )
    with pytest.raises(RuntimeError, match="accumulate crash"):
        run_pipelined(servers, submissions, batch_size=4, executor=backend)
    assert multiprocessing.active_children() == []


def test_dead_worker_process_fails_batches_without_hanging(rng):
    """A hard-killed worker process (BrokenProcessPool) must fail the
    affected submissions and still return, with every child reaped."""
    deployment = _twin_deployment(batch_size=4, n_servers=2)
    values, submissions = _prepared_stream(deployment, rng, n=8)
    fanout = ProcessFanout(deployment.servers)
    try:
        for child in multiprocessing.active_children():
            child.kill()
        decisions = deployment.deliver_pipelined(
            submissions, executor=fanout
        )
        assert decisions == [False] * 8
    finally:
        fanout.close()
    assert multiprocessing.active_children() == []


def test_worker_death_after_sync_surfaces_state_loss(rng):
    """A worker dying after a successful state push may have committed
    batches the driver never sees; end_run must flag the divergence
    risk instead of silently keeping the pre-run snapshot."""
    import warnings

    deployment = _twin_deployment(batch_size=4, n_servers=2)
    fanout = ProcessFanout(deployment.servers)  # begin_run succeeded
    try:
        for child in multiprocessing.active_children():
            child.kill()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fanout.end_run()
        assert fanout.degraded
        assert any(
            "lost worker state" in str(w.message) for w in caught
        )
    finally:
        fanout.close()
    assert multiprocessing.active_children() == []


def test_sweep_cancellation_wins_over_worker_error():
    """Cancellation arriving while a sweep drains after a worker error
    must surface as CancelledError — folding it into the error slot
    would consume the stage task's one-shot cancellation and hang the
    pipeline shutdown."""
    import asyncio
    from concurrent.futures import ThreadPoolExecutor

    from repro.protocol import LocalFanout

    deployment = _twin_deployment(n_servers=2)
    fanout = LocalFanout(
        deployment.servers,
        ThreadPoolExecutor(max_workers=2),
        own_executor=True,
    )
    release = threading.Event()

    class FakeOps:
        def __init__(self, fail):
            self.fail = fail

        def op(self):
            if self.fail:
                raise RuntimeError("worker error")
            release.wait(5)
            return "ok"

    fanout.ops = [FakeOps(True), FakeOps(False)]

    async def main():
        task = asyncio.create_task(fanout.sweep("op", [(), ()]))
        await asyncio.sleep(0.05)  # op 0 has failed, op 1 is blocked
        task.cancel()
        release.set()
        with pytest.raises(asyncio.CancelledError):
            await task

    try:
        asyncio.run(main())
    finally:
        release.set()
        fanout.close()


# ----------------------------------------------------------------------
# Lifecycle: repeated runs must not leak workers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_repeated_runs_leak_no_threads_or_processes(backend, rng):
    deployment = _twin_deployment(batch_size=4)
    before_threads, _ = _no_leaks()
    total = 0
    for round_index in range(4):
        values, submissions = _prepared_stream(deployment, rng, n=6)
        pipeline = AsyncPrioPipeline(
            deployment.servers, batch_size=4, executor=backend
        )
        assert pipeline.run(submissions) == [True] * 6
        total += sum(values)
    after_threads, children = _no_leaks()
    assert after_threads <= before_threads
    assert children == []
    assert deployment.publish() == total
