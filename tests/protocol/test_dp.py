"""Tests for the distributed differential-privacy extension (Section 7)."""

import random

import numpy as np
import pytest

from repro.afe import IntegerSumAfe
from repro.field import FIELD87
from repro.field.batch import BatchVector, backend_name, signed_delta_batch
from repro.protocol import (
    DpError,
    PrioDeployment,
    add_noise_to_accumulator,
    discrete_laplace_scale,
    server_noise_share,
    server_noise_vector,
)


@pytest.fixture
def generator():
    return np.random.default_rng(20260610)


def test_noise_share_is_integer(generator):
    share = server_noise_share(1.0, 1.0, 5, generator)
    assert isinstance(share, int)


def test_noise_sum_is_centered(generator):
    """Total noise across servers has mean ~0."""
    totals = []
    for _ in range(3000):
        totals.append(
            sum(server_noise_share(1.0, 1.0, 5, generator) for _ in range(5))
        )
    scale = discrete_laplace_scale(1.0, 1.0)
    mean = np.mean(totals)
    assert abs(mean) < 5 * scale / np.sqrt(len(totals))


def test_noise_scale_matches_theory(generator):
    """Empirical stddev of the summed noise ~ the DLap stddev."""
    epsilon, sensitivity, s = 0.5, 1.0, 3
    totals = [
        sum(
            server_noise_share(epsilon, sensitivity, s, generator)
            for _ in range(s)
        )
        for _ in range(4000)
    ]
    theory = discrete_laplace_scale(epsilon, sensitivity)
    measured = float(np.std(totals))
    assert 0.8 * theory < measured < 1.25 * theory


def test_noise_grows_as_epsilon_shrinks():
    assert discrete_laplace_scale(0.1, 1.0) > discrete_laplace_scale(1.0, 1.0)


def test_parameter_validation(generator):
    with pytest.raises(DpError):
        server_noise_share(0, 1.0, 3, generator)
    with pytest.raises(DpError):
        server_noise_share(1.0, 0, 3, generator)
    with pytest.raises(DpError):
        server_noise_share(1.0, 1.0, 0, generator)


def test_accumulator_noising(generator):
    field = FIELD87
    accumulator = [100, 200, 300]
    noised = add_noise_to_accumulator(
        field, accumulator, epsilon=2.0, sensitivity=1.0,
        n_servers=2, generator=generator,
    )
    assert len(noised) == 3
    for original, noisy in zip(accumulator, noised):
        # Noise at eps=2 is small; centered lift recovers the offset.
        offset = field.to_signed(field.sub(noisy, original))
        assert abs(offset) < 50


def test_vectorized_sampler_matches_scalar_statistics(generator):
    """The batched Polya sampler must agree with the scalar reference:
    same seed class, matched mean/stddev, and the per-share stddev
    implied by ``discrete_laplace_scale`` (DLap variance divides evenly
    across the s servers, so one share has stddev scale/sqrt(s))."""
    epsilon, sensitivity, s = 0.5, 1.0, 3
    n = 6000
    positives, negatives = server_noise_vector(
        n, epsilon, sensitivity, s, np.random.default_rng(42)
    )
    assert positives.shape == negatives.shape == (n,)
    assert positives.min() >= 0 and negatives.min() >= 0
    batched = positives.astype(np.int64) - negatives.astype(np.int64)
    scalar_gen = np.random.default_rng(42)
    scalar = np.array([
        server_noise_share(epsilon, sensitivity, s, scalar_gen)
        for _ in range(n)
    ])
    share_scale = discrete_laplace_scale(epsilon, sensitivity) / np.sqrt(s)
    for sample in (batched, scalar):
        assert abs(float(np.mean(sample))) < 5 * share_scale / np.sqrt(n)
        assert 0.85 * share_scale < float(np.std(sample)) < 1.2 * share_scale
    # The two samplers draw from the same distribution: matched moments.
    assert abs(float(np.std(batched)) - float(np.std(scalar))) < (
        0.25 * share_scale
    )


def test_signed_delta_batch_matches_field_arithmetic(generator):
    """The vectorized signed embedding is exact field arithmetic."""
    field = FIELD87
    positives = [0, 1, 5, 2**40, 17, 0]
    negatives = [0, 4, 5, 3, 2**50, 123456]
    batch = signed_delta_batch(field, positives, negatives)
    expected = [
        field.sub(field.reduce(a), field.reduce(b))
        for a, b in zip(positives, negatives)
    ]
    assert batch.to_ints() == expected
    assert batch.backend == backend_name()


def test_plane_resident_accumulator_noising(generator):
    """Noising a BatchVector accumulator stays on the same backend and
    never materializes Python ints until the caller decodes."""
    field = FIELD87
    acc = BatchVector.from_ints(field, [100, 200, 300, 400])
    noised = add_noise_to_accumulator(
        field, acc, epsilon=2.0, sensitivity=1.0,
        n_servers=2, generator=generator,
    )
    assert isinstance(noised, BatchVector)
    assert noised.backend == acc.backend
    assert noised.shape == (4,)
    for original, value in zip([100, 200, 300, 400], noised.to_ints()):
        assert 0 <= value < field.modulus  # canonical
        assert abs(field.to_signed(field.sub(value, original))) < 50


def test_deployment_noised_publish_stays_canonical(generator):
    """End to end: server-side plane-resident noising keeps publish()
    field-canonical and the decoded aggregate near the truth."""
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(afe, 3, rng=random.Random(7))
    values = [50, 100, 150, 200]
    assert deployment.submit_many(values) == 4
    for server in deployment.servers:
        backend_before = server._accumulator.backend
        server.add_dp_noise(
            epsilon=1.0, sensitivity=255.0, generator=generator
        )
        # Still a plane, still on the server's configured backend (the
        # tiny-batch heuristic may legitimately have chosen pure here).
        assert isinstance(server._accumulator, BatchVector)
        assert server._accumulator.backend == backend_before
        for value in server.publish():
            assert 0 <= value < FIELD87.modulus
    # The total noise may be negative: lift the published sum signedly.
    noisy = FIELD87.to_signed(FIELD87.reduce(deployment.publish()))
    scale = discrete_laplace_scale(1.0, 255.0)
    assert abs(noisy - sum(values)) < 10 * scale


def test_noised_aggregate_still_useful(generator):
    """Accuracy sanity: with n=1000 clients and eps=1, the noisy sum is
    within a tiny relative error of the truth."""
    field = FIELD87
    true_sum = 50_000
    total_noise = sum(
        server_noise_share(1.0, 1.0, 5, generator) for _ in range(5)
    )
    noisy = field.to_signed(
        field.add(true_sum, field.from_signed(total_noise))
    )
    assert abs(noisy - true_sum) < 100  # relative error < 0.2%
