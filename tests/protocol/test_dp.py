"""Tests for the distributed differential-privacy extension (Section 7)."""

import numpy as np
import pytest

from repro.field import FIELD87
from repro.protocol import (
    DpError,
    add_noise_to_accumulator,
    discrete_laplace_scale,
    server_noise_share,
)


@pytest.fixture
def generator():
    return np.random.default_rng(20260610)


def test_noise_share_is_integer(generator):
    share = server_noise_share(1.0, 1.0, 5, generator)
    assert isinstance(share, int)


def test_noise_sum_is_centered(generator):
    """Total noise across servers has mean ~0."""
    totals = []
    for _ in range(3000):
        totals.append(
            sum(server_noise_share(1.0, 1.0, 5, generator) for _ in range(5))
        )
    scale = discrete_laplace_scale(1.0, 1.0)
    mean = np.mean(totals)
    assert abs(mean) < 5 * scale / np.sqrt(len(totals))


def test_noise_scale_matches_theory(generator):
    """Empirical stddev of the summed noise ~ the DLap stddev."""
    epsilon, sensitivity, s = 0.5, 1.0, 3
    totals = [
        sum(
            server_noise_share(epsilon, sensitivity, s, generator)
            for _ in range(s)
        )
        for _ in range(4000)
    ]
    theory = discrete_laplace_scale(epsilon, sensitivity)
    measured = float(np.std(totals))
    assert 0.8 * theory < measured < 1.25 * theory


def test_noise_grows_as_epsilon_shrinks():
    assert discrete_laplace_scale(0.1, 1.0) > discrete_laplace_scale(1.0, 1.0)


def test_parameter_validation(generator):
    with pytest.raises(DpError):
        server_noise_share(0, 1.0, 3, generator)
    with pytest.raises(DpError):
        server_noise_share(1.0, 0, 3, generator)
    with pytest.raises(DpError):
        server_noise_share(1.0, 1.0, 0, generator)


def test_accumulator_noising(generator):
    field = FIELD87
    accumulator = [100, 200, 300]
    noised = add_noise_to_accumulator(
        field, accumulator, epsilon=2.0, sensitivity=1.0,
        n_servers=2, generator=generator,
    )
    assert len(noised) == 3
    for original, noisy in zip(accumulator, noised):
        # Noise at eps=2 is small; centered lift recovers the offset.
        offset = field.to_signed(field.sub(noisy, original))
        assert abs(offset) < 50


def test_noised_aggregate_still_useful(generator):
    """Accuracy sanity: with n=1000 clients and eps=1, the noisy sum is
    within a tiny relative error of the truth."""
    field = FIELD87
    true_sum = 50_000
    total_noise = sum(
        server_noise_share(1.0, 1.0, 5, generator) for _ in range(5)
    )
    noisy = field.to_signed(
        field.add(true_sum, field.from_signed(total_noise))
    )
    assert abs(noisy - true_sum) < 100  # relative error < 0.2%
