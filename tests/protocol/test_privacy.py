"""Privacy-property tests: anonymity, intersection attacks, and the DP
defence (Section 7, Appendix A)."""

import random

import numpy as np
import pytest

from repro.afe import IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import PrioDeployment
from repro.protocol.dp import discrete_laplace_scale


@pytest.fixture
def rng():
    return random.Random(808080)


def run_sum(values, seed, rng_seed):
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(
        afe, 3, seed=seed, rng=random.Random(rng_seed)
    )
    deployment.submit_many(values)
    return deployment


def test_aggregate_invariant_under_client_permutation(rng):
    """Claim 4 machinery: sum is symmetric, so the published aggregate
    carries no information about *which* client held which value."""
    values = [rng.randrange(256) for _ in range(10)]
    permuted = list(values)
    rng.shuffle(permuted)
    a = run_sum(values, b"perm", 1).publish()
    b = run_sum(permuted, b"perm", 2).publish()
    assert a == b


def test_individual_shares_look_uniform(rng):
    """No single server's accumulator reveals the total: any s-1
    accumulators are uniformly distributed (statistical spot check on
    the low bits across repeated runs)."""
    low_bits = []
    for trial in range(200):
        deployment = run_sum([7], b"u" + bytes([trial % 256]), trial)
        share = deployment.servers[0].publish()[0]
        low_bits.append(share & 1)
    ones = sum(low_bits)
    assert 60 < ones < 140  # ~Binomial(200, 0.5)


def test_intersection_attack_without_dp(rng):
    """The Section 7 attack: comparing aggregates with and without one
    client reveals that client's exact value when no noise is added."""
    values = [rng.randrange(256) for _ in range(20)]
    target = values[-1]
    with_target = run_sum(values, b"ia", 10).publish()
    without_target = run_sum(values[:-1], b"ia", 11).publish()
    assert with_target - without_target == target  # attack succeeds


def test_intersection_attack_blunted_by_dp(rng):
    """With distributed DP noise the difference of the two published
    sums is the value plus DLap noise — the adversary's estimate is
    fuzzy by the noise scale."""
    generator = np.random.default_rng(77)
    epsilon, sensitivity = 0.2, 255.0
    values = [rng.randrange(256) for _ in range(20)]
    target = values[-1]

    estimates = []
    for trial in range(30):
        d_with = run_sum(values, b"dp", 100 + trial)
        d_without = run_sum(values[:-1], b"dp", 200 + trial)
        for deployment in (d_with, d_without):
            for server in deployment.servers:
                server.add_dp_noise(epsilon, sensitivity, generator)
        diff = FIELD87.to_signed(
            FIELD87.sub(d_with.publish(), d_without.publish())
        )
        estimates.append(diff)

    scale = discrete_laplace_scale(epsilon, sensitivity)
    errors = [abs(e - target) for e in estimates]
    # The noise must actually perturb the attacker's view...
    assert max(errors) > scale / 4
    # ...by roughly the calibrated amount on average.
    mean_error = sum(errors) / len(errors)
    assert mean_error > scale / 10


def test_upload_packets_carry_no_plaintext(rng):
    """The explicit packet body must not contain the encoded value in
    the clear (it is one uniform additive share)."""
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    value = 200
    submission = deployment.client.prepare_submission(value)
    explicit = FIELD87.decode_vector(submission.packets[-1].body)
    # First element is a share of 200 — a uniform field element; the
    # probability it literally equals 200 is ~2^-87.
    assert explicit[0] != value
