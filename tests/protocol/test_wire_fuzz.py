"""Property-based fuzzing of the wire format.

A Prio server parses packets from untrusted clients; decoding must
either return a faithful packet or raise :class:`WireError` — never
crash, never mis-parse.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import FIELD87, FIELD_SMALL
from repro.protocol.wire import (
    ClientPacket,
    PacketKind,
    WireError,
    new_submission_id,
)
from repro.sharing.prg import SEED_SIZE


@given(data=st.binary(min_size=0, max_size=200))
@settings(max_examples=200, deadline=None)
def test_decode_never_crashes_on_garbage(data):
    try:
        packet = ClientPacket.decode(data, FIELD87)
    except WireError:
        return
    # If it decoded, re-encoding must be the identity.
    assert packet.encode() == data


@given(
    server_index=st.integers(0, 65535),
    n_elements=st.integers(0, 50),
    seed_byte=st.integers(0, 255),
)
@settings(max_examples=100, deadline=None)
def test_seed_packet_roundtrip_property(server_index, n_elements, seed_byte):
    packet = ClientPacket(
        submission_id=bytes([seed_byte]) * 16,
        server_index=server_index,
        kind=PacketKind.SEED,
        n_elements=n_elements,
        body=bytes([seed_byte ^ 0xFF]) * SEED_SIZE,
    )
    decoded = ClientPacket.decode(packet.encode(), FIELD87)
    assert decoded == packet
    assert len(decoded.share_vector(FIELD87)) == n_elements


@given(
    values=st.lists(
        st.integers(0, FIELD_SMALL.modulus - 1), min_size=0, max_size=30
    ),
    seed=st.integers(0, 2**32),
)
@settings(max_examples=100, deadline=None)
def test_explicit_packet_roundtrip_property(values, seed):
    rng = random.Random(seed)
    packet = ClientPacket(
        submission_id=new_submission_id(rng),
        server_index=rng.randrange(100),
        kind=PacketKind.EXPLICIT,
        n_elements=len(values),
        body=FIELD_SMALL.encode_vector(values),
    )
    decoded = ClientPacket.decode(packet.encode(), FIELD_SMALL)
    assert decoded.share_vector(FIELD_SMALL) == values


@given(
    data=st.binary(min_size=26, max_size=100),
    flip=st.integers(0, 25),
)
@settings(max_examples=150, deadline=None)
def test_header_bitflips_detected_or_consistent(data, flip):
    """Start from a valid packet, flip a header byte: decode must raise
    WireError or produce a packet that re-encodes to the mutated bytes
    (i.e. the mutation only changed benign header fields)."""
    base = ClientPacket(
        submission_id=b"\x11" * 16,
        server_index=3,
        kind=PacketKind.SEED,
        n_elements=7,
        body=b"\x22" * SEED_SIZE,
    ).encode()
    mutated = bytearray(base)
    mutated[flip] ^= 0x41
    mutated = bytes(mutated)
    if mutated == base:
        return
    try:
        packet = ClientPacket.decode(mutated, FIELD87)
    except WireError:
        return
    assert packet.encode() == mutated


def test_truncation_always_detected():
    base = ClientPacket(
        submission_id=b"\x33" * 16,
        server_index=0,
        kind=PacketKind.SEED,
        n_elements=4,
        body=b"\x44" * SEED_SIZE,
    ).encode()
    for cut in range(len(base)):
        with pytest.raises(WireError):
            ClientPacket.decode(base[:cut], FIELD87)
