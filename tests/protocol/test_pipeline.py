"""End-to-end pipeline tests: client -> servers -> aggregate -> decode."""

import random

import pytest

from repro.afe import (
    BoolOrAfe,
    FrequencyCountAfe,
    IntegerSumAfe,
    LinRegAfe,
    MaxAfe,
    VarianceAfe,
)
from repro.field import FIELD87
from repro.protocol import (
    NoPrivacyPipeline,
    NoRobustnessPipeline,
    PrioDeployment,
    ProtocolError,
)


@pytest.fixture
def rng():
    return random.Random(121212)


@pytest.mark.parametrize("n_servers", [2, 3, 5])
def test_sum_pipeline(n_servers, rng):
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(afe, n_servers, rng=rng)
    values = [rng.randrange(256) for _ in range(20)]
    assert deployment.submit_many(values) == 20
    assert deployment.publish() == sum(values)
    assert deployment.stats.n_accepted == 20
    assert deployment.stats.n_rejected == 0


def test_variance_pipeline(rng):
    import statistics

    afe = VarianceAfe(FIELD87, 6)
    deployment = PrioDeployment.create(afe, 3, rng=rng)
    values = [rng.randrange(64) for _ in range(15)]
    deployment.submit_many(values)
    mean, variance = deployment.publish()
    assert float(mean) == pytest.approx(statistics.mean(values))
    assert float(variance) == pytest.approx(statistics.pvariance(values))


def test_histogram_pipeline(rng):
    from collections import Counter

    afe = FrequencyCountAfe(FIELD87, 5)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    values = [rng.randrange(5) for _ in range(30)]
    deployment.submit_many(values)
    histogram = deployment.publish()
    counts = Counter(values)
    assert histogram == [counts.get(i, 0) for i in range(5)]


def test_boolean_or_pipeline_no_snip(rng):
    """GF(2) AFEs run with no proof at all (Valid is trivially true)."""
    afe = BoolOrAfe(lambda_bits=32)
    deployment = PrioDeployment.create(afe, 3, rng=rng)
    deployment.submit_many([False, False, True, False])
    assert deployment.publish() is True
    # No verification traffic for proof-free AFEs.
    assert all(s.elements_broadcast == 0 for s in deployment.servers)


def test_max_pipeline(rng):
    afe = MaxAfe(domain_size=32, lambda_bits=32)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    deployment.submit_many([5, 19, 3])
    assert deployment.publish() == 19


def test_regression_pipeline(rng):
    afe = LinRegAfe(FIELD87, dimension=1, n_bits=10)
    deployment = PrioDeployment.create(afe, 3, rng=rng)
    data = [([x], 5 * x + 2) for x in range(1, 30)]
    deployment.submit_many(data)
    coeffs = deployment.publish()
    assert coeffs[0] == pytest.approx(2, abs=1e-6)
    assert coeffs[1] == pytest.approx(5, abs=1e-6)


def test_encrypted_transport(rng):
    """Sealed-box transport end to end."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, encrypt=True, rng=rng)
    values = [3, 7, 11]
    assert deployment.submit_many(values) == 3
    assert deployment.publish() == 21


def test_uncompressed_sharing(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(
        afe, 3, use_prg_compression=False, rng=rng
    )
    deployment.submit_many([1, 2, 3])
    assert deployment.publish() == 6


def test_replay_rejected(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    submission = deployment.client.prepare_submission(5)
    assert deployment.deliver(submission)
    assert not deployment.deliver(submission)  # replay
    assert deployment.publish() == 5
    assert deployment.servers[0].n_replayed == 1


def test_needs_two_servers(rng):
    with pytest.raises(ProtocolError):
        PrioDeployment.create(IntegerSumAfe(FIELD87, 4), 1, rng=rng)


def test_epoch_rotation(rng):
    """Contexts rotate after epoch_size submissions and still verify."""
    afe = IntegerSumAfe(FIELD87, 2)
    deployment = PrioDeployment.create(afe, 2, epoch_size=3, rng=rng)
    values = [rng.randrange(4) for _ in range(10)]
    assert deployment.submit_many(values) == 10
    assert deployment.publish() == sum(values)
    assert deployment.servers[0]._epoch >= 2


def test_deterministic_with_seeded_rng():
    afe = IntegerSumAfe(FIELD87, 4)
    d1 = PrioDeployment.create(afe, 2, seed=b"s", rng=random.Random(1))
    d2 = PrioDeployment.create(afe, 2, seed=b"s", rng=random.Random(1))
    s1 = d1.client.prepare_submission(9)
    s2 = d2.client.prepare_submission(9)
    assert s1.packets[0].encode() == s2.packets[0].encode()


# ----------------------------------------------------------------------
# Batched pipeline (batch_size knob)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("batch_size", [1, 3, 8])
def test_batched_pipeline_matches_unbatched(batch_size, rng):
    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(
        afe, 3, batch_size=batch_size, rng=rng
    )
    values = [rng.randrange(256) for _ in range(20)]
    assert deployment.submit_many(values) == 20
    assert deployment.publish() == sum(values)
    assert deployment.stats.n_accepted == 20


def test_batched_stats_counted_per_submission(rng):
    """Regression: under batched accept/reject, ``n_rejected`` and
    ``upload_bytes_total`` must be counted per submission, never per
    batch."""
    from dataclasses import replace

    afe = IntegerSumAfe(FIELD87, 8)
    deployment = PrioDeployment.create(afe, 2, batch_size=5, rng=rng)
    values = [rng.randrange(256) for _ in range(10)]
    submissions = deployment.client.prepare_submissions(values)
    per_upload = submissions[0].upload_bytes
    assert all(s.upload_bytes == per_upload for s in submissions)

    # corrupt two submissions inside the first batch: one at the SNIP
    # layer (bad share values), one at the framing layer (bad length)
    bad_share = submissions[1]
    packet = bad_share.packets[0]
    body = bytearray(packet.body)
    body[0] ^= 1
    bad_share.packets[0] = replace(packet, body=bytes(body))

    bad_frame = submissions[3]
    packet = bad_frame.packets[1]
    bad_frame.packets[1] = replace(
        packet, n_elements=packet.n_elements - 1,
        body=packet.body[: -FIELD87.encoded_size],
    )

    results = deployment.deliver_batch(submissions[:5])
    results += deployment.deliver_batch(submissions[5:])
    assert results == [True, False, True, False] + [True] * 6

    stats = deployment.stats
    assert stats.n_submitted == 10
    assert stats.n_accepted == 8
    assert stats.n_rejected == 2          # per submission, not per batch
    # every submission's upload counted exactly once, including both
    # rejected ones
    expected_bytes = sum(s.upload_bytes for s in submissions)
    assert stats.upload_bytes_total == expected_bytes
    honest = sum(v for i, v in enumerate(values) if i not in (1, 3))
    assert deployment.publish() == honest
    # server-side counters agree with deployment-level ones
    assert deployment.servers[0].n_accepted == 8
    assert deployment.servers[0].n_rejected >= 1


def test_retry_after_partial_receive_failure(rng):
    """A submission whose frame is malformed for one server only must
    not poison its id at the servers that did receive it: a corrected
    retry with the same id succeeds."""
    from dataclasses import replace

    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, rng=rng)
    submission = deployment.client.prepare_submission(9)
    good_packet = submission.packets[1]
    submission.packets[1] = replace(
        good_packet, n_elements=good_packet.n_elements - 1,
        body=good_packet.body[: -FIELD87.encoded_size],
    )
    assert not deployment.deliver(submission)    # server 1 rejects frame
    submission.packets[1] = good_packet          # honest retry, same id
    assert deployment.deliver(submission)
    assert deployment.publish() == 9
    assert deployment.servers[0].n_replayed == 0


def test_batched_replay_within_batch_rejected(rng):
    """A submission id replayed inside one batch burns exactly one
    accept; the replica is rejected at framing time."""
    afe = IntegerSumAfe(FIELD87, 4)
    deployment = PrioDeployment.create(afe, 2, batch_size=4, rng=rng)
    subs = deployment.client.prepare_submissions([5, 9])
    results = deployment.deliver_batch([subs[0], subs[1], subs[0]])
    assert results == [True, True, False]
    assert deployment.publish() == 14
    assert deployment.stats.n_rejected == 1
    assert deployment.servers[0].n_replayed == 1


def test_batched_epoch_rotation(rng):
    """Batches spanning epoch boundaries still verify (the whole batch
    runs under the context in force when it starts)."""
    afe = IntegerSumAfe(FIELD87, 2)
    deployment = PrioDeployment.create(
        afe, 2, epoch_size=3, batch_size=4, rng=rng
    )
    values = [rng.randrange(4) for _ in range(10)]
    assert deployment.submit_many(values) == 10
    assert deployment.publish() == sum(values)
    assert deployment.servers[0]._epoch >= 1


def test_batch_size_validation(rng):
    with pytest.raises(ProtocolError):
        PrioDeployment.create(
            IntegerSumAfe(FIELD87, 4), 2, batch_size=0, rng=rng
        )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def test_no_privacy_baseline(rng):
    afe = IntegerSumAfe(FIELD87, 8)
    pipeline = NoPrivacyPipeline(afe)
    values = [rng.randrange(256) for _ in range(10)]
    for v in values:
        assert pipeline.submit(v)
    assert pipeline.publish() == sum(values)


def test_no_privacy_rejects_invalid():
    afe = IntegerSumAfe(FIELD87, 4)
    pipeline = NoPrivacyPipeline(afe)
    bad = afe.encode(9)
    bad[0] = 99
    assert not pipeline.submit_encoding(bad)
    assert pipeline.n_rejected == 1


def test_no_robustness_baseline(rng):
    afe = IntegerSumAfe(FIELD87, 8)
    pipeline = NoRobustnessPipeline(afe, 3, rng=rng)
    values = [rng.randrange(256) for _ in range(10)]
    for v in values:
        pipeline.submit(v)
    assert pipeline.publish() == sum(values)


def test_no_robustness_is_actually_not_robust(rng):
    """Section 3's attack: one malicious client corrupts the sum."""
    afe = IntegerSumAfe(FIELD87, 4)
    pipeline = NoRobustnessPipeline(afe, 2, rng=rng)
    pipeline.submit(3)
    evil = afe.encode(1)
    evil[0] = 1_000_000  # claims to be a 4-bit value
    pipeline.submit_encoding(evil)
    assert pipeline.publish() == 1_000_003  # corruption went through


def test_no_robustness_uncompressed(rng):
    afe = IntegerSumAfe(FIELD87, 4)
    pipeline = NoRobustnessPipeline(
        afe, 2, use_prg_compression=False, rng=rng
    )
    pipeline.submit(5)
    pipeline.submit(7)
    assert pipeline.publish() == 12


def test_no_robustness_needs_two_servers(rng):
    with pytest.raises(ProtocolError):
        NoRobustnessPipeline(IntegerSumAfe(FIELD87, 4), 1, rng=rng)
