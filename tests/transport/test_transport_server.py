"""End-to-end socket transport: decisions must match the in-memory path."""

import asyncio
import random
from dataclasses import replace

from repro.afe import IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import PrioDeployment
from repro.protocol.wire import PacketKind
from repro.transport import (
    PrioTransportServer,
    Status,
    TransportClient,
    TransportConfig,
)


def _twin_deployments(afe, n_servers=3, batch_size=4):
    """Two bit-identical deployments (same server seed, same client rng)."""
    return (
        PrioDeployment.create(
            afe, n_servers, seed=b"xprt", batch_size=batch_size,
            rng=random.Random(7),
        ),
        PrioDeployment.create(
            afe, n_servers, seed=b"xprt", batch_size=batch_size,
            rng=random.Random(7),
        ),
    )


def _corrupt(submission):
    """Flip one byte in the explicit packet body: a valid frame whose
    proof no longer verifies."""
    packets = list(submission.packets)
    for i, pkt in enumerate(packets):
        if pkt.kind is PacketKind.EXPLICIT:
            body = bytearray(pkt.body)
            body[-1] ^= 0x01
            packets[i] = replace(pkt, body=bytes(body))
            break
    return replace(submission, packets=packets)


def _config(**kwargs):
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("linger_s", 0.001)
    kwargs.setdefault("executor", "inline")
    return TransportConfig(**kwargs)


async def _serve_and_submit(dep, submissions, config=None, unix_path=None):
    """Run one serve lifetime; returns per-submission statuses."""
    server = PrioTransportServer(dep.servers, config or _config())
    await server.start()
    if unix_path is not None:
        path = await server.serve_unix(unix_path)
        client = await TransportClient.connect_unix(path)
    else:
        host, port = await server.serve_tcp("127.0.0.1", 0)
        client = await TransportClient.connect_tcp(host, port)
    try:
        statuses = [await client.submit(s) for s in submissions]
    finally:
        await client.close()
        await server.stop()
    return statuses, server


def test_tcp_decisions_match_in_memory(tmp_path):
    afe = IntegerSumAfe(FIELD87, 4)
    mem_dep, tx_dep = _twin_deployments(afe)
    rng = random.Random(0xBEEF)
    submissions = mem_dep.client.prepare_submissions(
        [rng.randrange(16) for _ in range(17)]
    )
    submissions = [
        _corrupt(s) if i % 5 == 2 else s
        for i, s in enumerate(submissions)
    ]
    mem_decisions = mem_dep.deliver_pipelined(submissions)

    statuses, server = asyncio.run(_serve_and_submit(tx_dep, submissions))
    tx_decisions = [s is Status.ACCEPTED for s in statuses]
    assert tx_decisions == mem_decisions
    assert tx_dep.publish() == mem_dep.publish()
    assert server.stats.n_submissions == 17
    assert server.stats.n_accepted == sum(mem_decisions)
    assert server.stats.n_rejected == 17 - sum(mem_decisions)
    assert server.stats.n_shed == 0


def test_unix_socket_matches_tcp_semantics(tmp_path):
    afe = IntegerSumAfe(FIELD87, 2)
    mem_dep, tx_dep = _twin_deployments(afe, n_servers=2)
    values = [0, 1, 2, 3, 1]
    submissions = mem_dep.client.prepare_submissions(values)
    mem_decisions = mem_dep.deliver_pipelined(submissions)

    statuses, _ = asyncio.run(_serve_and_submit(
        tx_dep, submissions, unix_path=str(tmp_path / "prio.sock")
    ))
    assert [s is Status.ACCEPTED for s in statuses] == mem_decisions
    assert tx_dep.publish() == mem_dep.publish() == sum(values)


def test_replay_rejected_second_connection():
    """The same submission id on two connections is accepted once."""
    afe = IntegerSumAfe(FIELD87, 2)
    _, dep = _twin_deployments(afe, n_servers=2)
    submission = dep.client.prepare_submission(3)

    async def scenario():
        async with PrioTransportServer(dep.servers, _config()) as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            async with await TransportClient.connect_tcp(host, port) as a:
                first = await a.submit(submission)
            async with await TransportClient.connect_tcp(host, port) as b:
                second = await b.submit(submission)
        return first, second

    first, second = asyncio.run(scenario())
    assert first is Status.ACCEPTED
    assert second is Status.REJECTED
    assert dep.publish() == 3


def test_graceful_drain_leaves_no_pending_ids():
    """stop() decides everything in flight; no id stays pending."""
    afe = IntegerSumAfe(FIELD87, 2)
    _, dep = _twin_deployments(afe, n_servers=2)
    submissions = dep.client.prepare_submissions([1] * 9)

    async def scenario():
        server = PrioTransportServer(
            dep.servers, _config(batch_size=4, linger_s=60.0)
        )
        await server.start()
        host, port = await server.serve_tcp("127.0.0.1", 0)
        client = await TransportClient.connect_tcp(host, port)
        # fire-and-forget: the 9th upload sits in a partial batch
        # behind a 60 s linger when stop() begins the drain
        futures = [
            await client.send_frame(
                client.frame_submission(s), s.submission_id
            )
            for s in submissions
        ]
        # let the frames land before draining: stop() must find the
        # 9th sitting in a partial batch behind the long linger
        while server.stats.n_submissions < len(submissions):
            await asyncio.sleep(0.001)
        await server.stop()
        statuses = await asyncio.gather(*futures)
        await client.close()
        return statuses, server

    statuses, server = asyncio.run(scenario())
    assert all(s is Status.ACCEPTED for s in statuses)
    assert server.pending_submissions == 0
    for prio_server in dep.servers:
        assert not prio_server._pending_ids
    assert dep.publish() == 9


def test_server_instance_is_reusable():
    """A second start/serve/stop cycle on one instance works and
    accumulates onto the same logical servers."""
    afe = IntegerSumAfe(FIELD87, 6)
    _, dep = _twin_deployments(afe, n_servers=2)
    server = PrioTransportServer(dep.servers, _config())
    first = dep.client.prepare_submissions([10, 20])
    second = dep.client.prepare_submissions([30])

    async def one_cycle(submissions):
        await server.start()
        host, port = await server.serve_tcp("127.0.0.1", 0)
        async with await TransportClient.connect_tcp(host, port) as client:
            return [await client.submit(s) for s in submissions]

    async def scenario():
        out = await one_cycle(first)
        await server.stop()
        out += await one_cycle(second)
        await server.stop()
        return out

    statuses = asyncio.run(scenario())
    assert all(s is Status.ACCEPTED for s in statuses)
    assert dep.publish() == 60
    assert server.stats.n_accepted == 3


def test_shed_responds_busy_without_touching_core():
    """Frames above the shed limit answer BUSY and are retryable."""
    afe = IntegerSumAfe(FIELD87, 2)
    _, dep = _twin_deployments(afe, n_servers=2)
    submissions = dep.client.prepare_submissions([1] * 6)
    config = _config(
        batch_size=2, linger_s=0.001,
        high_watermark=2, low_watermark=1, shed_limit=3,
    )

    async def scenario():
        async with PrioTransportServer(dep.servers, config) as server:
            server.hold_verification()
            host, port = await server.serve_tcp("127.0.0.1", 0)
            client = await TransportClient.connect_tcp(host, port)
            frames = [
                (s.submission_id, client.frame_submission(s))
                for s in submissions
            ]
            # one write, one data_received: the parser drains all six
            # frames past the paused watermark, so 3..6 hit the shed
            client.writer.write(b"".join(f for _, f in frames))
            await client.writer.drain()
            futures = {
                sid: asyncio.get_running_loop().create_future()
                for sid, _ in frames
            }
            client._inflight = {
                sid: (fut, 0.0) for sid, fut in futures.items()
            }
            client._ensure_reader()
            shed = [
                await futures[sid]
                for sid, _ in frames[config.shed_limit:]
            ]
            server.release_verification()
            kept = [
                await futures[sid]
                for sid, _ in frames[:config.shed_limit]
            ]
            await client.close()
            return kept, shed, server.stats.n_shed

    kept, shed, n_shed = asyncio.run(scenario())
    assert all(s is Status.BUSY for s in shed)
    assert all(s is Status.ACCEPTED for s in kept)
    assert n_shed == len(shed) == 3
    assert dep.publish() == 3
