"""The length-framed stream format: round trips, bounds, fragmentation."""

import pytest

from repro.transport.framing import (
    RESPONSE_SIZE,
    FrameAssembler,
    FrameError,
    Status,
    decode_response,
    encode_response,
    encode_upload,
    split_upload,
)


def test_upload_round_trip():
    packets = [b"alpha", b"", b"x" * 300]
    frame = encode_upload(packets)
    payloads = FrameAssembler().feed(frame)
    assert len(payloads) == 1
    assert split_upload(payloads[0]) == packets


def test_response_round_trip():
    sid = bytes(range(16))
    frame = encode_response(sid, Status.REJECTED)
    (payload,) = FrameAssembler().feed(frame)
    assert len(payload) == RESPONSE_SIZE
    assert decode_response(payload) == (sid, Status.REJECTED)


def test_unknown_status_rejected():
    sid = bytes(16)
    frame = bytearray(encode_response(sid, Status.ACCEPTED))
    frame[-1] = 200
    (payload,) = FrameAssembler().feed(bytes(frame))
    with pytest.raises(FrameError):
        decode_response(payload)


@pytest.mark.parametrize("chunk", [1, 2, 3, 7, 64])
def test_arbitrary_fragmentation(chunk):
    """Frames reassemble identically under any chunking of the stream."""
    frames = [
        encode_upload([b"a" * n, b"b" * (n * 2)]) for n in (1, 5, 100)
    ]
    stream = b"".join(frames)
    assembler = FrameAssembler()
    out = []
    for start in range(0, len(stream), chunk):
        out.extend(assembler.feed(stream[start:start + chunk]))
    assert [split_upload(p) for p in out] == [
        [b"a" * n, b"b" * (n * 2)] for n in (1, 5, 100)
    ]
    assert assembler.buffered_bytes == 0


def test_many_frames_in_one_chunk():
    frames = [encode_upload([bytes([i])]) for i in range(10)]
    out = FrameAssembler().feed(b"".join(frames))
    assert [split_upload(p)[0] for p in out] == [
        bytes([i]) for i in range(10)
    ]


def test_oversized_length_prefix_poisons_before_buffering():
    """A huge length claim must raise on the *prefix*, not after the
    server has buffered gigabytes of body."""
    assembler = FrameAssembler(max_frame=1024)
    with pytest.raises(FrameError):
        assembler.feed((1 << 30).to_bytes(4, "big"))
    # a poisoned assembler refuses everything afterward
    with pytest.raises(FrameError):
        assembler.feed(b"\x00")


def test_incomplete_frame_is_buffered_not_yielded():
    frame = encode_upload([b"payload"])
    assembler = FrameAssembler()
    assert assembler.feed(frame[:-1]) == []
    assert assembler.buffered_bytes == len(frame) - 1
    assert split_upload(assembler.feed(frame[-1:])[0]) == [b"payload"]


@pytest.mark.parametrize(
    "payload",
    [
        b"",                                   # no packet count
        b"\x00",                               # zero packets
        b"\x02" + b"\x00\x00\x00\x01a",        # second packet missing
        b"\x01" + b"\x00\x00\x00\x05abc",      # body shorter than claimed
        b"\x01" + b"\x00\x00\x00\x01ab",       # trailing bytes
    ],
)
def test_malformed_upload_payloads(payload):
    with pytest.raises(FrameError):
        split_upload(payload)


def test_upload_packet_count_bounds():
    with pytest.raises(FrameError):
        encode_upload([])
    with pytest.raises(FrameError):
        encode_upload([b"x"] * 256)
