"""Hostile clients against the socket front end.

Frame-level badness must poison only the offending connection;
protocol-level badness only the offending submission; floods must be
absorbed by watermarks, rate limits, and the shed — all while honest
connections keep getting correct decisions.
"""

import asyncio
import random

from repro.afe import IntegerSumAfe
from repro.field import FIELD87
from repro.protocol import PrioDeployment
from repro.transport import (
    PrioTransportServer,
    Status,
    TransportClient,
    TransportConfig,
    encode_upload,
)


def _deployment(n_bits=4, n_servers=2):
    return PrioDeployment.create(
        IntegerSumAfe(FIELD87, n_bits), n_servers, seed=b"advs",
        batch_size=4, rng=random.Random(13),
    )


def _config(**kwargs):
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("linger_s", 0.001)
    kwargs.setdefault("executor", "inline")
    return TransportConfig(**kwargs)


async def _expect_closed(reader):
    """The server closing the connection surfaces as EOF (or reset)."""
    try:
        data = await asyncio.wait_for(reader.read(64), timeout=5.0)
    except ConnectionError:
        return
    assert data == b""


def _run_attack(attack, config=None, honest_values=(1, 2, 3, 4, 5)):
    """Run ``attack(reader, writer, server)`` against a live server,
    then prove honest traffic still works on a fresh connection."""
    dep = _deployment()
    submissions = dep.client.prepare_submissions(list(honest_values))

    async def scenario():
        async with PrioTransportServer(dep.servers, config or _config()) \
                as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            try:
                await attack(reader, writer, server)
            finally:
                writer.close()
            async with await TransportClient.connect_tcp(host, port) \
                    as honest:
                statuses = [await honest.submit(s) for s in submissions]
            return statuses, server.stats

    statuses, stats = asyncio.run(scenario())
    assert all(s is Status.ACCEPTED for s in statuses)
    assert dep.publish() == sum(honest_values)
    return stats


def test_oversized_length_prefix_poisons_connection():
    async def attack(reader, writer, server):
        writer.write((1 << 31).to_bytes(4, "big"))
        await writer.drain()
        await _expect_closed(reader)
        assert server.stats.n_poisoned == 1

    stats = _run_attack(attack)
    assert stats.n_poisoned == 1


def test_wrong_packet_count_poisons_connection():
    async def attack(reader, writer, server):  # noqa: ARG001
        # well-framed, but one packet for a two-server deployment
        writer.write(encode_upload([b"z" * 32]))
        await writer.drain()
        await _expect_closed(reader)

    assert _run_attack(attack).n_poisoned == 1


def test_packet_too_short_for_submission_id_poisons():
    async def attack(reader, writer, server):  # noqa: ARG001
        writer.write(encode_upload([b"tiny", b"tiny"]))
        await writer.drain()
        await _expect_closed(reader)

    assert _run_attack(attack).n_poisoned == 1


def test_mid_frame_disconnect_is_harmless():
    dep = _deployment()

    async def attack(reader, writer, server):  # noqa: ARG001
        frame = TransportClient.frame_submission(
            dep.client.prepare_submission(1)
        )
        writer.write(frame[: len(frame) // 2])
        await writer.drain()
        # abrupt close with half a frame buffered server-side

    stats = _run_attack(attack)
    assert stats.n_poisoned == 0  # nothing malformed ever completed
    assert stats.n_submissions == 5  # only the honest uploads counted


def test_truncated_packet_inside_frame_poisons():
    async def attack(reader, writer, server):  # noqa: ARG001
        # frame length is honest but the inner packet length lies
        payload = b"\x01" + (100).to_bytes(4, "big") + b"short"
        writer.write(len(payload).to_bytes(4, "big") + payload)
        await writer.drain()
        await _expect_closed(reader)

    assert _run_attack(attack).n_poisoned == 1


def test_corrupt_share_rejects_submission_not_connection():
    """Protocol-level badness inside a valid frame stays per-upload:
    the same connection's other submissions decide normally."""
    dep = _deployment()
    good = dep.client.prepare_submissions([2, 3])
    bad = dep.client.prepare_submission(1)
    tampered = bytearray(bad.packets[1].encode())
    tampered[-1] ^= 0x01
    frame = encode_upload([bad.packets[0].encode(), bytes(tampered)])

    async def scenario():
        async with PrioTransportServer(dep.servers, _config()) as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            async with await TransportClient.connect_tcp(host, port) \
                    as client:
                first = await client.submit(good[0])
                future = await client.send_frame(frame, bad.submission_id)
                corrupted = await future
                second = await client.submit(good[1])
            return first, corrupted, second, server.stats

    first, corrupted, second, stats = asyncio.run(scenario())
    assert first is Status.ACCEPTED
    assert corrupted is Status.REJECTED
    assert second is Status.ACCEPTED
    assert stats.n_poisoned == 0
    assert dep.publish() == 5


def test_stalled_verification_hits_watermark_and_recovers():
    """The acceptance drill: verification stalls, uploads keep coming.

    Reads must pause at the high watermark (bounding pending), the
    shed must absorb what squeezes past it, and releasing the stall
    must decide everything that was admitted."""
    dep = _deployment()
    n = 20
    submissions = dep.client.prepare_submissions([1] * n)
    config = _config(
        batch_size=2, high_watermark=4, low_watermark=2, shed_limit=8,
    )

    async def scenario():
        async with PrioTransportServer(dep.servers, config) as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            server.hold_verification()
            client = await TransportClient.connect_tcp(host, port)
            futures = [
                await client.send_frame(
                    client.frame_submission(s), s.submission_id
                )
                for s in submissions
            ]
            # The flood outruns the stalled verifier: pending must
            # stop at the shed limit, never above it.
            for _ in range(200):
                await asyncio.sleep(0.001)
                assert server.pending_submissions <= config.shed_limit
                if server.stats.n_pauses > 0 and (
                    server.pending_submissions >= config.high_watermark
                ):
                    break
            assert server.stats.n_pauses > 0
            peak = server.pending_submissions
            server.release_verification()
            statuses = await asyncio.gather(*futures)
            await client.close()
            return statuses, peak, server

    statuses, peak, server = asyncio.run(scenario())
    assert config.high_watermark <= peak <= config.shed_limit
    accepted = sum(s is Status.ACCEPTED for s in statuses)
    busy = sum(s is Status.BUSY for s in statuses)
    # every admitted upload was decided; every shed one said BUSY
    assert accepted + busy == n
    assert busy == server.stats.n_shed
    assert accepted == server.stats.n_accepted
    assert server.pending_submissions == 0
    assert dep.publish() == accepted
    for prio_server in dep.servers:
        assert not prio_server._pending_ids


def test_slow_loris_drip_does_not_block_honest_traffic():
    """A client dripping one frame byte-by-byte holds only its own
    bounded buffer; honest connections decide at full speed, and the
    dripped frame still decides once it finally completes."""
    dep = _deployment()
    loris_sub = dep.client.prepare_submission(1)
    honest_subs = dep.client.prepare_submissions([2, 3, 4])
    frame = TransportClient.frame_submission(loris_sub)

    async def scenario():
        async with PrioTransportServer(dep.servers, _config()) as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            loris = await TransportClient.connect_tcp(host, port)
            # drip the first half one byte at a time...
            for i in range(len(frame) // 2):
                loris.writer.write(frame[i:i + 1])
                await loris.writer.drain()
                await asyncio.sleep(0)
            # ...while honest traffic completes in the meantime
            async with await TransportClient.connect_tcp(host, port) \
                    as honest:
                honest_statuses = [
                    await honest.submit(s) for s in honest_subs
                ]
            assert server.pending_submissions == 0  # loris admitted nothing
            half = len(frame) // 2
            future = await loris.send_frame(
                frame[half:], loris_sub.submission_id
            )
            loris_status = await future
            await loris.close()
            return honest_statuses, loris_status, server.stats

    honest_statuses, loris_status, stats = asyncio.run(scenario())
    assert all(s is Status.ACCEPTED for s in honest_statuses)
    assert loris_status is Status.ACCEPTED
    assert stats.n_poisoned == 0
    assert dep.publish() == 1 + 2 + 3 + 4


def test_rate_limit_slows_flood_without_hurting_honest():
    dep = _deployment()
    flood = dep.client.prepare_submissions([1] * 12)
    honest_vals = [2, 3]
    honest_subs = dep.client.prepare_submissions(honest_vals)
    config = _config(rate_limit=50.0, rate_burst=4)

    async def scenario():
        async with PrioTransportServer(dep.servers, config) as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            flooder = await TransportClient.connect_tcp(host, port)
            honest = await TransportClient.connect_tcp(host, port)
            frames = [
                (s.submission_id, flooder.frame_submission(s))
                for s in flood
            ]
            flood_task = asyncio.ensure_future(
                flooder.submit_many(frames, window=12)
            )
            honest_statuses = [await honest.submit(s) for s in honest_subs]
            flood_statuses = await flood_task
            await flooder.close()
            await honest.close()
            return honest_statuses, flood_statuses, server.stats

    honest_statuses, flood_statuses, stats = asyncio.run(scenario())
    assert all(s is Status.ACCEPTED for s in honest_statuses)
    assert all(s is Status.ACCEPTED for s in flood_statuses)
    assert stats.n_rate_limited > 0
    assert dep.publish() == 12 + sum(honest_vals)


def test_concurrent_replay_across_connections_counts_once():
    """The same submission id raced over two connections lands at most
    once — even when both copies share a verification batch."""
    dep = _deployment()
    target = dep.client.prepare_submission(3)
    honest = dep.client.prepare_submission(2)
    frame = TransportClient.frame_submission(target)

    async def scenario():
        async with PrioTransportServer(dep.servers, _config()) as server:
            host, port = await server.serve_tcp("127.0.0.1", 0)
            a = await TransportClient.connect_tcp(host, port)
            b = await TransportClient.connect_tcp(host, port)
            fa = await a.send_frame(frame, target.submission_id)
            fb = await b.send_frame(frame, target.submission_id)
            ra, rb = await asyncio.gather(fa, fb)
            honest_status = await a.submit(honest)
            await a.close()
            await b.close()
            return ra, rb, honest_status, server.stats

    ra, rb, honest_status, stats = asyncio.run(scenario())
    assert sorted([ra, rb]) == [Status.ACCEPTED, Status.REJECTED]
    assert honest_status is Status.ACCEPTED
    assert stats.n_poisoned == 0
    assert dep.publish() == 5  # 3 counted once + the honest 2
