"""Tests for boolean OR/AND and min/max AFEs (the GF(2) family)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import (
    AfeError,
    ApproxMaxAfe,
    BoolAndAfe,
    BoolOrAfe,
    MaxAfe,
    MinAfe,
)


@pytest.fixture
def rng():
    return random.Random(6001)


# ----------------------------------------------------------------------
# OR / AND
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "inputs,expected",
    [([False, False, False], False), ([False, True, False], True),
     ([True] * 5, True), ([False], False)],
)
def test_or(inputs, expected, rng):
    afe = BoolOrAfe(lambda_bits=64)
    assert afe.roundtrip(inputs, rng) is expected


@pytest.mark.parametrize(
    "inputs,expected",
    [([True, True, True], True), ([True, False, True], False),
     ([False] * 4, False), ([True], True)],
)
def test_and(inputs, expected, rng):
    afe = BoolAndAfe(lambda_bits=64)
    assert afe.roundtrip(inputs, rng) is expected


def test_or_false_negative_rate_small_lambda(rng):
    """With lambda = 2, two 'true' encodings can cancel: the 2^-lambda
    failure mode is real and observable."""
    afe = BoolOrAfe(lambda_bits=2)
    failures = sum(
        1 for _ in range(2000) if afe.roundtrip([True, True], rng) is False
    )
    # Pr[cancel] = 2^-2 (XOR of two equal random strings, conditioned
    # on... ) — just require it's clearly nonzero yet a minority.
    assert 0 < failures < 1200


def test_or_all_valid_no_circuit(rng):
    afe = BoolOrAfe(lambda_bits=16)
    assert afe.valid_circuit() is None
    assert afe.check_valid(afe.encode(True, rng))
    assert afe.check_valid([1] * 16)
    assert not afe.check_valid([1] * 15)  # wrong length only


def test_or_requires_rng_for_true():
    afe = BoolOrAfe(lambda_bits=8)
    with pytest.raises(AfeError):
        afe.encode(True)
    assert afe.encode(False) == [0] * 8


def test_or_rejects_non_boolean(rng):
    afe = BoolOrAfe(lambda_bits=8)
    with pytest.raises(AfeError):
        afe.encode(3, rng)


def test_bad_lambda():
    with pytest.raises(AfeError):
        BoolOrAfe(lambda_bits=0)


# ----------------------------------------------------------------------
# MIN / MAX exact
# ----------------------------------------------------------------------


def test_max_roundtrip(rng):
    afe = MaxAfe(domain_size=16, lambda_bits=64)
    values = [3, 7, 1, 11, 0]
    assert afe.roundtrip(values, rng) == 11


def test_min_roundtrip(rng):
    afe = MinAfe(domain_size=16, lambda_bits=64)
    values = [3, 7, 2, 11, 5]
    assert afe.roundtrip(values, rng) == 2


def test_max_of_zeros(rng):
    afe = MaxAfe(domain_size=8, lambda_bits=64)
    assert afe.roundtrip([0, 0, 0], rng) == 0


def test_min_extremes(rng):
    afe = MinAfe(domain_size=8, lambda_bits=64)
    assert afe.roundtrip([7, 7], rng) == 7
    assert afe.roundtrip([0, 7], rng) == 0


def test_single_client_minmax(rng):
    for cls, value in ((MaxAfe, 5), (MinAfe, 5)):
        afe = cls(domain_size=10, lambda_bits=64)
        assert afe.roundtrip([value], rng) == value


def test_minmax_domain_checks(rng):
    afe = MaxAfe(domain_size=8, lambda_bits=16)
    with pytest.raises(AfeError):
        afe.encode(8, rng)
    with pytest.raises(AfeError):
        afe.encode(-1, rng)
    with pytest.raises(AfeError):
        MaxAfe(domain_size=1)


def test_speed_range_check_example(rng):
    """The paper's example domain: car speeds 0-250 km/h in unary."""
    afe = MaxAfe(domain_size=251, lambda_bits=32)
    speeds = [88, 134, 61, 199]
    assert afe.roundtrip(speeds, rng) == 199


@given(
    values=st.lists(st.integers(0, 15), min_size=1, max_size=10),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_minmax_property(values, seed):
    r = random.Random(seed)
    max_afe = MaxAfe(domain_size=16, lambda_bits=64)
    min_afe = MinAfe(domain_size=16, lambda_bits=64)
    assert max_afe.roundtrip(values, r) == max(values)
    assert min_afe.roundtrip(values, r) == min(values)


# ----------------------------------------------------------------------
# Approximate MAX
# ----------------------------------------------------------------------


def test_approx_max_within_factor(rng):
    afe = ApproxMaxAfe(domain_size=1 << 20, factor=2.0, lambda_bits=64)
    values = [1000, 50, 3, 700000]
    estimate = afe.roundtrip(values, rng)
    true_max = max(values)
    assert true_max <= estimate <= true_max * 2.0


def test_approx_max_zero(rng):
    afe = ApproxMaxAfe(domain_size=1 << 10, factor=2.0, lambda_bits=64)
    assert afe.roundtrip([0, 0], rng) == 0.0


def test_approx_max_shrinks_encoding():
    exact_k = MaxAfe(domain_size=1 << 16, lambda_bits=32).k
    approx_k = ApproxMaxAfe(domain_size=1 << 16, factor=2.0, lambda_bits=32).k
    assert approx_k < exact_k / 1000


def test_approx_max_bad_factor():
    with pytest.raises(AfeError):
        ApproxMaxAfe(domain_size=100, factor=1.0)


def test_packet_counter_example(rng):
    """The paper's networking example: approximate max of 64-bit-ish
    packet counters with a handful of log bins."""
    afe = ApproxMaxAfe(domain_size=1 << 30, factor=4.0, lambda_bits=32)
    counters = [123, 9_000_000, 42_000]
    estimate = afe.roundtrip(counters, rng)
    assert 9_000_000 <= estimate <= 9_000_000 * 4.0
