"""Tests for variance/stddev AFEs."""

import random
import statistics
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import AfeError, StddevAfe, VarianceAfe
from repro.field import FIELD87


@pytest.fixture
def rng():
    return random.Random(3030)


def test_shape():
    afe = VarianceAfe(FIELD87, 8)
    assert afe.k == 10
    assert afe.k_prime == 2
    # b bit checks + 1 square check
    assert afe.valid_circuit().n_mul_gates == 9


def test_variance_matches_statistics_pvariance(rng):
    afe = VarianceAfe(FIELD87, 8)
    values = [rng.randrange(256) for _ in range(40)]
    mean, variance = afe.roundtrip(values)
    assert mean == Fraction(sum(values), len(values))
    expected = statistics.pvariance(values)
    assert abs(float(variance) - expected) < 1e-9


def test_variance_constant_inputs():
    afe = VarianceAfe(FIELD87, 8)
    mean, variance = afe.roundtrip([42] * 10)
    assert mean == 42
    assert variance == 0


def test_single_client():
    afe = VarianceAfe(FIELD87, 4)
    mean, variance = afe.roundtrip([7])
    assert (mean, variance) == (7, 0)


def test_encoding_validates(rng):
    afe = VarianceAfe(FIELD87, 6)
    enc = afe.encode(33)
    assert afe.check_valid(enc)


def test_wrong_square_rejected():
    afe = VarianceAfe(FIELD87, 6)
    enc = afe.encode(33)
    enc[1] = (enc[1] + 1) % FIELD87.modulus
    assert not afe.check_valid(enc)


def test_out_of_range_rejected():
    afe = VarianceAfe(FIELD87, 6)
    with pytest.raises(AfeError):
        afe.encode(64)


def test_zero_clients():
    afe = VarianceAfe(FIELD87, 6)
    with pytest.raises(AfeError):
        afe.decode([0, 0], 0)


def test_bad_sigma_length():
    afe = VarianceAfe(FIELD87, 6)
    with pytest.raises(AfeError):
        afe.decode([1], 5)


def test_stddev(rng):
    afe = StddevAfe(FIELD87, 8)
    values = [rng.randrange(256) for _ in range(25)]
    mean, stddev = afe.roundtrip(values)
    assert abs(stddev - statistics.pstdev(values)) < 1e-9


@given(values=st.lists(st.integers(0, 63), min_size=2, max_size=25))
@settings(max_examples=40, deadline=None)
def test_variance_property(values):
    afe = VarianceAfe(FIELD87, 6)
    _, variance = afe.roundtrip(values)
    assert abs(float(variance) - statistics.pvariance(values)) < 1e-9
