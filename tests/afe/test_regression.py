"""Tests for the least-squares regression and R^2 AFEs."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import AfeError, LinRegAfe, R2Afe, pair_indices
from repro.field import FIELD87, FIELD265


@pytest.fixture
def rng():
    return random.Random(42424)


def synthetic_dataset(rng, d, n, n_bits, coeffs):
    """Integer dataset approximately following y = c0 + sum c_i x_i."""
    data = []
    max_x = (1 << (n_bits // 2)) - 1
    for _ in range(n):
        x = [rng.randrange(max_x) for _ in range(d)]
        y = coeffs[0] + sum(c * xi for c, xi in zip(coeffs[1:], x))
        y += rng.randrange(-3, 4)
        y = max(0, min((1 << n_bits) - 1, y))
        data.append((x, y))
    return data


def test_pair_indices():
    assert pair_indices(1) == [(0, 0)]
    assert pair_indices(2) == [(0, 0), (0, 1), (1, 1)]
    assert len(pair_indices(5)) == 15


def test_shapes_and_gate_counts():
    afe = LinRegAfe(FIELD87, dimension=2, n_bits=14)
    # moments: 2 + 3 + 1 + 2 = 8; bits: 3*14 = 42
    assert afe.k_prime == 8
    assert afe.k == 8 + 42
    circuit = afe.valid_circuit()
    # products: 3 pairs + 2 cross = 5; bits: 42
    assert circuit.n_mul_gates == 47


def test_1d_recovers_line(rng):
    """The paper's 2-variable example: fit h(x) = c0 + c1 x."""
    afe = LinRegAfe(FIELD87, dimension=1, n_bits=14)
    data = [( [x], 3 * x + 10 ) for x in range(1, 40)]
    encodings = [afe.encode(point) for point in data]
    coeffs = afe.decode(afe.aggregate(encodings), len(data))
    assert abs(coeffs[0] - 10) < 1e-6
    assert abs(coeffs[1] - 3) < 1e-6


@pytest.mark.parametrize("d", [2, 4])
def test_multidimensional_fit_close_to_numpy(d, rng):
    afe = LinRegAfe(FIELD265, dimension=d, n_bits=14)
    true_coeffs = [7] + [rng.randrange(1, 5) for _ in range(d)]
    data = synthetic_dataset(rng, d, 200, 14, true_coeffs)
    encodings = [afe.encode(point) for point in data]
    coeffs = afe.decode(afe.aggregate(encodings), len(data))

    xs = np.array([[1.0] + [float(v) for v in x] for x, _ in data])
    ys = np.array([float(y) for _, y in data])
    reference, *_ = np.linalg.lstsq(xs, ys, rcond=None)
    assert np.allclose(coeffs, reference, atol=1e-6)


def test_encoding_validates(rng):
    afe = LinRegAfe(FIELD87, dimension=2, n_bits=8)
    enc = afe.encode(([10, 20], 55))
    assert afe.check_valid(enc)


def test_faked_cross_moment_rejected():
    """The robustness story of Section 5.3: a malicious client cannot
    claim x*y products that disagree with its x and y."""
    afe = LinRegAfe(FIELD87, dimension=2, n_bits=8)
    enc = afe.encode(([10, 20], 55))
    d = afe.dimension
    # x_i * y cross moments start after d + pairs + 1 entries.
    cross_start = d + len(afe.pairs) + 1
    enc[cross_start] = (enc[cross_start] + 100) % FIELD87.modulus
    assert not afe.check_valid(enc)


def test_faked_pair_moment_rejected():
    afe = LinRegAfe(FIELD87, dimension=2, n_bits=8)
    enc = afe.encode(([10, 20], 55))
    enc[afe.dimension] = (enc[afe.dimension] + 1) % FIELD87.modulus
    assert not afe.check_valid(enc)


def test_out_of_range_feature_rejected():
    afe = LinRegAfe(FIELD87, dimension=1, n_bits=8)
    with pytest.raises(AfeError):
        afe.encode(([256], 0))
    with pytest.raises(AfeError):
        afe.encode(([1, 2], 0))  # wrong arity


def test_singular_system_raises():
    afe = LinRegAfe(FIELD87, dimension=1, n_bits=8)
    # All x identical -> singular normal equations.
    data = [([5], 10), ([5], 12)]
    sigma = afe.aggregate([afe.encode(p) for p in data])
    with pytest.raises(AfeError):
        afe.decode(sigma, len(data))


def test_predict_helper():
    afe = LinRegAfe(FIELD87, dimension=2, n_bits=8)
    assert afe.predict([1.0, 2.0, 3.0], [10, 20]) == 1 + 20 + 60
    with pytest.raises(AfeError):
        afe.predict([1.0], [10, 20])


def test_bad_construction():
    with pytest.raises(AfeError):
        LinRegAfe(FIELD87, dimension=0, n_bits=8)
    with pytest.raises(AfeError):
        LinRegAfe(FIELD87, dimension=1, n_bits=0)


# ----------------------------------------------------------------------
# R^2
# ----------------------------------------------------------------------


def test_r2_perfect_model():
    weights = [2, 3]  # y = 2 + 3x
    afe = R2Afe(FIELD87, weights, n_bits=10)
    data = [([x], 2 + 3 * x) for x in range(1, 20)]
    sigma = afe.aggregate([afe.encode(p) for p in data])
    assert abs(afe.decode(sigma, len(data)) - 1.0) < 1e-9


def test_r2_imperfect_model(rng):
    weights = [0, 2]
    afe = R2Afe(FIELD87, weights, n_bits=12)
    data = []
    for x in range(1, 60):
        noise = rng.randrange(0, 7)
        data.append(([x], 2 * x + noise))
    sigma = afe.aggregate([afe.encode(p) for p in data])
    r2 = afe.decode(sigma, len(data))
    assert 0.9 < r2 < 1.0


def test_r2_encoding_validates():
    afe = R2Afe(FIELD87, [1, 2, 3], n_bits=8)
    enc = afe.encode(([5, 9], 44))
    assert afe.check_valid(enc)
    # Two square-check gates + (d+1)*b bit gates.
    assert afe.valid_circuit().n_mul_gates == 2 + 3 * 8


def test_r2_faked_residual_rejected():
    afe = R2Afe(FIELD87, [1, 2], n_bits=8)
    enc = afe.encode(([7], 15))
    enc[2] = (enc[2] + 1) % FIELD87.modulus
    assert not afe.check_valid(enc)


def test_r2_errors():
    afe = R2Afe(FIELD87, [0, 1], n_bits=8)
    with pytest.raises(AfeError):
        afe.decode([1, 2, 3], 1)  # needs >= 2 clients
    with pytest.raises(AfeError):
        afe.decode([1, 2], 5)  # wrong sigma length
    with pytest.raises(AfeError):
        R2Afe(FIELD87, [1], n_bits=8)  # no slope
    # zero label variance
    data = [([1], 5), ([2], 5)]
    sigma = afe.aggregate([afe.encode(p) for p in data])
    with pytest.raises(AfeError):
        afe.decode(sigma, 2)


@given(
    slope=st.integers(1, 5),
    intercept=st.integers(0, 10),
    n=st.integers(3, 15),
)
@settings(max_examples=30, deadline=None)
def test_1d_regression_property(slope, intercept, n):
    """Exact linear data is recovered exactly (up to float epsilon)."""
    afe = LinRegAfe(FIELD265, dimension=1, n_bits=12)
    data = [([x + 1], intercept + slope * (x + 1)) for x in range(n)]
    sigma = afe.aggregate([afe.encode(p) for p in data])
    if n >= 2:
        coeffs = afe.decode(sigma, n)
        assert abs(coeffs[0] - intercept) < 1e-5
        assert abs(coeffs[1] - slope) < 1e-5
