"""Integration: every circuit-bearing AFE proves and verifies via SNIPs."""

import random

import pytest

from repro.afe import (
    CountMinSketchAfe,
    FrequencyCountAfe,
    IntegerSumAfe,
    LinRegAfe,
    MostPopularStringAfe,
    R2Afe,
    VarianceAfe,
)
from repro.field import FIELD87
from repro.sharing import share_vector
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    build_proof,
    prove_and_share,
    share_proof,
    verify_snip,
)


@pytest.fixture
def rng():
    return random.Random(515151)


AFE_CASES = [
    (IntegerSumAfe(FIELD87, 8), 173),
    (VarianceAfe(FIELD87, 8), 99),
    (FrequencyCountAfe(FIELD87, 12), 7),
    (LinRegAfe(FIELD87, dimension=2, n_bits=8), ([12, 34], 200)),
    (R2Afe(FIELD87, [1, 2, 1], n_bits=8), ([10, 20], 55)),
    (MostPopularStringAfe(FIELD87, 16), 0xCAFE),
    (CountMinSketchAfe(FIELD87, epsilon=1 / 4, delta=0.1), "example.org"),
]


@pytest.mark.parametrize(
    "afe,value", AFE_CASES, ids=[a.name for a, _ in AFE_CASES]
)
def test_honest_encoding_passes_snip(afe, value, rng):
    circuit = afe.valid_circuit()
    encoding = afe.encode(value, rng)
    assert circuit.check(afe.field, encoding)
    x_shares, proof_shares = prove_and_share(
        afe.field, circuit, encoding, 3, rng
    )
    challenge = ServerRandomness(rng.randbytes(16)).challenge(
        afe.field, circuit, 0
    )
    ctx = VerificationContext(afe.field, circuit, challenge)
    assert verify_snip(ctx, x_shares, proof_shares).accepted


@pytest.mark.parametrize(
    "afe,value", AFE_CASES, ids=[a.name for a, _ in AFE_CASES]
)
def test_corrupted_encoding_fails_snip(afe, value, rng):
    """Shift the first encoding coordinate by 2; the SNIP must reject.

    (+2 rather than +1: for pure bit-vector encodings like
    most-popular, flipping a 0-bit to 1 yields a *different but valid*
    encoding, while +2 always leaves the domain.)
    """
    circuit = afe.valid_circuit()
    encoding = afe.encode(value, rng)
    bad = list(encoding)
    bad[0] = (bad[0] + 2) % afe.field.modulus
    proof = build_proof(afe.field, circuit, bad, rng, check_valid=False)
    x_shares = share_vector(afe.field, bad, 3, rng)
    proof_shares = share_proof(afe.field, proof, 3, rng)
    challenge = ServerRandomness(rng.randbytes(16)).challenge(
        afe.field, circuit, 1
    )
    ctx = VerificationContext(afe.field, circuit, challenge)
    assert not verify_snip(ctx, x_shares, proof_shares).accepted


def test_snip_proof_size_tracks_circuit(rng):
    """Proof length grows with the Valid circuit (conclusion of §9)."""
    from repro.snip import proof_num_elements

    small = IntegerSumAfe(FIELD87, 4).valid_circuit()
    large = IntegerSumAfe(FIELD87, 64).valid_circuit()
    assert proof_num_elements(large.n_mul_gates) > proof_num_elements(
        small.n_mul_gates
    )
