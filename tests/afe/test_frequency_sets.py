"""Tests for frequency-count, set, sketch, and most-popular AFEs."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import (
    AfeError,
    CountMinSketchAfe,
    FrequencyCountAfe,
    MostPopularStringAfe,
    SetIntersectionAfe,
    SetUnionAfe,
)
from repro.field import FIELD87


@pytest.fixture
def rng():
    return random.Random(700)


# ----------------------------------------------------------------------
# Frequency count
# ----------------------------------------------------------------------


def test_histogram_roundtrip(rng):
    afe = FrequencyCountAfe(FIELD87, 8)
    values = [rng.randrange(8) for _ in range(100)]
    histogram = afe.roundtrip(values)
    expected = Counter(values)
    assert histogram == [expected.get(i, 0) for i in range(8)]


def test_one_hot_validation():
    afe = FrequencyCountAfe(FIELD87, 4)
    assert afe.check_valid(afe.encode(2))
    assert not afe.check_valid([1, 1, 0, 0])  # two ones
    assert not afe.check_valid([0, 0, 0, 0])  # no ones
    assert not afe.check_valid([2, 0, 0, 0])  # right sum, not a bit
    assert afe.valid_circuit().n_mul_gates == 4


def test_histogram_domain_check():
    afe = FrequencyCountAfe(FIELD87, 4)
    with pytest.raises(AfeError):
        afe.encode(4)
    with pytest.raises(AfeError):
        FrequencyCountAfe(FIELD87, 1)


def test_quantiles():
    afe = FrequencyCountAfe(FIELD87, 5)
    histogram = [1, 4, 3, 0, 2]  # 10 samples
    assert afe.quantile(histogram, 0.0) == 0
    assert afe.quantile(histogram, 0.5) == 1
    assert afe.quantile(histogram, 0.9) == 4
    assert afe.quantile(histogram, 1.0) == 4
    assert afe.mode(histogram) == 1


def test_quantile_errors():
    afe = FrequencyCountAfe(FIELD87, 3)
    with pytest.raises(AfeError):
        afe.quantile([0, 0, 0], 0.5)
    with pytest.raises(AfeError):
        afe.quantile([1, 0, 0], 1.5)


@given(values=st.lists(st.integers(0, 5), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_histogram_property(values):
    afe = FrequencyCountAfe(FIELD87, 6)
    histogram = afe.roundtrip(values)
    assert sum(histogram) == len(values)
    for v, count in Counter(values).items():
        assert histogram[v] == count


# ----------------------------------------------------------------------
# Sets
# ----------------------------------------------------------------------


def test_set_union(rng):
    afe = SetUnionAfe(universe_size=10, lambda_bits=64)
    sets = [{1, 2}, {2, 5}, set(), {9}]
    assert afe.roundtrip(sets, rng) == {1, 2, 5, 9}


def test_set_intersection(rng):
    afe = SetIntersectionAfe(universe_size=10, lambda_bits=64)
    sets = [{1, 2, 5}, {2, 5, 7}, {2, 3, 5}]
    assert afe.roundtrip(sets, rng) == {2, 5}


def test_set_intersection_empty_result(rng):
    afe = SetIntersectionAfe(universe_size=6, lambda_bits=64)
    assert afe.roundtrip([{1}, {2}], rng) == set()


def test_set_member_bounds(rng):
    afe = SetUnionAfe(universe_size=4, lambda_bits=16)
    with pytest.raises(AfeError):
        afe.encode({4}, rng)
    with pytest.raises(AfeError):
        afe.encode({-1}, rng)


# ----------------------------------------------------------------------
# Count-min sketch
# ----------------------------------------------------------------------


def test_sketch_shape_low_res():
    """The paper's low-res browser config: delta=2^-10, eps=1/10."""
    afe = CountMinSketchAfe(FIELD87, epsilon=1 / 10, delta=2**-10)
    assert afe.depth == 7   # ceil(ln(2^10)) = ceil(6.93)
    assert afe.width == 28  # ceil(e * 10)
    # Valid: one-hot per row -> depth*width mul gates.
    assert afe.valid_circuit().n_mul_gates == afe.depth * afe.width


def test_sketch_estimates_never_underestimate(rng):
    afe = CountMinSketchAfe(FIELD87, epsilon=1 / 10, delta=2**-10)
    items = [f"url-{rng.randrange(6)}" for _ in range(200)]
    sketch = afe.roundtrip(items)
    truth = Counter(items)
    for item, count in truth.items():
        estimate = sketch.estimate(item)
        assert estimate >= count
        assert estimate <= count + 0.1 * len(items) + 1


def test_sketch_heavy_hitters(rng):
    afe = CountMinSketchAfe(FIELD87, epsilon=1 / 50, delta=2**-10)
    items = ["popular"] * 80 + [f"rare-{i}" for i in range(20)]
    rng.shuffle(items)
    sketch = afe.roundtrip(items)
    hitters = sketch.heavy_hitters(
        ["popular", "rare-3", "absent"], threshold=40
    )
    assert hitters and hitters[0][0] == "popular"


def test_sketch_encoding_valid(rng):
    afe = CountMinSketchAfe(FIELD87, epsilon=1 / 4, delta=0.1)
    enc = afe.encode("hello")
    assert afe.check_valid(enc)
    enc[0] = (enc[0] + 1) % FIELD87.modulus
    assert not afe.check_valid(enc)


def test_sketch_bad_params():
    with pytest.raises(AfeError):
        CountMinSketchAfe(FIELD87, epsilon=0, delta=0.1)
    with pytest.raises(AfeError):
        CountMinSketchAfe(FIELD87, epsilon=0.1, delta=1.5)


def test_sketch_accepts_bytes_and_str():
    afe = CountMinSketchAfe(FIELD87, epsilon=1 / 4, delta=0.1)
    assert afe.encode("abc") == afe.encode(b"abc")


# ----------------------------------------------------------------------
# Most popular string
# ----------------------------------------------------------------------


def test_most_popular_majority(rng):
    afe = MostPopularStringAfe(FIELD87, n_bits=16)
    winner = 0xBEEF
    values = [winner] * 6 + [rng.randrange(1 << 16) for _ in range(4)]
    assert afe.roundtrip(values) == winner


def test_most_popular_strings(rng):
    afe = MostPopularStringAfe(FIELD87, n_bits=64)
    values = [b"home.com"] * 5 + [b"evil.com"] * 2
    result = afe.decode_bytes(
        afe.aggregate([afe.encode(v) for v in values]), len(values)
    )
    assert result == b"home.com"


def test_most_popular_no_majority_garbage_ok(rng):
    """Below 50% popularity the output is unspecified — just must not
    crash and must stay in range."""
    afe = MostPopularStringAfe(FIELD87, n_bits=8)
    values = [1, 2, 3, 4]
    result = afe.roundtrip(values)
    assert 0 <= result < 256


def test_most_popular_validation():
    afe = MostPopularStringAfe(FIELD87, n_bits=8)
    assert afe.check_valid(afe.encode(0x5A))
    assert not afe.check_valid([2] + [0] * 7)
    with pytest.raises(AfeError):
        afe.encode(256)


@given(
    winner=st.integers(0, 255),
    noise=st.lists(st.integers(0, 255), min_size=0, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_most_popular_property(winner, noise):
    """A strict majority always decodes exactly."""
    afe = MostPopularStringAfe(FIELD87, n_bits=8)
    values = [winner] * (len(noise) + 1) + noise
    assert afe.roundtrip(values) == winner
