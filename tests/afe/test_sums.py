"""Tests for sum/mean/product/geometric-mean AFEs."""

import math
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import (
    AfeError,
    GeometricMeanAfe,
    IntegerMeanAfe,
    IntegerSumAfe,
    ProductAfe,
    check_field_capacity,
)
from repro.field import FIELD87, FIELD_SMALL


@pytest.fixture
def rng():
    return random.Random(808)


def test_sum_afe_shape():
    afe = IntegerSumAfe(FIELD87, 4)
    assert afe.k == 5
    assert afe.k_prime == 1
    assert afe.valid_circuit().n_mul_gates == 4  # Table 3's "four-bit" config


def test_sum_roundtrip(rng):
    afe = IntegerSumAfe(FIELD87, 8)
    values = [rng.randrange(256) for _ in range(50)]
    assert afe.roundtrip(values) == sum(values)


def test_sum_encoding_valid(rng):
    afe = IntegerSumAfe(FIELD87, 6)
    for _ in range(10):
        v = rng.randrange(64)
        assert afe.check_valid(afe.encode(v))


def test_sum_rejects_malformed_encoding():
    afe = IntegerSumAfe(FIELD87, 4)
    enc = afe.encode(9)
    enc[0] = 10  # value disagrees with bits
    assert not afe.check_valid(enc)
    enc2 = afe.encode(9)
    enc2[1] = 3  # not a bit
    assert not afe.check_valid(enc2)


def test_sum_rejects_out_of_range():
    afe = IntegerSumAfe(FIELD87, 4)
    with pytest.raises(AfeError):
        afe.encode(16)
    with pytest.raises(AfeError):
        afe.encode(-1)


def test_sum_needs_positive_bits():
    with pytest.raises(AfeError):
        IntegerSumAfe(FIELD87, 0)


def test_sum_decode_validates_sigma():
    afe = IntegerSumAfe(FIELD87, 4)
    with pytest.raises(AfeError):
        afe.decode([1, 2], 1)


def test_truncate_checks_length():
    afe = IntegerSumAfe(FIELD87, 4)
    with pytest.raises(AfeError):
        afe.truncate([1, 2, 3])


def test_aggregate_empty_rejected():
    afe = IntegerSumAfe(FIELD87, 4)
    with pytest.raises(AfeError):
        afe.aggregate([])


def test_mean_roundtrip(rng):
    afe = IntegerMeanAfe(FIELD87, 8)
    values = [rng.randrange(256) for _ in range(7)]
    assert afe.roundtrip(values) == Fraction(sum(values), 7)


def test_mean_zero_clients():
    afe = IntegerMeanAfe(FIELD87, 8)
    with pytest.raises(AfeError):
        afe.decode([5], 0)


def test_field_capacity_guard():
    check_field_capacity(FIELD87, 2**8, 10**6)  # fine
    with pytest.raises(AfeError):
        check_field_capacity(FIELD_SMALL, 2**8, 10**6)


def test_product_roundtrip_accuracy(rng):
    afe = ProductAfe(FIELD87, n_bits=24, frac_bits=12)
    values = [rng.uniform(1.0, 50.0) for _ in range(5)]
    estimate = afe.roundtrip(values)
    exact = math.prod(values)
    assert abs(math.log2(estimate) - math.log2(exact)) < 0.02


def test_product_rejects_inputs_below_one():
    afe = ProductAfe(FIELD87, n_bits=16)
    with pytest.raises(AfeError):
        afe.encode(0.5)


def test_product_overflow_guard():
    afe = ProductAfe(FIELD87, n_bits=10, frac_bits=8)
    with pytest.raises(AfeError):
        afe.encode(2.0**5)  # log2 = 5 -> 1280 >= 2^10


def test_product_bad_params():
    with pytest.raises(AfeError):
        ProductAfe(FIELD87, n_bits=8, frac_bits=8)
    with pytest.raises(AfeError):
        ProductAfe(FIELD87, n_bits=8, frac_bits=0)


def test_product_circuit_checks_quantized_encoding(rng):
    afe = ProductAfe(FIELD87, n_bits=16, frac_bits=8)
    enc = afe.encode(3.7)
    assert afe.check_valid(enc)
    enc[2] = 5  # corrupt a bit
    assert not afe.check_valid(enc)


def test_geometric_mean(rng):
    afe = GeometricMeanAfe(FIELD87, n_bits=24, frac_bits=12)
    values = [2.0, 8.0]  # geomean = 4
    assert abs(afe.roundtrip(values) - 4.0) < 0.05


def test_geometric_mean_zero_clients():
    afe = GeometricMeanAfe(FIELD87, n_bits=16)
    with pytest.raises(AfeError):
        afe.decode([0], 0)


@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_sum_correctness_property(values):
    """AFE correctness (Definition 11) for the sum encoding."""
    afe = IntegerSumAfe(FIELD87, 8)
    assert afe.roundtrip(values) == sum(values)


@given(value=st.integers(0, 255))
@settings(max_examples=50, deadline=None)
def test_sum_soundness_property(value):
    """AFE soundness (Definition 12): encodings validate, and shifting
    any single coordinate invalidates (for this encoding)."""
    afe = IntegerSumAfe(FIELD87, 8)
    enc = afe.encode(value)
    assert afe.check_valid(enc)
    bad = list(enc)
    bad[0] = (bad[0] + 1) % FIELD87.modulus
    assert not afe.check_valid(bad)
