"""Tests for the NIZK comparison system (ElGamal + OR proofs + decryption)."""

import random

import pytest

from repro.ec import GENERATOR, INFINITY, scalar_mult
from repro.nizk import (
    NizkDeployment,
    NizkError,
    ServerKeyPair,
    combine_partials,
    combined_public_key,
    discrete_log,
    encrypt_bit,
    nizk_client_submit,
    nizk_server_transfer_bytes,
    partial_decrypt,
    prove_bit,
    prove_dleq,
    verify_bit,
    verify_dleq,
)
from repro.nizk.system import UPLOAD_BYTES_PER_ELEMENT


@pytest.fixture
def rng():
    return random.Random(13579)


# ----------------------------------------------------------------------
# ElGamal
# ----------------------------------------------------------------------


def test_encrypt_decrypt_single_server(rng):
    kp = ServerKeyPair.generate(rng)
    ct, _ = encrypt_bit(kp.public, 1, rng)
    partial = partial_decrypt(kp.secret, ct)
    assert combine_partials(ct, [partial]) == GENERATOR  # 1 * G


def test_homomorphic_sum(rng):
    kp = ServerKeyPair.generate(rng)
    bits = [1, 0, 1, 1, 0, 1]
    acc = None
    for bit in bits:
        ct, _ = encrypt_bit(kp.public, bit, rng)
        acc = ct if acc is None else acc + ct
    partial = partial_decrypt(kp.secret, acc)
    point = combine_partials(acc, [partial])
    assert discrete_log(point, len(bits)) == sum(bits)


def test_combined_key_requires_all_servers(rng):
    kps = [ServerKeyPair.generate(rng) for _ in range(3)]
    combined = combined_public_key([kp.public for kp in kps])
    ct, _ = encrypt_bit(combined, 1, rng)
    partials = [partial_decrypt(kp.secret, ct) for kp in kps]
    assert combine_partials(ct, partials) == GENERATOR
    # Missing one share leaves a blinded point.
    assert combine_partials(ct, partials[:2]) != GENERATOR


def test_encrypt_rejects_non_bit(rng):
    kp = ServerKeyPair.generate(rng)
    with pytest.raises(NizkError):
        encrypt_bit(kp.public, 2, rng)


def test_combined_key_empty():
    with pytest.raises(NizkError):
        combined_public_key([])


def test_discrete_log_small_values():
    for m in (0, 1, 5, 37, 100):
        assert discrete_log(scalar_mult(m, GENERATOR), 100) == m
    assert discrete_log(INFINITY, 10) == 0


def test_discrete_log_out_of_range():
    with pytest.raises(NizkError):
        discrete_log(scalar_mult(50, GENERATOR), 10)


# ----------------------------------------------------------------------
# OR proofs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("bit", [0, 1])
def test_bit_proof_roundtrip(bit, rng):
    kp = ServerKeyPair.generate(rng)
    ct, k = encrypt_bit(kp.public, bit, rng)
    proof = prove_bit(kp.public, ct, bit, k, rng)
    assert verify_bit(kp.public, ct, proof)


def test_bit_proof_rejects_large_plaintext(rng):
    """The attack Prio and the baseline both exist to stop: encrypting
    v = 5 instead of a bit.  A proof for 'bit' semantics cannot verify."""
    kp = ServerKeyPair.generate(rng)
    from repro.ec import random_scalar

    k = random_scalar(rng)
    c1 = scalar_mult(k, GENERATOR)
    c2 = scalar_mult(k, kp.public) + scalar_mult(5, GENERATOR)
    from repro.nizk.elgamal import ElGamalCiphertext

    ct = ElGamalCiphertext(c1, c2)
    # Forge attempt: claim it's a 1 with the true randomness.
    proof = prove_bit(kp.public, ct, 1, k, rng)
    assert not verify_bit(kp.public, ct, proof)


def test_bit_proof_tamper_detected(rng):
    kp = ServerKeyPair.generate(rng)
    ct, k = encrypt_bit(kp.public, 1, rng)
    proof = prove_bit(kp.public, ct, 1, k, rng)
    import dataclasses

    bad = dataclasses.replace(proof, z0=(proof.z0 + 1))
    assert not verify_bit(kp.public, ct, bad)


def test_bit_proof_wrong_ciphertext(rng):
    kp = ServerKeyPair.generate(rng)
    ct1, k1 = encrypt_bit(kp.public, 1, rng)
    ct2, _ = encrypt_bit(kp.public, 1, rng)
    proof = prove_bit(kp.public, ct1, 1, k1, rng)
    assert not verify_bit(kp.public, ct2, proof)


def test_bit_proof_requires_bit(rng):
    kp = ServerKeyPair.generate(rng)
    ct, k = encrypt_bit(kp.public, 0, rng)
    with pytest.raises(NizkError):
        prove_bit(kp.public, ct, 2, k, rng)


# ----------------------------------------------------------------------
# DLEQ
# ----------------------------------------------------------------------


def test_dleq_roundtrip(rng):
    kp = ServerKeyPair.generate(rng)
    ct, _ = encrypt_bit(kp.public, 1, rng)
    share = partial_decrypt(kp.secret, ct)
    proof = prove_dleq(kp.secret, ct.c1, kp.public, share, rng)
    assert verify_dleq(ct.c1, kp.public, share, proof)


def test_dleq_rejects_fake_share(rng):
    """A server cannot claim a wrong decryption share — this is what
    keeps dishonest servers from corrupting the published total."""
    kp = ServerKeyPair.generate(rng)
    ct, _ = encrypt_bit(kp.public, 1, rng)
    fake_share = partial_decrypt(kp.secret, ct) + GENERATOR
    proof = prove_dleq(kp.secret, ct.c1, kp.public, fake_share, rng)
    assert not verify_dleq(ct.c1, kp.public, fake_share, proof)


# ----------------------------------------------------------------------
# End-to-end deployment
# ----------------------------------------------------------------------


def test_end_to_end_aggregation(rng):
    deployment = NizkDeployment.create(n_servers=3, length=4, rng=rng)
    vectors = [[1, 0, 1, 1], [0, 0, 1, 0], [1, 1, 1, 0]]
    for vec in vectors:
        submission = nizk_client_submit(deployment.combined_pub, vec, rng)
        assert deployment.submit(submission)
    totals = deployment.publish(max_total=len(vectors), rng=rng)
    assert totals == [2, 1, 3, 1]


def test_malicious_submission_rejected_end_to_end(rng):
    deployment = NizkDeployment.create(n_servers=2, length=2, rng=rng)
    good = nizk_client_submit(deployment.combined_pub, [1, 0], rng)
    assert deployment.submit(good)
    # Tamper: swap in an encryption of 5 with a junk proof.
    from repro.ec import random_scalar
    from repro.nizk.elgamal import ElGamalCiphertext

    k = random_scalar(rng)
    evil_ct = ElGamalCiphertext(
        scalar_mult(k, GENERATOR),
        scalar_mult(k, deployment.combined_pub) + scalar_mult(5, GENERATOR),
    )
    evil = nizk_client_submit(deployment.combined_pub, [1, 0], rng)
    evil.ciphertexts[0] = evil_ct
    assert not deployment.submit(evil)
    totals = deployment.publish(max_total=2, rng=rng)
    assert totals == [1, 0]  # only the good submission counted


def test_wrong_length_rejected(rng):
    deployment = NizkDeployment.create(n_servers=2, length=3, rng=rng)
    short = nizk_client_submit(deployment.combined_pub, [1], rng)
    assert not deployment.submit(short)


def test_deployment_needs_two_servers(rng):
    with pytest.raises(NizkError):
        NizkDeployment.create(n_servers=1, length=2, rng=rng)


def test_submission_size_accounting(rng):
    kp = ServerKeyPair.generate(rng)
    submission = nizk_client_submit(kp.public, [1, 0, 1], rng)
    assert submission.encoded_size() == 3 * UPLOAD_BYTES_PER_ELEMENT


def test_transfer_scales_linearly():
    small = nizk_server_transfer_bytes(16, 5)
    large = nizk_server_transfer_bytes(1024, 5)
    # Linear in L up to integer-division rounding.
    assert abs(large - small * 64) <= 64
