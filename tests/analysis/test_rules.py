"""Fixture snippets for every shipped rule.

Each rule gets three cases: a snippet it must flag, a clean snippet it
must stay silent on, and a flagged snippet whose ``# repro: allow``
suppression is honored.  Module-scoped rules adopt a hot-path identity
via the ``# repro: lint-as(...)`` pragma — the same mechanism real
out-of-tree code would use.

The fixture code lives in string literals, so the analyzer's own
whole-tree run never sees it as AST (and the pragma scanner, built on
:mod:`tokenize`, cannot be fooled by it either).
"""

import textwrap

from repro.analysis import analyze_source


def _run(snippet, path="fixture.py"):
    return analyze_source(textwrap.dedent(snippet), path)


def _rules(findings, suppressed=False):
    return [
        f.rule for f in findings if f.suppressed == suppressed
    ]


# ---------------------------------------------------------------------
# plane-discipline
# ---------------------------------------------------------------------

def test_plane_discipline_flags_scalar_call_in_loop():
    findings = _run(
        """
        # repro: lint-as(repro/field/batch.py)
        def accumulate(batch, out):
            for i in range(8):
                out.append(batch.to_ints())
        """
    )
    assert _rules(findings) == ["plane-discipline"]


def test_plane_discipline_iterator_source_runs_once():
    findings = _run(
        """
        # repro: lint-as(repro/field/batch.py)
        def hoisted(batch):
            rows = batch.to_ints()
            return [row[0] for row in rows]

        def once(batch):
            return [sum(row) for row in batch.to_ints()]

        def for_source(batch):
            out = []
            for row in batch.to_ints():
                out.append(sum(row))
            return out
        """
    )
    assert _rules(findings) == []


def test_plane_discipline_ignores_unscoped_modules():
    findings = _run(
        """
        def accumulate(batch, out):
            for i in range(8):
                out.append(batch.to_ints())
        """,
        path="repro/workloads/driver.py",
    )
    assert _rules(findings) == []


def test_plane_discipline_suppression_honored():
    findings = _run(
        """
        # repro: lint-as(repro/field/batch.py)
        def accumulate(batch, out):
            for i in range(8):
                # repro: allow(plane-discipline) - fixture rationale
                out.append(batch.to_ints())
        """
    )
    assert _rules(findings) == []
    assert _rules(findings, suppressed=True) == ["plane-discipline"]


# ---------------------------------------------------------------------
# canonical-crossing
# ---------------------------------------------------------------------

def test_canonical_crossing_flags_tainted_return():
    findings = _run(
        """
        # repro: lint-as(repro/field/batch.py)
        def mul_planes(ctx, a, b):
            raw = _conv(ctx, a, b)
            return raw
        """
    )
    assert _rules(findings) == ["canonical-crossing"]


def test_canonical_crossing_flags_direct_and_kw_sources():
    findings = _run(
        """
        # repro: lint-as(repro/field/ntt.py)
        def forward(ctx, a, b):
            return _carry(ctx, a, b)

        def lazy(ctx, a):
            x = _barrett(ctx, a, canonical=False)
            return x
        """
    )
    assert _rules(findings) == [
        "canonical-crossing", "canonical-crossing",
    ]


def test_canonical_crossing_barrett_cleanses():
    findings = _run(
        """
        # repro: lint-as(repro/field/batch.py)
        def mul_planes(ctx, a, b):
            raw = _conv(ctx, a, b)
            raw = _barrett(ctx, raw)
            return raw

        def _private_helper(ctx, a, b):
            return _conv(ctx, a, b)
        """
    )
    assert _rules(findings) == []


def test_canonical_crossing_suppression_honored():
    findings = _run(
        """
        # repro: lint-as(repro/field/batch.py)
        def mul_planes(ctx, a, b):
            raw = _conv(ctx, a, b)
            # repro: allow(canonical-crossing) - fixture rationale
            return raw
        """
    )
    assert _rules(findings) == []
    assert _rules(findings, suppressed=True) == ["canonical-crossing"]


# ---------------------------------------------------------------------
# rng-draw-order
# ---------------------------------------------------------------------

def test_rng_draw_order_flags_scalar_draws_in_batch_fn():
    findings = _run(
        """
        # repro: lint-as(repro/snip/prover.py)
        def prove_and_share_many(field, rng, n):
            out = []
            for _ in range(n):
                out.append(rng.randrange(field.modulus))
            return out
        """
    )
    assert _rules(findings) == ["rng-draw-order"]


def test_rng_draw_order_flags_alias_and_scalar_expand():
    findings = _run(
        """
        # repro: lint-as(repro/sharing/additive.py)
        def share_vectors_batch(field, seeds, rng):
            randrange = rng.randrange
            return [expand_seed(field, s, 4) for s in seeds]
        """
    )
    assert sorted(_rules(findings)) == [
        "rng-draw-order", "rng-draw-order",
    ]


def test_rng_draw_order_silent_outside_batch_functions():
    findings = _run(
        """
        # repro: lint-as(repro/snip/prover.py)
        def prove_and_share(field, rng):
            return rng.randrange(field.modulus)

        def draw_many_batch(field, seeds, rng):
            return expand_seed_batch(field, seeds, 4)
        """
    )
    assert _rules(findings) == []


def test_rng_draw_order_suppression_honored():
    findings = _run(
        """
        # repro: lint-as(repro/snip/prover.py)
        def share_proof_many(field, rng):
            # repro: allow(rng-draw-order) - fixture rationale
            return rng.randrange(field.modulus)
        """
    )
    assert _rules(findings) == []
    assert _rules(findings, suppressed=True) == ["rng-draw-order"]


# ---------------------------------------------------------------------
# executor-lifecycle
# ---------------------------------------------------------------------

def test_executor_lifecycle_flags_unbounded_queue():
    findings = _run(
        """
        import asyncio

        async def start(self):
            self._q = asyncio.Queue()
        """
    )
    assert _rules(findings) == ["executor-lifecycle"]


def test_executor_lifecycle_flags_fire_and_forget_task():
    findings = _run(
        """
        import asyncio

        async def start(self):
            asyncio.create_task(self._worker())
        """
    )
    assert _rules(findings) == ["executor-lifecycle"]


def test_executor_lifecycle_flags_pool_without_teardown():
    findings = _run(
        """
        from concurrent.futures import ProcessPoolExecutor

        class Fanout:
            def start(self):
                self._pool = ProcessPoolExecutor(2)
        """
    )
    assert _rules(findings) == ["executor-lifecycle"]


def test_executor_lifecycle_clean_patterns_pass():
    findings = _run(
        """
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        class Fanout:
            def start(self):
                self._q = asyncio.Queue(8)
                self._pool = ThreadPoolExecutor(2)
                self._task = asyncio.create_task(self.run())

            def close(self):
                self._task.cancel()
                self._pool.shutdown(wait=True)

        def scoped(items):
            with ThreadPoolExecutor(2) as pool:
                return list(pool.map(len, items))

        def factory():
            return ThreadPoolExecutor(2)

        async def awaited():
            fut = asyncio.ensure_future(work())
            return await fut
        """
    )
    assert _rules(findings) == []


def test_executor_lifecycle_suppression_honored():
    findings = _run(
        """
        import asyncio

        async def start(self):
            # repro: allow(executor-lifecycle) - fixture rationale
            self._q = asyncio.Queue()
        """
    )
    assert _rules(findings) == []
    assert _rules(findings, suppressed=True) == ["executor-lifecycle"]


# ---------------------------------------------------------------------
# shard-pickle-safety
# ---------------------------------------------------------------------

def test_shard_pickle_flags_lock_attribute():
    findings = _run(
        """
        # repro: lint-as(repro/protocol/replay.py)
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
        """
    )
    assert _rules(findings) == ["shard-pickle-safety"]


def test_shard_pickle_tracks_local_name_taint():
    findings = _run(
        """
        # repro: lint-as(repro/protocol/replay.py)
        import sqlite3

        class Tiered:
            def __init__(self, path):
                conn = sqlite3.connect(path)
                self._conn = conn
        """
    )
    assert _rules(findings) == ["shard-pickle-safety"]


def test_shard_pickle_getstate_exempts_class():
    findings = _run(
        """
        # repro: lint-as(repro/protocol/replay.py)
        import threading

        class Tiered:
            def __init__(self):
                self._lock = threading.Lock()

            def __getstate__(self):
                state = dict(self.__dict__)
                state.pop("_lock")
                return state
        """
    )
    assert _rules(findings) == []


def test_shard_pickle_suppression_honored():
    findings = _run(
        """
        # repro: lint-as(repro/protocol/server.py)
        import threading

        class Server:
            def __init__(self):
                # repro: allow(shard-pickle-safety) - fixture rationale
                self._lock = threading.Lock()
        """
    )
    assert _rules(findings) == []
    assert _rules(findings, suppressed=True) == ["shard-pickle-safety"]


# ---------------------------------------------------------------------
# wire-bounds
# ---------------------------------------------------------------------

def test_wire_bounds_flags_unguarded_to_bytes():
    findings = _run(
        """
        # repro: lint-as(repro/transport/framing.py)
        def encode(payload):
            return len(payload).to_bytes(4, "big") + payload
        """
    )
    assert _rules(findings) == ["wire-bounds"]


def test_wire_bounds_guard_must_mention_subject():
    findings = _run(
        """
        # repro: lint-as(repro/protocol/wire.py)
        def encode(sid, payload):
            if len(sid) != 16:
                raise WireError("bad sid")
            return len(payload).to_bytes(4, "big") + payload
        """
    )
    assert _rules(findings) == ["wire-bounds"]


def test_wire_bounds_guarded_and_constant_pass():
    findings = _run(
        """
        # repro: lint-as(repro/transport/framing.py)
        RESPONSE_SIZE = 17

        def encode(payload):
            if len(payload) > (1 << 32) - 1:
                raise FrameError("too large")
            return len(payload).to_bytes(4, "big") + payload

        def respond(payload):
            return RESPONSE_SIZE.to_bytes(4, "big") + payload
        """
    )
    assert _rules(findings) == []


def test_wire_bounds_suppression_honored():
    findings = _run(
        """
        # repro: lint-as(repro/transport/framing.py)
        def encode(payload):
            # repro: allow(wire-bounds) - fixture rationale
            return len(payload).to_bytes(4, "big") + payload
        """
    )
    assert _rules(findings) == []
    assert _rules(findings, suppressed=True) == ["wire-bounds"]
