"""Driver, suppression, CLI, and whole-tree smoke tests."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import all_checkers, analyze_paths, analyze_source
from repro.analysis.cli import main
from repro.analysis.driver import normalize_module
from repro.analysis.suppress import scan_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------------
# driver plumbing
# ---------------------------------------------------------------------

def test_normalize_module_strips_prefixes():
    assert normalize_module("src/repro/field/batch.py") == (
        "repro/field/batch.py"
    )
    assert normalize_module(
        "/x/site-packages/repro/protocol/wire.py"
    ) == "repro/protocol/wire.py"
    assert normalize_module("tests/analysis/test_driver.py") == (
        "tests/analysis/test_driver.py"
    )
    assert normalize_module("elsewhere/tool.py") == "elsewhere/tool.py"


def test_all_six_rules_registered():
    assert sorted(all_checkers()) == [
        "canonical-crossing",
        "executor-lifecycle",
        "plane-discipline",
        "rng-draw-order",
        "shard-pickle-safety",
        "wire-bounds",
    ]


def test_lint_as_pragma_adopts_module_identity():
    source = textwrap.dedent(
        """
        # repro: lint-as(repro/field/batch.py)
        def f(batch, out):
            for i in range(2):
                out.append(batch.to_ints())
        """
    )
    assert [f.rule for f in analyze_source(source, "anywhere.py")] == [
        "plane-discipline"
    ]
    # without the pragma the same code is out of every scoped target
    stripped = "\n".join(source.splitlines()[2:])
    assert analyze_source(stripped, "anywhere.py") == []


def test_suppression_in_string_literal_is_inert():
    sup = scan_suppressions(
        's = "# repro: allow(*)"\nx = 1  # repro: allow(wire-bounds)\n'
    )
    assert sup.by_line == {2: {"wire-bounds"}}


def test_suppression_block_extends_through_comment_lines():
    sup = scan_suppressions(
        "# repro: allow(plane-discipline) - because\n"
        "# the rationale continues here\n"
        "x = 1\n"
    )
    assert sup.is_suppressed("plane-discipline", 3)
    assert not sup.is_suppressed("plane-discipline", 5)


def test_wildcard_suppression_covers_every_rule():
    source = textwrap.dedent(
        """
        import asyncio

        async def start(self):
            # repro: allow(*) - fixture
            self._q = asyncio.Queue()
        """
    )
    findings = analyze_source(source, "fixture.py")
    assert findings and all(f.suppressed for f in findings)


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = analyze_paths([str(tmp_path)])
    assert result.files_scanned == 0
    assert len(result.errors) == 1 and "broken.py" in result.errors[0][0]


# ---------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "# repro: lint-as(repro/transport/framing.py)\n"
        "def f(n):\n"
        "    return n.to_bytes(4, 'big')\n"
    )
    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    assert main([]) == 2
    assert main([str(clean), "--rules", "no-such-rule"]) == 2
    capsys.readouterr()


def test_cli_json_report(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "# repro: lint-as(repro/transport/framing.py)\n"
        "def f(n):\n"
        "    return n.to_bytes(4, 'big')\n"
    )
    out_file = tmp_path / "report.json"
    code = main([str(dirty), "--format=json", "--output", str(out_file)])
    capsys.readouterr()
    assert code == 1
    report = json.loads(out_file.read_text())
    assert report["n_findings"] == 1
    assert report["findings"][0]["rule"] == "wire-bounds"
    assert report["findings"][0]["line"] == 3


def test_cli_rules_subset(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "# repro: lint-as(repro/transport/framing.py)\n"
        "def f(n):\n"
        "    return n.to_bytes(4, 'big')\n"
    )
    # scoping to an unrelated rule must make the same file pass
    assert main([str(dirty), "--rules", "plane-discipline"]) == 0
    capsys.readouterr()


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "plane-discipline" in proc.stdout


# ---------------------------------------------------------------------
# whole-tree smoke: the repo itself must lint clean
# ---------------------------------------------------------------------

def test_whole_tree_has_zero_unsuppressed_findings():
    result = analyze_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    )
    assert result.errors == []
    assert result.files_scanned > 100
    offenders = [f.render() for f in result.unsuppressed]
    assert offenders == [], "\n".join(offenders)
    # every suppression in the tree is an annotated intentional
    # exception; if this number drifts, re-audit rather than rubber-
    # stamping (it is a count of exceptions, not a budget)
    assert len(result.suppressed) <= 20
