"""Tests for validity-circuit gadgets."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    CircuitBuilder,
    assert_binary_decomposition,
    assert_bit,
    assert_bits,
    assert_one_hot,
    assert_product,
    assert_range_binary,
    assert_square,
)
from repro.field import FIELD87, FIELD_SMALL, FIELD_TINY


@pytest.fixture
def rng():
    return random.Random(5150)


def test_assert_bit_cost_and_semantics():
    f = FIELD_TINY
    b = CircuitBuilder(f)
    x = b.input()
    assert_bit(b, x)
    circuit = b.build()
    assert circuit.n_mul_gates == 1
    assert circuit.check(f, [0]) and circuit.check(f, [1])
    assert not circuit.check(f, [2])


def test_assert_bits_cost_scales():
    f = FIELD_TINY
    b = CircuitBuilder(f)
    wires = b.inputs(5)
    assert_bits(b, wires)
    assert b.build().n_mul_gates == 5


@pytest.mark.parametrize("n_bits", [1, 4, 8])
def test_binary_decomposition_accepts_consistent(n_bits, rng):
    f = FIELD87
    b = CircuitBuilder(f)
    value = b.input()
    bits = b.inputs(n_bits)
    assert_binary_decomposition(b, value, bits)
    circuit = b.build()
    for _ in range(10):
        x = rng.randrange(1 << n_bits)
        bit_values = [(x >> i) & 1 for i in range(n_bits)]
        assert circuit.check(f, [x] + bit_values)


def test_binary_decomposition_rejects_wrong_value():
    f = FIELD87
    b = CircuitBuilder(f)
    value = b.input()
    bits = b.inputs(4)
    assert_binary_decomposition(b, value, bits)
    circuit = b.build()
    # bits say 5, value says 6
    assert not circuit.check(f, [6, 1, 0, 1, 0])


def test_binary_decomposition_rejects_non_bits():
    f = FIELD87
    b = CircuitBuilder(f)
    value = b.input()
    bits = b.inputs(2)
    assert_binary_decomposition(b, value, bits)
    circuit = b.build()
    # "bits" = (2, 0): weighted sum is 2, but 2 is not a bit.
    assert not circuit.check(f, [2, 2, 0])


def test_binary_decomposition_rejects_overflow_encoding():
    """A value >= 2^b cannot satisfy the decomposition (the car cannot
    report 100,000 km/h, per the paper's Section 2 example)."""
    f = FIELD87
    b = CircuitBuilder(f)
    value = b.input()
    bits = b.inputs(4)
    assert_binary_decomposition(b, value, bits)
    circuit = b.build()
    for bad_bits in ([1, 1, 1, 2], [0, 0, 0, 0]):
        assert not circuit.check(f, [16] + bad_bits)


def test_assert_product(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x, y, claimed = b.inputs(3)
    assert_product(b, x, y, claimed)
    circuit = b.build()
    assert circuit.n_mul_gates == 1
    for _ in range(5):
        xv, yv = f.rand(rng), f.rand(rng)
        assert circuit.check(f, [xv, yv, f.mul(xv, yv)])
        assert not circuit.check(f, [xv, yv, f.add(f.mul(xv, yv), 1)])


def test_assert_square(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x, claimed = b.inputs(2)
    assert_square(b, x, claimed)
    circuit = b.build()
    xv = f.rand(rng)
    assert circuit.check(f, [xv, f.mul(xv, xv)])
    assert not circuit.check(f, [xv, f.add(f.mul(xv, xv), 3)])


@pytest.mark.parametrize("size", [2, 5])
def test_assert_one_hot(size):
    f = FIELD87
    b = CircuitBuilder(f)
    wires = b.inputs(size)
    assert_one_hot(b, wires)
    circuit = b.build()
    assert circuit.n_mul_gates == size
    for hot in range(size):
        vec = [1 if i == hot else 0 for i in range(size)]
        assert circuit.check(f, vec)
    assert not circuit.check(f, [0] * size)          # nothing set
    assert not circuit.check(f, [1] * size)          # too many set
    two = [0] * size
    two[0] = 2                                       # right sum, not a bit
    assert not circuit.check(f, two)


def test_assert_range_binary_returns_fresh_inputs(rng):
    f = FIELD87
    b = CircuitBuilder(f)
    value = b.input()
    bit_wires = assert_range_binary(b, value, 6)
    circuit = b.build()
    assert len(bit_wires) == 6
    assert circuit.n_inputs == 7
    x = 45
    bits = [(x >> i) & 1 for i in range(6)]
    assert circuit.check(f, [x] + bits)
    assert not circuit.check(f, [64] + bits)


@given(x=st.integers(0, 255))
@settings(max_examples=50, deadline=None)
def test_range_check_property(x):
    f = FIELD87
    b = CircuitBuilder(f)
    value = b.input()
    assert_range_binary(b, value, 8)
    circuit = b.build()
    bits = [(x >> i) & 1 for i in range(8)]
    assert circuit.check(f, [x] + bits)
