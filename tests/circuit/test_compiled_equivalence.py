"""Compiled-plan ↔ scalar-oracle differential suite.

``CompiledCircuit.evaluate_batch`` must be *bit-identical* to running
:meth:`Circuit.evaluate` row by row: same mul-input/output wire values,
same assertion-wire values, same per-row Valid verdict — on every
Figure 7 scenario circuit, every shipped NTT-friendly modulus, both
backends, at several batch sizes, for valid *and* invalid encodings
(the scalar oracle defines truth; the plane is checked row for row).

The adversarial half round-trips a batched scenario upload through real
``PrioServer`` instances with one corrupted share row and asserts exact
offender isolation, i.e. the compiled trace feeding the batched prover
does not smear a bad submission across its batch.

Small deterministic cases run in tier-1; the full-catalog batch-64
sweep is ``slow``-marked (run with ``-m slow``).
"""

import random

import pytest

from repro.circuit import (
    CircuitBuilder,
    CircuitError,
    CompiledCircuit,
    compile_circuit,
)
from repro.field import FIELD64, FIELD87, FIELD265, FIELD_SMALL, use_numpy
from repro.field.batch import BatchVector
from repro.protocol import PrioClient, PrioServer
from repro.snip import ServerRandomness
from repro.workloads.scenarios import all_scenarios, scenario_by_name

BACKENDS = [True] + ([False] if use_numpy(None) else [])
MODULI = [FIELD_SMALL, FIELD64, FIELD87, FIELD265]
MODULI_IDS = [f.name for f in MODULI]
#: the tier-1 subset: one scenario per workload group, smallest first
FAST_SCENARIOS = ["geneva", "lowres", "beck-21", "heart"]


def backend_id(force_pure):
    return "pure" if force_pure else "numpy"


def _rows(scenario, field, n_valid, n_invalid, rng):
    """n_valid honest encodings + n_invalid perturbed/random rows."""
    afe = scenario.afe
    rows = [
        afe.encode(scenario.generate(rng), rng) for _ in range(n_valid)
    ]
    p = field.modulus
    for i in range(n_invalid):
        if i % 2 == 0 and rows:
            # Perturb one element of a valid encoding.
            row = list(rows[rng.randrange(len(rows))])
            row[rng.randrange(len(row))] += 1 + rng.randrange(p - 1)
            row = [v % p for v in row]
        else:
            row = [rng.randrange(p) for _ in range(afe.k)]
        rows.append(row)
    return rows


def _assert_matches_oracle(field, circuit, plan, rows, force_pure):
    """Row-for-row bit-identity of the whole batch trace."""
    trace = plan.evaluate_batch(rows, force_pure)
    assert len(trace) == len(rows)
    left = trace.mul_inputs_left.to_ints()
    right = trace.mul_inputs_right.to_ints()
    outs = trace.mul_outputs.to_ints()
    asserts = trace.assertion_values.to_ints()
    for i, row in enumerate(rows):
        scalar = circuit.evaluate(field, row)
        assert left[i] == scalar.mul_inputs_left, f"row {i} f-inputs"
        assert right[i] == scalar.mul_inputs_right, f"row {i} g-inputs"
        assert outs[i] == scalar.mul_outputs, f"row {i} mul outputs"
        assert asserts[i] == scalar.assertion_values, f"row {i} assertions"
        assert trace.valid[i] == scalar.is_valid, f"row {i} verdict"
    return trace


# ----------------------------------------------------------------------
# Differential: every scenario circuit vs the scalar interpreter
# ----------------------------------------------------------------------


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("field", MODULI, ids=MODULI_IDS)
@pytest.mark.parametrize("name", FAST_SCENARIOS)
@pytest.mark.parametrize("batch", [1, 2, 7])
def test_compiled_matches_scalar(name, field, force_pure, batch):
    scenario = scenario_by_name(name, field)
    circuit = scenario.afe.valid_circuit()
    plan = compile_circuit(field, circuit)
    # str hash() is randomized per process; derive a stable seed.
    rng = random.Random(sum(map(ord, name)) * 31 + field.modulus % 997 + batch)
    n_invalid = batch // 2
    rows = _rows(scenario, field, batch - n_invalid, n_invalid, rng)
    trace = _assert_matches_oracle(field, circuit, plan, rows, force_pure)
    if n_invalid:
        assert not trace.all_valid
        assert trace.first_invalid() is not None


@pytest.mark.slow
@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("field", MODULI, ids=MODULI_IDS)
def test_compiled_matches_scalar_full_catalog(field, force_pure):
    """Every Figure 7 workload, batch 64, valid+invalid mix."""
    rng = random.Random(0xCA7A)
    for scenario in all_scenarios(field):
        circuit = scenario.afe.valid_circuit()
        plan = compile_circuit(field, circuit)
        rows = _rows(scenario, field, 48, 16, rng)
        _assert_matches_oracle(field, circuit, plan, rows, force_pure)


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_batchvector_input_backend_wins(force_pure):
    """A BatchVector input's backend decides the trace backend."""
    field = FIELD87
    scenario = scenario_by_name("beck-21", field)
    circuit = scenario.afe.valid_circuit()
    plan = compile_circuit(field, circuit)
    rng = random.Random(7)
    rows = _rows(scenario, field, 3, 1, rng)
    batch = BatchVector.from_ints(field, rows, force_pure)
    trace = plan.evaluate_batch(batch)
    assert trace.mul_inputs_left.force_pure == batch.force_pure
    _assert_matches_oracle(field, circuit, plan, rows, force_pure)


def test_empty_batch_and_width_mismatch():
    field = FIELD87
    circuit = scenario_by_name("geneva", field).afe.valid_circuit()
    plan = compile_circuit(field, circuit)
    trace = plan.evaluate_batch([])
    assert len(trace) == 0 and trace.all_valid
    with pytest.raises(CircuitError):
        plan.evaluate_batch([[0, 1]])


# ----------------------------------------------------------------------
# Leveled scheduling: multi-level circuits (no Figure 7 circuit has
# multiplicative depth > 1, so pin the general path synthetically)
# ----------------------------------------------------------------------


def _deep_circuit(field):
    """(x+3)^8 == y * x^2 * 2 + z, multiplicative depth 3."""
    b = CircuitBuilder(field, name="deep")
    x, y, z = b.inputs(3)
    t = b.add(x, b.constant(3))
    for _ in range(3):  # t^2, t^4, t^8
        t = b.mul(t, t)
    x2 = b.mul(x, x)
    rhs = b.add(b.mul_const(2, b.mul(y, x2)), z)
    b.assert_equal(t, rhs)
    return b.build()


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
@pytest.mark.parametrize("field", MODULI, ids=MODULI_IDS)
def test_multi_level_circuit_matches_scalar(field, force_pure):
    circuit = _deep_circuit(field)
    plan = compile_circuit(field, circuit)
    assert len(plan.levels) == 3
    rng = random.Random(31)
    p = field.modulus
    rows = [
        [rng.randrange(p) for _ in range(3)] for _ in range(9)
    ]
    # Include rows the circuit accepts: z = (x+3)^8 - 2*y*x^2.
    for x, y in [(2, 5), (0, 0), (p - 1, 3)]:
        z = (pow(x + 3, 8, p) - 2 * y * x * x) % p
        rows.append([x, y, z])
    trace = _assert_matches_oracle(field, circuit, plan, rows, force_pure)
    assert sum(trace.valid) >= 3


def test_every_scenario_compiles_flat():
    """All Figure 7 circuits are single-level (pure input gathers)."""
    for scenario in all_scenarios(FIELD87):
        plan = compile_circuit(FIELD87, scenario.afe.valid_circuit())
        assert len(plan.levels) == 1, scenario.name
        assert plan.n_mul_gates == scenario.mul_gates


def test_plan_cache_by_circuit_identity():
    scenario = scenario_by_name("geneva", FIELD87)
    circuit = scenario.afe.valid_circuit()
    assert compile_circuit(FIELD87, circuit) is compile_circuit(
        FIELD87, circuit
    )
    # Same circuit under a different modulus gets its own plan.
    other = compile_circuit(FIELD_SMALL, circuit)
    assert other is not compile_circuit(FIELD87, circuit)
    assert isinstance(other, CompiledCircuit)
    # The AFE's memoized valid_circuit() makes call sites share plans.
    assert scenario.afe.valid_circuit() is circuit


# ----------------------------------------------------------------------
# Adversarial: one corrupted share row in a batched scenario upload
# ----------------------------------------------------------------------


def _corrupt_element(field, packet, element, delta=1):
    """Re-encode one element of an EXPLICIT body shifted by ``delta``."""
    size = field.encoded_size
    body = bytearray(packet.body)
    start = element * size
    value = int.from_bytes(body[start:start + size], "big")
    body[start:start + size] = field.encode_element(
        (value + delta) % field.modulus
    )
    return packet.__class__(
        submission_id=packet.submission_id,
        server_index=packet.server_index,
        kind=packet.kind,
        n_elements=packet.n_elements,
        body=bytes(body),
    )


def _run_batch(servers, submissions):
    """receive_batch → plane rounds → accumulate; per-submission results."""
    n_servers = len(servers)
    outs = [
        server.receive_batch([sub.packets[s] for sub in submissions])
        for s, server in enumerate(servers)
    ]
    results = [None] * len(submissions)
    survivors = []
    for pos in range(len(submissions)):
        if any(isinstance(outs[s][pos], Exception) for s in range(n_servers)):
            for s, server in enumerate(servers):
                if not isinstance(outs[s][pos], Exception):
                    server.abandon(outs[s][pos])
            results[pos] = False
        else:
            survivors.append(pos)
    parties, round1 = [], []
    for s, server in enumerate(servers):
        party, batch = server.begin_verification_batch(
            [outs[s][pos] for pos in survivors]
        )
        parties.append(party)
        round1.append(batch)
    round2 = [
        server.finish_verification_batch(party, round1)
        for server, party in zip(servers, parties)
    ]
    decisions = servers[0].decide_batch(round2)
    for s, server in enumerate(servers):
        server.accumulate_batch(
            [outs[s][pos] for pos in survivors], decisions
        )
    for pos, accepted in zip(survivors, decisions):
        results[pos] = accepted
    return results


@pytest.mark.parametrize("force_pure", BACKENDS, ids=backend_id)
def test_scenario_corrupted_row_rejects_alone(force_pure):
    """One bad share row of a beck-21 batch falls; the rest aggregate."""
    field = FIELD87
    scenario = scenario_by_name("beck-21", field)
    afe = scenario.afe
    rng = random.Random(0xBAD5EED)
    client = PrioClient(afe, 3, rng=random.Random(93))
    values = [scenario.generate(rng) for _ in range(5)]
    submissions = client.prepare_submissions(
        values, batched=True, force_pure=force_pure
    )
    bad = rng.randrange(len(submissions))
    # Shift one input-share element in the explicit (last) packet.
    submissions[bad].packets[-1] = _corrupt_element(
        field, submissions[bad].packets[-1], rng.randrange(afe.k)
    )
    randomness = ServerRandomness(b"compiled-equivalence")
    servers = [
        PrioServer(afe, i, 3, randomness, force_pure_backend=force_pure)
        for i in range(3)
    ]
    results = _run_batch(servers, submissions)
    assert results == [pos != bad for pos in range(len(submissions))]
    sigma = field.vec_sum([server.publish() for server in servers])
    kept = [v for pos, v in enumerate(values) if pos != bad]
    expected = [
        [
            sum(1 for answers in kept if answers[q] == choice)
            for choice in range(afe.n_choices)
        ]
        for q in range(afe.n_questions)
    ]
    assert afe.decode(sigma, servers[0].n_accepted) == expected
