"""Tests for circuit construction, evaluation, and share reconstruction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Circuit,
    CircuitBuilder,
    CircuitError,
    Gate,
    Op,
    batched_assertion_share,
)
from repro.field import FIELD87, FIELD_SMALL, FIELD_TINY, FieldError
from repro.sharing import reconstruct_scalar, share_vector


@pytest.fixture
def rng():
    return random.Random(11)


def build_bit_circuit(field):
    """x * (x - 1) == 0, the canonical one-mul Valid circuit."""
    b = CircuitBuilder(field, name="bit")
    x = b.input()
    square = b.mul(x, x)
    b.assert_zero(b.sub(square, x))
    return b.build()


# ----------------------------------------------------------------------
# Builder behaviour
# ----------------------------------------------------------------------


def test_builder_requires_inputs():
    b = CircuitBuilder(FIELD_TINY)
    with pytest.raises(CircuitError):
        b.build()


def test_builder_requires_assertions():
    b = CircuitBuilder(FIELD_TINY)
    b.input()
    with pytest.raises(CircuitError):
        b.build()


def test_constant_folding_consumes_no_mul_gates():
    b = CircuitBuilder(FIELD_TINY)
    x = b.input()
    c1 = b.constant(3)
    c2 = b.constant(4)
    prod = b.mul(c1, c2)  # folds to constant 12
    scaled = b.mul(c2, x)  # becomes MUL_CONST
    b.assert_zero(b.sub(b.add(prod, scaled), x))
    circuit = b.build()
    assert circuit.n_mul_gates == 0


def test_constant_cache_deduplicates():
    b = CircuitBuilder(FIELD_TINY)
    b.input()
    w1 = b.constant(7)
    w2 = b.constant(7)
    w3 = b.constant(7 + FIELD_TINY.modulus)
    assert w1 == w2 == w3


def test_mul_of_two_variables_counts():
    b = CircuitBuilder(FIELD_TINY)
    x, y = b.inputs(2)
    b.assert_zero(b.mul(x, y))
    assert b.build().n_mul_gates == 1


def test_assert_zero_unknown_wire():
    b = CircuitBuilder(FIELD_TINY)
    b.input()
    with pytest.raises(CircuitError):
        b.assert_zero(99)


def test_linear_combination_mismatch():
    b = CircuitBuilder(FIELD_TINY)
    x = b.input()
    with pytest.raises(CircuitError):
        b.linear_combination([1, 2], [x])


def test_wire_sum_empty_is_zero_const():
    b = CircuitBuilder(FIELD_TINY)
    x = b.input()
    zero = b.wire_sum([])
    b.assert_equal(x, zero)
    circuit = b.build()
    assert circuit.check(FIELD_TINY, [0])
    assert not circuit.check(FIELD_TINY, [5])


def test_linear_combination_drops_zero_coefficients():
    # Gate-count pin for the builder's affine folds: zero-coefficient
    # terms vanish, unit coefficients reuse the wire, constants fold,
    # so the sparse row [0, 1, 0, 5, 0] over five wires costs exactly
    # one MUL_CONST and one ADD.
    b = CircuitBuilder(FIELD87)
    ws = b.inputs(5)
    before = len(b._gates)
    out = b.linear_combination([0, 1, 0, 5, 0], ws)
    assert len(b._gates) - before == 2  # MUL_CONST(5, w3), ADD
    b.assert_zero(out)
    circuit = b.build()
    assert circuit.n_mul_gates == 0
    # value check: w1 + 5*w3
    assert circuit.check(FIELD87, [9, 10, 9, FIELD87.modulus - 2, 9])
    assert not circuit.check(FIELD87, [9, 10, 9, 1, 9])


def test_linear_combination_all_zero_is_single_constant():
    b = CircuitBuilder(FIELD87)
    ws = b.inputs(3)
    before = len(b._gates)
    out = b.linear_combination([0, 0, FIELD87.modulus], ws)
    assert len(b._gates) - before == 1  # just CONST(0)
    assert b._gates[out].op is Op.CONST and b._gates[out].payload == 0


def test_linear_combination_unit_coefficient_reuses_wire():
    b = CircuitBuilder(FIELD87)
    x = b.input()
    assert b.linear_combination([1], [x]) == x
    assert b.mul_const(1, x) == x
    zero = b.mul_const(0, x)
    assert b._gates[zero].op is Op.CONST and b._gates[zero].payload == 0


def test_wire_sum_folds_constant_wires():
    b = CircuitBuilder(FIELD87)
    x, y = b.inputs(2)
    c3, c4 = b.constant(3), b.constant(4)
    before = len(b._gates)
    out = b.wire_sum([x, c3, y, c4])
    # ADD(x, y), CONST(7), ADD(acc, 7) — constants merge into one gate
    assert len(b._gates) - before == 3
    b.assert_zero(out)
    circuit = b.build()
    p = FIELD87.modulus
    assert circuit.check(FIELD87, [p - 5, p - 2])
    assert not circuit.check(FIELD87, [1, 1])


# ----------------------------------------------------------------------
# Structural validation
# ----------------------------------------------------------------------


def test_forward_reference_rejected():
    gates = [Gate(Op.INPUT, payload=0), Gate(Op.ADD, left=0, right=5)]
    with pytest.raises(CircuitError):
        Circuit(gates, n_inputs=1, assertions=[1])


def test_duplicate_input_index_rejected():
    gates = [Gate(Op.INPUT, payload=0), Gate(Op.INPUT, payload=0)]
    with pytest.raises(CircuitError):
        Circuit(gates, n_inputs=2, assertions=[0])


def test_assertion_out_of_range_rejected():
    gates = [Gate(Op.INPUT, payload=0)]
    with pytest.raises(CircuitError):
        Circuit(gates, n_inputs=1, assertions=[3])


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


def test_bit_circuit_accepts_bits_rejects_others():
    circuit = build_bit_circuit(FIELD_TINY)
    assert circuit.check(FIELD_TINY, [0])
    assert circuit.check(FIELD_TINY, [1])
    for v in range(2, 97):
        assert not circuit.check(FIELD_TINY, [v])


def test_evaluate_records_mul_trace():
    f = FIELD_TINY
    b = CircuitBuilder(f)
    x, y = b.inputs(2)
    xy = b.mul(x, y)
    x2 = b.mul(x, x)
    b.assert_zero(b.sub(xy, x2))
    circuit = b.build()
    trace = circuit.evaluate(f, [3, 9])
    assert trace.mul_inputs_left == [3, 3]
    assert trace.mul_inputs_right == [9, 3]
    assert trace.mul_outputs == [27, 9]
    assert trace.assertion_values == [(27 - 9) % 97]
    assert not trace.is_valid


def test_evaluate_wrong_arity():
    circuit = build_bit_circuit(FIELD_TINY)
    with pytest.raises(CircuitError):
        circuit.evaluate(FIELD_TINY, [1, 2])


def test_evaluate_all_ops():
    f = FIELD_TINY
    b = CircuitBuilder(f)
    x = b.input()
    w = b.add(x, b.constant(10))      # x + 10
    w = b.sub(w, b.constant(3))       # x + 7
    w = b.mul_const(2, w)             # 2x + 14
    w = b.mul(w, x)                   # (2x + 14) x
    b.assert_zero(w)
    circuit = b.build()
    trace = circuit.evaluate(f, [5])
    assert trace.wire_values[-1] == ((2 * 5 + 14) * 5) % 97


# ----------------------------------------------------------------------
# Share reconstruction (the SNIP verifier's local step)
# ----------------------------------------------------------------------


def reconstruct_via_shares(circuit, field, inputs, n_servers, rng):
    """Helper: run the share-local reconstruction across n servers and
    recombine; must agree with plaintext evaluation."""
    trace = circuit.evaluate(field, inputs)
    input_shares = share_vector(field, list(inputs), n_servers, rng)
    mul_shares = share_vector(field, trace.mul_outputs, n_servers, rng) if (
        trace.mul_outputs
    ) else [[] for _ in range(n_servers)]
    per_server = [
        circuit.reconstruct_wire_shares(
            field, input_shares[i], mul_shares[i], is_leader=(i == 0)
        )
        for i in range(n_servers)
    ]
    return trace, per_server


@pytest.mark.parametrize("n_servers", [2, 3, 5])
def test_wire_share_reconstruction_matches_plaintext(n_servers, rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x, y, z = b.inputs(3)
    t1 = b.mul(x, y)
    t2 = b.add(t1, b.mul_const(7, z))
    t3 = b.mul(t2, t2)
    b.assert_zero(b.sub(t3, b.constant(4)))
    circuit = b.build()
    inputs = [f.rand(rng) for _ in range(3)]
    trace, per_server = reconstruct_via_shares(circuit, f, inputs, n_servers, rng)
    for wire in range(len(circuit)):
        total = reconstruct_scalar(
            f, [s.wire_values[wire] for s in per_server]
        )
        assert total == trace.wire_values[wire]


def test_mul_input_shares_sum_to_plaintext(rng):
    """The verifier's f/g polynomial points: shares of u_t and v_t."""
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x, y = b.inputs(2)
    b.assert_zero(b.mul(b.add(x, y), b.sub(x, y)))
    circuit = b.build()
    inputs = [17, 29]
    trace, per_server = reconstruct_via_shares(circuit, f, inputs, 3, rng)
    for t in range(circuit.n_mul_gates):
        left = reconstruct_scalar(
            f, [s.mul_inputs_left[t] for s in per_server]
        )
        right = reconstruct_scalar(
            f, [s.mul_inputs_right[t] for s in per_server]
        )
        assert left == trace.mul_inputs_left[t]
        assert right == trace.mul_inputs_right[t]


def test_assertion_shares_sum_to_zero_for_valid_input(rng):
    f = FIELD_SMALL
    circuit = build_bit_circuit(f)
    trace, per_server = reconstruct_via_shares(circuit, f, [1], 3, rng)
    assert trace.is_valid
    combined = reconstruct_scalar(
        f, [s.assertion_shares[0] for s in per_server]
    )
    assert combined == 0


def test_reconstruct_rejects_bad_arity(rng):
    f = FIELD_SMALL
    circuit = build_bit_circuit(f)
    with pytest.raises(CircuitError):
        circuit.reconstruct_wire_shares(f, [1, 2], [0], True)
    with pytest.raises(CircuitError):
        circuit.reconstruct_wire_shares(f, [1], [0, 0], True)


# ----------------------------------------------------------------------
# Batched assertions
# ----------------------------------------------------------------------


def test_batched_assertion_share_zero_when_valid(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    bits = b.inputs(4)
    for bit in bits:
        sq = b.mul(bit, bit)
        b.assert_zero(b.sub(sq, bit))
    circuit = b.build()

    inputs = [0, 1, 1, 0]
    trace = circuit.evaluate(f, inputs)
    challenge = f.rand_vector(len(circuit.assertions), rng)

    input_shares = share_vector(f, inputs, 3, rng)
    mul_shares = share_vector(f, trace.mul_outputs, 3, rng)
    combined = []
    for i in range(3):
        ws = circuit.reconstruct_wire_shares(
            f, input_shares[i], mul_shares[i], is_leader=(i == 0)
        )
        combined.append(
            batched_assertion_share(f, ws.assertion_shares, challenge)
        )
    assert reconstruct_scalar(f, combined) == 0


def test_batched_assertion_share_nonzero_when_invalid(rng):
    """With an invalid input, a random challenge catches it w.h.p."""
    f = FIELD87  # large field: failure probability ~ 1/|F|
    b = CircuitBuilder(f)
    bits = b.inputs(2)
    for bit in bits:
        sq = b.mul(bit, bit)
        b.assert_zero(b.sub(sq, bit))
    circuit = b.build()

    inputs = [1, 5]  # 5 is not a bit
    trace = circuit.evaluate(f, inputs)
    challenge = f.rand_vector(len(circuit.assertions), rng)
    total = f.inner_product(challenge, trace.assertion_values)
    assert total != 0


def test_batched_assertion_length_mismatch():
    with pytest.raises(FieldError):
        batched_assertion_share(FIELD_TINY, [1, 2], [1])


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------


@given(
    x=st.integers(0, FIELD_SMALL.modulus - 1),
    y=st.integers(0, FIELD_SMALL.modulus - 1),
    seed=st.integers(0, 2**32),
)
@settings(max_examples=40, deadline=None)
def test_share_reconstruction_property(x, y, seed):
    """Share-local wire reconstruction is correct for random inputs."""
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    wx, wy = b.inputs(2)
    prod = b.mul(wx, wy)
    b.assert_zero(b.sub(prod, b.constant((x * y) % f.modulus)))
    circuit = b.build()
    r = random.Random(seed)
    trace = circuit.evaluate(f, [x, y])
    assert trace.is_valid
    input_shares = share_vector(f, [x, y], 2, r)
    mul_shares = share_vector(f, trace.mul_outputs, 2, r)
    parts = [
        circuit.reconstruct_wire_shares(
            f, input_shares[i], mul_shares[i], is_leader=(i == 0)
        ).assertion_shares[0]
        for i in range(2)
    ]
    assert reconstruct_scalar(f, parts) == 0
