"""Regression corpus of malformed wire frames.

Each case is a concrete adversarial input the transport stack must
survive with *offender-only* rejection: the malformed frame (or
packet position) is refused with a typed protocol error, every honest
position in the same batch still verifies, and no error ever escapes
as a bare ``OverflowError``/``IndexError``/crash.

The corpus drives the three untrusted-input seams end to end:

* :class:`~repro.transport.framing.FrameAssembler` — byte-stream
  deframing (truncation, oversized length prefixes, fragmentation);
* :meth:`PrioServer.receive_wire_batch` — per-position packet decode
  (oversized ``n_elements``, non-canonical limb bytes, duplicated
  submission ids);
* :meth:`PrioServer.receive_sealed_batch` — sealed packets (malformed
  ephemeral points, MAC tampering, grafted or lying envelopes).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.afe import IntegerSumAfe
from repro.field import FIELD87, FieldError
from repro.protocol import PrioDeployment
from repro.protocol.server import PendingSubmission, ProtocolError
from repro.protocol.wire import ClientPacket, MAX_N_ELEMENTS, PacketKind
from repro.transport.framing import FrameAssembler, FrameError

_HEADER_SIZE = 26  # magic(2) version(1) kind(1) sid(16) idx(2) n(4)


def _deployment(seed=b"fuzz"):
    return PrioDeployment.create(
        IntegerSumAfe(FIELD87, 4), 3, seed=seed, batch_size=4,
        rng=random.Random(7),
    )


def _explicit_index(submission):
    """Server index receiving the EXPLICIT share (others get seeds)."""
    for packet in submission.packets:
        if packet.kind is PacketKind.EXPLICIT:
            return packet.server_index
    raise AssertionError("no explicit packet in submission")


def _payloads_for(submissions, server_index):
    return [
        next(
            p for p in s.packets if p.server_index == server_index
        ).encode()
        for s in submissions
    ]


# ---------------------------------------------------------------------
# FrameAssembler: stream-level malformations
# ---------------------------------------------------------------------


def test_truncated_length_prefix_stays_pending():
    asm = FrameAssembler()
    # 2 of the 4 prefix bytes: not a frame, not an error
    assert asm.feed(b"\x00\x00") == []
    assert asm.buffered_bytes == 2
    # completing the prefix and body yields exactly the one frame
    assert asm.feed(b"\x00\x03ab") == []
    assert asm.feed(b"c") == [b"abc"]
    assert asm.buffered_bytes == 0


def test_truncated_body_stays_pending():
    asm = FrameAssembler()
    payload = b"x" * 10
    frame = len(payload).to_bytes(4, "big") + payload
    assert asm.feed(frame[:-1]) == []
    assert asm.buffered_bytes == len(frame) - 1
    assert asm.feed(frame[-1:]) == [payload]


def test_oversized_length_prefix_poisons_before_buffering():
    asm = FrameAssembler(max_frame=64)
    claim = (65).to_bytes(4, "big")
    with pytest.raises(FrameError):
        asm.feed(claim)
    # poisoned: even innocent bytes are refused afterwards
    with pytest.raises(FrameError):
        asm.feed(b"\x00\x00\x00\x01a")


def test_oversized_claim_after_good_frame_keeps_good_frame():
    asm = FrameAssembler(max_frame=64)
    good = len(b"ok").to_bytes(4, "big") + b"ok"
    huge = (1 << 30).to_bytes(4, "big")
    with pytest.raises(FrameError):
        asm.feed(good + huge)


@given(
    payloads=st.lists(st.binary(min_size=0, max_size=40), max_size=6),
    cut=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_fragmentation_never_changes_reassembly(payloads, cut):
    stream = b"".join(
        len(p).to_bytes(4, "big") + p for p in payloads
    )
    asm = FrameAssembler()
    out = []
    for i in range(0, len(stream), cut):
        out.extend(asm.feed(stream[i:i + cut]))
    assert out == payloads
    assert asm.buffered_bytes == 0


# ---------------------------------------------------------------------
# receive_wire_batch: packet-level malformations, offender-only
# ---------------------------------------------------------------------


def _assert_offender_only(out, bad_positions, exc_type):
    for i, result in enumerate(out):
        if i in bad_positions:
            assert isinstance(result, exc_type), (i, result)
        else:
            assert isinstance(result, PendingSubmission), (i, result)


def test_oversized_n_elements_rejects_offender_only():
    from repro.protocol.wire import WireError

    dep = _deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    idx = _explicit_index(subs[0])
    payloads = _payloads_for(subs, idx)

    bad = bytearray(payloads[1])
    bad[22:26] = (MAX_N_ELEMENTS + 1).to_bytes(4, "big")
    payloads[1] = bytes(bad)

    out = dep.servers[idx].receive_wire_batch(payloads)
    _assert_offender_only(out, {1}, WireError)


def test_non_canonical_limb_bytes_reject_offender_only():
    dep = _deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    idx = _explicit_index(subs[0])
    payloads = _payloads_for(subs, idx)

    # an EXPLICIT body of all-ones bytes encodes values >= p: the
    # plane decode must refuse the row, not canonicalize it silently
    bad = bytearray(payloads[0])
    bad[_HEADER_SIZE:] = b"\xff" * (len(bad) - _HEADER_SIZE)
    payloads[0] = bytes(bad)

    out = dep.servers[idx].receive_wire_batch(payloads)
    _assert_offender_only(out, {0}, FieldError)


def test_duplicated_submission_id_rejects_the_replay_only():
    dep = _deployment()
    subs = dep.client.prepare_submissions([4, 5])
    idx = _explicit_index(subs[0])
    payloads = _payloads_for(subs, idx)
    payloads.append(payloads[0])  # in-batch replay of position 0

    out = dep.servers[idx].receive_wire_batch(payloads)
    _assert_offender_only(out, {2}, ProtocolError)


def test_truncated_packet_header_rejects_offender_only():
    from repro.protocol.wire import WireError

    dep = _deployment()
    subs = dep.client.prepare_submissions([6, 7])
    idx = _explicit_index(subs[0])
    payloads = _payloads_for(subs, idx)
    payloads[0] = payloads[0][:_HEADER_SIZE - 3]

    out = dep.servers[idx].receive_wire_batch(payloads)
    _assert_offender_only(out, {0}, WireError)


# ---------------------------------------------------------------------
# receive_sealed_batch: sealed-packet malformations, offender-only
# ---------------------------------------------------------------------


def _sealed_deployment(seed=b"fuzz-sealed"):
    return PrioDeployment.create(
        IntegerSumAfe(FIELD87, 4), 3, seed=seed, batch_size=4,
        rng=random.Random(11), encrypt=True,
    )


def _sealed_payloads_for(submissions, server_index):
    return [list(s.sealed_packets)[server_index] for s in submissions]


def test_sealed_malformed_ephemeral_point_rejects_offender_only():
    from repro.crypto import CryptoError
    from repro.protocol.wire import ENVELOPE_SIZE

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    payloads = _sealed_payloads_for(subs, 0)

    # garbage point bytes behind an intact envelope: the typed
    # CryptoError (not a bare EcError) poisons only this position
    bad = bytearray(payloads[1])
    bad[ENVELOPE_SIZE] = 0x07  # invalid compressed-point prefix
    payloads[1] = bytes(bad)

    out = dep.servers[0].receive_sealed_batch(payloads)
    _assert_offender_only(out, {1}, CryptoError)


def test_sealed_mac_tamper_rejects_offender_only():
    from repro.crypto import CryptoError

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    payloads = _sealed_payloads_for(subs, 0)

    bad = bytearray(payloads[2])
    bad[-1] ^= 1
    payloads[2] = bytes(bad)

    out = dep.servers[0].receive_sealed_batch(payloads)
    _assert_offender_only(out, {2}, CryptoError)


def test_sealed_grafted_envelope_rejects_offender_only():
    """Envelope A on box B: the box MAC covers the envelope as
    associated data, so the graft fails authentication — the attacker
    cannot re-route an honest box under a different cleartext id."""
    from repro.crypto import CryptoError
    from repro.protocol.wire import ENVELOPE_SIZE

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    payloads = _sealed_payloads_for(subs, 0)

    grafted = payloads[0][:ENVELOPE_SIZE] + payloads[1][ENVELOPE_SIZE:]
    # replace position 1 so the honest copy of envelope 0 (position 0)
    # is still a fresh id when it arrives
    payloads[1] = grafted

    out = dep.servers[0].receive_sealed_batch(payloads)
    _assert_offender_only(out, {1}, CryptoError)


def test_sealed_envelope_sid_mismatch_rejects_offender_only():
    """A lying envelope sid with a *valid* box (sealed by the client
    itself under the forged envelope) opens fine but must be refused
    when the authenticated inner header disagrees."""
    from repro.protocol.wire import encode_envelope, seal_packet
    from repro.crypto.box import seal

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    payloads = _sealed_payloads_for(subs, 0)

    packet = subs[1].packets[0]
    forged_env = encode_envelope(b"\xEE" * 16, packet.server_index)
    payloads[1] = forged_env + seal(
        dep.client.server_box_keys[0], packet.encode(),
        random.Random(3), associated_data=forged_env,
    )

    out = dep.servers[0].receive_sealed_batch(payloads)
    _assert_offender_only(out, {1}, ProtocolError)


def test_sealed_envelope_index_mismatch_rejects_offender_only():
    """Envelope says server 0, the sealed packet inside is addressed
    to server 1: reject that offender alone."""
    from repro.protocol.wire import encode_envelope
    from repro.crypto.box import seal

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2, 3])
    payloads = _sealed_payloads_for(subs, 0)

    wrong_packet = subs[1].packets[1]  # addressed to server 1
    env = encode_envelope(wrong_packet.submission_id, 0)
    payloads[1] = env + seal(
        dep.client.server_box_keys[0], wrong_packet.encode(),
        random.Random(4), associated_data=env,
    )

    out = dep.servers[0].receive_sealed_batch(payloads)
    _assert_offender_only(out, {1}, ProtocolError)


def test_sealed_truncated_envelope_rejects_offender_only():
    from repro.protocol.wire import WireError

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2])
    payloads = _sealed_payloads_for(subs, 0)
    payloads.append(payloads[0][:10])

    out = dep.servers[0].receive_sealed_batch(payloads)
    _assert_offender_only(out, {2}, WireError)


def test_sealed_replay_precheck_never_opens_the_box(monkeypatch):
    """A replayed envelope sid is refused before the two scalar
    multiplications of open_box are paid."""
    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1])
    server = dep.servers[0]
    sealed = list(subs[0].sealed_packets)[0]

    first = server.receive_sealed_batch([sealed])
    assert isinstance(first[0], PendingSubmission)

    def _boom(*args, **kwargs):
        raise AssertionError("open_box called for a replayed id")

    monkeypatch.setattr("repro.protocol.server.open_box", _boom)
    out = server.receive_sealed_batch([sealed])
    assert isinstance(out[0], ProtocolError)
    assert server.n_replayed == 1


def test_sealed_survivors_of_a_poisoned_batch_still_verify():
    """Honest sealed positions alongside rejected ones complete the
    SNIP rounds — the sealed batch path feeds the same fused decode."""
    from repro.crypto import CryptoError

    dep = _sealed_deployment()
    subs = dep.client.prepare_submissions([1, 2])

    survivors = []
    for s, server in enumerate(dep.servers):
        batch = _sealed_payloads_for(subs, s)
        if s == 0:
            tampered = bytearray(batch[0])
            tampered[-1] ^= 1
            batch[0] = bytes(tampered)
        results = server.receive_sealed_batch(batch)
        if s == 0:
            assert isinstance(results[0], CryptoError)
        kept = [r for r in results if isinstance(r, PendingSubmission)]
        aligned = [
            r for r in kept if r.submission_id == subs[1].submission_id
        ]
        for stray in kept:
            if stray not in aligned:
                server.abandon(stray)
        survivors.append(aligned)

    parties, r1 = zip(*(
        server.begin_verification_batch(pendings)
        for server, pendings in zip(dep.servers, survivors)
    ))
    r2 = [
        server.finish_verification_batch(party, list(r1))
        for server, party in zip(dep.servers, parties)
    ]
    for server, pendings in zip(dep.servers, survivors):
        decisions = server.decide_batch(list(r2))
        assert decisions == [True]
        server.accumulate_batch(pendings, decisions)


def test_survivors_of_a_poisoned_batch_still_verify():
    """Honest positions alongside rejected ones complete the rounds."""
    dep = _deployment()
    subs = dep.client.prepare_submissions([1, 2])
    idx = _explicit_index(subs[0])

    survivors = []
    for s, server in enumerate(dep.servers):
        batch = _payloads_for(subs, s)
        if s == idx:
            tampered = bytearray(batch[0])
            tampered[_HEADER_SIZE:] = b"\xff" * (
                len(tampered) - _HEADER_SIZE
            )
            batch[0] = bytes(tampered)
        results = server.receive_wire_batch(batch)
        if s == idx:
            assert isinstance(results[0], FieldError)
        kept = [r for r in results if isinstance(r, PendingSubmission)]
        # drop the poisoned row's partners so the verification batch
        # stays position-aligned across servers
        aligned = [
            r for r in kept if r.submission_id == subs[1].submission_id
        ]
        for stray in kept:
            if stray not in aligned:
                server.abandon(stray)
        survivors.append(aligned)

    parties, r1 = zip(*(
        server.begin_verification_batch(pendings)
        for server, pendings in zip(dep.servers, survivors)
    ))
    r2 = [
        server.finish_verification_batch(party, list(r1))
        for server, party in zip(dep.servers, parties)
    ]
    for server, pendings in zip(dep.servers, survivors):
        decisions = server.decide_batch(list(r2))
        assert decisions == [True]
        server.accumulate_batch(pendings, decisions)
