"""Tests for the Section 6.2 application workloads."""

import random

import pytest

from repro.afe import AfeError
from repro.field import FIELD87
from repro.protocol import PrioDeployment
from repro.workloads import (
    BrowserStatsAfe,
    CellSignalAfe,
    Scenario,
    SurveyAfe,
    all_scenarios,
    scenario_by_name,
)


@pytest.fixture
def rng():
    return random.Random(62626)


def test_registry_covers_figure7():
    scenarios = all_scenarios()
    names = [s.name for s in scenarios]
    assert names == [
        "geneva", "seattle", "chicago", "london", "tokyo",
        "lowres", "highres",
        "beck-21", "pcri-78", "cpi-434",
        "heart", "brca",
    ]


def test_scenario_lookup():
    assert scenario_by_name("geneva").group == "cell"
    with pytest.raises(KeyError):
        scenario_by_name("atlantis")


def test_gate_counts_same_order_of_magnitude():
    """Our circuits' M vs the paper's reported M: within 3x each way
    (encodings differ in detail, not in asymptotics)."""
    for scenario in all_scenarios():
        ours = scenario.mul_gates
        paper = scenario.paper_mul_gates
        assert ours > 0
        assert paper / 3 <= ours <= paper * 3, (
            scenario.name, ours, paper
        )


def test_generators_produce_valid_encodings(rng):
    for scenario in all_scenarios():
        value = scenario.generate(rng)
        encoding = scenario.afe.encode(value, rng)
        assert len(encoding) == scenario.afe.k
        assert scenario.afe.check_valid(encoding), scenario.name


def test_cell_signal_roundtrip(rng):
    afe = CellSignalAfe(FIELD87, n_cells=4)
    readings = [[1, 2, 3, 4], [5, 6, 7, 8], [15, 0, 1, 2]]
    totals = afe.roundtrip(readings)
    assert totals == [21, 8, 11, 14]


def test_cell_signal_arity_check(rng):
    afe = CellSignalAfe(FIELD87, n_cells=3)
    with pytest.raises(AfeError):
        afe.encode([1, 2])


def test_survey_roundtrip(rng):
    afe = SurveyAfe(FIELD87, n_questions=3, n_choices=4)
    answers = [[0, 1, 2], [1, 1, 3], [0, 1, 0]]
    histograms = afe.roundtrip(answers)
    assert histograms[0] == [2, 1, 0, 0]
    assert histograms[1] == [0, 3, 0, 0]
    assert histograms[2] == [1, 0, 1, 1]


def test_survey_arity(rng):
    afe = SurveyAfe(FIELD87, n_questions=2, n_choices=4)
    with pytest.raises(AfeError):
        afe.encode([1])


def test_browser_stats_roundtrip(rng):
    afe = BrowserStatsAfe(FIELD87, epsilon=1 / 4, delta=0.1)
    values = [
        (50, 30, "site-0.example"),
        (70, 60, "site-0.example"),
        (30, 90, "site-1.example"),
    ]
    result = afe.roundtrip(values)
    assert result["cpu_mean"] == pytest.approx(50.0)
    assert result["mem_mean"] == pytest.approx(60.0)
    assert result["url_sketch"].estimate("site-0.example") >= 2


def test_beck21_end_to_end(rng):
    """A small anonymous-survey deployment over the real pipeline."""
    scenario = scenario_by_name("beck-21")
    deployment = PrioDeployment.create(scenario.afe, 2, rng=rng)
    answers = [scenario.generate(rng) for _ in range(5)]
    assert deployment.submit_many(answers) == 5
    histograms = deployment.publish()
    assert len(histograms) == 21
    assert all(sum(h) == 5 for h in histograms)


def test_scenario_dataclass():
    scenario = scenario_by_name("heart")
    assert isinstance(scenario, Scenario)
    assert scenario.afe.dimension == 13
