"""Tests for additive s-out-of-s secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import FIELD87, FIELD_SMALL, FIELD_TINY, GF2, FieldError
from repro.sharing import (
    reconstruct_scalar,
    reconstruct_vector,
    share_of_constant,
    share_scalar,
    share_vector,
)


@pytest.fixture
def rng():
    return random.Random(2024)


@pytest.mark.parametrize("n_shares", [1, 2, 3, 5, 10])
def test_scalar_roundtrip(n_shares, rng):
    f = FIELD87
    for _ in range(10):
        x = f.rand(rng)
        shares = share_scalar(f, x, n_shares, rng)
        assert len(shares) == n_shares
        assert reconstruct_scalar(f, shares) == x


def test_scalar_share_rejects_zero_parties(rng):
    with pytest.raises(FieldError):
        share_scalar(FIELD87, 1, 0, rng)


def test_reconstruct_rejects_empty():
    with pytest.raises(FieldError):
        reconstruct_scalar(FIELD87, [])
    with pytest.raises(FieldError):
        reconstruct_vector(FIELD87, [])


@pytest.mark.parametrize("n_shares", [1, 2, 5])
def test_vector_roundtrip(n_shares, rng):
    f = FIELD87
    xs = f.rand_vector(33, rng)
    shares = share_vector(f, xs, n_shares, rng)
    assert len(shares) == n_shares
    assert all(len(s) == 33 for s in shares)
    assert reconstruct_vector(f, shares) == xs


def test_vector_roundtrip_gf2(rng):
    xs = [rng.randrange(2) for _ in range(64)]
    shares = share_vector(GF2, xs, 3, rng)
    assert reconstruct_vector(GF2, shares) == xs


def test_ragged_share_vectors_rejected(rng):
    f = FIELD_TINY
    shares = share_vector(f, [1, 2, 3], 2, rng)
    shares[1] = shares[1][:2]
    with pytest.raises(FieldError):
        reconstruct_vector(f, shares)


def test_linearity_of_shares(rng):
    """[x]_i + [y]_i is a valid sharing of x + y (the aggregation step)."""
    f = FIELD_SMALL
    xs = f.rand_vector(8, rng)
    ys = f.rand_vector(8, rng)
    sx = share_vector(f, xs, 3, rng)
    sy = share_vector(f, ys, 3, rng)
    summed = [f.vec_add(a, b) for a, b in zip(sx, sy)]
    assert reconstruct_vector(f, summed) == f.vec_add(xs, ys)


def test_affine_ops_on_shares(rng):
    """Servers can compute shares of alpha*x + beta locally."""
    f = FIELD_SMALL
    x = f.rand(rng)
    alpha, beta = 17, 29
    shares = share_scalar(f, x, 4, rng)
    transformed = [
        f.add(f.mul(alpha, s), share_of_constant(f, beta, is_leader=(i == 0)))
        for i, s in enumerate(shares)
    ]
    assert reconstruct_scalar(f, transformed) == f.add(f.mul(alpha, x), beta)


def test_share_of_constant_sums_once():
    f = FIELD_TINY
    shares = [share_of_constant(f, 42, is_leader=(i == 0)) for i in range(5)]
    assert reconstruct_scalar(f, shares) == 42


def test_any_proper_subset_is_uniform(rng):
    """Statistical check of the privacy property: s-1 shares of two
    different secrets are identically distributed (here: chi-square-free
    sanity check that each residue bucket is hit roughly equally)."""
    f = FIELD_TINY
    counts_zero = [0] * f.modulus
    counts_one = [0] * f.modulus
    trials = 5000
    for _ in range(trials):
        counts_zero[share_scalar(f, 0, 2, rng)[0]] += 1
        counts_one[share_scalar(f, 1, 2, rng)[0]] += 1
    expected = trials / f.modulus
    for c0, c1 in zip(counts_zero, counts_one):
        assert abs(c0 - expected) < 6 * expected**0.5
        assert abs(c1 - expected) < 6 * expected**0.5


def test_single_share_is_the_secret(rng):
    f = FIELD_TINY
    assert share_scalar(f, 55, 1, rng) == [55]


@given(
    x=st.integers(0, FIELD_SMALL.modulus - 1),
    n=st.integers(1, 8),
    seed=st.integers(0, 2**32),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(x, n, seed):
    f = FIELD_SMALL
    r = random.Random(seed)
    assert reconstruct_scalar(f, share_scalar(f, x, n, r)) == x
