"""Tests for PRG-compressed sharing (Appendix I optimization 1)."""

import random

import pytest

from repro.field import FIELD87, FIELD265, FIELD_SMALL, FieldError
from repro.sharing import (
    SEED_SIZE,
    PrgStream,
    expand_seed,
    new_seed,
    prg_reconstruct_vector,
    prg_share_vector,
    reconstruct_vector,
)


@pytest.fixture
def rng():
    return random.Random(31337)


def test_stream_deterministic():
    seed = b"\x01" * SEED_SIZE
    a = PrgStream(seed).read(100)
    b = PrgStream(seed).read(100)
    assert a == b


def test_stream_incremental_reads_match_one_shot():
    seed = b"\x02" * SEED_SIZE
    s1 = PrgStream(seed)
    chunks = s1.read(10) + s1.read(500) + s1.read(3)
    s2 = PrgStream(seed)
    assert s2.read(513) == chunks


def test_stream_domain_separation():
    seed = b"\x03" * SEED_SIZE
    a = PrgStream(seed, domain=b"a").read(32)
    b = PrgStream(seed, domain=b"b").read(32)
    assert a != b


def test_stream_rejects_bad_seed_length():
    with pytest.raises(FieldError):
        PrgStream(b"short")


def test_new_seed_length(rng):
    assert len(new_seed()) == SEED_SIZE
    assert len(new_seed(rng)) == SEED_SIZE


def test_new_seed_deterministic_with_rng():
    assert new_seed(random.Random(5)) == new_seed(random.Random(5))


@pytest.mark.parametrize("field", [FIELD87, FIELD265, FIELD_SMALL])
def test_expand_seed_uniform_range(field, rng):
    seed = new_seed(rng)
    vec = expand_seed(field, seed, 200)
    assert len(vec) == 200
    assert all(0 <= v < field.modulus for v in vec)


def test_expand_seed_deterministic(rng):
    seed = new_seed(rng)
    assert expand_seed(FIELD87, seed, 50) == expand_seed(FIELD87, seed, 50)


def test_expand_seed_prefix_stable(rng):
    """Expanding to a longer length preserves the shorter prefix."""
    seed = new_seed(rng)
    short = expand_seed(FIELD87, seed, 10)
    long = expand_seed(FIELD87, seed, 100)
    assert long[:10] == short


def test_expand_zero_length(rng):
    assert expand_seed(FIELD87, new_seed(rng), 0) == []


@pytest.mark.parametrize("n_shares", [1, 2, 3, 5])
def test_prg_share_roundtrip(n_shares, rng):
    f = FIELD87
    xs = f.rand_vector(40, rng)
    seeds, explicit = prg_share_vector(f, xs, n_shares, rng)
    assert len(seeds) == n_shares - 1
    assert len(explicit) == 40
    assert prg_reconstruct_vector(f, seeds, explicit) == xs


def test_prg_share_matches_expanded_shares(rng):
    """PRG shares reconstruct identically to materialized additive shares."""
    f = FIELD87
    xs = f.rand_vector(16, rng)
    seeds, explicit = prg_share_vector(f, xs, 4, rng)
    materialized = [expand_seed(f, seed, 16) for seed in seeds] + [explicit]
    assert reconstruct_vector(f, materialized) == xs


def test_prg_share_rejects_zero_parties(rng):
    with pytest.raises(FieldError):
        prg_share_vector(FIELD87, [1], 0, rng)


def test_prg_share_single_party(rng):
    f = FIELD_SMALL
    xs = f.rand_vector(5, rng)
    seeds, explicit = prg_share_vector(f, xs, 1, rng)
    assert seeds == []
    assert explicit == xs


def test_upload_cost_is_constant_in_parties(rng):
    """The point of the optimization: upload size ~ L, not s*L."""
    f = FIELD87
    length = 1000
    xs = f.rand_vector(length, rng)
    for s in (2, 5, 10):
        seeds, explicit = prg_share_vector(f, xs, s, rng)
        explicit_bytes = len(explicit) * f.encoded_size
        seed_bytes = sum(len(seed) for seed in seeds)
        naive_bytes = s * length * f.encoded_size
        # Compressed upload is L elements + s-1 seeds; the naive scheme
        # ships s*L elements, so the savings factor approaches s.
        assert explicit_bytes + seed_bytes < naive_bytes / (s - 0.5)


def test_expansion_statistics(rng):
    """Crude uniformity check on the rejection sampler (mean near p/2)."""
    f = FIELD_SMALL
    vec = expand_seed(f, new_seed(rng), 4000)
    mean = sum(vec) / len(vec)
    assert abs(mean - f.modulus / 2) < f.modulus * 0.05
