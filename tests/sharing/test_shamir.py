"""Tests for the Shamir threshold-sharing extension (Appendix B)."""

import itertools
import random

import pytest

from repro.field import FIELD87, FIELD_SMALL, FIELD_TINY, FieldError
from repro.sharing import (
    shamir_reconstruct_scalar,
    shamir_reconstruct_vector,
    shamir_share_scalar,
    shamir_share_vector,
)


@pytest.fixture
def rng():
    return random.Random(404)


@pytest.mark.parametrize("threshold,n", [(1, 1), (2, 3), (3, 5), (5, 5)])
def test_scalar_roundtrip(threshold, n, rng):
    f = FIELD87
    x = f.rand(rng)
    shares = shamir_share_scalar(f, x, threshold, n, rng)
    assert len(shares) == n
    assert shamir_reconstruct_scalar(f, shares[:threshold]) == x


def test_every_quorum_reconstructs(rng):
    f = FIELD_SMALL
    x = f.rand(rng)
    shares = shamir_share_scalar(f, x, 3, 5, rng)
    for quorum in itertools.combinations(shares, 3):
        assert shamir_reconstruct_scalar(f, list(quorum)) == x


def test_below_threshold_is_uniform(rng):
    """t-1 shares leak nothing: marginal of share 1 is ~uniform."""
    f = FIELD_TINY
    counts = [0] * f.modulus
    trials = 4000
    for _ in range(trials):
        shares = shamir_share_scalar(f, 7, 2, 3, rng)
        counts[shares[0][1]] += 1
    expected = trials / f.modulus
    assert all(abs(c - expected) < 6 * expected**0.5 for c in counts)


def test_rejects_bad_threshold(rng):
    with pytest.raises(FieldError):
        shamir_share_scalar(FIELD87, 1, 0, 3, rng)
    with pytest.raises(FieldError):
        shamir_share_scalar(FIELD87, 1, 4, 3, rng)


def test_rejects_too_many_shares_for_tiny_field(rng):
    with pytest.raises(FieldError):
        shamir_share_scalar(FIELD_TINY, 1, 2, 97, rng)


def test_reconstruct_rejects_duplicates(rng):
    f = FIELD_SMALL
    shares = shamir_share_scalar(f, 9, 2, 3, rng)
    with pytest.raises(FieldError):
        shamir_reconstruct_scalar(f, [shares[0], shares[0]])


def test_reconstruct_rejects_empty():
    with pytest.raises(FieldError):
        shamir_reconstruct_scalar(FIELD_SMALL, [])
    with pytest.raises(FieldError):
        shamir_reconstruct_vector(FIELD_SMALL, [])


def test_vector_roundtrip(rng):
    f = FIELD87
    xs = f.rand_vector(12, rng)
    shares = shamir_share_vector(f, xs, 3, 5, rng)
    assert shamir_reconstruct_vector(f, shares[:3]) == xs
    assert shamir_reconstruct_vector(f, shares[1:4]) == xs


def test_vector_linearity(rng):
    """Shamir shares are linear, so aggregation-by-summing still works."""
    f = FIELD_SMALL
    xs = f.rand_vector(6, rng)
    ys = f.rand_vector(6, rng)
    sx = shamir_share_vector(f, xs, 2, 3, rng)
    sy = shamir_share_vector(f, ys, 2, 3, rng)
    summed = [
        (ix, f.vec_add(vx, vy)) for (ix, vx), (_, vy) in zip(sx, sy)
    ]
    assert shamir_reconstruct_vector(f, summed[:2]) == f.vec_add(xs, ys)


def test_vector_ragged_rejected(rng):
    f = FIELD_SMALL
    shares = shamir_share_vector(f, [1, 2, 3], 2, 3, rng)
    broken = [(shares[0][0], shares[0][1][:2]), shares[1]]
    with pytest.raises(FieldError):
        shamir_reconstruct_vector(f, broken)
