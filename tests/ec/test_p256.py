"""Tests for the from-scratch P-256 implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import (
    GENERATOR,
    INFINITY,
    ORDER,
    EcError,
    Point,
    multi_scalar_mult,
    random_scalar,
    reset_op_counter,
    scalar_mult,
    scalar_mult_count,
)
from repro.ec.p256 import A, B, P


@pytest.fixture
def rng():
    return random.Random(256256)


def test_generator_on_curve():
    assert GENERATOR.is_on_curve()


def test_curve_equation_constants():
    # a = -3 (mod p), the standard P-256 choice.
    assert A == P - 3
    assert (GENERATOR.y**2 - GENERATOR.x**3 - A * GENERATOR.x - B) % P == 0


def test_generator_order():
    assert scalar_mult(ORDER, GENERATOR).infinity
    assert not scalar_mult(ORDER - 1, GENERATOR).infinity


def test_identity_laws(rng):
    p = scalar_mult(random_scalar(rng), GENERATOR)
    assert p + INFINITY == p
    assert INFINITY + p == p
    assert p - p == INFINITY
    assert (-INFINITY) == INFINITY


def test_addition_commutative_and_associative(rng):
    points = [scalar_mult(random_scalar(rng), GENERATOR) for _ in range(3)]
    a, b, c = points
    assert a + b == b + a
    assert (a + b) + c == a + (b + c)


def test_scalar_mult_linearity(rng):
    k1, k2 = random_scalar(rng), random_scalar(rng)
    lhs = scalar_mult(k1, GENERATOR) + scalar_mult(k2, GENERATOR)
    rhs = scalar_mult((k1 + k2) % ORDER, GENERATOR)
    assert lhs == rhs


def test_scalar_mult_small_values():
    two_g = scalar_mult(2, GENERATOR)
    assert two_g == GENERATOR + GENERATOR
    assert scalar_mult(0, GENERATOR) == INFINITY
    assert scalar_mult(1, GENERATOR) == GENERATOR


def test_doubling_point_with_y_zero_is_infinity():
    # No P-256 point has y == 0 (x^3 - 3x + b = 0 has no roots), but
    # doubling infinity must stay infinity.
    assert scalar_mult(5, INFINITY) == INFINITY


def test_point_encoding_roundtrip(rng):
    for _ in range(10):
        point = scalar_mult(random_scalar(rng), GENERATOR)
        assert Point.decode(point.encode()) == point
    assert Point.decode(INFINITY.encode()) == INFINITY


def test_encoding_is_compressed():
    assert len(GENERATOR.encode()) == 33


def test_decode_rejects_garbage():
    with pytest.raises(EcError):
        Point.decode(b"\x05" + b"\x00" * 32)
    with pytest.raises(EcError):
        Point.decode(b"\x02" + b"\xff" * 32)  # x >= p
    with pytest.raises(EcError):
        Point.decode(b"\x02" * 10)


def test_decode_rejects_non_curve_x():
    # Find an x with no curve point (about half of all x fail).
    x = 5
    while True:
        candidate = b"\x02" + x.to_bytes(32, "big")
        rhs = (x**3 + A * x + B) % P
        y = pow(rhs, (P + 1) // 4, P)
        if (y * y - rhs) % P != 0:
            with pytest.raises(EcError):
                Point.decode(candidate)
            break
        x += 1


def test_multi_scalar_mult(rng):
    k1, k2 = random_scalar(rng), random_scalar(rng)
    p = scalar_mult(k2, GENERATOR)
    expected = scalar_mult(k1, GENERATOR) + scalar_mult(k2, p)
    assert multi_scalar_mult([(k1, GENERATOR), (k2, p)]) == expected


def test_op_counter(rng):
    reset_op_counter()
    scalar_mult(random_scalar(rng), GENERATOR)
    scalar_mult(random_scalar(rng), GENERATOR)
    assert scalar_mult_count() == 2
    reset_op_counter()
    assert scalar_mult_count() == 0


def test_negation_on_curve(rng):
    p = scalar_mult(random_scalar(rng), GENERATOR)
    assert (-p).is_on_curve()
    assert (-(-p)) == p


@given(k=st.integers(1, 2**64))
@settings(max_examples=20, deadline=None)
def test_double_and_add_consistency(k):
    """k*G computed with the window method equals (k-1)*G + G."""
    assert scalar_mult(k, GENERATOR) == scalar_mult(k - 1, GENERATOR) + GENERATOR
