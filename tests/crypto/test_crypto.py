"""Tests for the crypto substrate (stream, HKDF, box, signatures)."""

import random

import pytest

from repro.crypto import (
    BoxKeyPair,
    CryptoError,
    SigningKeyPair,
    box_overhead,
    hkdf_sha256,
    keystream,
    mac_tag,
    mac_verify,
    open_box,
    seal,
    sealed_overhead,
    sign,
    stream_xor,
    verify,
    verify_or_raise,
)


@pytest.fixture
def rng():
    return random.Random(5566)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


def test_hkdf_deterministic_and_length():
    out1 = hkdf_sha256(b"ikm", b"salt", b"info", 64)
    out2 = hkdf_sha256(b"ikm", b"salt", b"info", 64)
    assert out1 == out2
    assert len(out1) == 64


def test_hkdf_separates_inputs():
    assert hkdf_sha256(b"a", b"s", b"i", 32) != hkdf_sha256(b"b", b"s", b"i", 32)
    assert hkdf_sha256(b"a", b"s", b"i", 32) != hkdf_sha256(b"a", b"t", b"i", 32)
    assert hkdf_sha256(b"a", b"s", b"i", 32) != hkdf_sha256(b"a", b"s", b"j", 32)


def test_hkdf_length_limit():
    with pytest.raises(CryptoError):
        hkdf_sha256(b"x", b"", b"", 255 * 32 + 1)


def test_keystream_requires_proper_key():
    with pytest.raises(CryptoError):
        keystream(b"short", b"nonce", 10)


def test_stream_xor_roundtrip():
    key = bytes(range(32))
    data = b"the quick brown fox" * 10
    ct = stream_xor(key, b"nonce-1", data)
    assert ct != data
    assert stream_xor(key, b"nonce-1", ct) == data


def test_stream_nonce_separation():
    key = bytes(range(32))
    assert stream_xor(key, b"n1", b"hello") != stream_xor(key, b"n2", b"hello")


def test_mac_roundtrip():
    tag = mac_tag(b"k" * 32, b"message")
    assert mac_verify(b"k" * 32, b"message", tag)
    assert not mac_verify(b"k" * 32, b"messagX", tag)
    assert not mac_verify(b"j" * 32, b"message", tag)


# ----------------------------------------------------------------------
# Box
# ----------------------------------------------------------------------


def test_box_roundtrip(rng):
    keypair = BoxKeyPair.generate(rng)
    message = b"client submission payload" * 4
    sealed = seal(keypair.public, message, rng)
    assert open_box(keypair, sealed) == message


def test_box_overhead_constant(rng):
    keypair = BoxKeyPair.generate(rng)
    for size in (0, 10, 1000):
        sealed = seal(keypair.public, b"x" * size, rng)
        assert len(sealed) == size + box_overhead()


def test_sealed_overhead_accounts_for_the_envelope():
    # a sealed *packet* on the wire = 21-byte envelope + the box
    from repro.protocol.wire import ENVELOPE_SIZE

    assert ENVELOPE_SIZE == 21
    assert sealed_overhead() == box_overhead() + ENVELOPE_SIZE


def test_box_associated_data_binds(rng):
    keypair = BoxKeyPair.generate(rng)
    sealed = seal(keypair.public, b"payload", rng, associated_data=b"env-A")
    assert open_box(keypair, sealed, associated_data=b"env-A") == b"payload"
    # grafting: same box, different associated data -> MAC failure
    with pytest.raises(CryptoError):
        open_box(keypair, sealed, associated_data=b"env-B")
    with pytest.raises(CryptoError):
        open_box(keypair, sealed)
    # and an ad-less box refuses an attacker-supplied ad
    plain = seal(keypair.public, b"payload", rng)
    with pytest.raises(CryptoError):
        open_box(keypair, plain, associated_data=b"env-A")


def test_box_ad_boundary_is_unambiguous(rng):
    # length-prefixed MAC input: moving a byte across the ad/ciphertext
    # boundary must not authenticate
    keypair = BoxKeyPair.generate(rng)
    sealed = seal(keypair.public, b"xyz", rng, associated_data=b"ab")
    with pytest.raises(CryptoError):
        open_box(keypair, sealed, associated_data=b"abx")


def test_box_malformed_ephemeral_point_is_typed(rng):
    # garbage point bytes must surface as CryptoError, not a bare
    # EcError/ValueError that batch callers cannot classify
    keypair = BoxKeyPair.generate(rng)
    sealed = bytearray(seal(keypair.public, b"secret", rng))
    sealed[0] = 0x07  # invalid compressed-point prefix
    with pytest.raises(CryptoError, match="ephemeral point"):
        open_box(keypair, bytes(sealed))
    off_curve = b"\x02" + b"\xff" * 32 + bytes(sealed[33:])
    with pytest.raises(CryptoError, match="ephemeral point"):
        open_box(keypair, off_curve)


def test_box_tamper_detected(rng):
    keypair = BoxKeyPair.generate(rng)
    sealed = bytearray(seal(keypair.public, b"secret", rng))
    sealed[-1] ^= 1
    with pytest.raises(CryptoError):
        open_box(keypair, bytes(sealed))


def test_box_wrong_key_fails(rng):
    alice = BoxKeyPair.generate(rng)
    bob = BoxKeyPair.generate(rng)
    sealed = seal(alice.public, b"for alice", rng)
    with pytest.raises(CryptoError):
        open_box(bob, sealed)


def test_box_too_short(rng):
    keypair = BoxKeyPair.generate(rng)
    with pytest.raises(CryptoError):
        open_box(keypair, b"tiny")


def test_box_randomized(rng):
    keypair = BoxKeyPair.generate(rng)
    s1 = seal(keypair.public, b"same message", rng)
    s2 = seal(keypair.public, b"same message", rng)
    assert s1 != s2  # fresh ephemeral key per box


def test_box_default_rng():
    keypair = BoxKeyPair.generate()
    sealed = seal(keypair.public, b"os-random path")
    assert open_box(keypair, sealed) == b"os-random path"


def test_box_default_rng_never_uses_mersenne_twister(monkeypatch):
    # Regression: the default rng for long-term secrets and ephemeral
    # scalars must be the OS CSPRNG (random.SystemRandom), never a
    # seeded random.Random.  Detonate random.Random: the default path
    # must not touch it.
    class _Detonator:
        def __init__(self, *args, **kwargs):
            raise AssertionError(
                "default box rng constructed random.Random"
            )

    monkeypatch.setattr(random, "Random", _Detonator)
    keypair = BoxKeyPair.generate()
    sealed = seal(keypair.public, b"csprng only")
    assert open_box(keypair, sealed) == b"csprng only"


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------


def test_sign_verify_roundtrip(rng):
    keypair = SigningKeyPair.generate(rng)
    message = b"client registration"
    signature = sign(keypair, message, rng)
    assert verify(keypair.public, message, signature)


def test_signature_rejects_wrong_message(rng):
    keypair = SigningKeyPair.generate(rng)
    signature = sign(keypair, b"original", rng)
    assert not verify(keypair.public, b"forged", signature)


def test_signature_rejects_wrong_key(rng):
    alice = SigningKeyPair.generate(rng)
    eve = SigningKeyPair.generate(rng)
    signature = sign(alice, b"msg", rng)
    assert not verify(eve.public, b"msg", signature)


def test_signature_rejects_malformed(rng):
    keypair = SigningKeyPair.generate(rng)
    assert not verify(keypair.public, b"msg", b"junk")
    assert not verify(keypair.public, b"msg", b"\x00" * 65)
    sig = bytearray(sign(keypair, b"msg", rng))
    sig[0] = 0x07  # invalid point prefix
    assert not verify(keypair.public, b"msg", bytes(sig))


def test_verify_or_raise(rng):
    keypair = SigningKeyPair.generate(rng)
    signature = sign(keypair, b"ok", rng)
    verify_or_raise(keypair.public, b"ok", signature)
    with pytest.raises(CryptoError):
        verify_or_raise(keypair.public, b"not ok", signature)


def test_signature_deterministic_keygen(rng):
    a = SigningKeyPair.generate(random.Random(1))
    b = SigningKeyPair.generate(random.Random(1))
    assert a.secret == b.secret
    assert a.public == b.public
