"""Tests for Beaver triples and the share-multiplication protocol."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import FIELD87, FIELD_SMALL, FieldError
from repro.mpc import (
    BeaverTriple,
    generate_triple,
    multiply_finalize,
    multiply_round1,
    share_triple,
)
from repro.sharing import reconstruct_scalar, share_scalar


@pytest.fixture
def rng():
    return random.Random(900)


def run_multiplication(field, y, z, n_servers, rng, triple=None):
    """Full Beaver multiplication across n in-process servers."""
    if triple is None:
        triple = generate_triple(field, rng)
    triple_shares = share_triple(field, triple, n_servers, rng)
    y_shares = share_scalar(field, y, n_servers, rng)
    z_shares = share_scalar(field, z, n_servers, rng)
    round1 = [
        multiply_round1(field, y_shares[i], z_shares[i], triple_shares[i])
        for i in range(n_servers)
    ]
    d_shares = [m[0] for m in round1]
    e_shares = [m[1] for m in round1]
    product_shares = [
        multiply_finalize(field, d_shares, e_shares, triple_shares[i], n_servers)
        for i in range(n_servers)
    ]
    return reconstruct_scalar(field, product_shares)


def test_generate_triple_valid(rng):
    for _ in range(10):
        assert generate_triple(FIELD87, rng).is_valid(FIELD87)


def test_share_triple_reconstructs(rng):
    f = FIELD_SMALL
    triple = generate_triple(f, rng)
    shares = share_triple(f, triple, 4, rng)
    assert reconstruct_scalar(f, [s.a for s in shares]) == triple.a
    assert reconstruct_scalar(f, [s.b for s in shares]) == triple.b
    assert reconstruct_scalar(f, [s.c for s in shares]) == triple.c


@pytest.mark.parametrize("n_servers", [2, 3, 5])
def test_multiplication_correct(n_servers, rng):
    f = FIELD87
    for _ in range(5):
        y, z = f.rand(rng), f.rand(rng)
        assert run_multiplication(f, y, z, n_servers, rng) == f.mul(y, z)


def test_multiplication_with_zero(rng):
    f = FIELD_SMALL
    assert run_multiplication(f, 0, 17, 3, rng) == 0


def test_bad_triple_shifts_product_by_alpha(rng):
    """c = ab + alpha shifts the result by exactly alpha — the fact the
    SNIP soundness proof (Appendix D.1) relies on."""
    f = FIELD_SMALL
    y, z = f.rand(rng), f.rand(rng)
    a, b = f.rand(rng), f.rand(rng)
    alpha = 13
    bad = BeaverTriple(a=a, b=b, c=f.add(f.mul(a, b), alpha))
    assert not bad.is_valid(f)
    result = run_multiplication(f, y, z, 3, rng, triple=bad)
    assert result == f.add(f.mul(y, z), alpha)


def test_finalize_requires_all_shares(rng):
    f = FIELD_SMALL
    triple = generate_triple(f, rng)
    shares = share_triple(f, triple, 3, rng)
    with pytest.raises(FieldError):
        multiply_finalize(f, [1, 2], [3, 4], shares[0], 3)


def test_broadcast_leaks_nothing_without_triple(rng):
    """d = y - a is uniform when a is: a histogram over many runs."""
    f = FIELD_SMALL
    counts = [0] * f.modulus
    trials = 4000
    y = 1234 % f.modulus
    for _ in range(trials):
        triple = generate_triple(f, rng)
        shares = share_triple(f, triple, 2, rng)
        y_shares = share_scalar(f, y, 2, rng)
        d0, _ = multiply_round1(f, y_shares[0], y_shares[0], shares[0])
        counts[d0] += 1
    expected = trials / f.modulus
    # Loose bound: every bucket within 6 sigma.
    assert all(abs(c - expected) < 6 * (expected**0.5) + 5 for c in counts)


@given(
    y=st.integers(0, FIELD_SMALL.modulus - 1),
    z=st.integers(0, FIELD_SMALL.modulus - 1),
    n=st.integers(2, 5),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_multiplication_property(y, z, n, seed):
    f = FIELD_SMALL
    r = random.Random(seed)
    assert run_multiplication(f, y, z, n, r) == f.mul(y, z)
