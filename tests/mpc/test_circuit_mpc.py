"""Tests for multi-party circuit evaluation (the Prio-MPC engine)."""

import random

import pytest

from repro.circuit import CircuitBuilder, CircuitError, assert_bit
from repro.field import FIELD87, FIELD_SMALL
from repro.mpc import (
    CircuitMpcParty,
    generate_triple,
    mul_gate_levels,
    multiplicative_depth,
    run_circuit_mpc,
    share_triple,
)
from repro.sharing import reconstruct_scalar, share_vector


@pytest.fixture
def rng():
    return random.Random(321)


def deal_triples(field, count, n_servers, rng):
    """Client-style dealing: per-gate triples, shared per server."""
    per_gate = [
        share_triple(field, generate_triple(field, rng), n_servers, rng)
        for _ in range(count)
    ]
    return [
        [per_gate[t][i] for t in range(count)] for i in range(n_servers)
    ]


def mpc_check(field, circuit, inputs, n_servers, rng):
    """Run the MPC and return the reconstructed assertion values."""
    input_shares = share_vector(field, inputs, n_servers, rng)
    triples = deal_triples(field, circuit.n_mul_gates, n_servers, rng)
    results = run_circuit_mpc(field, circuit, input_shares, triples)
    n_assert = len(circuit.assertions)
    return [
        reconstruct_scalar(field, [r.assertion_shares[j] for r in results])
        for j in range(n_assert)
    ]


def test_bit_circuit_valid_and_invalid(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x = b.input()
    assert_bit(b, x)
    circuit = b.build()
    assert mpc_check(f, circuit, [1], 3, rng) == [0]
    assert mpc_check(f, circuit, [0], 3, rng) == [0]
    assert mpc_check(f, circuit, [5], 3, rng) != [0]


def test_deep_circuit(rng):
    """x^8 via repeated squaring: depth 3, three mul gates."""
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x = b.input()
    x2 = b.mul(x, x)
    x4 = b.mul(x2, x2)
    x8 = b.mul(x4, x4)
    b.assert_zero(b.sub(x8, b.constant(pow(3, 8, f.modulus))))
    circuit = b.build()
    assert multiplicative_depth(circuit) == 3
    assert mpc_check(f, circuit, [3], 2, rng) == [0]
    assert mpc_check(f, circuit, [4], 2, rng) != [0]


def test_wide_circuit_single_round(rng):
    """Independent mul gates share one communication round."""
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    wires = b.inputs(6)
    for w in wires:
        assert_bit(b, w)
    circuit = b.build()
    assert multiplicative_depth(circuit) == 1
    levels = mul_gate_levels(circuit)
    assert len(levels) == 1 and len(levels[0]) == 6


def test_levels_respect_dependencies():
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x, y = b.inputs(2)
    t1 = b.mul(x, y)          # level 0
    t2 = b.mul(t1, x)         # level 1
    t3 = b.mul(y, y)          # level 0
    b.assert_zero(b.add(t2, t3))
    circuit = b.build()
    levels = mul_gate_levels(circuit)
    assert levels == [[0, 2], [1]]


def test_affine_only_circuit_runs_zero_rounds(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x, y = b.inputs(2)
    b.assert_zero(b.sub(b.add(x, y), b.constant(10)))
    circuit = b.build()
    assert circuit.n_mul_gates == 0
    assert mpc_check(f, circuit, [4, 6], 3, rng) == [0]
    assert mpc_check(f, circuit, [4, 7], 3, rng) != [0]


def test_bandwidth_accounting(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    wires = b.inputs(4)
    for w in wires:
        assert_bit(b, w)
    circuit = b.build()
    input_shares = share_vector(f, [1, 0, 1, 1], 2, rng)
    triples = deal_triples(f, 4, 2, rng)
    results = run_circuit_mpc(f, circuit, input_shares, triples)
    # Theta(M) traffic: 2 elements per mul gate per server.
    assert all(r.elements_broadcast == 8 for r in results)


def test_party_rejects_wrong_triple_count(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x = b.input()
    assert_bit(b, x)
    circuit = b.build()
    with pytest.raises(CircuitError):
        CircuitMpcParty(f, circuit, 0, 2, [1], [])


def test_party_enforces_round_protocol(rng):
    f = FIELD_SMALL
    b = CircuitBuilder(f)
    x = b.input()
    assert_bit(b, x)
    circuit = b.build()
    triples = deal_triples(f, 1, 2, rng)
    shares = share_vector(f, [1], 2, rng)
    party = CircuitMpcParty(f, circuit, 0, 2, shares[0], triples[0])
    with pytest.raises(CircuitError):
        party.result()  # before any round
    party.start_round()
    with pytest.raises(CircuitError):
        party.finish_round([[(1, 2)]])  # only one server's messages


def test_larger_field_product_chain(rng):
    """Integration: verify a claimed 3-way product over the 87-bit field."""
    f = FIELD87
    b = CircuitBuilder(f)
    x, y, z, claimed = b.inputs(4)
    xy = b.mul(x, y)
    xyz = b.mul(xy, z)
    b.assert_zero(b.sub(xyz, claimed))
    circuit = b.build()
    xv, yv, zv = (f.rand(rng) for _ in range(3))
    good = f.mul(f.mul(xv, yv), zv)
    assert mpc_check(f, circuit, [xv, yv, zv, good], 3, rng) == [0]
    assert mpc_check(f, circuit, [xv, yv, zv, good + 1], 3, rng) != [0]
