#!/usr/bin/env python3
"""Quickstart: privately count app users with a medical condition.

The paper's Section 3 motivating example: each client holds one private
bit (has the condition / does not), and a handful of servers learn the
*count* — nothing else.  A malicious client who tries to submit "100"
instead of a bit is caught by the SNIP and rejected.

Run:  python examples/quickstart.py
"""

import random

from repro import FIELD87, IntegerSumAfe, PrioDeployment
from repro.protocol.wire import ClientPacket, PacketKind


def main() -> None:
    rng = random.Random(2026)

    # One-bit integers summed across clients: b = 1.
    afe = IntegerSumAfe(FIELD87, n_bits=1)
    deployment = PrioDeployment.create(afe, n_servers=5, rng=rng)

    # 200 honest clients, ~30% with the condition.
    values = [1 if rng.random() < 0.3 else 0 for _ in range(200)]
    accepted = deployment.submit_many(values)
    print(f"honest submissions accepted: {accepted}/200")

    # A malicious client tries the Section 3 attack: shift its share
    # so the reconstructed "bit" is one million.
    def huge_value_attack(submission):
        packet = submission.packets[-1]
        vec = FIELD87.decode_vector(packet.body)
        vec[0] = (vec[0] + 1_000_000) % FIELD87.modulus
        submission.packets[-1] = ClientPacket(
            submission_id=packet.submission_id,
            server_index=packet.server_index,
            kind=PacketKind.EXPLICIT,
            n_elements=packet.n_elements,
            body=FIELD87.encode_vector(vec),
        )

    cheater_accepted = deployment.submit(1, mutate=huge_value_attack)
    print(f"malicious submission accepted: {cheater_accepted}")

    total = deployment.publish()
    print(f"published count: {total}  (true count: {sum(values)})")
    assert total == sum(values)
    assert not cheater_accepted

    stats = deployment.stats
    print(
        f"upload: {stats.upload_bytes_total / stats.n_submitted:.0f} "
        f"bytes/submission; server broadcast: "
        f"{deployment.servers[1].elements_broadcast} field elements total"
    )


if __name__ == "__main__":
    main()
