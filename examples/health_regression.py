#!/usr/bin/env python3
"""Private machine learning: least-squares regression on health data.

Section 5.3 / 6.3: every client holds a private training example
(e.g. steps walked daily -> blood pressure); the servers learn only the
aggregated moment matrix, from which anyone can solve for the model
coefficients.  A second pass evaluates the trained model's R^2 — again
without any server seeing a single data point (Appendix G).

Run:  python examples/health_regression.py
"""

import random

from repro import LinRegAfe, PrioDeployment, R2Afe
from repro.field import FIELD265

DIMENSION = 3
N_BITS = 12
N_PATIENTS = 150

# Ground-truth physiology (unknown to the servers, to be recovered):
# bp = 40 + 2*steps_k + 3*age_decades + 1*bmi_points + noise
TRUE = [40, 2, 3, 1]


def synth_patient(rng):
    features = [rng.randrange(40) for _ in range(DIMENSION)]
    label = TRUE[0] + sum(c * x for c, x in zip(TRUE[1:], features))
    label += rng.randrange(-4, 5)
    return features, max(0, label)


def main() -> None:
    rng = random.Random(1234)
    patients = [synth_patient(rng) for _ in range(N_PATIENTS)]

    # --- Phase 1: train the model privately. --------------------------
    train_afe = LinRegAfe(FIELD265, dimension=DIMENSION, n_bits=N_BITS)
    circuit = train_afe.valid_circuit()
    print(
        f"training AFE: k = {train_afe.k} field elements, "
        f"Valid has {circuit.n_mul_gates} mul gates"
    )
    deployment = PrioDeployment.create(train_afe, n_servers=3, rng=rng)
    accepted = deployment.submit_many(patients)
    coeffs = deployment.publish()
    print(f"accepted {accepted}/{N_PATIENTS} training examples")
    print(f"recovered model:  {[round(c, 2) for c in coeffs]}")
    print(f"ground truth:     {TRUE}")

    # --- Phase 2: evaluate the (now public) model's R^2 privately. ----
    int_coeffs = [round(c) for c in coeffs]
    r2_afe = R2Afe(FIELD265, int_coeffs, n_bits=N_BITS)
    evaluation = PrioDeployment.create(r2_afe, n_servers=3, rng=rng)
    evaluation.submit_many(patients)
    r2 = evaluation.publish()
    print(f"model R^2 on the private population: {r2:.4f}")
    assert r2 > 0.95, "model should explain the synthetic data well"


if __name__ == "__main__":
    main()
