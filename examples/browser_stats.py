#!/usr/bin/env python3
"""Browser telemetry: resource averages + private URL heavy hitters.

Section 6.2's browser-statistics workload (the RAPPOR-replacement
scenario): each browser reports average CPU and memory usage plus its
most-visited URL root.  The URL goes into a count-min sketch, so the
servers can answer "which homepages are unusually popular?" (the
homepage-hijacking-adware detector of Section 1) without a full
histogram over all possible URLs.

Run:  python examples/browser_stats.py
"""

import random

from repro import PrioDeployment
from repro.field import FIELD87
from repro.workloads import BrowserStatsAfe

N_BROWSERS = 120
CANDIDATE_URLS = [f"site-{i}.example" for i in range(16)]
HIJACK_URL = "totally-legit-search.example"


def main() -> None:
    rng = random.Random(31415)
    afe = BrowserStatsAfe(FIELD87, epsilon=1 / 10, delta=2**-10)
    sketch_afe = afe._sketch
    print(
        f"count-min sketch: {sketch_afe.depth} x {sketch_afe.width} "
        f"(low-res config; Valid has {afe.valid_circuit().n_mul_gates} "
        f"mul gates, paper lists 80)"
    )

    deployment = PrioDeployment.create(afe, n_servers=2, rng=rng)

    # 25% of browsers have been hijacked to the same homepage.
    reports = []
    for _ in range(N_BROWSERS):
        if rng.random() < 0.25:
            url = HIJACK_URL
        else:
            url = CANDIDATE_URLS[rng.randrange(len(CANDIDATE_URLS))]
        reports.append((rng.randrange(100), rng.randrange(100), url))
    accepted = deployment.submit_many(reports)
    print(f"accepted {accepted}/{N_BROWSERS} telemetry reports")

    result = deployment.publish()
    print(f"average CPU: {result['cpu_mean']:.1f}%")
    print(f"average memory: {result['mem_mean']:.1f}%")

    sketch = result["url_sketch"]
    threshold = N_BROWSERS // 8
    hitters = sketch.heavy_hitters(
        CANDIDATE_URLS + [HIJACK_URL], threshold=threshold
    )
    print(f"heavy hitters (count >= {threshold}):")
    for url, count in hitters:
        marker = "  <-- hijack detected!" if url == HIJACK_URL else ""
        print(f"   {url:32s} ~{count}{marker}")
    assert any(url == HIJACK_URL for url, _ in hitters)


if __name__ == "__main__":
    main()
