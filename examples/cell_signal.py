#!/usr/bin/env python3
"""Cell-signal-strength mapping with differential-privacy noise.

Section 6.2's first application: phones report a 4-bit signal strength
for each cell of a city grid; the servers learn per-cell totals (hence
average signal) without learning any phone's location history.

This example also demonstrates the Section 7 extension: before
publishing, each server adds a share of discrete-Laplace noise so the
published map is differentially private against intersection attacks.

Run:  python examples/cell_signal.py
"""

import random

import numpy as np

from repro import PrioDeployment
from repro.field import FIELD87
from repro.protocol.dp import discrete_laplace_scale
from repro.workloads import CellSignalAfe

GRID = 4  # 4x4 grid, the "Geneva" scale of Figure 7
N_PHONES = 60
EPSILON = 1.0


def main() -> None:
    rng = random.Random(99)
    n_cells = GRID * GRID
    afe = CellSignalAfe(FIELD87, n_cells=n_cells)
    deployment = PrioDeployment.create(afe, n_servers=5, rng=rng)

    # Phones measure stronger signal near the city center.
    def measure(phone_rng):
        readings = []
        for row in range(GRID):
            for col in range(GRID):
                distance = abs(row - GRID // 2) + abs(col - GRID // 2)
                base = max(2, 14 - 3 * distance)
                readings.append(
                    min(15, max(0, base + phone_rng.randrange(-2, 3)))
                )
        return readings

    accepted = deployment.submit_many(measure(rng) for _ in range(N_PHONES))
    print(f"accepted {accepted}/{N_PHONES} phone reports")

    # --- DP extension: each server noises its accumulator before
    # publishing.  Sensitivity per cell is 15 (one phone's max value).
    # The noise is sampled batched and added to the accumulator's limb
    # planes — the aggregate only decodes to ints at publish().
    generator = np.random.default_rng(123)
    for server in deployment.servers:
        server.add_dp_noise(
            epsilon=EPSILON, sensitivity=15.0, generator=generator
        )
    scale = discrete_laplace_scale(EPSILON, 15.0)
    print(f"per-cell DP noise stddev ~ {scale:.1f} (epsilon = {EPSILON})")

    totals = deployment.publish()
    print("average signal strength per grid cell (noised):")
    for row in range(GRID):
        cells = []
        for col in range(GRID):
            total = FIELD87.to_signed(totals[row * GRID + col])
            cells.append(f"{total / accepted:5.1f}")
        print("   " + " ".join(cells))
    print("(stronger toward the center, as the phones measured)")


if __name__ == "__main__":
    main()
