#!/usr/bin/env python3
"""Anonymous surveys: the Beck Depression Inventory over Prio.

Section 6.2's survey application: 21 questions answered on a 1-4
scale.  The servers learn only the per-question histograms — enough to
report population-level depression statistics — while no server ever
sees a single respondent's answers.  Ballot-stuffing (answering one
question twice) is rejected by the one-hot Valid circuit.

Run:  python examples/anonymous_survey.py
"""

import random

from repro import PrioDeployment
from repro.field import FIELD87
from repro.workloads import SurveyAfe

N_QUESTIONS = 21
N_CHOICES = 4
N_RESPONDENTS = 40


def main() -> None:
    rng = random.Random(7)
    afe = SurveyAfe(FIELD87, n_questions=N_QUESTIONS, n_choices=N_CHOICES)
    circuit = afe.valid_circuit()
    print(
        f"survey Valid circuit: {circuit.n_mul_gates} multiplication gates "
        f"(the paper's Figure 7 lists 84 for Beck-21)"
    )

    deployment = PrioDeployment.create(afe, n_servers=3, rng=rng)

    # Respondents with a mild skew toward low scores.
    population = []
    for _ in range(N_RESPONDENTS):
        answers = [
            min(rng.randrange(4), rng.randrange(4)) for _ in range(N_QUESTIONS)
        ]
        population.append(answers)
    accepted = deployment.submit_many(population)
    print(f"accepted {accepted}/{N_RESPONDENTS} honest responses")

    histograms = deployment.publish()
    # Per-question severity score: sum(answer * count) / n.
    print("question | histogram (0..3)      | mean severity")
    for q, histogram in enumerate(histograms[:5]):
        mean = sum(a * c for a, c in enumerate(histogram)) / N_RESPONDENTS
        print(f"   Q{q + 1:02d}   | {histogram!s:22} | {mean:.2f}")
    print(f"   ... ({N_QUESTIONS - 5} more questions)")

    # Sanity: every histogram accounts for every accepted respondent.
    assert all(sum(h) == accepted for h in histograms)
    print("every question's histogram sums to the respondent count ✓")


if __name__ == "__main__":
    main()
