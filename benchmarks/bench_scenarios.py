"""The full Figure 7 scenario catalog through the compiled-plan client.

Every Section 6.2 workload (cell grids, browser stats, surveys, health
regressions — ``repro.workloads.scenarios``) runs end-to-end: batched
client prepare (compiled-plan circuit trace + one batch NTT sweep) →
async staged pipeline → per-server fan-out → accept/aggregate.  Per
scenario the record holds two layers of timings:

trace stage (``trace_*`` columns — the tentpole isolation)
    The circuit-trace stage of prepare by itself: ``B`` scalar
    ``Circuit.evaluate`` interpreter walks (``B x gates`` Python
    steps — the pre-PR hot path, and still the batch-of-one oracle)
    versus one ``CompiledCircuit.evaluate_batch`` plan sweep.  This is
    the stage the compiled plans replace, so the acceptance gate lives
    here; everything downstream of the trace is byte-identical work on
    both sides.

full prepare (``*_prepare_s`` columns)
    The whole client job (encode → trace → prove → PRG-share → framed
    packets) under the frozen scalar-trace client (inline below: the
    pre-compiled-plan batched client, per-value ``Circuit.evaluate`` +
    batched NTT/sharing/framing tail) and under the shipped compiled
    client.  The shared batch-NTT tail dominates large circuits
    (Amdahl), so this speedup is the deployment-visible one, not the
    tentpole measure.

Uploads are asserted *bit-identical* between the two clients before
anything is timed (same rng seed; the plan sweep consumes no
randomness), so server decisions and aggregates cannot diverge — the
end-to-end leg then runs the compiled uploads through a real
deployment and asserts every submission is accepted and the published
aggregate matches the plaintext reference sum.

Emits ``benchmarks/results/scenarios.json`` plus a
``BENCH_scenarios.json`` record at the repo root.  Gates: >= 2x trace
speedup at batch 64 on the highest-gate-count count-min scenario
(``highres``) on the numpy backend, plus zero decision/aggregate
divergence on every scenario.

Runs under pytest *and* as a plain script —
``python benchmarks/bench_scenarios.py [--smoke]`` — which is what the
CI ``bench-scenarios-smoke`` job executes on both backends.
"""

import json
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import FULL, emit_table, fmt_rate, fmt_seconds, time_call

from repro.circuit import compile_circuit
from repro.field import backend_name
from repro.field.batch import encode_bytes_batch, tiny_batch_force_pure
from repro.protocol import PrioClient, PrioDeployment
from repro.protocol.client import ClientSubmission
from repro.protocol.wire import new_submission_id, packets_for_share_bodies
from repro.sharing.additive import share_vectors_client_batch
from repro.sharing.prg import new_seed
from repro.snip.batch_prover import (
    draw_proof_randomness,
    h_planes_batch,
    submission_planes,
)
from repro.workloads.scenarios import all_scenarios

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
N_SERVERS = 3
CLIENT_SEED = 716
SERVER_SEED = b"bench-scenarios"


# ----------------------------------------------------------------------
# The scalar-trace batched client, frozen for baseline comparability
# (do not "fix" this: it is the pre-compiled-plan hot path, kept
# verbatim so the speedup column measures the plan sweep and nothing
# else — the NTT/sharing/framing tail is identical on both sides).
# ----------------------------------------------------------------------


def run_scalar_trace_client(afe, circuit, values, rng_seed):
    """Batched client with per-value scalar circuit traces."""
    field = afe.field
    rng = random.Random(rng_seed)
    client = PrioClient(afe, N_SERVERS, rng=rng)
    n_total = client.submission_elements()
    encodings, traces, randoms = [], [], []
    sids, seed_rows = [], []
    for value in values:
        encoding = afe.encode(value, rng)
        trace, r = draw_proof_randomness(field, circuit, encoding, rng)
        encodings.append(encoding)
        traces.append(trace)
        randoms.append(r)
        sids.append(new_submission_id(rng))
        seed_rows.append([new_seed(rng) for _ in range(N_SERVERS - 1)])
    force = tiny_batch_force_pure(len(values) * n_total, None)
    h = h_planes_batch(field, circuit, traces, randoms, force)
    vectors = submission_planes(
        field, circuit, encodings, randoms, h, force
    )
    _, explicit = share_vectors_client_batch(
        field, vectors, N_SERVERS, seeds=seed_rows, force_pure=force
    )
    bodies = encode_bytes_batch(field, explicit, explicit.force_pure)
    return [
        ClientSubmission(
            submission_id=sid,
            packets=packets_for_share_bodies(
                sid, seed_rows[i], bodies[i], n_total
            ),
        )
        for i, sid in enumerate(sids)
    ]


def run_compiled_client(afe, values, rng_seed):
    client = PrioClient(afe, N_SERVERS, rng=random.Random(rng_seed))
    return client.prepare_submissions(values, batched=True)


def _reference_aggregate(afe, encodings):
    return afe.field.vec_sum([afe.truncate(e) for e in encodings])


# ----------------------------------------------------------------------


def run_benchmark(smoke=False):
    numpy_backend = backend_name() == "numpy"
    # The acceptance gate is defined at batch 64 on numpy; the pure
    # backend runs the same catalog at a reduced batch so the CI smoke
    # stays within budget (timings still recorded, gate not applied).
    batch = 64 if numpy_backend else (8 if smoke else 16)
    repeat = 1 if smoke else 2
    rows = []
    record = {
        "n_servers": N_SERVERS,
        "batch_size": batch,
        "backend": backend_name(),
        "smoke": smoke,
        "full_scale": FULL,
        "scenarios": [],
    }

    for scenario in all_scenarios():
        afe = scenario.afe
        field = afe.field
        circuit = afe.valid_circuit()
        plan = compile_circuit(field, circuit)
        rng = random.Random(0x516 + scenario.mul_gates)
        values = [scenario.generate(rng) for _ in range(batch)]
        encodings = [
            afe.encode(v, random.Random(1)) for v in values
        ]

        # Bit-identity first: same seed, same uploads, byte for byte —
        # the no-divergence gate (identical bytes cannot produce
        # different server decisions or aggregates).
        scalar_subs = run_scalar_trace_client(
            afe, circuit, values, CLIENT_SEED
        )
        compiled_subs = run_compiled_client(afe, values, CLIENT_SEED)
        divergence = False
        assert len(scalar_subs) == len(compiled_subs)
        for frozen, compiled in zip(scalar_subs, compiled_subs):
            if frozen.submission_id != compiled.submission_id or [
                p.encode() for p in frozen.packets
            ] != [p.encode() for p in compiled.packets]:
                divergence = True
        assert not divergence, (
            f"{scenario.name}: compiled client diverged from the "
            f"scalar-trace client"
        )

        # The tentpole isolation: the trace stage alone, scalar
        # interpreter vs compiled plan, over the same encodings.
        def scalar_trace():
            for encoding in encodings:
                circuit.evaluate(field, encoding)

        trace_scalar_s = time_call(scalar_trace, repeat=repeat)
        trace_compiled_s = time_call(
            lambda: plan.evaluate_batch(encodings), repeat=repeat
        )

        scalar_s = time_call(
            lambda: run_scalar_trace_client(
                afe, circuit, values, CLIENT_SEED
            ),
            repeat=repeat,
        )
        compiled_s = time_call(
            lambda: run_compiled_client(afe, values, CLIENT_SEED),
            repeat=repeat,
        )

        # End-to-end: async staged pipeline + per-server fan-out over
        # the compiled uploads (one delivery — replay protection makes
        # redelivery meaningless).
        with PrioDeployment.create(
            afe, N_SERVERS, seed=SERVER_SEED,
            batch_size=min(batch, 32), executor="thread",
            rng=random.Random(5),
        ) as deployment:
            import time as _time

            start = _time.perf_counter()
            decisions = deployment.deliver_pipelined(compiled_subs)
            ingest_s = _time.perf_counter() - start
            accepted = sum(decisions)
            sigma = afe.field.vec_sum(deployment.publish_shares())
        # Every scenario encoder is deterministic (rng-independent), so
        # the plaintext reference aggregate recomputes exactly.
        reference = _reference_aggregate(afe, encodings)
        aggregate_ok = accepted == batch and sigma == reference
        assert aggregate_ok, f"{scenario.name}: end-to-end divergence"

        point = {
            "name": scenario.name,
            "group": scenario.group,
            "mul_gates": circuit.n_mul_gates,
            "circuit_gates": len(circuit),
            "n_elements": len(encodings[0]),
            "batch_size": batch,
            "trace_scalar_s": trace_scalar_s,
            "trace_compiled_s": trace_compiled_s,
            "trace_speedup": trace_scalar_s / trace_compiled_s,
            "scalar_trace_prepare_s": scalar_s,
            "compiled_prepare_s": compiled_s,
            "prepare_speedup": scalar_s / compiled_s,
            "prepare_subs_per_s": batch / compiled_s,
            "ingest_verify_s": ingest_s,
            "ingest_subs_per_s": batch / ingest_s,
            "accepted": accepted,
            "divergence": divergence or not aggregate_ok,
        }
        record["scenarios"].append(point)
        rows.append([
            scenario.name,
            point["mul_gates"],
            point["n_elements"],
            fmt_seconds(trace_scalar_s),
            fmt_seconds(trace_compiled_s),
            f"{point['trace_speedup']:.2f}x",
            fmt_seconds(compiled_s),
            fmt_rate(point["ingest_subs_per_s"]),
        ])

    notes = [
        "trace = the circuit-trace stage alone: B x Circuit.evaluate "
        "(scalar oracle) vs one CompiledCircuit.evaluate_batch sweep "
        "— the stage this plan replaces, where the gate lives",
        "prepare = full client job (encode -> trace -> prove -> "
        "PRG-share -> framed packets) via the compiled client; the "
        "batch-NTT tail it shares with the frozen scalar-trace "
        "client dominates large circuits (prepare_speedup in the "
        "JSON record)",
        "uploads asserted bit-identical (scalar-trace vs compiled "
        "client) before timing; end-to-end leg asserts all accepted "
        "+ aggregate == plaintext reference",
        "ingest = async pipeline + thread fan-out, "
        f"{N_SERVERS} servers, chunked verification",
    ]
    emit_table(
        "scenarios",
        f"Figure 7 catalog through the compiled-plan client "
        f"(batch {batch}, {N_SERVERS} servers, backend: "
        f"{record['backend']})",
        ["scenario", "muls", "elems", "trace-scalar", "trace-plan",
         "trace-x", "prepare", "ingest/s"],
        rows,
        notes=notes,
    )
    (REPO_ROOT / "BENCH_scenarios.json").write_text(
        json.dumps(record, indent=2)
    )
    return record


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def scenario_data():
        return run_benchmark(smoke=True)

    def test_no_scenario_diverges(scenario_data):
        """Zero decision/aggregate divergence, every Figure 7 workload."""
        assert len(scenario_data["scenarios"]) == 12
        for point in scenario_data["scenarios"]:
            assert not point["divergence"], point["name"]
            assert point["accepted"] == point["batch_size"], point["name"]

    def test_highres_compiled_speedup(scenario_data):
        """The acceptance gate: >= 2x trace speedup at batch 64 on the
        highest-gate-count count-min scenario, numpy backend."""
        if scenario_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        point = next(
            p for p in scenario_data["scenarios"] if p["name"] == "highres"
        )
        assert point["batch_size"] == 64
        assert point["trace_speedup"] > 2.0

    def test_every_scenario_trace_wins(scenario_data):
        """The plan sweep beats the interpreter on every workload."""
        if scenario_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        for point in scenario_data["scenarios"]:
            assert point["trace_speedup"] > 1.0, point["name"]


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result = run_benchmark(smoke=smoke)
    for point in result["scenarios"]:
        print(
            f"{point['name']:>10s} ({point['mul_gates']:5d} muls): "
            f"trace {point['trace_scalar_s'] * 1e3:8.1f}ms -> "
            f"{point['trace_compiled_s'] * 1e3:7.1f}ms "
            f"({point['trace_speedup']:5.2f}x)  "
            f"prepare {point['compiled_prepare_s'] * 1e3:9.1f}ms  "
            f"ingest {point['ingest_subs_per_s']:7.1f}/s"
        )
    print(f"backend={result['backend']} -> BENCH_scenarios.json")
