"""Figure 4: cluster throughput vs submission length (five schemes).

The paper's workload: each client submits a vector of 0/1 integers;
five servers (one per region) sum the vectors.  Lines: no-privacy,
no-robustness, Prio, Prio-MPC, NIZK.

Methodology (see DESIGN.md substitutions): we *measure* the
per-submission **server-side** CPU of every scheme on this machine —
exactly the work each scheme's server does per submission:

* no-privacy: accumulate the plaintext vector (no checks — the paper's
  "dummy scheme with no privacy protection whatsoever");
* no-robustness: expand the PRG share + accumulate (Section 3 scheme);
* Prio: expand share, reconstruct wires, SNIP rounds, accumulate;
* Prio-MPC: triple SNIP + Beaver evaluation of Valid;
* NIZK: verify one OR-proof per element (measured, extrapolated
  linearly — its cost is exactly per-element).

Transport decryption is excluded uniformly (identical across schemes).
CPU combines with the simulated 5-region WAN via
:func:`repro.simnet.cluster_throughput`.  The reproducible claims are
the *ratios*: Prio within ~an order of magnitude of no-privacy, NIZK
orders of magnitude below (paper: 5.7x and 267x respectively).
"""

import random

import pytest

from common import FULL, emit_table, fmt_rate, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.nizk import (
    NizkDeployment,
    nizk_client_submit,
    nizk_server_transfer_bytes,
)
from repro.sharing import expand_seed
from repro.simnet import PipelineCosts, cluster_throughput, paper_wan_topology
from repro.simnet.throughput import leader_amortized_tx
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    build_mpc_submission,
    prove_and_share,
    verify_mpc_submission,
    verify_snip,
)
from repro.snip.proof import proof_num_elements

N_SERVERS = 5
LENGTHS = (16, 64, 256, 1024) if not FULL else (16, 64, 256, 1024, 4096, 16384)
TOPOLOGY = paper_wan_topology()
ELEMENT_BYTES = FIELD87.encoded_size
_SEED = b"\x07" * 16


def accumulate(field, acc, share):
    p = field.modulus
    for i, v in enumerate(share):
        acc[i] = (acc[i] + v) % p


def measure_accumulate(length, rng):
    acc = [0] * length
    share = FIELD87.rand_vector(length, rng)
    return time_call(accumulate, FIELD87, acc, share)


def measure_expand(n_elements):
    return time_call(expand_seed, FIELD87, _SEED, n_elements)


def measure_no_privacy(length, rng):
    cpu = measure_accumulate(length, rng)
    rx = length * ELEMENT_BYTES
    return PipelineCosts(server_cpu_s=cpu, server_tx_bytes=64.0,
                         server_rx_bytes=rx)


def measure_no_robustness(length, rng):
    # A non-last server expands its seed to the truncated share (the
    # no-robustness client shares only the k' aggregated elements),
    # then accumulates.
    cpu = measure_expand(length) + measure_accumulate(length, rng)
    rx = length * ELEMENT_BYTES  # explicit-share server's worst case
    return PipelineCosts(server_cpu_s=cpu, server_tx_bytes=64.0,
                         server_rx_bytes=rx)


def measure_prio(afe, values, rng):
    circuit = afe.valid_circuit()
    encoding = afe.encode(values)
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, N_SERVERS, rng
    )
    challenge = ServerRandomness(rng.randbytes(16)).challenge(
        FIELD87, circuit, 0
    )
    ctx = VerificationContext(FIELD87, circuit, challenge)
    assert verify_snip(ctx, x_shares, proof_shares).accepted
    share_elements = afe.k + proof_num_elements(circuit.n_mul_gates)
    # verify_snip runs all 5 parties; per-server CPU is 1/s of it,
    # plus this server's PRG expansion and the accumulate step.
    cpu = (
        time_call(verify_snip, ctx, x_shares, proof_shares) / N_SERVERS
        + measure_expand(share_elements)
        + measure_accumulate(afe.k_prime, rng)
    )
    tx = leader_amortized_tx(4 * ELEMENT_BYTES, N_SERVERS)
    rx = share_elements * ELEMENT_BYTES + 4 * ELEMENT_BYTES * N_SERVERS
    return PipelineCosts(server_cpu_s=cpu, server_tx_bytes=tx,
                         server_rx_bytes=rx)


def measure_prio_mpc(afe, values, rng):
    circuit = afe.valid_circuit()
    encoding = afe.encode(values)
    shares = build_mpc_submission(
        FIELD87, circuit.n_mul_gates, encoding, N_SERVERS, rng
    )
    randomness = ServerRandomness(rng.randbytes(16))
    outcome = verify_mpc_submission(FIELD87, circuit, shares, randomness)
    assert outcome.accepted
    share_elements = (
        afe.k + 3 * circuit.n_mul_gates
        + proof_num_elements(circuit.n_mul_gates)
    )
    cpu = (
        time_call(verify_mpc_submission, FIELD87, circuit, shares, randomness)
        / N_SERVERS
        + measure_expand(share_elements)
        + measure_accumulate(afe.k_prime, rng)
    )
    tx = outcome.elements_broadcast_per_server * ELEMENT_BYTES
    rx = share_elements * ELEMENT_BYTES + tx * (N_SERVERS - 1)
    return PipelineCosts(server_cpu_s=cpu, server_tx_bytes=tx,
                         server_rx_bytes=rx)


def measure_nizk_per_element(rng):
    """Verify cost per vector element (exactly linear, so measure small)."""
    probe = 4
    deployment = NizkDeployment.create(N_SERVERS, probe, rng=rng)
    submission = nizk_client_submit(
        deployment.combined_pub, [1] * probe, rng
    )
    cpu = time_call(deployment.servers[0].process, submission, repeat=1)
    return cpu / probe


@pytest.fixture(scope="module")
def fig4_data():
    rng = random.Random(44)
    nizk_per_element = measure_nizk_per_element(rng)
    rows = []
    all_rates = {}
    for length in LENGTHS:
        afe = VectorSumAfe(FIELD87, length=length, n_bits=1)
        values = [rng.randrange(2) for _ in range(length)]
        schemes = {
            "no-privacy": measure_no_privacy(length, rng),
            "no-robustness": measure_no_robustness(length, rng),
            "prio": measure_prio(afe, values, rng),
            "prio-mpc": measure_prio_mpc(afe, values, rng),
            "nizk": PipelineCosts(
                server_cpu_s=nizk_per_element * length,
                server_tx_bytes=nizk_server_transfer_bytes(length, N_SERVERS),
                server_rx_bytes=nizk_server_transfer_bytes(length, N_SERVERS),
            ),
        }
        rates = {
            name: cluster_throughput(costs, TOPOLOGY)
            for name, costs in schemes.items()
        }
        all_rates[length] = rates
        rows.append(
            [length]
            + [fmt_rate(rates[n]) for n in
               ("no-privacy", "no-robustness", "prio", "prio-mpc", "nizk")]
            + [f"{rates['no-privacy'] / rates['prio']:.1f}x",
               f"{rates['no-privacy'] / rates['nizk']:.0f}x"]
        )
    emit_table(
        "fig4",
        "Figure 4 — modelled throughput (submissions/s) vs submission "
        "length, 5-server WAN",
        ["length", "no-privacy", "no-robust", "prio", "prio-mpc", "nizk",
         "prio cost", "nizk cost"],
        rows,
        notes=[
            "paper: Prio ~5x below no-privacy; NIZK 100-200x below; "
            "Prio-MPC between Prio and NIZK",
            "rates modelled from measured server CPU + simulated WAN "
            "(DESIGN.md); the ratios are the reproducible quantity",
        ],
    )
    return all_rates


def test_fig4_shape(fig4_data):
    """The orderings the paper's figure shows must hold at every length."""
    for length, rates in fig4_data.items():
        assert rates["no-privacy"] > rates["prio"], length
        assert rates["prio"] > rates["prio-mpc"], length
        assert rates["prio"] > rates["nizk"] * 5, length


def test_fig4_prio_verification_L256(benchmark, fig4_data):
    del fig4_data
    rng = random.Random(45)
    afe = VectorSumAfe(FIELD87, length=256, n_bits=1)
    encoding = afe.encode([1] * 256)
    circuit = afe.valid_circuit()
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, N_SERVERS, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"bench").challenge(FIELD87, circuit, 0),
    )
    benchmark.pedantic(
        verify_snip, args=(ctx, x_shares, proof_shares),
        rounds=5, iterations=1,
    )
