"""Multi-process server fan-out vs the PR-3 thread pipeline.

Not a paper figure — this tracks PR 4's execution-backend work: the
``executor="process"`` backend (one dedicated worker process per Prio
server, :mod:`repro.protocol.fanout`) against the PR-3 thread-pool
fan-out it extends.  Both sides run the identical staged pipeline and
the identical plane-resident verification core on the same wire
packets (F87; the Figure 4/5 one-bit vector-sum workload); the only
variable is where each server's CPU work executes:

``thread`` columns
    The PR-3 backend: per-server stage work on a shared thread pool.
    The SHAKE digests and limb matmuls release the GIL, but the Python
    glue between kernels (Barrett carry loops, round algebra dispatch)
    serializes on it — the single-host ceiling this PR removes.

``process`` columns
    One single-worker process pool per server; batch state crosses the
    boundary in plane form (wire bytes in, pickled
    ``Round1Batch``/``Round2Batch`` limb planes between rounds).  The
    worker pools are created once and reused across the timed stream
    (the per-run state push is included in the timing; pool *startup*
    is reported separately, as ``pool_startup_s``).

Decisions are asserted bit-identical across the ``inline`` / ``thread``
/ ``process`` backends.  Emits ``benchmarks/results/fanout.json`` plus
a ``BENCH_fanout.json`` record at the repo root.

Gates (pytest):

* decisions identical across all three backends (every host);
* on a multi-core numpy host, process >= 1.5x thread end-to-end at
  batch 64 (the acceptance gate; skipped on single-CPU hosts, where
  there is no second core for the worker processes to use);
* batch-of-one parity: the pipeline's per-submission overhead vs the
  synchronous unified core stays within a few percent (no per-stream
  regression from the executor seam).

Runs under pytest *and* as a plain script —
``python benchmarks/bench_fanout.py [--smoke]`` — which is what the CI
fanout-smoke job executes on both backends.
"""

import json
import os
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import FULL, emit_table, fmt_rate, fmt_seconds

from bench_pipeline import (
    N_SERVERS,
    _fresh_servers,
    _reset_servers,
    _workload,
)
from repro.field import backend_name
from repro.protocol import AsyncPrioPipeline, ProcessFanout
from repro.protocol.fanout import default_executor
from repro.protocol.server import PendingSubmission

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# The PR-3 pipeline, frozen for baseline comparability (do not "fix"
# this: it is the shipped PR-3 implementation — thread-pool fan-out of
# bound server methods, including its fire-and-forget executor
# shutdown — kept verbatim so the speedup column measures this PR's
# work and nothing else).
# ----------------------------------------------------------------------

import asyncio  # noqa: E402  (used by the frozen baseline)

_DONE = object()


class _Pr3IngestedBatch:
    __slots__ = ("indices", "pendings_by_server")

    def __init__(self, indices, pendings_by_server):
        self.indices = indices
        self.pendings_by_server = pendings_by_server


class Pr3Pipeline:
    """PR 3's ``AsyncPrioPipeline``, verbatim modulo cosmetics."""

    def __init__(self, servers, batch_size=64, queue_depth=2):
        self.servers = servers
        self.batch_size = batch_size
        self.queue_depth = queue_depth

    def run(self, submissions):
        return asyncio.run(self._run_async(submissions))

    async def _run_async(self, submissions):
        submissions = list(submissions)
        results = [False] * len(submissions)
        executor = default_executor(len(self.servers))
        try:
            ingest_q = asyncio.Queue(self.queue_depth)
            verify_q = asyncio.Queue(self.queue_depth)
            tasks = [
                asyncio.create_task(self._batcher(submissions, ingest_q)),
                asyncio.create_task(self._ingest_stage(
                    submissions, ingest_q, verify_q, results, executor
                )),
                asyncio.create_task(
                    self._verify_stage(verify_q, results, executor)
                ),
            ]
            try:
                await asyncio.gather(*tasks)
            except BaseException:
                for task in tasks:
                    task.cancel()
                raise
        finally:
            executor.shutdown(wait=False)  # the PR-3 lifecycle bug
        return results

    async def _batcher(self, submissions, ingest_q):
        batch = []
        for index in range(len(submissions)):
            batch.append(index)
            if len(batch) >= self.batch_size:
                await ingest_q.put(batch)
                batch = []
        if batch:
            await ingest_q.put(batch)
        await ingest_q.put(_DONE)

    def _receive_one_server(self, server, submissions, indices):
        return server.receive_batch(
            [submissions[i].packets[server.server_index] for i in indices]
        )

    async def _ingest_stage(
        self, submissions, ingest_q, verify_q, results, executor
    ):
        loop = asyncio.get_running_loop()
        while True:
            batch = await ingest_q.get()
            if batch is _DONE:
                await verify_q.put(_DONE)
                return
            received = await asyncio.gather(*[
                loop.run_in_executor(
                    executor,
                    self._receive_one_server, server, submissions, batch,
                )
                for server in self.servers
            ])
            survivors = []
            pendings_by_server = [[] for _ in self.servers]
            for pos, index in enumerate(batch):
                row = [received[s][pos] for s in range(len(self.servers))]
                if any(isinstance(r, Exception) for r in row):
                    for server, r in zip(self.servers, row):
                        if isinstance(r, PendingSubmission):
                            server.abandon(r)
                    results[index] = False
                    continue
                survivors.append(index)
                for s, r in enumerate(row):
                    pendings_by_server[s].append(r)
            if survivors:
                await asyncio.gather(*[
                    loop.run_in_executor(
                        executor, server._ingest_batch, pendings
                    )
                    for server, pendings in zip(
                        self.servers, pendings_by_server
                    )
                    if pendings
                ])
            await verify_q.put(
                _Pr3IngestedBatch(survivors, pendings_by_server)
            )

    async def _verify_stage(self, verify_q, results, executor):
        loop = asyncio.get_running_loop()
        while True:
            item = await verify_q.get()
            if item is _DONE:
                return
            if not item.indices:
                continue
            begun = await asyncio.gather(*[
                loop.run_in_executor(
                    executor, server.begin_verification_batch, pendings,
                )
                for server, pendings in zip(
                    self.servers, item.pendings_by_server
                )
            ])
            parties = [party for party, _ in begun]
            round1_batches = [round1 for _, round1 in begun]
            round2_batches = [
                server.finish_verification_batch(party, round1_batches)
                for server, party in zip(self.servers, parties)
            ]
            decisions = self.servers[0].decide_batch(round2_batches)
            for server, pendings in zip(
                self.servers, item.pendings_by_server
            ):
                server.accumulate_batch(pendings, decisions)
            for index, accepted in zip(item.indices, decisions):
                results[index] = accepted


def _run_pr3(servers, submissions, batch):
    _reset_servers(servers)
    pipeline = Pr3Pipeline(servers, batch_size=batch)
    return pipeline.run(submissions)


def _run_pipeline(servers, submissions, batch, executor):
    _reset_servers(servers)
    pipeline = AsyncPrioPipeline(servers, batch_size=batch, executor=executor)
    decisions = pipeline.run(submissions)
    return decisions, pipeline.stats


def _interleaved_best(fns, rounds):
    """Best-of wall times, measured round-robin.

    The compared implementations run adjacent in time in every round,
    so slow host drift (noisy-neighbor containers, thermal throttling)
    hits all columns alike instead of whichever ran last.
    """
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def run_benchmark(smoke=False):
    length = 256 if (smoke or not FULL) else 1024
    batch_sizes = (16, 64) if not FULL else (16, 64, 256)
    n_batches = 3
    repeat = 2 if smoke else 3
    rng = random.Random(1307)
    cpu_count = os.cpu_count() or 1
    record = {
        "field": "F87",
        "afe": f"vector-sum-{length}x1bit",
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "cpu_count": cpu_count,
        "smoke": smoke,
        "full_scale": FULL,
        "points": [],
    }
    rows = []

    # -- one fixed stream per batch size; all backends must agree.
    max_batch = max(batch_sizes)
    afe, _ctx, submissions, _n = _workload(length, max_batch * n_batches, rng)
    servers = _fresh_servers(afe)

    start = time.perf_counter()
    fanout = ProcessFanout(servers)
    record["pool_startup_s"] = time.perf_counter() - start
    try:
        # Correctness first: the executor knob must be unobservable,
        # and the new pipeline must decide exactly like frozen PR 3.
        pr3_decisions = _run_pr3(servers, submissions, 64)
        assert all(pr3_decisions), "honest stream must verify"
        reference = (tuple(pr3_decisions), servers[0].n_accepted)
        for backend in ("inline", "thread", fanout):
            decisions, stats = _run_pipeline(
                servers, submissions, 64, backend
            )
            key = (tuple(decisions), servers[0].n_accepted)
            assert key == reference, "backends disagree with PR 3"
        record["decisions_identical"] = True

        for batch in batch_sizes:
            stream = submissions[: batch * n_batches]
            pr3_s, thread_s, process_s = _interleaved_best(
                [
                    lambda: _run_pr3(servers, stream, batch),
                    lambda: _run_pipeline(servers, stream, batch, "thread"),
                    lambda: _run_pipeline(servers, stream, batch, fanout),
                ],
                rounds=repeat,
            )
            point = {
                "batch_size": batch,
                "n_submissions": len(stream),
                "pr3_s": pr3_s,
                "thread_s": thread_s,
                "process_s": process_s,
                "speedup": pr3_s / process_s,
                "speedup_vs_thread": thread_s / process_s,
                "process_subs_per_s": len(stream) / process_s,
            }
            record["points"].append(point)
            rows.append([
                batch,
                fmt_seconds(pr3_s),
                fmt_seconds(thread_s),
                fmt_seconds(process_s),
                f"{point['speedup']:.2f}x",
                fmt_rate(len(stream) / process_s),
            ])

        # -- batch-of-one parity: the executor seam must add no
        # per-submission overhead over the frozen PR-3 pipeline at
        # batch_size=1 (identical staging, identical default backend).
        n_scalar = 8 if smoke else 16
        scalar_stream = submissions[:n_scalar]
        pr3_scalar_s, pipe1_s = _interleaved_best(
            [
                lambda: _run_pr3(servers, scalar_stream, 1),
                lambda: _run_pipeline(servers, scalar_stream, 1, None),
            ],
            rounds=repeat + 4,
        )
        record["scalar"] = {
            "n_submissions": n_scalar,
            "pr3_s": pr3_scalar_s,
            "pipeline_s": pipe1_s,
            "parity": pr3_scalar_s / pipe1_s,
            "pipeline_subs_per_s": n_scalar / pipe1_s,
        }
    finally:
        fanout.close()

    # The acceptance gate is scoped to multi-core numpy hosts — with a
    # single CPU there is no second core for the worker processes, so
    # the record documents applicability alongside the measurement.
    gate_applies = record["backend"] == "numpy" and cpu_count >= 2
    gate_point = next(
        (p for p in record["points"] if p["batch_size"] >= 64), None
    )
    record["gate"] = {
        "required_speedup_at_batch_64": 1.5,
        "applies": gate_applies,
        "passed": (
            bool(gate_point and gate_point["speedup"] >= 1.5)
            if gate_applies else None
        ),
    }
    if cpu_count < 2:
        record["gate"]["note"] = (
            "single-CPU host: worker processes have no second core, so "
            "this record documents crossing overhead only; the >=1.5x "
            "multi-core gate is enforced by the CI bench-fanout-smoke "
            "job on multi-core runners"
        )

    notes = [
        "pr3 = frozen PR-3 pipeline (thread-pool fan-out, its default"
        " executor); thread = this PR's seam on the thread backend;"
        " process = one worker process per server, plane-form crossing",
        f"host: {cpu_count} cpu(s) — the >=1.5x gate applies on"
        " multi-core numpy hosts only",
        f"process pool startup ({N_SERVERS} workers + state push):"
        f" {fmt_seconds(record['pool_startup_s'])}, amortized across runs",
        f"batch-of-one: {record['scalar']['parity']:.2f}x of the frozen"
        " PR-3 pipeline",
    ]
    emit_table(
        "fanout",
        f"Process fan-out vs PR-3 thread pipeline (F87, L = {length} "
        f"one-bit integers, {N_SERVERS} servers, backend: "
        f"{record['backend']}, {cpu_count} cpus)",
        ["batch", "pr3", "thread", "process", "speedup", "subs/s process"],
        rows,
        notes=notes,
    )
    (REPO_ROOT / "BENCH_fanout.json").write_text(json.dumps(record, indent=2))
    return record


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def fanout_data():
        return run_benchmark()

    def test_decisions_identical_across_backends(fanout_data):
        assert fanout_data["decisions_identical"]

    def test_process_beats_thread_on_multicore(fanout_data):
        """The acceptance gate: >= 1.5x over the PR-3 thread pipeline
        at batch 64 on a multi-core numpy host."""
        if fanout_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        if fanout_data["cpu_count"] < 2:
            pytest.skip(
                "gate defined for multi-core hosts (worker processes "
                "have no second core here)"
            )
        point = next(
            p for p in fanout_data["points"] if p["batch_size"] >= 64
        )
        assert point["speedup"] >= 1.5

    def test_batch_of_one_parity(fanout_data):
        """The executor seam must not tax the per-submission path:
        within a few % of the frozen PR-3 pipeline at batch_size=1."""
        if fanout_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        assert fanout_data["scalar"]["parity"] > 0.9


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result = run_benchmark(smoke=smoke)
    for point in result["points"]:
        print(
            f"batch {point['batch_size']:4d}: "
            f"pr3 {point['pr3_s'] * 1e3:8.1f}ms  "
            f"thread {point['thread_s'] * 1e3:8.1f}ms  "
            f"process {point['process_s'] * 1e3:8.1f}ms  "
            f"{point['speedup']:.2f}x"
        )
    scalar = result["scalar"]
    print(
        f"batch    1: {scalar['parity']:.2f}x of the frozen PR-3 pipeline "
        f"({fmt_rate(scalar['pipeline_subs_per_s'])} subs/s)"
    )
    print(
        f"backend={result['backend']} cpus={result['cpu_count']} "
        f"-> BENCH_fanout.json"
    )
