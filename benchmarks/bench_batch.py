"""Scalar vs batched server-side verification throughput.

Not a paper figure — this tracks the repo's own batched-verification
pipeline (``verify_snip_batch`` + the deployment ``batch_size`` knob)
against the one-at-a-time baseline the paper's prototype modeled, on
the 87-bit evaluation field and the Figure 4/5 workload (a vector of
one-bit integers).

Emits the usual ``benchmarks/results/batch.json`` table *and* a
``BENCH_batch.json`` record at the repo root so the performance
trajectory of this path is tracked across PRs.  The acceptance gate:
batched verification of >= 64 submissions must beat 64 scalar
``verify_snip`` calls.
"""

import json
import pathlib
import random
import time

import pytest

from common import FULL, emit_table, fmt_rate, fmt_seconds

from repro.afe import VectorSumAfe
from repro.field import FIELD87, backend_name
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    prove_and_share_many,
    prove_many,
    verify_snip,
    verify_snip_batch,
)

LENGTH = 1024 if FULL else 256
BATCH_SIZES = (16, 64, 256) if FULL else (16, 64)
N_SERVERS = 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _workload(batch, rng):
    afe = VectorSumAfe(FIELD87, length=LENGTH, n_bits=1)
    circuit = afe.valid_circuit()
    encodings = [
        afe.encode([rng.randrange(2) for _ in range(LENGTH)])
        for _ in range(batch)
    ]
    subs = prove_and_share_many(
        FIELD87, circuit, encodings, N_SERVERS, rng
    )
    challenge = ServerRandomness(b"bench-batch").challenge(
        FIELD87, circuit, 0
    )
    ctx = VerificationContext(FIELD87, circuit, challenge)
    return circuit, ctx, encodings, subs


def _best_of(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def batch_data():
    rng = random.Random(808)
    rows = []
    record = {
        "field": "F87",
        "afe": f"vector-sum-{LENGTH}x1bit",
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "full_scale": FULL,
        "points": [],
    }
    for batch in BATCH_SIZES:
        circuit, ctx, encodings, subs = _workload(batch, rng)
        # warm the context caches (Lagrange weights + functionals),
        # matching a real server where one context serves ~2^10
        # submissions per epoch
        assert all(o.accepted for o in verify_snip_batch(ctx, subs))
        assert verify_snip(ctx, subs[0][0], subs[0][1]).accepted

        scalar_s = _best_of(
            lambda: [verify_snip(ctx, xs, ps) for xs, ps in subs]
        )
        batch_s = _best_of(lambda: verify_snip_batch(ctx, subs))
        prove_scalar_s = _best_of(
            lambda: prove_many(
                FIELD87, circuit, encodings, random.Random(1),
                force_pure=True,
            ),
            repeat=1,
        )
        prove_batch_s = _best_of(
            lambda: prove_many(
                FIELD87, circuit, encodings, random.Random(1)
            ),
            repeat=1,
        )
        speedup = scalar_s / batch_s
        rows.append([
            batch,
            fmt_seconds(scalar_s), fmt_seconds(batch_s),
            f"{speedup:.2f}x",
            fmt_rate(batch / batch_s),
        ])
        record["points"].append({
            "batch_size": batch,
            "scalar_verify_s": scalar_s,
            "batch_verify_s": batch_s,
            "verify_speedup": speedup,
            "batch_verify_subs_per_s": batch / batch_s,
            "prove_many_pure_s": prove_scalar_s,
            "prove_many_batch_s": prove_batch_s,
        })
    emit_table(
        "batch",
        f"Batched verification — scalar vs verify_snip_batch "
        f"(F87, L = {LENGTH} one-bit integers, {N_SERVERS} servers, "
        f"backend: {record['backend']})",
        ["batch", "scalar", "batched", "speedup", "subs/s batched"],
        rows,
        notes=[
            "scalar column: batch x verify_snip, one submission at a time",
            "warm verification context (fixed-r epoch, Appendix I)",
        ],
    )
    (REPO_ROOT / "BENCH_batch.json").write_text(
        json.dumps(record, indent=2)
    )
    return record


def test_batch_verification_beats_scalar(batch_data):
    """The acceptance gate: >= 64 submissions, measurably faster."""
    point = next(
        p for p in batch_data["points"] if p["batch_size"] >= 64
    )
    if batch_data["backend"] == "numpy":
        assert point["verify_speedup"] > 1.2
    else:
        # the pure fallback must at least not be pathologically slower
        assert point["verify_speedup"] > 0.5


def test_batch_outcomes_match_scalar_spot_check(batch_data):
    del batch_data
    rng = random.Random(191)
    _, ctx, _, subs = _workload(8, rng)
    batch = verify_snip_batch(ctx, subs)
    scalar = [verify_snip(ctx, xs, ps) for xs, ps in subs]
    assert [o.accepted for o in batch] == [o.accepted for o in scalar]


def test_bench_verify_batch_64(benchmark, batch_data):
    del batch_data
    rng = random.Random(222)
    _, ctx, _, subs = _workload(64, rng)
    verify_snip_batch(ctx, subs)  # warm
    benchmark.pedantic(
        verify_snip_batch, args=(ctx, subs), rounds=3, iterations=1
    )
