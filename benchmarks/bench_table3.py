"""Table 3: client time to generate a submission of L four-bit integers.

Paper rows: field multiplication microbenchmark plus client submission
time for L in {10, 100, 1000}, on a workstation and a phone, in the
87-bit and 265-bit fields.  We measure the workstation column directly
(full prepare_submission: encode + SNIP + PRG-share + frame) and scale
by the paper's own phone/workstation field-multiplication ratio for the
phone column (see DESIGN.md substitutions).
"""

import random
import time

import pytest

from common import PHONE_SLOWDOWN, emit_table, fmt_seconds, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87, FIELD265
from repro.protocol import PrioClient

LENGTHS = (10, 100, 1000)
N_SERVERS = 5


def measure_field_mul(field, samples=20000):
    rng = random.Random(1)
    xs = field.rand_vector(samples, rng)
    ys = field.rand_vector(samples, rng)
    p = field.modulus
    start = time.perf_counter()
    for x, y in zip(xs, ys):
        _ = (x * y) % p
    return (time.perf_counter() - start) / samples


@pytest.fixture(scope="module")
def table3_data():
    rng = random.Random(3)
    rows = []
    mul_us = {}
    client_times = {}
    for field in (FIELD87, FIELD265):
        mul_us[field.name] = measure_field_mul(field) * 1e6
    rows.append(
        ["mul in field (us)"]
        + [f"{mul_us[f.name]:.3f}" for f in (FIELD87, FIELD265)]
        + [
            f"{mul_us[f.name] * PHONE_SLOWDOWN[f.name]:.2f}"
            for f in (FIELD87, FIELD265)
        ]
    )
    for length in LENGTHS:
        row = [f"L = {length}"]
        for field in (FIELD87, FIELD265):
            afe = VectorSumAfe(field, length=length, n_bits=4)
            client = PrioClient(afe, N_SERVERS, rng=rng)
            values = [rng.randrange(16) for _ in range(length)]
            seconds = time_call(
                client.prepare_submission, values,
                repeat=3 if length < 1000 else 1,
            )
            client_times[(field.name, length)] = seconds
            row.append(fmt_seconds(seconds))
        for field in (FIELD87, FIELD265):
            row.append(
                fmt_seconds(
                    client_times[(field.name, length)]
                    * PHONE_SLOWDOWN[field.name]
                )
            )
        rows.append(row)
    emit_table(
        "table3",
        "Table 3 — client submission time, L four-bit integers "
        "(workstation measured; phone = paper's mul-ratio scaling)",
        ["config", "wkstn 87-bit", "wkstn 265-bit",
         "phone-est 87-bit", "phone-est 265-bit"],
        rows,
        notes=[
            "paper (workstation, 87-bit): L=10: 3ms, L=100: 24ms, "
            "L=1000: 221ms — native bigints put this reproduction "
            "within ~1.2x of the paper's absolute client numbers; "
            "shape (linear in L, ~1.5x for the bigger field) preserved",
        ],
    )
    return client_times


def test_client_submission_L100_field87(benchmark, table3_data):
    del table3_data
    rng = random.Random(4)
    afe = VectorSumAfe(FIELD87, length=100, n_bits=4)
    client = PrioClient(afe, N_SERVERS, rng=rng)
    values = [rng.randrange(16) for _ in range(100)]
    benchmark.pedantic(client.prepare_submission, args=(values,),
                       rounds=5, iterations=1)


def test_client_submission_L100_field265(benchmark, table3_data):
    del table3_data
    rng = random.Random(5)
    afe = VectorSumAfe(FIELD265, length=100, n_bits=4)
    client = PrioClient(afe, N_SERVERS, rng=rng)
    values = [rng.randrange(16) for _ in range(100)]
    benchmark.pedantic(client.prepare_submission, args=(values,),
                       rounds=5, iterations=1)
