"""Shared benchmark infrastructure.

Every ``bench_*.py`` file reproduces one table or figure from the
paper's evaluation (Section 6).  The heavy sweep runs once per session
(module-scoped fixtures), emits a formatted table through
:func:`emit_table` — printed in pytest's terminal summary and written
to ``benchmarks/results/<id>.json`` — and registers one representative
timed operation with pytest-benchmark.

Set ``PRIO_BENCH_FULL=1`` for paper-scale sweeps (larger L, more
points); the default sizes keep the whole suite to a few minutes of
wall time.  Paper-vs-measured commentary lives in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field as dc_field

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FULL = os.environ.get("PRIO_BENCH_FULL") == "1"

#: Phone/workstation slowdown, calibrated from the paper's Table 3
#: field-multiplication row (11.218 us / 1.013 us for the 87-bit field).
PHONE_SLOWDOWN = {"F87": 11.218 / 1.013, "F265": 14.930 / 1.485}


@dataclass
class TableArtifact:
    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[str]]
    notes: list[str] = dc_field(default_factory=list)

    def render(self) -> str:
        widths = [
            max(len(str(self.headers[i])), *(len(str(r[i])) for r in self.rows))
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(
            "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


#: tables emitted during this pytest session (printed by conftest.py)
EMITTED: list[TableArtifact] = []


def emit_table(
    exp_id: str,
    title: str,
    headers: list[str],
    rows: list[list],
    notes: list[str] | None = None,
) -> TableArtifact:
    """Record a result table: console summary + JSON artifact."""
    artifact = TableArtifact(
        exp_id=exp_id,
        title=title,
        headers=[str(h) for h in headers],
        rows=[[str(c) for c in row] for row in rows],
        notes=list(notes or []),
    )
    EMITTED.append(artifact)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "exp_id": exp_id,
        "title": title,
        "headers": artifact.headers,
        "rows": artifact.rows,
        "notes": artifact.notes,
        "full_scale": FULL,
    }
    out = RESULTS_DIR / f"{exp_id}.json"
    out.write_text(json.dumps(payload, indent=2))
    return artifact


def time_call(fn, *args, repeat: int = 3, min_time: float = 0.0):
    """Best-of-``repeat`` wall time of ``fn(*args)`` in seconds.

    ``repeat`` is reduced automatically once a single call exceeds a
    second — the big Figure 7 workloads need only one observation.
    """
    best = float("inf")
    for attempt in range(repeat):
        start = time.perf_counter()
        fn(*args)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        if elapsed > 1.0 and attempt >= 0:
            break
        if best > min_time > 0:
            break
    return best


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def fmt_rate(rate: float) -> str:
    if rate >= 1000:
        return f"{rate:,.0f}"
    if rate >= 10:
        return f"{rate:.0f}"
    return f"{rate:.2f}"


def fmt_bytes(n: float) -> str:
    if n < 1024:
        return f"{n:.0f}B"
    if n < 1024**2:
        return f"{n / 1024:.1f}KiB"
    return f"{n / 1024 ** 2:.2f}MiB"
