"""Ablation C: batched zero-checks (Appendix I, opt. 3).

A b-bit sum AFE has b + 1 independent validity predicates (b bit
checks plus the decomposition equality).  Two ways to verify them:

* **batched** (what this library does): one circuit with b + 1
  assertion wires, one SNIP, and a single random-linear-combination
  broadcast — the paper's "efficient way for the servers to compute
  the logical-and of multiple arithmetic circuits";
* **separate**: one SNIP per predicate — b proofs with one
  multiplication gate each, b times the rounds and traffic.

This bench measures both (proof bytes, verify time) to show what the
batching buys.
"""

import random

import pytest

from common import emit_table, fmt_bytes, fmt_seconds, time_call

from repro.afe import IntegerSumAfe
from repro.circuit import CircuitBuilder, assert_bit
from repro.field import FIELD87
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    proof_num_elements,
    prove_and_share,
    verify_snip,
)

N_SERVERS = 2
BIT_WIDTHS = (4, 16, 64)


def separate_bit_circuits(field, n_bits):
    """One single-bit-check circuit (reused per bit)."""
    builder = CircuitBuilder(field, name="one-bit")
    wire = builder.input()
    assert_bit(builder, wire)
    return builder.build()


@pytest.fixture(scope="module")
def ablation_batch_data():
    rng = random.Random(333)
    rows = []
    results = {}
    for n_bits in BIT_WIDTHS:
        afe = IntegerSumAfe(FIELD87, n_bits)
        value = rng.randrange(1 << n_bits)
        encoding = afe.encode(value)
        circuit = afe.valid_circuit()

        # Batched: one proof for the whole Valid circuit.
        x_shares, proof_shares = prove_and_share(
            FIELD87, circuit, encoding, N_SERVERS, rng
        )
        ctx = VerificationContext(
            FIELD87, circuit,
            ServerRandomness(rng.randbytes(16)).challenge(FIELD87, circuit, 0),
        )
        assert verify_snip(ctx, x_shares, proof_shares).accepted
        batched_time = time_call(verify_snip, ctx, x_shares, proof_shares)
        batched_bytes = (
            proof_num_elements(circuit.n_mul_gates) * FIELD87.encoded_size
        )

        # Separate: one single-gate SNIP per bit.
        bit_circuit = separate_bit_circuits(FIELD87, n_bits)
        bit_ctx = VerificationContext(
            FIELD87, bit_circuit,
            ServerRandomness(rng.randbytes(16)).challenge(
                FIELD87, bit_circuit, 0
            ),
        )
        bits = encoding[1:]
        per_bit_shares = [
            prove_and_share(FIELD87, bit_circuit, [bit], N_SERVERS, rng)
            for bit in bits
        ]

        def verify_all_bits():
            for xs, ps in per_bit_shares:
                assert verify_snip(bit_ctx, xs, ps).accepted

        separate_time = time_call(verify_all_bits)
        separate_bytes = n_bits * (
            proof_num_elements(1) * FIELD87.encoded_size
        )
        results[n_bits] = {
            "batched_time": batched_time,
            "separate_time": separate_time,
            "batched_bytes": batched_bytes,
            "separate_bytes": separate_bytes,
        }
        rows.append([
            n_bits,
            fmt_seconds(batched_time),
            fmt_seconds(separate_time),
            f"{separate_time / batched_time:.1f}x",
            fmt_bytes(batched_bytes),
            fmt_bytes(separate_bytes),
            # broadcast rounds: 2 vs 2 per proof
            f"2 vs {2 * n_bits}",
        ])
    emit_table(
        "ablation_batch",
        "Ablation C — one batched SNIP vs one SNIP per predicate "
        "(b-bit sum AFE)",
        ["bits", "batched verify", "separate verify", "speedup",
         "batched proof", "separate proof", "rounds"],
        rows,
        notes=[
            "batching wins on verify time, proof bytes (shared masks "
            "and triple), and broadcast rounds (2 vs 2b)",
        ],
    )
    return results


def test_ablation_batch_always_wins(ablation_batch_data):
    for n_bits, r in ablation_batch_data.items():
        assert r["batched_time"] < r["separate_time"], n_bits
        assert r["batched_bytes"] < r["separate_bytes"], n_bits


def test_ablation_batched_verify_16bit(benchmark, ablation_batch_data):
    del ablation_batch_data
    rng = random.Random(334)
    afe = IntegerSumAfe(FIELD87, 16)
    encoding = afe.encode(12345)
    circuit = afe.valid_circuit()
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, N_SERVERS, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"ab-c").challenge(FIELD87, circuit, 0),
    )
    benchmark.pedantic(
        verify_snip, args=(ctx, x_shares, proof_shares),
        rounds=5, iterations=1,
    )
