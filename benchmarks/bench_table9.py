"""Table 9: five-server cluster rate for d-dimensional regression.

Paper columns, for d in {2, 4, 6, 8, 10, 12}: the no-privacy rate, the
no-robustness rate with its privacy-cost multiple, and the Prio rate
with its robustness-cost multiple and total-cost multiple.

Paper numbers for orientation: no-privacy ~15,000/s flat; privacy cost
~6x; robustness cost 1.0-1.9x growing with d; total cost 5.6-11.6x.
We measure server-side CPU per pipeline (as in Figure 4) on the
5-region WAN topology and print the same columns.
"""

import random

import pytest

from common import emit_table, fmt_rate, time_call

from repro.afe import LinRegAfe
from repro.field import FIELD87
from repro.sharing import expand_seed
from repro.simnet import PipelineCosts, cluster_throughput, paper_wan_topology
from repro.simnet.throughput import leader_amortized_tx
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    prove_and_share,
    verify_snip,
)
from repro.snip.proof import proof_num_elements

N_SERVERS = 5
N_BITS = 14
DIMENSIONS = (2, 4, 6, 8, 10, 12)
TOPOLOGY = paper_wan_topology()
ELEMENT_BYTES = FIELD87.encoded_size
_SEED = b"\x09" * 16


def accumulate(field, acc, share):
    p = field.modulus
    for i, v in enumerate(share):
        acc[i] = (acc[i] + v) % p


def measure_rates(d, rng):
    afe = LinRegAfe(FIELD87, dimension=d, n_bits=N_BITS)
    example = (
        [rng.randrange(1 << (N_BITS // 2)) for _ in range(d)],
        rng.randrange(1 << N_BITS),
    )
    encoding = afe.encode(example)
    circuit = afe.valid_circuit()

    acc = [0] * afe.k_prime
    accumulate_s = time_call(
        accumulate, FIELD87, acc, encoding[: afe.k_prime]
    )
    no_privacy = PipelineCosts(
        server_cpu_s=accumulate_s,
        server_tx_bytes=64.0,
        server_rx_bytes=afe.k_prime * ELEMENT_BYTES,
    )

    expand_kprime_s = time_call(expand_seed, FIELD87, _SEED, afe.k_prime)
    no_robustness = PipelineCosts(
        server_cpu_s=expand_kprime_s + accumulate_s,
        server_tx_bytes=64.0,
        server_rx_bytes=afe.k_prime * ELEMENT_BYTES,
    )

    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, N_SERVERS, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(rng.randbytes(16)).challenge(FIELD87, circuit, 0),
    )
    assert verify_snip(ctx, x_shares, proof_shares).accepted
    share_elements = afe.k + proof_num_elements(circuit.n_mul_gates)
    prio_cpu = (
        time_call(verify_snip, ctx, x_shares, proof_shares) / N_SERVERS
        + time_call(expand_seed, FIELD87, _SEED, share_elements)
        + accumulate_s
    )
    prio = PipelineCosts(
        server_cpu_s=prio_cpu,
        server_tx_bytes=leader_amortized_tx(4 * ELEMENT_BYTES, N_SERVERS),
        server_rx_bytes=share_elements * ELEMENT_BYTES,
    )
    return {
        "no_privacy": cluster_throughput(no_privacy, TOPOLOGY),
        "no_robustness": cluster_throughput(no_robustness, TOPOLOGY),
        "prio": cluster_throughput(prio, TOPOLOGY),
    }


@pytest.fixture(scope="module")
def table9_data():
    rng = random.Random(99)
    rows = []
    results = {}
    for d in DIMENSIONS:
        rates = measure_rates(d, rng)
        results[d] = rates
        privacy_cost = rates["no_privacy"] / rates["no_robustness"]
        robustness_cost = rates["no_robustness"] / rates["prio"]
        total_cost = rates["no_privacy"] / rates["prio"]
        rows.append([
            d,
            fmt_rate(rates["no_privacy"]),
            fmt_rate(rates["no_robustness"]),
            f"{privacy_cost:.1f}x",
            fmt_rate(rates["prio"]),
            f"{robustness_cost:.1f}x",
            f"{total_cost:.1f}x",
        ])
    emit_table(
        "table9",
        "Table 9 — d-dim regression rates on the 5-server WAN "
        "(submissions/s)",
        ["d", "no-priv rate", "no-robust rate", "priv cost",
         "prio rate", "robust cost", "total cost"],
        rows,
        notes=[
            "paper: privacy cost ~6x flat; robustness cost 1.0x->1.9x "
            "growing with d; total 5.6x->11.6x",
        ],
    )
    return results


def test_table9_costs_grow_with_dimension(table9_data):
    """Robustness cost must grow with d (more gates to verify)."""
    first = table9_data[DIMENSIONS[0]]
    last = table9_data[DIMENSIONS[-1]]
    ratio_first = first["no_robustness"] / first["prio"]
    ratio_last = last["no_robustness"] / last["prio"]
    assert ratio_last > ratio_first


def test_table9_verify_d12(benchmark, table9_data):
    del table9_data
    rng = random.Random(100)
    afe = LinRegAfe(FIELD87, dimension=12, n_bits=N_BITS)
    example = ([5] * 12, 77)
    encoding = afe.encode(example)
    circuit = afe.valid_circuit()
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, N_SERVERS, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"t9").challenge(FIELD87, circuit, 0),
    )
    benchmark.pedantic(
        verify_snip, args=(ctx, x_shares, proof_shares),
        rounds=5, iterations=1,
    )
