#!/usr/bin/env python3
"""Render every benchmark result table from benchmarks/results/.

Usage:  python benchmarks/report.py [exp_id ...]

Run ``pytest benchmarks/ --benchmark-only`` first to generate the JSON
artifacts; this tool re-prints them without re-measuring, in the order
the paper presents the experiments.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: paper presentation order
ORDER = [
    "table2_asymptotic",
    "table2_measured",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table9",
    "ablation_fft",
    "ablation_prg",
    "ablation_batch",
]


def render(payload: dict) -> str:
    headers = payload["headers"]
    rows = payload["rows"]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [f"== {payload['exp_id']}: {payload['title']} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in payload.get("notes", []):
        lines.append(f"  note: {note}")
    if payload.get("full_scale"):
        lines.append("  (generated with PRIO_BENCH_FULL=1)")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    wanted = argv[1:] or ORDER
    missing = []
    for exp_id in wanted:
        path = RESULTS_DIR / f"{exp_id}.json"
        if not path.exists():
            missing.append(exp_id)
            continue
        print(render(json.loads(path.read_text())))
        print()
    if missing:
        print(
            f"missing results for: {', '.join(missing)} — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
