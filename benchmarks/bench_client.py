"""Batched plane-resident client prover vs the frozen scalar client.

Not a paper figure — this tracks PR 5's batched client path (the
client half of the protocol: encode, prove, PRG-share, frame) against
the scalar client it replaces on the hot path.  Both sides do the same
end-to-end client job on the same values with the same rng seed
(F87; the Figure 4/5 one-bit vector-sum workload), and their uploads
are asserted *bit-identical* before anything is timed:

frozen scalar client (``scalar`` columns)
    The per-submission client flow frozen inline below for
    comparability (exactly like ``bench_pipeline.py`` freezes the
    PR-2 kernels): scalar NTT interpolate/evaluate per proof, h as a
    per-element Python product, one scalar ``expand_seed`` per PRG
    seed with Python-int subtraction loops, and ``field.encode_vector``
    framing.

batched client (``batched`` columns)
    ``PrioClient.prepare_submissions(batched=True)``: per-submission
    randomness drawn in scalar order, then one ``(2B, N)`` batch NTT
    sweep for every proof's f/g, h as a plane Hadamard product,
    ``share_vectors_client_batch`` (one vectorized ``expand_seed_batch``
    across all seeds, explicit shares by plane subtraction), and wire
    bodies via ``encode_bytes_batch``.

Emits ``benchmarks/results/client.json`` plus a ``BENCH_client.json``
record at the repo root.  Gate: >= 2x client prepare+frame throughput
at batch 64 on the numpy backend (the ISSUE 5 acceptance criterion).

Runs under pytest *and* as a plain script —
``python benchmarks/bench_client.py [--smoke]`` — which is what the
CI ``bench-client-smoke`` job executes on both backends.
"""

import json
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import FULL, emit_table, fmt_bytes, fmt_rate, fmt_seconds, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87, EvaluationDomain, backend_name
from repro.mpc.beaver import generate_triple
from repro.protocol import PrioClient
from repro.protocol.wire import ClientPacket, PacketKind, new_submission_id
from repro.sharing.prg import expand_seed, new_seed
from repro.snip import snip_domain_sizes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
N_SERVERS = 3  # two SEED packets + one EXPLICIT packet per submission
CLIENT_SEED = 515


# ----------------------------------------------------------------------
# The scalar client, frozen for baseline comparability (do not "fix"
# this: it is the shipped scalar prepare_submission flow, kept verbatim
# so the speedup column measures this PR's work and nothing else).
# ----------------------------------------------------------------------


def _frozen_build_proof(field, circuit, x, rng):
    """Scalar build_proof: per-proof NTT pair, h as Python products."""
    trace = circuit.evaluate(field, x)
    assert trace.is_valid, "bench workload is always valid"
    m = circuit.n_mul_gates
    size_n, size_2n = snip_domain_sizes(m)
    domain_n = EvaluationDomain(field, size_n)
    domain_2n = EvaluationDomain(field, size_2n)
    u0 = field.rand(rng)
    v0 = field.rand(rng)
    f_evals = [u0] + trace.mul_inputs_left + [0] * (size_n - m - 1)
    g_evals = [v0] + trace.mul_inputs_right + [0] * (size_n - m - 1)
    f_coeffs = domain_n.interpolate(f_evals)
    g_coeffs = domain_n.interpolate(g_evals)
    p = field.modulus
    f_on_2n = domain_2n.evaluate(f_coeffs)
    g_on_2n = domain_2n.evaluate(g_coeffs)
    h_evals = [(a * b) % p for a, b in zip(f_on_2n, g_on_2n)]
    triple = generate_triple(field, rng)
    return [u0, v0, *h_evals, triple.a, triple.b, triple.c]


def _frozen_prg_share_vector(field, xs, n_shares, rng):
    """Scalar PRG sharing: one expand_seed + int subtraction per seed."""
    p = field.modulus
    seeds = [new_seed(rng) for _ in range(n_shares - 1)]
    last = [v % p for v in xs]
    for seed in seeds:
        expanded = expand_seed(field, seed, len(last))
        last = [(a - b) % p for a, b in zip(last, expanded)]
    return seeds, last


def run_frozen_scalar_client(afe, circuit, values, rng):
    """The scalar client loop: encode, prove, share, frame per value."""
    field = afe.field
    submissions = []
    for value in values:
        encoding = afe.encode(value, rng)
        vector = encoding + _frozen_build_proof(field, circuit, encoding, rng)
        submission_id = new_submission_id(rng)
        seeds, explicit = _frozen_prg_share_vector(
            field, vector, N_SERVERS, rng
        )
        packets = [
            ClientPacket(
                submission_id=submission_id,
                server_index=i,
                kind=PacketKind.SEED,
                n_elements=len(explicit),
                body=seed,
            )
            for i, seed in enumerate(seeds)
        ]
        packets.append(
            ClientPacket(
                submission_id=submission_id,
                server_index=len(seeds),
                kind=PacketKind.EXPLICIT,
                n_elements=len(explicit),
                body=field.encode_vector(explicit),
            )
        )
        submissions.append(packets)
    return submissions


def run_batched_client(afe, values, rng_seed):
    client = PrioClient(afe, N_SERVERS, rng=random.Random(rng_seed))
    return client.prepare_submissions(values, batched=True)


# ----------------------------------------------------------------------


def _workload(length, n_submissions, rng):
    afe = VectorSumAfe(FIELD87, length=length, n_bits=1)
    values = [
        [rng.randrange(2) for _ in range(length)]
        for _ in range(n_submissions)
    ]
    return afe, values


def run_benchmark(smoke=False):
    length = 256 if (smoke or not FULL) else 1024
    batch_sizes = (16, 64) if not FULL else (16, 64, 256)
    repeat = 2 if smoke else 3
    rng = random.Random(94)
    rows = []
    record = {
        "field": "F87",
        "afe": f"vector-sum-{length}x1bit",
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "smoke": smoke,
        "full_scale": FULL,
        "points": [],
    }

    for batch in batch_sizes:
        afe, values = _workload(length, batch, rng)
        circuit = afe.valid_circuit()
        # Bit-identity first: same seed, same uploads, byte for byte.
        scalar_packets = run_frozen_scalar_client(
            afe, circuit, values, random.Random(CLIENT_SEED)
        )
        batched_subs = run_batched_client(afe, values, CLIENT_SEED)
        assert len(scalar_packets) == len(batched_subs)
        for frozen, batched in zip(scalar_packets, batched_subs):
            assert [p.encode() for p in frozen] == [
                p.encode() for p in batched.packets
            ], "batched client diverged from the frozen scalar client"
        upload_bytes = batched_subs[0].upload_bytes

        scalar_s = time_call(
            lambda: run_frozen_scalar_client(
                afe, circuit, values, random.Random(CLIENT_SEED)
            ),
            repeat=repeat,
        )
        batched_s = time_call(
            lambda: run_batched_client(afe, values, CLIENT_SEED),
            repeat=repeat,
        )
        point = {
            "batch_size": batch,
            "scalar_s": scalar_s,
            "batched_s": batched_s,
            "speedup": scalar_s / batched_s,
            "batched_subs_per_s": batch / batched_s,
            "upload_bytes_per_submission": upload_bytes,
        }
        record["points"].append(point)
        rows.append([
            batch,
            fmt_seconds(scalar_s),
            fmt_seconds(batched_s),
            f"{point['speedup']:.2f}x",
            fmt_rate(batch / batched_s),
            fmt_bytes(upload_bytes),
        ])

    # Batch of one: the knob must not punish sporadic clients.
    afe, values = _workload(length, 1, rng)
    circuit = afe.valid_circuit()
    single_scalar_s = time_call(
        lambda: run_frozen_scalar_client(
            afe, circuit, values, random.Random(CLIENT_SEED)
        ),
        repeat=repeat + 2,
    )
    single_batched_s = time_call(
        lambda: run_batched_client(afe, values, CLIENT_SEED),
        repeat=repeat + 2,
    )
    record["single"] = {
        "scalar_s": single_scalar_s,
        "batched_s": single_batched_s,
        "ratio": single_scalar_s / single_batched_s,
    }

    notes = [
        "both columns are the full client job: encode -> prove -> "
        "PRG-share -> framed wire packets",
        "scalar = frozen per-submission flow (scalar NTT pair + "
        "expand_seed + int loops per upload)",
        "batched = one (2B, N) NTT sweep + one expand_seed_batch + "
        "plane shares + encode_bytes_batch",
        "uploads asserted bit-identical before timing (shared rng seed)",
        f"batch of one: {record['single']['ratio']:.2f}x vs frozen scalar",
    ]
    emit_table(
        "client",
        f"Batched client prover vs frozen scalar client (F87, "
        f"L = {length} one-bit integers, {N_SERVERS} servers, "
        f"backend: {record['backend']})",
        ["batch", "scalar", "batched", "speedup", "subs/s batched",
         "upload/sub"],
        rows,
        notes=notes,
    )
    (REPO_ROOT / "BENCH_client.json").write_text(
        json.dumps(record, indent=2)
    )
    return record


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def client_data():
        return run_benchmark()

    def test_batched_client_beats_scalar(client_data):
        """The acceptance gate: >= 2x prepare+frame at batch 64 (numpy)."""
        if client_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        point = next(
            p for p in client_data["points"] if p["batch_size"] >= 64
        )
        assert point["speedup"] > 2.0

    def test_single_submission_not_punished(client_data):
        """A batch of one must stay within 2x of the scalar client
        (tiny_batch_force_pure keeps it on bigint loops)."""
        assert client_data["single"]["ratio"] > 0.5


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result = run_benchmark(smoke=smoke)
    for point in result["points"]:
        print(
            f"batch {point['batch_size']:4d}: "
            f"scalar {point['scalar_s'] * 1e3:8.1f}ms  "
            f"batched {point['batched_s'] * 1e3:8.1f}ms  "
            f"{point['speedup']:.2f}x"
        )
    print(f"batch    1: {result['single']['ratio']:.2f}x vs frozen scalar")
    print(f"backend={result['backend']} -> BENCH_client.json")
