"""Ablation A: "verification without interpolation" (Appendix I, opt. 2).

Compares the production verifier — point-value h + precomputed
fixed-r Lagrange weights, O(N) per submission — against the textbook
Section 4.2 construction, where each server runs O(M^2) Lagrange
interpolation per submission.  The paper adopted the optimization
because the naive path dominates server cost for complex circuits;
this bench quantifies the gap on our substrate.
"""

import random

import pytest

from common import emit_table, fmt_seconds, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.sharing import share_vector
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    build_reference_proof,
    prove_and_share,
    share_reference_proof,
    verify_reference_snip,
    verify_snip,
)

N_SERVERS = 2
SIZES = (8, 32, 128, 512)


@pytest.fixture(scope="module")
def ablation_fft_data():
    rng = random.Random(111)
    rows = []
    results = {}
    for m in SIZES:
        afe = VectorSumAfe(FIELD87, length=m, n_bits=1)
        circuit = afe.valid_circuit()
        encoding = afe.encode([1] * m)
        challenge = ServerRandomness(rng.randbytes(16)).challenge(
            FIELD87, circuit, 0
        )

        # Optimized: NTT prover + fixed-r inner-product verifier.
        x_shares, proof_shares = prove_and_share(
            FIELD87, circuit, encoding, N_SERVERS, rng
        )
        ctx = VerificationContext(FIELD87, circuit, challenge)
        assert verify_snip(ctx, x_shares, proof_shares).accepted
        fast_s = time_call(verify_snip, ctx, x_shares, proof_shares)

        # Textbook: integer-point interpolation at the servers.
        ref_proof = build_reference_proof(FIELD87, circuit, encoding, rng)
        ref_shares = share_reference_proof(FIELD87, ref_proof, N_SERVERS, rng)
        ref_x_shares = share_vector(FIELD87, encoding, N_SERVERS, rng)
        assert verify_reference_snip(
            FIELD87, circuit, ref_x_shares, ref_shares, challenge
        ).accepted
        slow_s = time_call(
            verify_reference_snip,
            FIELD87, circuit, ref_x_shares, ref_shares, challenge,
            repeat=1,
        )
        results[m] = (fast_s, slow_s)
        rows.append([
            m, fmt_seconds(fast_s), fmt_seconds(slow_s),
            f"{slow_s / fast_s:.1f}x",
        ])
    emit_table(
        "ablation_fft",
        "Ablation A — fixed-r/point-value verification vs naive "
        "interpolation (total verify time, 2 servers)",
        ["mul gates", "optimized", "textbook O(M^2)", "speedup"],
        rows,
        notes=[
            "the gap grows ~linearly with M: O(N) vs O(M^2) per "
            "submission; this is why Appendix I's optimization matters",
        ],
    )
    return results


def test_ablation_fft_speedup_grows(ablation_fft_data):
    speedups = [slow / fast for fast, slow in ablation_fft_data.values()]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 5  # at M=512 the gap is already big


def test_ablation_fft_optimized_M128(benchmark, ablation_fft_data):
    del ablation_fft_data
    rng = random.Random(112)
    afe = VectorSumAfe(FIELD87, length=128, n_bits=1)
    circuit = afe.valid_circuit()
    encoding = afe.encode([1] * 128)
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, N_SERVERS, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"abl").challenge(FIELD87, circuit, 0),
    )
    benchmark.pedantic(
        verify_snip, args=(ctx, x_shares, proof_shares),
        rounds=5, iterations=1,
    )
