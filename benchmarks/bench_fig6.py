"""Figure 6: per-server data transfer per submission vs length.

The paper's punchline figure for SNIPs: a non-leader Prio server
transmits a *constant* number of bytes per submission regardless of
submission length (the d, e, sigma, A broadcasts), while the NIZK
baseline's per-server traffic grows linearly (servers must see the
proofs) and Prio-MPC's grows linearly with a larger constant (Beaver
broadcasts per multiplication gate).

Byte counts here are exact — read off the real wire-format and
protocol objects, not modelled.
"""

import random

import pytest

from common import FULL, emit_table, fmt_bytes

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.nizk import nizk_server_transfer_bytes
from repro.snip import (
    ServerRandomness,
    build_mpc_submission,
    verify_mpc_submission,
)
from repro.snip.verifier import VerificationOutcome

N_SERVERS = 5
LENGTHS = (4, 16, 64, 256, 1024, 4096, 16384) if FULL else (
    4, 16, 64, 256, 1024,
)
ELEMENT_BYTES = FIELD87.encoded_size


def prio_transfer_bytes() -> int:
    """Non-leader per-submission transmit: the 4 broadcast elements."""
    return VerificationOutcome(True, 0, 0).bytes_broadcast_per_server(FIELD87)


def prio_mpc_transfer_bytes(length: int, rng) -> int:
    afe = VectorSumAfe(FIELD87, length=length, n_bits=1)
    circuit = afe.valid_circuit()
    encoding = afe.encode([1] * length)
    shares = build_mpc_submission(
        FIELD87, circuit.n_mul_gates, encoding, N_SERVERS, rng
    )
    outcome = verify_mpc_submission(
        FIELD87, circuit, shares, ServerRandomness(b"f6")
    )
    assert outcome.accepted
    return outcome.elements_broadcast_per_server * ELEMENT_BYTES


@pytest.fixture(scope="module")
def fig6_data():
    rng = random.Random(66)
    rows = []
    data = {}
    prio_bytes = prio_transfer_bytes()
    for length in LENGTHS:
        mpc_bytes = prio_mpc_transfer_bytes(length, rng)
        nizk_bytes = nizk_server_transfer_bytes(length, N_SERVERS)
        data[length] = (prio_bytes, mpc_bytes, nizk_bytes)
        rows.append([
            length,
            fmt_bytes(prio_bytes),
            fmt_bytes(mpc_bytes),
            fmt_bytes(nizk_bytes),
            f"{nizk_bytes / prio_bytes:.0f}x",
        ])
    emit_table(
        "fig6",
        "Figure 6 — per-server transfer per submission (exact bytes)",
        ["length", "prio", "prio-mpc", "nizk", "nizk/prio"],
        rows,
        notes=[
            "paper: Prio constant (a few hundred bytes incl. framing); "
            "NIZK and Prio-MPC linear; ~4000x gap at large lengths",
        ],
    )
    return data


def test_fig6_prio_transfer_constant(fig6_data):
    values = [v[0] for v in fig6_data.values()]
    assert len(set(values)) == 1  # literally constant


def test_fig6_alternatives_grow_linearly(fig6_data):
    lengths = sorted(fig6_data)
    first, last = lengths[0], lengths[-1]
    growth = last / first
    _, mpc_first, nizk_first = fig6_data[first]
    _, mpc_last, nizk_last = fig6_data[last]
    assert mpc_last > mpc_first * growth / 3
    assert nizk_last == pytest.approx(nizk_first * growth, rel=0.05)


def test_fig6_bandwidth_gap(fig6_data):
    """At the largest measured length the NIZK/Prio gap is large and
    growing toward the paper's 4000x (reached at 2^14+)."""
    lengths = sorted(fig6_data)
    prio_b, _, nizk_b = fig6_data[lengths[-1]]
    assert nizk_b / prio_b > 100 * (lengths[-1] / 4096 if lengths[-1] > 4096 else 1)


def test_fig6_prio_mpc_accounting(benchmark, fig6_data):
    del fig6_data
    rng = random.Random(67)
    benchmark.pedantic(
        prio_mpc_transfer_bytes, args=(64, rng), rounds=3, iterations=1
    )
