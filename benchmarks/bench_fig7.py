"""Figure 7: client encoding time across application domains.

The paper's twelve workloads (cell grids, browser stats, surveys,
health regressions) timed for four schemes:

* **Prio** — measured: full ``prepare_submission`` (AFE encode + SNIP
  + PRG share + frame);
* **Prio-MPC** — measured: deal M triples + SNIP over the
  triple-validity circuit + share everything;
* **NIZK** — measured-per-element x element count: the client
  encrypts+proves each of the encoding's k elements (OR-proof cost is
  exactly per-element, so we probe once and extrapolate — running
  tokyo's 10,950 elements through pure-Python P-256 directly would
  take ~3 hours and add no information);
* **SNARK (est.)** — the paper's own estimation methodology, with our
  measured P-256 scalar-mult time: constraints = 300 * s * L hash
  gates + M; ~one exponentiation-equivalent per constraint.

The paper's headline: Prio beats NIZK by 50-100x and SNARKs by ~1000x
on client time.
"""

import random

import pytest

from common import FULL, emit_table, fmt_seconds, time_call

from repro.ec import GENERATOR, scalar_mult
from repro.field import FIELD87
from repro.nizk import NizkDeployment, nizk_client_submit
from repro.protocol import PrioClient
from repro.snip import build_mpc_submission
from repro.workloads import all_scenarios

N_SERVERS = 5
#: paper's estimate: subset-sum hash inside the SNARK, 300 gates/hash
SNARK_GATES_PER_HASH = 300

SCENARIO_NAMES = (
    ("geneva", "seattle", "chicago", "london", "tokyo",
     "lowres", "highres", "beck-21", "pcri-78", "cpi-434", "heart", "brca")
    if FULL
    else ("geneva", "seattle", "lowres", "beck-21", "cpi-434", "heart")
)


def measure_scalar_mult_seconds(rng):
    k = rng.randrange(1, 2**255)
    return time_call(scalar_mult, k, GENERATOR, repeat=5)


def measure_nizk_per_element(rng):
    deployment = NizkDeployment.create(2, 4, rng=rng)
    seconds = time_call(
        nizk_client_submit, deployment.combined_pub, [1, 0, 1, 0], rng,
        repeat=1,
    )
    return seconds / 4


@pytest.fixture(scope="module")
def fig7_data():
    rng = random.Random(77)
    exp_seconds = measure_scalar_mult_seconds(rng)
    nizk_per_element = measure_nizk_per_element(rng)
    scenarios = {
        s.name: s for s in all_scenarios(FIELD87)
    }
    rows = []
    results = {}
    for name in SCENARIO_NAMES:
        scenario = scenarios[name]
        afe = scenario.afe
        circuit = afe.valid_circuit()
        m = circuit.n_mul_gates
        value = scenario.generate(rng)

        client = PrioClient(afe, N_SERVERS, rng=rng)
        prio_s = time_call(client.prepare_submission, value, repeat=2)

        encoding = afe.encode(value, rng)
        mpc_s = time_call(
            build_mpc_submission, FIELD87, m, encoding, N_SERVERS, rng,
            repeat=1,
        )

        nizk_s = nizk_per_element * afe.k
        snark_constraints = SNARK_GATES_PER_HASH * N_SERVERS * afe.k + m
        snark_s = snark_constraints * exp_seconds

        results[name] = {
            "prio": prio_s, "prio_mpc": mpc_s,
            "nizk": nizk_s, "snark": snark_s, "gates": m,
        }
        rows.append([
            f"{scenario.group}/{name}",
            f"{m} ({scenario.paper_mul_gates})",
            fmt_seconds(prio_s),
            fmt_seconds(mpc_s),
            fmt_seconds(nizk_s),
            fmt_seconds(snark_s),
            f"{nizk_s / prio_s:.0f}x",
        ])
    emit_table(
        "fig7",
        "Figure 7 — client encoding time by application "
        "(gates: ours (paper's))",
        ["workload", "mul gates", "prio", "prio-mpc",
         "nizk*", "snark-est", "nizk/prio"],
        rows,
        notes=[
            "*nizk = measured per-element cost x element count; "
            "snark-est = paper's methodology with our measured exp time",
            "paper: Prio 50-100x faster than NIZK, ~1000x faster than "
            "SNARKs, across all workloads",
            "set PRIO_BENCH_FULL=1 for all 12 workloads incl. tokyo/brca",
        ],
    )
    return results


def test_fig7_prio_beats_nizk_everywhere(fig7_data):
    for name, r in fig7_data.items():
        assert r["nizk"] > 10 * r["prio"], name
        assert r["snark"] > r["nizk"], name


def test_fig7_client_beck21(benchmark, fig7_data):
    del fig7_data
    rng = random.Random(78)
    scenario = {s.name: s for s in all_scenarios(FIELD87)}["beck-21"]
    client = PrioClient(scenario.afe, N_SERVERS, rng=rng)
    value = scenario.generate(rng)
    benchmark.pedantic(
        client.prepare_submission, args=(value,), rounds=5, iterations=1
    )


def test_fig7_client_heart(benchmark, fig7_data):
    del fig7_data
    rng = random.Random(79)
    scenario = {s.name: s for s in all_scenarios(FIELD87)}["heart"]
    client = PrioClient(scenario.afe, N_SERVERS, rng=rng)
    value = scenario.generate(rng)
    benchmark.pedantic(
        client.prepare_submission, args=(value,), rounds=5, iterations=1
    )
