"""Figure 5: throughput vs number of servers (same datacenter).

Paper setup: all servers in one datacenter, clients submit 1,024
one-bit integers; the x-axis sweeps 2..10 servers.  The headline
result: "Adding more servers barely affects the system's throughput"
because verification is load-balanced — each server is leader for 1/s
of submissions, and per-server verification work is independent of s.

We measure per-server CPU for each s the same way as Figure 4 and
model throughput on a same-datacenter topology.
"""

import random

import pytest

from common import FULL, emit_table, fmt_rate, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.nizk import nizk_server_transfer_bytes
from repro.sharing import expand_seed
from repro.simnet import PipelineCosts, cluster_throughput, same_datacenter
from repro.simnet.throughput import leader_amortized_tx
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    prove_and_share,
    verify_snip,
)
from repro.snip.proof import proof_num_elements

LENGTH = 1024 if FULL else 256
SERVER_COUNTS = (2, 3, 4, 5, 6, 8, 10)
ELEMENT_BYTES = FIELD87.encoded_size


def per_server_prio_cpu(n_servers, rng):
    afe = VectorSumAfe(FIELD87, length=LENGTH, n_bits=1)
    values = [rng.randrange(2) for _ in range(LENGTH)]
    circuit = afe.valid_circuit()
    encoding = afe.encode(values)
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, n_servers, rng
    )
    challenge = ServerRandomness(rng.randbytes(16)).challenge(
        FIELD87, circuit, 0
    )
    ctx = VerificationContext(FIELD87, circuit, challenge)
    assert verify_snip(ctx, x_shares, proof_shares).accepted
    share_elements = afe.k + proof_num_elements(circuit.n_mul_gates)
    expand = time_call(expand_seed, FIELD87, b"\x08" * 16, share_elements)
    verify = time_call(verify_snip, ctx, x_shares, proof_shares) / n_servers
    return verify + expand


@pytest.fixture(scope="module")
def fig5_data():
    rng = random.Random(55)
    # NIZK's per-server verify cost is independent of s; reuse Fig 4's
    # probe methodology once.
    from bench_fig4 import measure_nizk_per_element

    nizk_per_element = measure_nizk_per_element(rng)
    rows = []
    rates_by_s = {}
    for n_servers in SERVER_COUNTS:
        topo = same_datacenter(n_servers)
        prio_cpu = per_server_prio_cpu(n_servers, rng)
        prio_costs = PipelineCosts(
            server_cpu_s=prio_cpu,
            server_tx_bytes=leader_amortized_tx(4 * ELEMENT_BYTES, n_servers),
            server_rx_bytes=(LENGTH * 2 + 16) * ELEMENT_BYTES,
        )
        nizk_costs = PipelineCosts(
            server_cpu_s=nizk_per_element * LENGTH,
            server_tx_bytes=nizk_server_transfer_bytes(LENGTH, n_servers),
            server_rx_bytes=nizk_server_transfer_bytes(LENGTH, n_servers),
        )
        prio_rate = cluster_throughput(prio_costs, topo)
        nizk_rate = cluster_throughput(nizk_costs, topo)
        rates_by_s[n_servers] = prio_rate
        rows.append([
            n_servers, fmt_rate(prio_rate), fmt_rate(nizk_rate),
        ])
    emit_table(
        "fig5",
        f"Figure 5 — throughput vs server count (same DC, L = {LENGTH} "
        "one-bit integers)",
        ["servers", "prio (subs/s)", "nizk (subs/s)"],
        rows,
        notes=[
            "paper: both lines roughly flat in s — verification is "
            "load-balanced, per-server work independent of s",
        ],
    )
    return rates_by_s


def test_fig5_prio_insensitive_to_servers(fig5_data):
    """Max/min throughput across 2..10 servers within ~2.5x (the paper
    shows a nearly flat line; timing noise allows some wiggle)."""
    rates = list(fig5_data.values())
    assert max(rates) / min(rates) < 2.5


def test_fig5_verify_2_servers(benchmark, fig5_data):
    del fig5_data
    rng = random.Random(56)
    afe = VectorSumAfe(FIELD87, length=LENGTH, n_bits=1)
    encoding = afe.encode([1] * LENGTH)
    circuit = afe.valid_circuit()
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, 2, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"f5").challenge(FIELD87, circuit, 0),
    )
    benchmark.pedantic(
        verify_snip, args=(ctx, x_shares, proof_shares),
        rounds=3, iterations=1,
    )


def test_fig5_verify_10_servers(benchmark, fig5_data):
    del fig5_data
    rng = random.Random(57)
    afe = VectorSumAfe(FIELD87, length=LENGTH, n_bits=1)
    encoding = afe.encode([1] * LENGTH)
    circuit = afe.valid_circuit()
    x_shares, proof_shares = prove_and_share(
        FIELD87, circuit, encoding, 10, rng
    )
    ctx = VerificationContext(
        FIELD87, circuit,
        ServerRandomness(b"f5").challenge(FIELD87, circuit, 0),
    )
    benchmark.pedantic(
        verify_snip, args=(ctx, x_shares, proof_shares),
        rounds=3, iterations=1,
    )
