"""Sharded per-server workers: verify throughput vs shard count.

Not a paper figure — this tracks PR 8's horizontal scale-out work: the
``executor="process:K"`` sharded fan-out
(:class:`~repro.protocol.fanout.ShardedFanout`) against the PR-4
one-process-per-server baseline it extends.  Every variant runs the
identical staged pipeline and plane-resident verification core on the
same prepared stream (F87, the Figure 4/5 one-bit vector-sum
workload); the only variable is how many sharded workers each logical
server's submissions partition across:

``K=1``
    The PR-4 baseline: one worker process per server (3 processes
    total) — parallelism is capped at the server count.

``K=2`` / ``K=4``
    Submissions partition by submission id (:func:`shard_of`) across K
    worker processes per server (6 / 12 processes total); each shard
    verifies its slice independently and the driver merges the round
    planes back into global survivor order.

Decisions, aggregates, and statistics are asserted bit-identical
against the unsharded inline reference at every K (with corrupted rows
hidden mid-stream — the offender must reject alone on whichever shard
it lands).  Emits ``benchmarks/results/shard.json`` plus a
``BENCH_shard.json`` record at the repo root.

Gates (pytest):

* decisions/aggregates/stats identical across all K (every host);
* on a numpy host with >= 8 CPUs, K=4 >= 1.5x verify throughput over
  K=1 (the acceptance gate; K=4 runs 12 worker processes against
  K=1's 3, so it needs real cores to show — on smaller hosts the
  record documents the measurement without enforcing the ratio).

Runs under pytest *and* as a plain script —
``python benchmarks/bench_shard.py [--smoke]`` — which is what the CI
bench-shard-smoke job executes on both backends.
"""

import json
import os
import pathlib
import random
import sys
import time
from dataclasses import replace

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import FULL, emit_table, fmt_rate, fmt_seconds

from bench_pipeline import (
    N_SERVERS,
    _fresh_servers,
    _reset_servers,
    _workload,
)
from repro.field import backend_name
from repro.protocol import ShardedFanout, run_pipelined
from repro.protocol.fanout import resolve_fanout

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

K_SWEEP = (1, 2, 4)
#: the acceptance gate compares this shard count against K=1
GATE_K = 4
GATE_SPEEDUP = 1.5
#: K=4 runs 4 * N_SERVERS worker processes; below this many cores the
#: K=1 baseline's N_SERVERS workers already saturate the host and the
#: ratio measures oversubscription, not sharding
GATE_MIN_CPUS = 8


def _reset_shards(fanout):
    """Clear shard-side decision state so a timed round can replay the
    same stream (plain backends have no shard state — no-op)."""
    if isinstance(fanout, ShardedFanout):
        for shard_row in fanout.shards:
            for shard in shard_row:
                shard.reset_run_deltas()
                shard._replay.clear()


def _run(servers, fanout, submissions, batch):
    _reset_servers(servers)
    _reset_shards(fanout)
    decisions, stats = run_pipelined(
        servers, submissions, batch_size=batch, executor=fanout
    )
    return decisions, stats


def _outcome_key(servers, decisions):
    shares = [server.publish() for server in servers]
    aggregate = servers[0].field.vec_sum(shares)
    return (
        tuple(decisions),
        tuple(aggregate),
        tuple(
            (s.n_accepted, s.n_rejected, s.n_replayed) for s in servers
        ),
    )


def _interleaved_best(fns, rounds):
    """Best-of wall times, measured round-robin (see bench_fanout)."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def run_benchmark(smoke=False):
    length = 128 if smoke else (256 if not FULL else 512)
    batch = 32 if smoke else 64
    n_batches = 2 if smoke else 3
    repeat = 2 if smoke else 3
    rng = random.Random(1508)
    cpu_count = os.cpu_count() or 1
    record = {
        "field": "F87",
        "afe": f"vector-sum-{length}x1bit",
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "cpu_count": cpu_count,
        "smoke": smoke,
        "full_scale": FULL,
        "k_sweep": list(K_SWEEP),
        "points": [],
    }
    rows = []

    afe, _ctx, submissions, _n = _workload(length, batch * n_batches, rng)
    # Two corrupted rows hidden mid-stream: offender isolation must
    # survive whichever shard they land on.
    corrupt = (3, batch + 5)
    for index in corrupt:
        packet = submissions[index].packets[1]
        body = bytearray(packet.body)
        body[0] ^= 0xFF
        submissions[index].packets[1] = replace(packet, body=bytes(body))
    servers = _fresh_servers(afe)

    # Build every fan-out up front (pool startup is reported, not
    # timed): K=1 is the PR-4 plain one-process-per-server backend.
    fanouts = {}
    record["pool_startup_s"] = {}
    try:
        for k in K_SWEEP:
            spec = "process" if k == 1 else f"process:{k}"
            start = time.perf_counter()
            fanouts[k], _ = resolve_fanout(servers, spec, batch)
            record["pool_startup_s"][str(k)] = time.perf_counter() - start

        # Correctness first: the shard count must be unobservable.
        # Unsharded inline reference, then every K against it.
        decisions, _ = _run(servers, "inline", submissions, batch)
        assert sum(decisions) == len(submissions) - len(corrupt)
        assert all(decisions[i] is False for i in corrupt)
        reference = _outcome_key(servers, decisions)
        for k in K_SWEEP:
            decisions, _ = _run(servers, fanouts[k], submissions, batch)
            key = _outcome_key(servers, decisions)
            assert key == reference, f"K={k} diverges from unsharded"
        record["decisions_identical"] = True

        times = _interleaved_best(
            [
                (lambda k=k: _run(servers, fanouts[k], submissions, batch))
                for k in K_SWEEP
            ],
            rounds=repeat,
        )
        k1_s = times[0]
        for k, wall_s in zip(K_SWEEP, times):
            point = {
                "n_shards": k,
                "n_workers": k * N_SERVERS,
                "wall_s": wall_s,
                "subs_per_s": len(submissions) / wall_s,
                "speedup_vs_k1": k1_s / wall_s,
            }
            record["points"].append(point)
            rows.append([
                k,
                k * N_SERVERS,
                fmt_seconds(wall_s),
                fmt_rate(point["subs_per_s"]),
                f"{point['speedup_vs_k1']:.2f}x",
            ])
    finally:
        for fanout in fanouts.values():
            fanout.close()

    # The acceptance gate is scoped to hosts where K=4's 12 workers
    # have cores to run on; elsewhere the record documents the
    # measurement and the CI job on the multi-core runner enforces it.
    gate_applies = (
        record["backend"] == "numpy" and cpu_count >= GATE_MIN_CPUS
    )
    gate_point = next(
        (p for p in record["points"] if p["n_shards"] == GATE_K), None
    )
    record["gate"] = {
        "required_speedup_k4_vs_k1": GATE_SPEEDUP,
        "applies": gate_applies,
        "passed": (
            bool(gate_point and gate_point["speedup_vs_k1"] >= GATE_SPEEDUP)
            if gate_applies else None
        ),
    }
    if not gate_applies:
        record["gate"]["note"] = (
            f"gate needs the numpy backend and >= {GATE_MIN_CPUS} cpus "
            f"(K={GATE_K} runs {GATE_K * N_SERVERS} worker processes); "
            f"this host has {cpu_count} cpu(s), backend "
            f"{record['backend']} — bit-identity is still enforced"
        )

    notes = [
        "K = sharded workers per logical server (process inner backend);"
        " K=1 is the PR-4 one-process-per-server baseline",
        f"host: {cpu_count} cpu(s) — the >={GATE_SPEEDUP}x K={GATE_K} gate"
        f" applies on numpy hosts with >= {GATE_MIN_CPUS} cpus only",
        "pool startup (workers + state push), excluded from timing: "
        + ", ".join(
            f"K={k}: {fmt_seconds(record['pool_startup_s'][str(k)])}"
            for k in K_SWEEP
        ),
        "decisions, aggregates, and stats asserted bit-identical to the"
        " unsharded inline reference at every K (corrupted rows reject"
        " alone on whichever shard they land)",
    ]
    emit_table(
        "shard",
        f"Sharded per-server workers (F87, L = {length} one-bit "
        f"integers, {N_SERVERS} servers, batch {batch}, backend: "
        f"{record['backend']}, {cpu_count} cpus)",
        ["K", "workers", "wall", "subs/s", "vs K=1"],
        rows,
        notes=notes,
    )
    (REPO_ROOT / "BENCH_shard.json").write_text(json.dumps(record, indent=2))
    return record


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def shard_data():
        return run_benchmark()

    def test_outcomes_identical_across_shard_counts(shard_data):
        assert shard_data["decisions_identical"]

    def test_k4_beats_k1_on_multicore(shard_data):
        """The acceptance gate: >= 1.5x verify throughput at K=4 vs
        K=1 on a numpy host with enough cores for 12 workers."""
        if shard_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        if shard_data["cpu_count"] < GATE_MIN_CPUS:
            pytest.skip(
                f"gate defined for >= {GATE_MIN_CPUS}-cpu hosts "
                f"(K={GATE_K} needs {GATE_K * N_SERVERS} cores' worth "
                "of workers)"
            )
        point = next(
            p for p in shard_data["points"] if p["n_shards"] == GATE_K
        )
        assert point["speedup_vs_k1"] >= GATE_SPEEDUP


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result = run_benchmark(smoke=smoke)
    for point in result["points"]:
        print(
            f"K={point['n_shards']}: {point['n_workers']:2d} workers  "
            f"{point['wall_s'] * 1e3:8.1f}ms  "
            f"{point['subs_per_s']:8.1f} subs/s  "
            f"{point['speedup_vs_k1']:.2f}x vs K=1"
        )
    gate = result["gate"]
    print(
        f"gate: applies={gate['applies']} passed={gate['passed']} "
        f"backend={result['backend']} cpus={result['cpu_count']} "
        f"-> BENCH_shard.json"
    )
