"""Table 2: asymptotic client/server costs — NIZK vs SNARK vs Prio.

The paper's table is analytic (Theta-costs for proving a length-M 0/1
vector).  This bench reproduces it two ways: the asymptotic table
itself, and *measured* operation counts at M = 32 from the real
implementations — exponentiations counted by the EC op counter, proof
sizes read off the actual objects.
"""

import random

import pytest

from common import emit_table, fmt_bytes, time_call

from repro.afe import VectorSumAfe
from repro.ec import reset_op_counter, scalar_mult_count
from repro.field import FIELD87
from repro.nizk import (
    NizkDeployment,
    nizk_client_submit,
)
from repro.snip import build_proof, proof_num_elements
from repro.snip.verifier import VerificationOutcome

M = 32


@pytest.fixture(scope="module")
def table2_data():
    rng = random.Random(2)
    afe = VectorSumAfe(FIELD87, length=M, n_bits=1)
    bits = [rng.randrange(2) for _ in range(M)]
    circuit = afe.valid_circuit()

    # --- Prio client: count exps while proving (expect zero). --------
    encoding = afe.encode(bits)
    reset_op_counter()
    proof = build_proof(FIELD87, circuit, encoding, rng)
    prio_client_exps = scalar_mult_count()
    prio_proof_elements = proof_num_elements(circuit.n_mul_gates)
    prio_proof_bytes = prio_proof_elements * FIELD87.encoded_size

    # --- NIZK client: count exps while encrypting + proving. ---------
    deployment = NizkDeployment.create(n_servers=2, length=M, rng=rng)
    reset_op_counter()
    submission = nizk_client_submit(deployment.combined_pub, bits, rng)
    nizk_client_exps = scalar_mult_count()
    nizk_proof_bytes = submission.encoded_size()

    # --- NIZK server: exps to verify one submission. ------------------
    reset_op_counter()
    deployment.servers[0].process(submission)
    nizk_server_exps = scalar_mult_count()

    # --- Prio servers: constant data transfer. ------------------------
    prio_server_transfer = (
        VerificationOutcome(True, 0, 0).bytes_broadcast_per_server(FIELD87)
    )

    asymptotic = emit_table(
        "table2_asymptotic",
        "Table 2 — asymptotic costs (client proves M-element 0/1 vector)",
        ["cost", "NIZK", "SNARK", "Prio (SNIP)"],
        [
            ["client exps", "Th(M)", "Th(M)", "0"],
            ["client muls", "0", "Th(M log M)", "Th(M log M)"],
            ["proof length", "Th(M)", "Th(1)", "Th(M)"],
            ["server exps/pairings", "Th(M)", "Th(1)", "0"],
            ["server muls", "0", "Th(M)", "Th(M log M)"],
            ["server transfer", "Th(M)", "Th(1)", "Th(1)"],
        ],
    )
    measured = emit_table(
        "table2_measured",
        f"Table 2 (measured at M = {M}) — exps counted, sizes exact",
        ["cost", "NIZK", "Prio (SNIP)"],
        [
            ["client exps", nizk_client_exps, prio_client_exps],
            [
                "proof upload",
                fmt_bytes(nizk_proof_bytes),
                fmt_bytes(prio_proof_bytes),
            ],
            ["server exps (verify one)", nizk_server_exps, 0],
            [
                "per-server transfer",
                fmt_bytes(nizk_proof_bytes),  # must see full proof
                fmt_bytes(prio_server_transfer),
            ],
        ],
        notes=[
            f"NIZK exps/element: client {nizk_client_exps / M:.1f}, "
            f"server {nizk_server_exps / M:.1f} (paper model: ~2M exps)",
            "Prio client exps = 0: SNIPs use no public-key operations",
        ],
    )
    del asymptotic, measured
    return {
        "afe": afe,
        "circuit": circuit,
        "encoding": encoding,
        "rng": rng,
        "combined_pub": deployment.combined_pub,
        "bits": bits,
    }


def test_prio_client_prove(benchmark, table2_data):
    d = table2_data
    benchmark.pedantic(
        lambda: build_proof(FIELD87, d["circuit"], d["encoding"], d["rng"]),
        rounds=5, iterations=1,
    )


def test_nizk_client_prove(benchmark, table2_data):
    d = table2_data
    benchmark.pedantic(
        lambda: nizk_client_submit(d["combined_pub"], d["bits"], d["rng"]),
        rounds=1, iterations=1,
    )
