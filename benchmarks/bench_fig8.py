"""Figure 8: client encoding time vs linear-regression dimension.

Paper setup: a client encodes one d-dimensional training example of
14-bit values for private least-squares regression, d in {2..10};
lines for no-privacy (just the AFE encoding), no-robustness (encoding
+ secret sharing, no proof), and Prio (encoding + sharing + SNIP).
Workstation measured; phone estimated via the Table 3 mul-ratio.

Paper result: Prio costs ~50x the no-privacy encoding and ~10x the
no-robustness one, but stays around a tenth of a second absolute.
"""

import random

import pytest

from common import PHONE_SLOWDOWN, emit_table, fmt_seconds, time_call

from repro.afe import LinRegAfe
from repro.field import FIELD87
from repro.protocol import PrioClient
from repro.sharing import prg_share_vector

N_SERVERS = 5
N_BITS = 14
DIMENSIONS = (2, 4, 6, 8, 10)


def make_example(rng, d):
    features = [rng.randrange(1 << (N_BITS // 2)) for _ in range(d)]
    label = rng.randrange(1 << N_BITS)
    return features, label


@pytest.fixture(scope="module")
def fig8_data():
    rng = random.Random(88)
    rows = []
    results = {}
    for d in DIMENSIONS:
        afe = LinRegAfe(FIELD87, dimension=d, n_bits=N_BITS)
        example = make_example(rng, d)

        no_privacy_s = time_call(afe.encode, example, repeat=5)

        encoding = afe.encode(example)

        def no_robustness():
            prg_share_vector(
                FIELD87, encoding[: afe.k_prime], N_SERVERS, rng
            )

        no_robustness_s = no_privacy_s + time_call(no_robustness, repeat=5)

        client = PrioClient(afe, N_SERVERS, rng=rng)
        prio_s = time_call(client.prepare_submission, example, repeat=3)

        results[d] = {
            "no_privacy": no_privacy_s,
            "no_robustness": no_robustness_s,
            "prio": prio_s,
        }
        rows.append([
            d,
            fmt_seconds(no_privacy_s),
            fmt_seconds(no_robustness_s),
            fmt_seconds(prio_s),
            fmt_seconds(prio_s * PHONE_SLOWDOWN["F87"]),
            f"{prio_s / no_privacy_s:.0f}x",
        ])
    emit_table(
        "fig8",
        "Figure 8 — client encode time vs regression dimension "
        f"({N_BITS}-bit features)",
        ["d", "no-privacy", "no-robustness", "prio (wkstn)",
         "prio (phone-est)", "prio/no-priv"],
        rows,
        notes=[
            "paper: Prio ~50x the no-privacy encoding cost, absolute "
            "~0.1s at d=10; shape: all lines grow mildly with d",
        ],
    )
    return results


def test_fig8_ordering(fig8_data):
    for d, r in fig8_data.items():
        assert r["no_privacy"] < r["no_robustness"] < r["prio"], d


def test_fig8_prio_grows_with_dimension(fig8_data):
    assert fig8_data[10]["prio"] > fig8_data[2]["prio"]


def test_fig8_client_d10(benchmark, fig8_data):
    del fig8_data
    rng = random.Random(89)
    afe = LinRegAfe(FIELD87, dimension=10, n_bits=N_BITS)
    client = PrioClient(afe, N_SERVERS, rng=rng)
    example = make_example(rng, 10)
    benchmark.pedantic(
        client.prepare_submission, args=(example,), rounds=5, iterations=1
    )
