"""Unified async pipeline vs the PR-2 sequential ingest+verify path.

Not a paper figure — this tracks PR 3's unified verification pipeline
(plane-resident round algebra + accumulators + the asyncio staged
front end) against the PR-2 deployment flow it replaces.  Both sides
do the same end-to-end job on the same wire packets (a stream of
batches; F87; the Figure 4/5 one-bit vector-sum workload):

PR-2 sequential path (``pr2`` columns)
    The deployment flow as PR 2 shipped it, with PR 2's ingest kernels
    frozen inline below for comparability (exactly like
    ``bench_ingest.py`` freezes the PR-1 scalar path): per-packet
    EXPLICIT decode at receive time, the per-byte ``astype`` wire
    decoder, the per-row rejection-sampling select loop, Python-int
    round-1/round-2 message lists, Beaver triples decoded through
    ``column_ints``, and an int accumulator crossing per batch.

unified pipeline (``pipeline`` columns)
    Real :class:`~repro.protocol.server.PrioServer` instances driven by
    :class:`~repro.protocol.pipeline.AsyncPrioPipeline`: fused batch
    receive, the u32-view wire decoder, vectorized rejection-sample
    selection, plane-form ``Round1Batch``/``Round2Batch`` algebra, a
    plane-resident accumulator, and stage overlap (ingest of batch
    ``N+1`` under verification of batch ``N``).

Decisions are asserted identical.  Emits
``benchmarks/results/pipeline.json`` plus a ``BENCH_pipeline.json``
record at the repo root.  Gates: the pipeline must beat the PR-2
sequential path (>= 1.5x end-to-end at batch 64 on the numpy backend),
and the batch-of-one path must not regress against PR 2's scalar flow.

Runs under pytest *and* as a plain script —
``python benchmarks/bench_pipeline.py [--smoke]`` — which is what the
CI pipeline-smoke job executes on both backends.
"""

import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import FULL, emit_table, fmt_rate, fmt_seconds, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87, backend_name
from repro.field.batch import (
    BatchVector,
    _borrow_sub,
    _ctx,
    _int_limbs,
    use_numpy,
)
from repro.protocol import AsyncPrioPipeline, PrioClient, PrioServer
from repro.sharing.prg import PrgStream, _candidates_for
from repro.snip import (
    Round1Message,
    Round2Message,
    ServerRandomness,
    VerificationContext,
    proof_num_elements,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
N_SERVERS = 3  # two SEED packets + one EXPLICIT packet per submission
SEED = b"bench-pipeline"

try:
    import numpy as _np
except ImportError:  # pragma: no cover - pure-backend CI leg
    _np = None


# ----------------------------------------------------------------------
# PR-2 kernels, frozen for baseline comparability (do not "fix" these:
# they are the shipped PR-2 implementations, kept verbatim so the
# speedup column measures this PR's work and nothing else).
# ----------------------------------------------------------------------


def _pr2_bytes_to_planes(ctx, arr):
    L = ctx.n_limbs
    width = arr.shape[-1]
    full = _np.zeros(arr.shape[:-1] + (3 * L,), dtype=_np.uint8)
    full[..., 3 * L - width:] = arr
    grouped = full.reshape(arr.shape[:-1] + (L, 3)).astype(_np.int64)
    planes = _np.empty((L,) + arr.shape[:-1], dtype=_np.int64)
    for g in range(L):
        planes[L - 1 - g] = (
            (grouped[..., g, 0] << 16)
            | (grouped[..., g, 1] << 8)
            | grouped[..., g, 2]
        )
    return planes


def _pr2_decode_bytes_batch(field, bodies):
    ctx = _ctx(field)
    size = field.encoded_size
    n = len(bodies[0]) // size
    arr = _np.frombuffer(b"".join(bodies), dtype=_np.uint8)
    planes = _pr2_bytes_to_planes(ctx, arr.reshape(len(bodies), n, size))
    _, ge_p = _borrow_sub(planes, ctx.p_planes.reshape(ctx.n_limbs, 1, 1))
    assert not bool(ge_p.any()), "bench workload is always in range"
    return BatchVector(field, (len(bodies), n), planes, True)


def _pr2_expand_seed_batch(field, seeds, length):
    ctx = _ctx(field)
    size = field.encoded_size
    n_bytes = size * _candidates_for(field, length)
    byte_rows = [
        PrgStream(seed, reserve=n_bytes).read(n_bytes) for seed in seeds
    ]
    B = len(byte_rows)
    n_cand = n_bytes // size
    out = _np.zeros((ctx.n_limbs, B, length), dtype=_np.int64)
    arr = _np.frombuffer(b"".join(byte_rows), dtype=_np.uint8)
    planes = _pr2_bytes_to_planes(ctx, arr.reshape(B, n_cand, size))
    for i, mask_limb in enumerate(
        _int_limbs((1 << field.bits) - 1, ctx.n_limbs)
    ):
        planes[i] &= mask_limb
    _, ge_p = _borrow_sub(planes, ctx.p_planes.reshape(ctx.n_limbs, 1, 1))
    accept = ~ge_p
    for b in range(B):
        idx = _np.flatnonzero(accept[b])
        if idx.size < length:
            # The ~5-sigma-rare undershoot: PR 2 retried such rows
            # through the scalar sampler (same stream, same survivors).
            from repro.field.batch import _encode
            from repro.sharing.prg import expand_seed

            out[:, b, :] = _encode(
                ctx, expand_seed(field, seeds[b], length)
            )
            continue
        out[:, b, :] = planes[:, b, idx[:length]]
    return BatchVector(field, (B, length), out, True)


def _pr2_ingest_server(field, packets, n_elements, seen_ids):
    """PR-2 receive+ingest for one server's slice of one batch.

    Mirrors PR 2's per-packet ``receive``: frame checks and replay
    bookkeeping per upload, EXPLICIT bodies through the checked byte
    decoder once per upload; SEED packets expand in the per-batch
    vectorized sweep; rows then assemble by plane copy.
    """
    ctx = _ctx(field)
    size = field.encoded_size
    sources = []
    seed_bodies = []
    seed_slots = []
    for j, packet in enumerate(packets):
        # PR-2 receive-time frame validation + replay protection.
        assert packet.submission_id not in seen_ids, "replay"
        seen_ids.add(packet.submission_id)
        assert packet.n_elements == n_elements
        if packet.kind.name == "SEED":
            assert len(packet.body) == 16
            seed_slots.append(j)
            seed_bodies.append(packet.body)
            sources.append(None)
        else:
            assert len(packet.body) == n_elements * size
            sources.append((_pr2_decode_bytes_batch(field, [packet.body]), 0))
    if seed_bodies:
        expanded = _pr2_expand_seed_batch(field, seed_bodies, n_elements)
        for t, j in enumerate(seed_slots):
            sources[j] = (expanded, t)
    B = len(sources)
    out = _np.empty((ctx.n_limbs, B, n_elements), dtype=_np.int64)
    for j, (bv, r) in enumerate(sources):
        out[:, j, :] = bv._data[:, r, :]
    return BatchVector(field, (B, n_elements), out, True)


def _pr2_verify_batch(ctx, matrices, n_servers):
    """PR-2 rounds: functional dots to ints, triples via ``column_ints``,
    per-submission Python-int round-1/round-2 message lists."""
    from repro.field.batch import dot_batch_multi

    field = ctx.field
    p = field.modulus
    fns = ctx.batch_functionals()
    B = matrices[0].shape[0]
    width = matrices[0].shape[1]
    per_server = []
    for s in range(n_servers):
        dots = dot_batch_multi(field, fns.prepared(field), matrices[s])
        f_r, rg_r, rh_r, asserts = dots
        if s == 0:
            f_r = [(v + fns.c_f) % p for v in f_r]
            rg_r = [(v + fns.c_rg) % p for v in rg_r]
            asserts = [(v + fns.c_assert) % p for v in asserts]
        triples = list(zip(
            matrices[s].column_ints(width - 3),
            matrices[s].column_ints(width - 2),
            matrices[s].column_ints(width - 1),
        ))
        per_server.append((f_r, rg_r, rh_r, asserts, triples))
    round1_by_server = [
        [
            Round1Message(
                d=field.sub(f_r[i], triples[i][0]),
                e=field.sub(rg_r[i], triples[i][1]),
            )
            for i in range(B)
        ]
        for f_r, rg_r, rh_r, asserts, triples in per_server
    ]
    round1_by_submission = [
        [round1_by_server[s][i] for s in range(n_servers)] for i in range(B)
    ]
    s_inv = pow(n_servers % p, -1, p)
    round2_by_server = []
    for f_r, rg_r, rh_r, asserts, triples in per_server:
        msgs = []
        for i, r1 in enumerate(round1_by_submission):
            d = sum(m.d for m in r1) % p
            e = sum(m.e for m in r1) % p
            a, b, c = triples[i]
            sigma = (
                d * e % p * s_inv + d * b + e * a + c - rh_r[i]
            ) % p
            msgs.append(Round2Message(sigma=sigma, assertion=asserts[i]))
        round2_by_server.append(msgs)
    decisions = []
    for i in range(B):
        sigma = sum(r[i].sigma for r in round2_by_server) % p
        assertion = sum(r[i].assertion for r in round2_by_server) % p
        decisions.append(sigma == 0 and assertion == 0)
    return decisions


def run_pr2_sequential(ctx, packet_batches_by_server, k_prime, n_elements):
    """The PR-2 deployment loop: one batch fully (ingest -> rounds ->
    int-accumulate) before the next batch starts."""
    field = ctx.field
    accumulators = [[0] * k_prime for _ in range(N_SERVERS)]
    seen_ids = [set() for _ in range(N_SERVERS)]
    decisions_all = []
    for batch_index in range(len(packet_batches_by_server[0])):
        matrices = [
            _pr2_ingest_server(
                field,
                packet_batches_by_server[s][batch_index],
                n_elements,
                seen_ids[s],
            )
            for s in range(N_SERVERS)
        ]
        decisions = _pr2_verify_batch(ctx, matrices, N_SERVERS)
        accepted = [i for i, ok in enumerate(decisions) if ok]
        if accepted:
            for s in range(N_SERVERS):
                batch_sum = (
                    matrices[s].take_rows(accepted)
                    .slice_columns(k_prime)
                    .sum_rows()
                    .to_ints()
                )
                accumulators[s] = field.vec_add(accumulators[s], batch_sum)
        decisions_all.extend(decisions)
    return decisions_all, accumulators


def run_pr2_scalar(ctx, packets_by_server, k_prime, n_elements):
    """PR-2's ``batch_size=1`` flow: every submission is its own batch."""
    n = len(packets_by_server[0])
    batches = [
        [[packets_by_server[s][i]] for i in range(n)]
        for s in range(N_SERVERS)
    ]
    return run_pr2_sequential(ctx, batches, k_prime, n_elements)


# ----------------------------------------------------------------------
# The unified pipeline under test
# ----------------------------------------------------------------------


def _fresh_servers(afe, epoch_size=1 << 20):
    randomness = ServerRandomness(SEED)
    servers = [
        PrioServer(afe, i, N_SERVERS, randomness, epoch_size=epoch_size)
        for i in range(N_SERVERS)
    ]
    for server in servers:
        # Warm the per-epoch context (Lagrange weights + functionals):
        # it amortizes over >= 2^10 submissions in a real deployment,
        # and the PR-2 baseline's context is likewise built outside
        # the timed region.
        ctx = server._context()
        if ctx is not None:
            ctx.batch_functionals().prepared(server.field)
    return servers


def _reset_servers(servers):
    """Clear decision state so a timed run can replay the same stream
    (contexts and functionals stay warm)."""
    for server in servers:
        server._seen_ids.clear()
        server._pending_ids.clear()
        server.n_accepted = server.n_rejected = server.n_replayed = 0
        server.elements_broadcast = 0
        server.accumulator = [0] * server.afe.k_prime
    return servers


def run_unified_pipeline(servers, submissions, batch, queue_depth=2):
    _reset_servers(servers)
    pipeline = AsyncPrioPipeline(servers, batch_size=batch,
                                 queue_depth=queue_depth)
    decisions = pipeline.run(submissions)
    return decisions, [server.publish() for server in servers]


def run_unified_scalar(servers, submissions):
    """The unified core at ``batch_size=1`` (degenerate batches),
    driven synchronously — the PR-2-scalar comparison point."""
    _reset_servers(servers)
    decisions = []
    for submission in submissions:
        pendings = [
            server.receive(submission.packets[s])
            for s, server in enumerate(servers)
        ]
        parties, round1 = [], []
        for server, pending in zip(servers, pendings):
            party, batch = server.begin_verification_batch([pending])
            parties.append(party)
            round1.append(batch)
        round2 = [
            server.finish_verification_batch(party, round1)
            for server, party in zip(servers, parties)
        ]
        batch_decisions = servers[0].decide_batch(round2)
        for server, pending in zip(servers, pendings):
            server.accumulate_batch([pending], batch_decisions)
        decisions.extend(batch_decisions)
    return decisions, [server.publish() for server in servers]


# ----------------------------------------------------------------------


def _interleaved_best(fns, rounds):
    """Best-of wall times, measured round-robin (as in bench_fanout).

    The compared implementations run adjacent in time in every round,
    so slow host drift (noisy-neighbor containers, thermal throttling)
    hits both columns alike instead of whichever ran last.
    """
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _workload(length, n_submissions, rng):
    afe = VectorSumAfe(FIELD87, length=length, n_bits=1)
    circuit = afe.valid_circuit()
    client = PrioClient(afe, N_SERVERS, rng=rng)
    submissions = client.prepare_submissions(
        [
            [rng.randrange(2) for _ in range(length)]
            for _ in range(n_submissions)
        ]
    )
    challenge = ServerRandomness(SEED).challenge(FIELD87, circuit, 0)
    ctx = VerificationContext(FIELD87, circuit, challenge)
    n_elements = afe.k + proof_num_elements(circuit.n_mul_gates)
    return afe, ctx, submissions, n_elements


def _packet_batches(submissions, batch):
    """Per-server lists of per-batch packet lists."""
    return [
        [
            [sub.packets[s] for sub in submissions[start:start + batch]]
            for start in range(0, len(submissions), batch)
        ]
        for s in range(N_SERVERS)
    ]


def run_benchmark(smoke=False):
    length = 256 if (smoke or not FULL) else 1024
    batch_sizes = (16, 64) if not FULL else (16, 64, 256)
    n_batches = 3
    repeat = 2 if smoke else 3
    rng = random.Random(1207)
    numpy_backend = use_numpy(None)
    rows = []
    record = {
        "field": "F87",
        "afe": f"vector-sum-{length}x1bit",
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "smoke": smoke,
        "full_scale": FULL,
        "points": [],
    }

    # -- batch-of-one: the unified core must not regress PR 2's scalar
    # flow (acceptance criterion), measured over a short stream.
    # Long enough that the parity ratio is dominated by real work, not
    # timer jitter — the 0.9x gate sits within noise at 16 submissions
    # on a busy single-core host.
    n_scalar = 8 if smoke else 32
    afe, ctx, submissions, n_elements = _workload(length, n_scalar, rng)
    packets_by_server = [
        [sub.packets[s] for sub in submissions] for s in range(N_SERVERS)
    ]
    k_prime = afe.k_prime
    # The scalar stream is a short measurement window; extra best-of
    # rounds, measured *interleaved* (the two flows run adjacent in
    # time every round, like bench_fanout), keep the parity ratio
    # stable against noisy-neighbor host drift.
    scalar_repeat = repeat + 7
    scalar_servers = _fresh_servers(afe)
    unified_decisions, unified_acc = run_unified_scalar(
        scalar_servers, submissions
    )
    assert all(unified_decisions), "honest stream must verify"
    if numpy_backend:
        pr2_decisions, pr2_acc = run_pr2_scalar(
            ctx, packets_by_server, k_prime, n_elements
        )
        pr2_scalar_s, unified_scalar_s = _interleaved_best(
            [
                lambda: run_pr2_scalar(
                    ctx, packets_by_server, k_prime, n_elements
                ),
                lambda: run_unified_scalar(scalar_servers, submissions),
            ],
            rounds=scalar_repeat,
        )
    else:
        unified_scalar_s = time_call(
            lambda: run_unified_scalar(scalar_servers, submissions),
            repeat=scalar_repeat,
        )
    if numpy_backend:
        assert pr2_decisions == unified_decisions
        record["scalar"] = {
            "n_submissions": n_scalar,
            "pr2_s": pr2_scalar_s,
            "unified_s": unified_scalar_s,
            "speedup": pr2_scalar_s / unified_scalar_s,
            "unified_subs_per_s": n_scalar / unified_scalar_s,
        }
    else:
        record["scalar"] = {
            "n_submissions": n_scalar,
            "unified_s": unified_scalar_s,
            "unified_subs_per_s": n_scalar / unified_scalar_s,
        }

    # -- batched stream: PR-2 sequential loop vs the async pipeline.
    for batch in batch_sizes:
        n_submissions = batch * n_batches
        afe, ctx, submissions, n_elements = _workload(
            length, n_submissions, rng
        )
        k_prime = afe.k_prime
        servers = _fresh_servers(afe)
        pipe_decisions, pipe_acc = run_unified_pipeline(
            servers, submissions, batch
        )
        assert all(pipe_decisions), "honest batch must verify"
        point = {
            "batch_size": batch,
            "n_submissions": n_submissions,
        }
        if numpy_backend:
            batches = _packet_batches(submissions, batch)
            pr2_decisions, pr2_acc = run_pr2_sequential(
                ctx, batches, k_prime, n_elements
            )
            assert pr2_decisions == pipe_decisions, "pipelines disagree"
            # Same aggregate: sum of per-server accumulators matches.
            total_pr2 = FIELD87.vec_sum(pr2_acc)
            total_pipe = FIELD87.vec_sum(pipe_acc)
            assert total_pr2 == total_pipe, "aggregates disagree"
            pr2_s, pipeline_s = _interleaved_best(
                [
                    lambda: run_pr2_sequential(
                        ctx, batches, k_prime, n_elements
                    ),
                    lambda: run_unified_pipeline(
                        servers, submissions, batch
                    ),
                ],
                rounds=repeat + 1,
            )
            point["pr2_s"] = pr2_s
            point["speedup"] = pr2_s / pipeline_s
            rows.append([
                batch,
                fmt_seconds(pr2_s),
                fmt_seconds(pipeline_s),
                f"{point['speedup']:.2f}x",
                fmt_rate(n_submissions / pipeline_s),
            ])
        else:
            pipeline_s = time_call(
                lambda: run_unified_pipeline(servers, submissions, batch),
                repeat=repeat,
            )
            rows.append([
                batch, "-", fmt_seconds(pipeline_s), "-",
                fmt_rate(n_submissions / pipeline_s),
            ])
        point["pipeline_s"] = pipeline_s
        point["pipeline_subs_per_s"] = n_submissions / pipeline_s
        record["points"].append(point)

    notes = [
        "both columns are end-to-end: wire packets -> accepted aggregate",
        "pr2 = frozen PR-2 kernels + int rounds + int accumulator,"
        " sequential batches",
        "pipeline = plane rounds/accumulator + fused receive +"
        " asyncio stage overlap",
        f"scalar (batch of one, n={record['scalar']['n_submissions']}): "
        + (
            f"{record['scalar']['speedup']:.2f}x vs PR-2 scalar flow"
            if "speedup" in record["scalar"]
            else f"{fmt_seconds(record['scalar']['unified_s'])} unified"
        ),
    ]
    emit_table(
        "pipeline",
        f"Unified async pipeline vs PR-2 sequential path (F87, "
        f"L = {length} one-bit integers, {N_SERVERS} servers, "
        f"backend: {record['backend']})",
        ["batch", "pr2", "pipeline", "speedup", "subs/s pipeline"],
        rows,
        notes=notes,
    )
    (REPO_ROOT / "BENCH_pipeline.json").write_text(
        json.dumps(record, indent=2)
    )
    return record


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def pipeline_data():
        return run_benchmark()

    def test_pipeline_beats_pr2_sequential(pipeline_data):
        """The acceptance gate: >= 1.5x end-to-end at batch 64 (numpy)."""
        if pipeline_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        point = next(
            p for p in pipeline_data["points"] if p["batch_size"] >= 64
        )
        assert point["speedup"] > 1.5

    def test_scalar_path_no_worse_than_pr2(pipeline_data):
        """batch_size=1 throughput must not regress PR 2."""
        if pipeline_data["backend"] != "numpy":
            pytest.skip("gate defined on the numpy backend")
        assert pipeline_data["scalar"]["speedup"] > 0.9


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result = run_benchmark(smoke=smoke)
    for point in result["points"]:
        pr2 = point.get("pr2_s")
        print(
            f"batch {point['batch_size']:4d}: "
            + (f"pr2 {pr2 * 1e3:8.1f}ms  " if pr2 else "pr2      -     ")
            + f"pipeline {point['pipeline_s'] * 1e3:8.1f}ms  "
            + (f"{point['speedup']:.2f}x" if pr2 else "")
        )
    scalar = result["scalar"]
    if "speedup" in scalar:
        print(f"batch    1: {scalar['speedup']:.2f}x vs PR-2 scalar flow")
    print(f"backend={result['backend']} -> BENCH_pipeline.json")
