"""End-to-end ingest + batched-verify throughput: scalar vs zero-copy.

Not a paper figure — this tracks the repo's zero-copy ingest pipeline
(PR 2) against the PR-1 path it replaces.  Both pipelines do the same
end-to-end job on the same wire packets (batch of submissions, F87,
the Figure 4/5 one-bit vector-sum workload):

PR-1 path (``scalar`` columns)
    one ``ClientPacket.share_vector`` per packet — scalar PRG
    expansion per seed, per-element ``int.from_bytes`` decode — then
    ``BatchedSnipVerifierParty`` over rows of Python ints.

zero-copy path (``planes`` columns)
    ``share_vectors_batch`` per server — vectorized PRG expansion,
    wire bytes straight to limb planes — then
    ``BatchedSnipVerifierParty.from_share_matrix`` on the
    plane-resident share matrix.

Decisions are asserted identical.  Emits the usual
``benchmarks/results/ingest.json`` table plus a ``BENCH_ingest.json``
record at the repo root; the acceptance gate is >= 2x end-to-end
(ingest + verify) at batch 64 on the numpy backend.

Runs under pytest (like the other benches) *and* as a plain script —
``python benchmarks/bench_ingest.py [--smoke]`` — which is what the CI
benchmark smoke job executes on both backends.
"""

import json
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import FULL, emit_table, fmt_rate, fmt_seconds, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87, backend_name
from repro.protocol import PrioClient, share_vectors_batch
from repro.snip import (
    BatchedSnipVerifierParty,
    Round2Batch,
    ServerRandomness,
    SnipProofShare,
    VerificationContext,
    proof_num_elements,
)
from repro.sharing import expand_seed, expand_seed_batch, new_seed

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
N_SERVERS = 3  # two SEED packets + one EXPLICIT packet per submission


def _workload(length, batch, rng):
    afe = VectorSumAfe(FIELD87, length=length, n_bits=1)
    circuit = afe.valid_circuit()
    client = PrioClient(afe, N_SERVERS, rng=rng)
    submissions = client.prepare_submissions(
        [[rng.randrange(2) for _ in range(length)] for _ in range(batch)]
    )
    packets_by_server = [
        [sub.packets[s] for sub in submissions] for s in range(N_SERVERS)
    ]
    challenge = ServerRandomness(b"bench-ingest").challenge(
        FIELD87, circuit, 0
    )
    ctx = VerificationContext(FIELD87, circuit, challenge)
    k = afe.k
    m = circuit.n_mul_gates
    return ctx, packets_by_server, k, m


def _decide(ctx, parties):
    del ctx
    round1_by_server = [party.round1_all() for party in parties]
    round2_by_server = [
        party.round2_all(round1_by_server) for party in parties
    ]
    return Round2Batch.decide_all(round2_by_server)


def run_scalar_pipeline(ctx, packets_by_server, k, m):
    """PR-1: scalar per-packet ingest, then rows-of-ints verification."""
    parties = []
    for s in range(N_SERVERS):
        vectors = [
            packet.share_vector(FIELD87) for packet in packets_by_server[s]
        ]
        x_shares = [v[:k] for v in vectors]
        proof_shares = [
            SnipProofShare.unflatten(FIELD87, v[k:], m) for v in vectors
        ]
        parties.append(
            BatchedSnipVerifierParty(
                ctx, s, N_SERVERS, x_shares, proof_shares
            )
        )
    return _decide(ctx, parties)


def run_plane_pipeline(ctx, packets_by_server, k, m):
    """Zero-copy: wire bytes / PRG planes straight into the verifier."""
    del k, m
    parties = [
        BatchedSnipVerifierParty.from_share_matrix(
            ctx, s, N_SERVERS,
            share_vectors_batch(FIELD87, packets_by_server[s]),
        )
        for s in range(N_SERVERS)
    ]
    return _decide(ctx, parties)


def run_benchmark(smoke=False):
    length = 256 if (smoke or not FULL) else 1024
    batch_sizes = (16, 64) if not FULL else (16, 64, 256)
    repeat = 2 if smoke else 3
    rng = random.Random(1207)
    rows = []
    record = {
        "field": "F87",
        "afe": f"vector-sum-{length}x1bit",
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "smoke": smoke,
        "full_scale": FULL,
        "points": [],
    }

    # Micro: the two ingest kernels in isolation.
    n_elements = length + proof_num_elements(
        VectorSumAfe(FIELD87, length=length, n_bits=1)
        .valid_circuit().n_mul_gates
    )
    seeds = [new_seed(rng) for _ in range(64)]
    expand_scalar_s = time_call(
        lambda: [expand_seed(FIELD87, s, n_elements) for s in seeds],
        repeat=repeat,
    )
    expand_batch_s = time_call(
        lambda: expand_seed_batch(FIELD87, seeds, n_elements), repeat=repeat
    )
    record["expand_seed"] = {
        "n_seeds": len(seeds),
        "n_elements": n_elements,
        "scalar_s": expand_scalar_s,
        "batch_s": expand_batch_s,
        "speedup": expand_scalar_s / expand_batch_s,
    }

    for batch in batch_sizes:
        ctx, packets_by_server, k, m = _workload(length, batch, rng)
        scalar_decisions = run_scalar_pipeline(ctx, packets_by_server, k, m)
        plane_decisions = run_plane_pipeline(ctx, packets_by_server, k, m)
        assert scalar_decisions == plane_decisions, "pipelines disagree"
        assert all(plane_decisions), "honest batch must verify"

        scalar_s = time_call(
            lambda: run_scalar_pipeline(ctx, packets_by_server, k, m),
            repeat=repeat,
        )
        plane_s = time_call(
            lambda: run_plane_pipeline(ctx, packets_by_server, k, m),
            repeat=repeat,
        )
        speedup = scalar_s / plane_s
        rows.append([
            batch,
            fmt_seconds(scalar_s),
            fmt_seconds(plane_s),
            f"{speedup:.2f}x",
            fmt_rate(batch / plane_s),
        ])
        record["points"].append({
            "batch_size": batch,
            "scalar_ingest_verify_s": scalar_s,
            "plane_ingest_verify_s": plane_s,
            "speedup": speedup,
            "plane_subs_per_s": batch / plane_s,
        })

    emit_table(
        "ingest",
        f"Zero-copy ingest + batched verify — scalar vs plane pipeline "
        f"(F87, L = {length} one-bit integers, {N_SERVERS} servers, "
        f"backend: {record['backend']})",
        ["batch", "scalar", "planes", "speedup", "subs/s planes"],
        rows,
        notes=[
            "both columns are end-to-end: wire packets -> accept/reject",
            "scalar = per-packet share_vector + rows-of-ints verify (PR 1)",
            "planes = share_vectors_batch + from_share_matrix (PR 2)",
            f"expand_seed 64x{n_elements}: "
            f"{fmt_seconds(expand_scalar_s)} scalar vs "
            f"{fmt_seconds(expand_batch_s)} batched "
            f"({record['expand_seed']['speedup']:.1f}x)",
        ],
    )
    (REPO_ROOT / "BENCH_ingest.json").write_text(
        json.dumps(record, indent=2)
    )
    return record


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def ingest_data():
        return run_benchmark()

    def test_plane_pipeline_beats_scalar(ingest_data):
        """The acceptance gate: >= 2x end-to-end at batch 64 (numpy)."""
        point = next(
            p for p in ingest_data["points"] if p["batch_size"] >= 64
        )
        if ingest_data["backend"] == "numpy":
            assert point["speedup"] > 2.0
        else:
            # The pure fallback shares the scalar kernels; it must just
            # not be pathologically slower.
            assert point["speedup"] > 0.5

    def test_pipelines_agree_spot_check(ingest_data):
        del ingest_data
        rng = random.Random(555)
        ctx, packets_by_server, k, m = _workload(64, 8, rng)
        assert run_scalar_pipeline(
            ctx, packets_by_server, k, m
        ) == run_plane_pipeline(ctx, packets_by_server, k, m)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    result = run_benchmark(smoke=smoke)
    for point in result["points"]:
        print(
            f"batch {point['batch_size']:4d}: "
            f"scalar {point['scalar_ingest_verify_s'] * 1e3:8.1f}ms  "
            f"planes {point['plane_ingest_verify_s'] * 1e3:8.1f}ms  "
            f"{point['speedup']:.2f}x"
        )
    print(
        f"backend={result['backend']} "
        f"expand_seed speedup={result['expand_seed']['speedup']:.1f}x "
        f"-> BENCH_ingest.json"
    )
