"""Benchmark session hooks: print every emitted table in the summary."""

from __future__ import annotations


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    del exitstatus, config
    from common import EMITTED

    if not EMITTED:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper tables & figures (reproduced)")
    for artifact in EMITTED:
        terminalreporter.write_line("")
        for line in artifact.render().splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "JSON artifacts: benchmarks/results/*.json "
        "(paper-vs-measured discussion: EXPERIMENTS.md)"
    )
