"""Million-submission soak: real sockets, multi-process deployment.

Not a paper figure — this pins the PR-6 transport work: N client
*processes* stream length-framed uploads over real TCP (or unix)
sockets into :class:`~repro.transport.server.PrioTransportServer`,
which drives the multi-process server fan-out
(``executor="process"``: one worker process per logical Prio server).
Two phases:

**Differential phase.**  A mixed honest/corrupted upload set runs
through the in-memory :func:`~repro.protocol.pipeline.run_pipelined`
path and — the *identical* submission objects, re-encoded to wire
bytes — through the socket transport against a second server set
built from the same shared randomness.  Decisions must match
position-for-position (zero divergence) and the two aggregates must
be equal.

**Sealed phase.**  The same zero-divergence contract for encrypted
uploads: submissions sealed to the servers' box keys (``envelope ||
box`` per packet, PR-10) stream over the same socket and must decide
exactly like the cleartext in-memory pipeline on the same stream —
the sealed path runs the same sharded, batched machinery, just behind
``receive_sealed_batch``.

**Soak phase.**  Clients splice fresh submission ids into a pool of
pre-framed honest uploads (proof reuse — the server-side work per
submission is identical, the client processes stay fast enough to
saturate the front end) and stream them with a bounded in-flight
window.  Every honest upload must come back ``ACCEPTED`` — any other
outcome would diverge from the in-memory path, which accepts honest
uploads by construction — and the published aggregate must equal the
total accepted count.  Throughput and per-submission latency
percentiles (p50/p95/p99, measured send-to-decision at the client)
land in ``BENCH_soak.json``.

Defaults complete >= 10^6 submissions; ``--smoke`` scales down to CI
size (the soak-smoke job runs it on both field backends).  Runs under
pytest (smoke scale) and as a script::

    python benchmarks/bench_soak.py [--smoke] [--submissions N]
        [--clients N] [--executor inline|thread|process|auto]
        [--transport tcp|unix]
"""

import argparse
import dataclasses
import json
import multiprocessing
import os
import pathlib
import sys
import time
from array import array

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from common import emit_table, fmt_rate, fmt_seconds

from repro.afe.sums import IntegerSumAfe
from repro.field import backend_name
from repro.field.parameters import FIELD87
from repro.protocol.pipeline import AsyncPrioPipeline
from repro.protocol.runner import PrioDeployment
from repro.protocol.wire import PacketKind, seal_packet
from repro.transport import (
    PrioTransportServer,
    Status,
    TransportClient,
    TransportConfig,
    encode_upload,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

N_SERVERS = 2
SEED = b"soak-bench-seed!"
#: id offsets inside an encoded packet / chunk size for submit_many
_CHUNK = 4096


def _frame_and_offsets(packets):
    """Encode one upload frame; return it with its id-splice offsets."""
    pkt_bytes = [p.encode() for p in packets]
    frame = encode_upload(pkt_bytes)
    offsets = []
    off = 4 + 1  # frame length prefix + packet count
    for data in pkt_bytes:
        offsets.append(off + 4 + 4)  # packet length prefix + magic/ver/kind
        off += 4 + len(data)
    return frame, offsets


def _corrupt(submission) -> None:
    """Flip the last body byte of the EXPLICIT packet (in place)."""
    for i, packet in enumerate(submission.packets):
        if packet.kind is PacketKind.EXPLICIT:
            body = packet.body
            mutated = body[:-1] + bytes([(body[-1] + 1) % 256])
            submission.packets[i] = dataclasses.replace(packet, body=mutated)
            return
    raise AssertionError("no explicit packet to corrupt")


def _corrupt_sealed(client, submission) -> None:
    """Corrupt pre-seal and re-seal, so the sealed and cleartext forms
    of the submission carry the same bad share."""
    _corrupt(submission)
    for i, packet in enumerate(submission.packets):
        if packet.kind is PacketKind.EXPLICIT:
            submission.sealed_packets[i] = seal_packet(
                client.server_box_keys[i], packet, client.rng
            )
            return


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    return sorted_values[min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5)
    )]


# ----------------------------------------------------------------------
# Client process
# ----------------------------------------------------------------------


def _client_proc(
    client_id, addr_q, result_q, transport, n, templates, window
):
    """One soak client: splice fresh ids into template frames, stream
    them, retry anything load-shed, report counts + latencies."""
    import asyncio

    async def run():
        addr = addr_q.get()
        if transport == "unix":
            client = await TransportClient.connect_unix(addr)
        else:
            client = await TransportClient.connect_tcp(*addr)
        accepted = rejected = retried = 0
        counter = 0
        prefix = client_id.to_bytes(2, "big")
        work = []
        for i in range(n):
            frame, offsets = templates[i % len(templates)]
            sid = prefix + counter.to_bytes(14, "big")
            counter += 1
            spliced = bytearray(frame)
            for off in offsets:
                spliced[off:off + 16] = sid
            work.append((sid, bytes(spliced)))
        while work:
            chunk, work = work[:_CHUNK], work[_CHUNK:]
            statuses = await client.submit_many(chunk, window=window)
            requeue = []
            for item, status in zip(chunk, statuses):
                if status is Status.ACCEPTED:
                    accepted += 1
                elif status is Status.BUSY:
                    retried += 1
                    requeue.append(item)
                else:
                    rejected += 1
            work.extend(requeue)
        latencies = array("d", client.latencies)
        await client.close()
        result_q.put(
            (client_id, accepted, rejected, retried, latencies.tobytes())
        )

    asyncio.run(run())


# ----------------------------------------------------------------------
# Phases (run inside the server's event loop)
# ----------------------------------------------------------------------


async def _differential_phase(afe, addr, transport, n_diff, n_corrupted):
    """Same uploads through run_pipelined and through the socket.

    The transport-side aggregate cannot be read here: with the process
    fan-out, driver-side server state merges back only at ``stop()``.
    The caller folds this phase's accepted count into the end-of-run
    aggregate check instead.
    """
    dep_mem = PrioDeployment.create(afe, n_servers=N_SERVERS, seed=SEED)
    submissions = dep_mem.client.prepare_submissions([1] * n_diff)
    step = max(1, n_diff // max(1, n_corrupted))
    for i in range(0, n_diff, step):
        _corrupt(submissions[i])
    mem_pipeline = AsyncPrioPipeline(
        dep_mem.servers, batch_size=64, executor="inline"
    )
    mem_decisions = await mem_pipeline.run_async(submissions)
    if transport == "unix":
        client = await TransportClient.connect_unix(addr)
    else:
        client = await TransportClient.connect_tcp(*addr)
    frames = [
        (s.submission_id, TransportClient.frame_submission(s))
        for s in submissions
    ]
    statuses = await client.submit_many(frames, window=64)
    await client.close()
    wire_decisions = [s is Status.ACCEPTED for s in statuses]
    divergence = sum(
        1 for a, b in zip(mem_decisions, wire_decisions) if a != b
    )
    mem_aggregate = afe.field.vec_sum(dep_mem.publish_shares())[0]
    return {
        "n": n_diff,
        "n_corrupted": sum(1 for d in mem_decisions if not d),
        "divergence": divergence,
        #: the in-memory aggregate must equal its own accepted count
        #: (every honest value is 1) — and the transport aggregate is
        #: checked against diff+soak accepted totals after the drain
        "aggregates_match": mem_aggregate == sum(mem_decisions),
        "mem_aggregate": mem_aggregate,
        "n_accepted": sum(wire_decisions),
    }


async def _sealed_phase(afe, addr, transport, dep_client, n, n_corrupted):
    """Sealed uploads over the socket vs cleartext in memory.

    ``dep_client`` is the transport deployment's own client, so the
    boxes open under the serving servers' keys; the in-memory oracle
    is a fresh cleartext server set sharing the same randomness seed,
    fed the *cleartext packets of the same submissions* — sealing must
    be outcome-invisible, so any difference is a divergence.
    """
    from repro.crypto import sealed_overhead

    submissions = dep_client.prepare_submissions([1] * n)
    step = max(1, n // max(1, n_corrupted))
    for i in range(0, n, step):
        _corrupt_sealed(dep_client, submissions[i])
    dep_mem = PrioDeployment.create(afe, n_servers=N_SERVERS, seed=SEED)
    mem_pipeline = AsyncPrioPipeline(
        dep_mem.servers, batch_size=64, executor="inline"
    )
    mem_decisions = await mem_pipeline.run_async(submissions)
    if transport == "unix":
        client = await TransportClient.connect_unix(addr)
    else:
        client = await TransportClient.connect_tcp(*addr)
    frames = [
        (s.submission_id, TransportClient.frame_submission(s, sealed=True))
        for s in submissions
    ]
    statuses = await client.submit_many(frames, window=64)
    await client.close()
    wire_decisions = [s is Status.ACCEPTED for s in statuses]
    return {
        "n": n,
        "n_corrupted": sum(1 for d in mem_decisions if not d),
        "divergence": sum(
            1 for a, b in zip(mem_decisions, wire_decisions) if a != b
        ),
        "n_accepted": sum(wire_decisions),
        "overhead_bytes_per_packet": sealed_overhead(),
    }


def run_benchmark(
    smoke: bool = False,
    n_submissions: "int | None" = None,
    n_clients: "int | None" = None,
    executor: "str | None" = None,
    transport: str = "tcp",
):
    import asyncio
    import tempfile

    if n_submissions is None:
        n_submissions = 4_000 if smoke else 1_000_000
    if n_clients is None:
        n_clients = 2 if smoke else 4
    if executor is None:
        # The acceptance configuration: one worker process per logical
        # Prio server (resolve_fanout falls back to threads, loudly,
        # where worker processes cannot be created).
        executor = "process"
    batch_size = 128 if smoke else 256
    n_diff = 256 if smoke else 2048
    window = 128

    afe = IntegerSumAfe(FIELD87, 1)
    # encrypt=True equips the servers with box keys for the sealed
    # phase; the cleartext soak templates are unaffected (receive_wire
    # never touches the keys)
    dep = PrioDeployment.create(
        afe, n_servers=N_SERVERS, seed=SEED, encrypt=True
    )
    templates = [
        _frame_and_offsets(s.packets)
        for s in dep.client.prepare_submissions([1] * 64)
    ]

    # Client processes fork *before* any event loop, worker pool, or
    # listening socket exists; they block on addr_q until the server
    # is up.
    ctx = multiprocessing.get_context(
        os.environ.get("REPRO_MP_START") or None
    )
    addr_q = ctx.Queue()
    result_q = ctx.Queue()
    per_client = [
        n_submissions // n_clients
        + (1 if i < n_submissions % n_clients else 0)
        for i in range(n_clients)
    ]
    procs = [
        ctx.Process(
            target=_client_proc,
            args=(i, addr_q, result_q, transport, per_client[i],
                  templates, window),
            daemon=True,
        )
        for i in range(n_clients)
    ]
    for proc in procs:
        proc.start()

    unix_dir = tempfile.mkdtemp(prefix="prio-soak-") \
        if transport == "unix" else None

    async def main():
        config = TransportConfig(batch_size=batch_size, executor=executor)
        server = PrioTransportServer(dep.servers, config)
        await server.start()
        if transport == "unix":
            addr = await server.serve_unix(
                os.path.join(unix_dir, "soak.sock")
            )
        else:
            addr = await server.serve_tcp("127.0.0.1", 0)
        differential = await _differential_phase(
            afe, addr, transport, n_diff,
            n_corrupted=max(8, n_diff // 16),
        )
        n_sealed = max(64, n_diff // 4)
        sealed = await _sealed_phase(
            afe, addr, transport, dep.client, n_sealed,
            n_corrupted=max(4, n_sealed // 16),
        )
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        for _ in procs:
            addr_q.put(addr)
        results = []
        timeout = 600 if smoke else 3600
        for _ in procs:
            results.append(
                await loop.run_in_executor(None, result_q.get, True, timeout)
            )
        duration = time.perf_counter() - start
        await server.stop()
        return server, differential, sealed, results, duration

    server, differential, sealed, results, duration = asyncio.run(main())
    for proc in procs:
        proc.join(timeout=60)

    accepted = sum(r[1] for r in results)
    rejected = sum(r[2] for r in results)
    retried = sum(r[3] for r in results)
    latencies = array("d")
    for r in results:
        latencies.frombytes(r[4])
    ordered = sorted(latencies)
    aggregate = afe.field.vec_sum(
        [s.publish() for s in dep.servers]
    )[0]

    record = {
        "field": "F87",
        "afe": afe.name,
        "n_servers": N_SERVERS,
        "backend": backend_name(),
        "executor": server.stats.executor,
        "transport": transport,
        "smoke": smoke,
        "n_submissions": n_submissions,
        "n_clients": n_clients,
        "batch_size": batch_size,
        "duration_s": duration,
        "throughput_subs_per_s": n_submissions / duration,
        "latency_p50_s": _percentile(ordered, 0.50),
        "latency_p95_s": _percentile(ordered, 0.95),
        "latency_p99_s": _percentile(ordered, 0.99),
        "soak_accepted": accepted,
        "soak_rejected": rejected,
        "soak_retried": retried,
        "soak_all_accepted": accepted == n_submissions and rejected == 0,
        "aggregate_matches_accepted": aggregate
        == accepted + differential["n_accepted"] + sealed["n_accepted"],
        "differential": differential,
        "sealed": sealed,
        "server_stats": {
            "n_batches": server.stats.n_batches,
            "n_shed": server.stats.n_shed,
            "n_pauses": server.stats.n_pauses,
            "max_pending": server.stats.max_pending,
            "n_poisoned": server.stats.n_poisoned,
            "n_worker_failures": server.stats.n_worker_failures,
        },
    }
    emit_table(
        "soak",
        f"Socket-transport soak ({transport}, "
        f"{server.stats.executor} fan-out, {backend_name()})",
        ["submissions", "clients", "throughput/s", "p50", "p95", "p99",
         "divergence"],
        [[
            n_submissions,
            n_clients,
            fmt_rate(record["throughput_subs_per_s"]),
            fmt_seconds(record["latency_p50_s"]),
            fmt_seconds(record["latency_p95_s"]),
            fmt_seconds(record["latency_p99_s"]),
            differential["divergence"],
        ]],
        notes=[
            f"differential: {differential['n']} uploads "
            f"({differential['n_corrupted']} corrupted), "
            f"divergence {differential['divergence']}, aggregates "
            f"{'match' if differential['aggregates_match'] else 'DIVERGE'}",
            f"sealed: {sealed['n']} uploads over the socket "
            f"({sealed['n_corrupted']} corrupted), divergence "
            f"{sealed['divergence']} vs cleartext in-memory "
            f"(+{sealed['overhead_bytes_per_packet']} B/packet)",
            f"soak: {accepted}/{n_submissions} accepted, "
            f"{retried} shed-retries, {server.stats.n_pauses} watermark "
            f"pauses, max_pending {server.stats.max_pending}",
        ],
    )
    (REPO_ROOT / "BENCH_soak.json").write_text(json.dumps(record, indent=2))
    return record


# ----------------------------------------------------------------------
# pytest entry points (smoke scale)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def soak_data():
        return run_benchmark(smoke=True)

    def test_zero_divergence(soak_data):
        """Socket-path decisions == in-memory run_pipelined decisions,
        and the two server sets publish the same aggregate."""
        assert soak_data["differential"]["divergence"] == 0
        assert soak_data["differential"]["aggregates_match"]

    def test_sealed_zero_divergence(soak_data):
        """Sealed uploads over the socket decide exactly like the
        cleartext in-memory pipeline on the same stream."""
        assert soak_data["sealed"]["divergence"] == 0
        assert soak_data["sealed"]["n_accepted"] > 0

    def test_soak_completes_all_accepted(soak_data):
        """Every honest soak upload is decided and accepted, and the
        published aggregate equals the accepted count."""
        assert soak_data["soak_all_accepted"]
        assert soak_data["aggregate_matches_accepted"]

    def test_latency_recorded(soak_data):
        assert soak_data["throughput_subs_per_s"] > 0
        assert soak_data["latency_p99_s"] >= soak_data["latency_p50_s"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--submissions", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument(
        "--executor", default=None,
        choices=["inline", "thread", "process", "auto"],
    )
    parser.add_argument(
        "--transport", default="tcp", choices=["tcp", "unix"]
    )
    args = parser.parse_args()
    record = run_benchmark(
        smoke=args.smoke,
        n_submissions=args.submissions,
        n_clients=args.clients,
        executor=args.executor,
        transport=args.transport,
    )
    ok = (
        record["differential"]["divergence"] == 0
        and record["differential"]["aggregates_match"]
        and record["sealed"]["divergence"] == 0
        and record["soak_all_accepted"]
        and record["aggregate_matches_accepted"]
    )
    print(
        f"{record['n_submissions']} submissions over "
        f"{record['transport']} in {fmt_seconds(record['duration_s'])} "
        f"({fmt_rate(record['throughput_subs_per_s'])}/s), "
        f"p50 {fmt_seconds(record['latency_p50_s'])} "
        f"p95 {fmt_seconds(record['latency_p95_s'])} "
        f"p99 {fmt_seconds(record['latency_p99_s'])}; "
        f"divergence {record['differential']['divergence']}"
    )
    if not ok:
        print("FAILED: divergence or incomplete soak", file=sys.stderr)
        sys.exit(1)
