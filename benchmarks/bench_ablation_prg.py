"""Ablation B: PRG share compression (Appendix I, opt. 1).

With compression the client ships one 16-byte seed to each of s-1
servers and one explicit vector; without it, s full vectors.  The
paper calls the resulting ~s-fold saving "significant" for its
five-server deployment.  This bench measures exact upload bytes and
the client-time cost of the compression (the PRG expansion trades
bandwidth for a little CPU).
"""

import random

import pytest

from common import emit_table, fmt_bytes, fmt_seconds, time_call

from repro.afe import VectorSumAfe
from repro.field import FIELD87
from repro.protocol import PrioClient

N_SERVERS = 5
LENGTHS = (16, 128, 1024)


@pytest.fixture(scope="module")
def ablation_prg_data():
    rng = random.Random(222)
    rows = []
    results = {}
    for length in LENGTHS:
        afe = VectorSumAfe(FIELD87, length=length, n_bits=1)
        values = [rng.randrange(2) for _ in range(length)]

        compressed_client = PrioClient(
            afe, N_SERVERS, use_prg_compression=True, rng=rng
        )
        explicit_client = PrioClient(
            afe, N_SERVERS, use_prg_compression=False, rng=rng
        )
        sub_c = compressed_client.prepare_submission(values)
        sub_e = explicit_client.prepare_submission(values)
        time_c = time_call(
            compressed_client.prepare_submission, values, repeat=2
        )
        time_e = time_call(
            explicit_client.prepare_submission, values, repeat=2
        )
        results[length] = (sub_c.upload_bytes, sub_e.upload_bytes)
        rows.append([
            length,
            fmt_bytes(sub_c.upload_bytes),
            fmt_bytes(sub_e.upload_bytes),
            f"{sub_e.upload_bytes / sub_c.upload_bytes:.1f}x",
            fmt_seconds(time_c),
            fmt_seconds(time_e),
        ])
    emit_table(
        "ablation_prg",
        f"Ablation B — PRG share compression ({N_SERVERS} servers; "
        "upload = data + SNIP proof)",
        ["length", "compressed", "explicit", "saving",
         "client t (comp)", "client t (expl)"],
        rows,
        notes=[
            "saving approaches s = 5 as vectors grow; client time is "
            "roughly unchanged (PRG expansion ~ sharing cost)",
        ],
    )
    return results


def test_ablation_prg_saving_approaches_s(ablation_prg_data):
    compressed, explicit = ablation_prg_data[LENGTHS[-1]]
    assert explicit / compressed > N_SERVERS * 0.75


def test_ablation_prg_client_compressed(benchmark, ablation_prg_data):
    del ablation_prg_data
    rng = random.Random(223)
    afe = VectorSumAfe(FIELD87, length=128, n_bits=1)
    client = PrioClient(afe, N_SERVERS, use_prg_compression=True, rng=rng)
    values = [1] * 128
    benchmark.pedantic(
        client.prepare_submission, args=(values,), rounds=5, iterations=1
    )


def test_ablation_prg_client_explicit(benchmark, ablation_prg_data):
    del ablation_prg_data
    rng = random.Random(224)
    afe = VectorSumAfe(FIELD87, length=128, n_bits=1)
    client = PrioClient(afe, N_SERVERS, use_prg_compression=False, rng=rng)
    values = [1] * 128
    benchmark.pedantic(
        client.prepare_submission, args=(values,), rounds=5, iterations=1
    )
