"""Additive s-out-of-s secret sharing (Section 4, "Building blocks").

To split ``x`` into ``s`` shares, choose ``[x]_1, ..., [x]_s`` uniformly
at random subject to ``x = sum_i [x]_i`` in F.  Any ``s - 1`` shares are
jointly uniform and therefore reveal nothing about ``x`` — this is the
information-theoretic core of Prio's privacy guarantee.

The scheme is *linear*: servers add shares of different secrets, or
apply affine maps, without communicating.  The circuit and SNIP layers
lean on this constantly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.field.prime_field import FieldError, PrimeField

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.field.batch import BatchVector


def share_scalar(field: PrimeField, x: int, n_shares: int, rng) -> list[int]:
    """Split ``x`` into ``n_shares`` additive shares."""
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    p = field.modulus
    shares = [rng.randrange(p) for _ in range(n_shares - 1)]
    last = (x - sum(shares)) % p
    shares.append(last)
    return shares


def reconstruct_scalar(field: PrimeField, shares: Sequence[int]) -> int:
    """Recombine shares: the secret is simply their sum."""
    if not shares:
        raise FieldError("cannot reconstruct from zero shares")
    return sum(shares) % field.modulus


def share_vector(
    field: PrimeField, xs: Sequence[int], n_shares: int, rng
) -> list[list[int]]:
    """Split a vector component-wise; returns one share-vector per party."""
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    p = field.modulus
    randrange = rng.randrange
    length = len(xs)
    out = [[randrange(p) for _ in range(length)] for _ in range(n_shares - 1)]
    last = list(xs)
    for share in out:
        for i, v in enumerate(share):
            last[i] -= v
    out.append([v % p for v in last])
    return out


def reconstruct_vector(
    field: PrimeField, share_vectors: Sequence[Sequence[int]]
) -> list[int]:
    """Recombine vector shares component-wise."""
    if not share_vectors:
        raise FieldError("cannot reconstruct from zero shares")
    length = len(share_vectors[0])
    p = field.modulus
    out = [0] * length
    for share in share_vectors:
        if len(share) != length:
            raise FieldError("ragged share vectors")
        for i, v in enumerate(share):
            out[i] += v
    return [v % p for v in out]


def _as_batch(
    field: PrimeField, vectors, force_pure: bool | None
) -> "tuple[BatchVector, bool | None]":
    """Normalize a rows-or-batch argument to a 2-D ``BatchVector``.

    A passed-in batch pins the backend (``force_pure`` then reproduces
    it), so the share arithmetic below never mixes backends.
    """
    from repro.field.batch import BatchVector

    if isinstance(vectors, BatchVector):
        if len(vectors.shape) != 2:
            raise FieldError("batched sharing needs a 2-D batch")
        return vectors, vectors.force_pure
    rows = [list(v) for v in vectors]
    if not rows:
        # from_ints([]) would infer a 1-D (0,) shape; an empty *batch*
        # is 2-D with zero rows.
        return BatchVector.zeros(field, (0, 0), force_pure), force_pure
    return BatchVector.from_ints(field, rows, force_pure), force_pure


def share_vectors_explicit_batch(
    field: PrimeField,
    vectors,
    n_shares: int,
    rng=None,
    random_rows: "Sequence[Sequence[Sequence[int]]] | None" = None,
    force_pure: bool | None = None,
) -> "list[BatchVector]":
    """Vectorized :func:`share_vector` for ``B`` vectors at once.

    Returns one ``(B, n)`` :class:`~repro.field.batch.BatchVector` per
    party; row ``i`` of party ``j``'s batch is bit-identical to
    ``share_vector(field, vectors[i], n_shares, rng)[j]`` under the
    same rng.  The random draws are inherently sequential (they must
    replay scalar order: submission-major, then party, then element),
    but the only share *arithmetic* — the last party's
    ``x - sum(randoms)`` — runs as plane subtractions.

    ``random_rows[i][j]`` pre-draws party ``j``'s random share of
    vector ``i``; callers whose scalar flow interleaves *other* draws
    between submissions (the client, the batched prover) pass it so
    the rng order stays theirs.
    """
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    vectors, force_pure = _as_batch(field, vectors, force_pure)
    B, n = vectors.shape
    if B == 0:
        # Zero-row shares of a zero-row batch; nothing to draw.
        return [vectors for _ in range(n_shares)]
    if random_rows is None:
        random_rows = [
            [field.rand_vector(n, rng) for _ in range(n_shares - 1)]
            for _ in range(B)
        ]
    from repro.field.batch import BatchVector

    out: "list[BatchVector]" = []
    last = vectors
    for j in range(n_shares - 1):
        share_j = BatchVector.from_ints(
            field, [list(random_rows[i][j]) for i in range(B)], force_pure
        )
        out.append(share_j)
        last = last - share_j
    out.append(last)
    return out


def share_vectors_client_batch(
    field: PrimeField,
    vectors,
    n_shares: int,
    rng=None,
    seeds: "Sequence[Sequence[bytes]] | None" = None,
    force_pure: bool | None = None,
) -> "tuple[list[list[bytes]], BatchVector]":
    """Batched PRG-compressed client sharing over ``(B, n)`` planes.

    The vectorized counterpart of
    :func:`repro.sharing.prg.prg_share_vector`: splits ``B`` vectors
    into ``n_shares - 1`` seeds each plus one explicit share, with all
    ``B * (n_shares - 1)`` seed expansions running through a single
    :func:`~repro.sharing.prg.expand_seed_batch` sweep and the explicit
    shares computed as plane subtractions.  Returns ``(seed_rows,
    explicit)``: ``seed_rows[i]`` is submission ``i``'s per-party seed
    list and row ``i`` of ``explicit`` is bit-identical to
    ``prg_share_vector(field, vectors[i], n_shares, rng)[1]`` under the
    same rng.

    ``seeds`` pre-draws the seed rows (the batched client draws them
    interleaved with its other per-submission randomness to preserve
    scalar rng order); with ``rng`` the seeds are drawn here,
    submission-major, exactly as sequential ``prg_share_vector`` calls
    would.
    """
    from repro.sharing.prg import expand_seed_batch, new_seed

    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    vectors, force_pure = _as_batch(field, vectors, force_pure)
    B, n = vectors.shape
    if seeds is None:
        seeds = [
            [new_seed(rng) for _ in range(n_shares - 1)] for _ in range(B)
        ]
    else:
        seeds = [list(row) for row in seeds]
        if len(seeds) != B or any(
            len(row) != n_shares - 1 for row in seeds
        ):
            raise FieldError(
                "seeds must be one row of n_shares - 1 seeds per vector"
            )
    explicit = vectors
    if B and n_shares > 1:
        expanded = expand_seed_batch(
            field, [s for row in seeds for s in row], n, force_pure
        )
        for j in range(n_shares - 1):
            explicit = explicit - expanded.take_rows(
                [i * (n_shares - 1) + j for i in range(B)]
            )
    return [list(row) for row in seeds], explicit


def share_of_constant(
    field: PrimeField, constant: int, is_leader: bool
) -> int:
    """A canonical additive sharing of a public constant.

    When every server must hold a share of a *public* value (circuit
    constants, the padding zeros of the SNIP wire polynomials), the
    convention is that the leader's share is the constant itself and
    every other share is zero.  Summing across servers then yields the
    constant exactly once.
    """
    if is_leader:
        return constant % field.modulus
    return 0
