"""Additive s-out-of-s secret sharing (Section 4, "Building blocks").

To split ``x`` into ``s`` shares, choose ``[x]_1, ..., [x]_s`` uniformly
at random subject to ``x = sum_i [x]_i`` in F.  Any ``s - 1`` shares are
jointly uniform and therefore reveal nothing about ``x`` — this is the
information-theoretic core of Prio's privacy guarantee.

The scheme is *linear*: servers add shares of different secrets, or
apply affine maps, without communicating.  The circuit and SNIP layers
lean on this constantly.
"""

from __future__ import annotations

from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField


def share_scalar(field: PrimeField, x: int, n_shares: int, rng) -> list[int]:
    """Split ``x`` into ``n_shares`` additive shares."""
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    p = field.modulus
    shares = [rng.randrange(p) for _ in range(n_shares - 1)]
    last = (x - sum(shares)) % p
    shares.append(last)
    return shares


def reconstruct_scalar(field: PrimeField, shares: Sequence[int]) -> int:
    """Recombine shares: the secret is simply their sum."""
    if not shares:
        raise FieldError("cannot reconstruct from zero shares")
    return sum(shares) % field.modulus


def share_vector(
    field: PrimeField, xs: Sequence[int], n_shares: int, rng
) -> list[list[int]]:
    """Split a vector component-wise; returns one share-vector per party."""
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    p = field.modulus
    randrange = rng.randrange
    length = len(xs)
    out = [[randrange(p) for _ in range(length)] for _ in range(n_shares - 1)]
    last = list(xs)
    for share in out:
        for i, v in enumerate(share):
            last[i] -= v
    out.append([v % p for v in last])
    return out


def reconstruct_vector(
    field: PrimeField, share_vectors: Sequence[Sequence[int]]
) -> list[int]:
    """Recombine vector shares component-wise."""
    if not share_vectors:
        raise FieldError("cannot reconstruct from zero shares")
    length = len(share_vectors[0])
    p = field.modulus
    out = [0] * length
    for share in share_vectors:
        if len(share) != length:
            raise FieldError("ragged share vectors")
        for i, v in enumerate(share):
            out[i] += v
    return [v % p for v in out]


def share_of_constant(
    field: PrimeField, constant: int, is_leader: bool
) -> int:
    """A canonical additive sharing of a public constant.

    When every server must hold a share of a *public* value (circuit
    constants, the padding zeros of the SNIP wire polynomials), the
    convention is that the leader's share is the constant itself and
    every other share is zero.  Summing across servers then yields the
    constant exactly once.
    """
    if is_leader:
        return constant % field.modulus
    return 0
