"""PRG-compressed secret sharing (Appendix I, first optimization).

The naive way to split ``x in F^L`` into ``s`` shares ships ``s * L``
field elements.  Instead, the first ``s - 1`` shares are the output of a
pseudo-random generator on a short seed, and only the last share is an
explicit vector:

    [x]_i = PRG(seed_i)            for i < s
    [x]_s = x - sum_{i<s} PRG(seed_i)

Total upload: ``L + O(1)`` elements — a ~5x bandwidth saving in the
paper's five-server deployment.

The paper's prototype uses AES in counter mode; this reproduction uses
the SHAKE-256 XOF from ``hashlib`` (the only keyed PRG available
offline), which has the same interface contract: a short uniform seed
expands to an unbounded pseudorandom stream.  Field elements are
derived from the stream by rejection sampling so they are uniform in
``[0, p)`` with no modular bias.
"""

from __future__ import annotations

import hashlib
import os
from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField

#: Seed length in bytes (128-bit security, matching the paper's lambda).
SEED_SIZE = 16

# Rejection sampling still needs a stream long enough for the unlucky
# case; expanding in blocks of this many candidate elements at a time
# keeps the expected number of XOF calls at ~1.
_BLOCK_ELEMENTS = 64


class PrgStream:
    """An incremental SHAKE-256 output stream with a byte cursor.

    ``hashlib``'s SHAKE objects only expose one-shot ``digest(n)``; this
    wrapper re-digests geometrically so that streaming ``read`` calls
    stay amortized-linear.
    """

    def __init__(self, seed: bytes, domain: bytes = b"prio-prg") -> None:
        if len(seed) != SEED_SIZE:
            raise FieldError(f"seed must be {SEED_SIZE} bytes, got {len(seed)}")
        self._xof = hashlib.shake_256(domain + b"\x00" + seed)
        self._buffer = b""
        self._cursor = 0

    def read(self, n: int) -> bytes:
        needed = self._cursor + n
        if needed > len(self._buffer):
            # Geometric growth keeps total digest work linear in bytes read.
            new_size = max(needed, 2 * len(self._buffer), 256)
            self._buffer = self._xof.digest(new_size)
        out = self._buffer[self._cursor : self._cursor + n]
        self._cursor += n
        return out


def expand_seed(field: PrimeField, seed: bytes, length: int) -> list[int]:
    """Expand a seed into ``length`` uniform field elements.

    Rejection sampling: draw ``encoded_size`` bytes, mask to the modulus
    bit width, retry on >= p.  For the shipped near-power-of-two moduli
    the rejection rate is far below 1%.
    """
    stream = PrgStream(seed)
    p = field.modulus
    bits = field.bits
    size = field.encoded_size
    excess_bits = size * 8 - bits
    mask = (1 << bits) - 1
    out: list[int] = []
    while len(out) < length:
        chunk = stream.read(size * min(_BLOCK_ELEMENTS, length - len(out) + 8))
        for offset in range(0, len(chunk) - size + 1, size):
            candidate = int.from_bytes(chunk[offset : offset + size], "big")
            if excess_bits:
                candidate &= mask
            if candidate < p:
                out.append(candidate)
                if len(out) == length:
                    break
    return out


def new_seed(rng=None) -> bytes:
    """A fresh PRG seed; cryptographic from ``os.urandom`` by default.

    Tests pass a deterministic ``random.Random`` for reproducibility.
    """
    if rng is None:
        return os.urandom(SEED_SIZE)
    return rng.randbytes(SEED_SIZE)


def prg_share_vector(
    field: PrimeField, xs: Sequence[int], n_shares: int, rng=None
) -> tuple[list[bytes], list[int]]:
    """Split ``xs`` into ``n_shares - 1`` seeds plus one explicit vector.

    Returns ``(seeds, explicit_share)``: party ``i < n_shares - 1``
    receives ``seeds[i]``; the last party receives ``explicit_share``.
    """
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    p = field.modulus
    seeds = [new_seed(rng) for _ in range(n_shares - 1)]
    last = [v % p for v in xs]
    for seed in seeds:
        expanded = expand_seed(field, seed, len(last))
        last = [(a - b) % p for a, b in zip(last, expanded)]
    return seeds, last


def prg_reconstruct_vector(
    field: PrimeField,
    seeds: Sequence[bytes],
    explicit_share: Sequence[int],
) -> list[int]:
    """Recombine a PRG-compressed sharing (inverse of ``prg_share_vector``)."""
    total = [v % field.modulus for v in explicit_share]
    p = field.modulus
    for seed in seeds:
        expanded = expand_seed(field, seed, len(total))
        total = [(a + b) % p for a, b in zip(total, expanded)]
    return total


def compressed_upload_elements(length: int, n_shares: int) -> int:
    """Field-element upload cost with PRG compression (for Fig 6 accounting).

    ``length`` explicit elements plus one seed per other server; seeds
    are charged as a constant ~1.5 elements' worth of bytes at the
    87-bit field size, reported separately by the wire format, so this
    returns just the element count.
    """
    del n_shares  # bandwidth is independent of s with compression
    return length
