"""PRG-compressed secret sharing (Appendix I, first optimization).

The naive way to split ``x in F^L`` into ``s`` shares ships ``s * L``
field elements.  Instead, the first ``s - 1`` shares are the output of a
pseudo-random generator on a short seed, and only the last share is an
explicit vector:

    [x]_i = PRG(seed_i)            for i < s
    [x]_s = x - sum_{i<s} PRG(seed_i)

Total upload: ``L + O(1)`` elements — a ~5x bandwidth saving in the
paper's five-server deployment.

The paper's prototype uses AES in counter mode; this reproduction uses
the SHAKE-256 XOF from ``hashlib`` (the only keyed PRG available
offline), which has the same interface contract: a short uniform seed
expands to an unbounded pseudorandom stream.  Field elements are
derived from the stream by rejection sampling so they are uniform in
``[0, p)`` with no modular bias.
"""

from __future__ import annotations

import hashlib
import os
from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField

#: Seed length in bytes (128-bit security, matching the paper's lambda).
SEED_SIZE = 16

class PrgStream:
    """An incremental SHAKE-256 output stream with a byte cursor.

    ``hashlib``'s SHAKE objects only expose one-shot ``digest(n)``, so
    every buffer growth re-digests the stream prefix from scratch.  The
    produced bytes are memoized in ``_buffer`` (repeated small reads
    just slice it), growth is geometric (total digest work stays linear
    in bytes read), and callers that know their total demand up front
    pass ``reserve`` so the first read digests once for the whole
    expansion instead of growing through it.
    """

    def __init__(
        self, seed: bytes, domain: bytes = b"prio-prg", reserve: int = 0
    ) -> None:
        if len(seed) != SEED_SIZE:
            raise FieldError(f"seed must be {SEED_SIZE} bytes, got {len(seed)}")
        self._xof = hashlib.shake_256(domain + b"\x00" + seed)
        self._buffer = b""
        self._cursor = 0
        self._reserve = max(0, reserve)

    def read(self, n: int) -> bytes:
        needed = self._cursor + n
        if needed > len(self._buffer):
            new_size = max(needed, 2 * len(self._buffer), self._reserve, 256)
            self._buffer = self._xof.digest(new_size)
        if self._cursor == 0 and n == len(self._buffer):
            # The whole-buffer read (a reserved one-shot expansion):
            # skip the slice copy.
            self._cursor = n
            return self._buffer
        out = self._buffer[self._cursor : self._cursor + n]
        self._cursor += n
        return out


def _acceptance_rate(field: PrimeField) -> float:
    """Probability that a masked candidate lands in ``[0, p)``.

    Candidates are uniform ``field.bits``-bit integers, so this is
    ``p / 2^bits`` — about 0.5 for the near-power-of-two F87/F265
    moduli (the lone top bit buys almost no range), and ~1 for
    Goldilocks-shaped moduli just below a power of two.
    """
    return field.modulus / (1 << field.bits)


def _candidates_for(field: PrimeField, n_elements: int) -> int:
    """Candidates to draw so ``n_elements`` survive rejection w.h.p.

    Expected draws plus five-sigma binomial slack — derived from the
    field's actual rejection probability rather than a flat "+8
    elements" guess (which under-read by ~2x on F87, where half of all
    candidates are rejected, and over-read on Goldilocks).
    """
    if n_elements <= 0:
        return 0
    accept = _acceptance_rate(field)
    expected = n_elements / accept
    sigma = (expected * (1.0 - accept)) ** 0.5
    return int(expected + 5.0 * sigma) + 1


def expand_seed(field: PrimeField, seed: bytes, length: int) -> list[int]:
    """Expand a seed into ``length`` uniform field elements.

    Rejection sampling: draw ``encoded_size`` bytes, mask to the modulus
    bit width, retry on >= p.  Acceptance is purely positional in the
    XOF stream (candidate ``j`` occupies bytes ``[j*size, (j+1)*size)``
    regardless of read chunking), which is what lets the vectorized
    :func:`expand_seed_batch` reproduce this function bit for bit.
    """
    p = field.modulus
    bits = field.bits
    size = field.encoded_size
    excess_bits = size * 8 - bits
    mask = (1 << bits) - 1
    stream = PrgStream(seed, reserve=size * _candidates_for(field, length))
    out: list[int] = []
    while len(out) < length:
        chunk = stream.read(size * _candidates_for(field, length - len(out)))
        for offset in range(0, len(chunk) - size + 1, size):
            candidate = int.from_bytes(chunk[offset : offset + size], "big")
            if excess_bits:
                candidate &= mask
            if candidate < p:
                out.append(candidate)
                if len(out) == length:
                    break
    return out


def expand_seed_batch(
    field: PrimeField,
    seeds: Sequence[bytes],
    length: int,
    force_pure: bool | None = None,
):
    """Expand many seeds in one vectorized sweep.

    Row ``i`` of the returned ``(len(seeds), length)``
    :class:`~repro.field.batch.BatchVector` is bit-identical to
    ``expand_seed(field, seeds[i], length)``: the XOF streams are
    digested per seed (C-speed hashing), but candidate decoding,
    masking, and rejection run across the whole batch as limb planes
    (:func:`repro.field.batch.rejection_sample_batch`).  The rare row
    whose five-sigma candidate budget still falls short is retried
    through the scalar sampler — same stream, same survivors.
    """
    from repro.field.batch import BatchVector, rejection_sample_batch, use_numpy

    seeds = list(seeds)
    if not use_numpy(force_pure):
        if not seeds:
            return BatchVector.zeros(field, (0, max(0, length)), force_pure)
        return BatchVector.from_ints(
            field,
            # repro: allow(plane-discipline) - pure-backend fallback IS
            # the scalar path; it defines the bytes the batch must match
            [expand_seed(field, seed, length) for seed in seeds],
            force_pure,
        )
    if not seeds or length <= 0:
        return BatchVector.zeros(field, (len(seeds), max(0, length)), False)
    size = field.encoded_size
    n_bytes = size * _candidates_for(field, length)
    byte_rows = [
        PrgStream(seed, reserve=n_bytes).read(n_bytes) for seed in seeds
    ]
    batch, short_rows = rejection_sample_batch(field, byte_rows, length)
    for row in short_rows:  # pragma: no cover - ~5-sigma-rare retry
        # repro: allow(plane-discipline) - scalar retry only for rows
        # whose candidate budget fell short (~5-sigma rare)
        batch.set_row_ints(row, expand_seed(field, seeds[row], length))
    return batch


def new_seed(rng=None) -> bytes:
    """A fresh PRG seed; cryptographic from ``os.urandom`` by default.

    Tests pass a deterministic ``random.Random`` for reproducibility.
    """
    if rng is None:
        return os.urandom(SEED_SIZE)
    return rng.randbytes(SEED_SIZE)


def prg_share_vector(
    field: PrimeField, xs: Sequence[int], n_shares: int, rng=None
) -> tuple[list[bytes], list[int]]:
    """Split ``xs`` into ``n_shares - 1`` seeds plus one explicit vector.

    Returns ``(seeds, explicit_share)``: party ``i < n_shares - 1``
    receives ``seeds[i]``; the last party receives ``explicit_share``.
    """
    if n_shares < 1:
        raise FieldError(f"need at least one share, got {n_shares}")
    p = field.modulus
    seeds = [new_seed(rng) for _ in range(n_shares - 1)]
    last = [v % p for v in xs]
    for seed in seeds:
        # repro: allow(plane-discipline) - scalar sharing API: the loop
        # is over servers (small constant), not over submissions
        expanded = expand_seed(field, seed, len(last))
        last = [(a - b) % p for a, b in zip(last, expanded)]
    return seeds, last


def prg_reconstruct_vector(
    field: PrimeField,
    seeds: Sequence[bytes],
    explicit_share: Sequence[int],
) -> list[int]:
    """Recombine a PRG-compressed sharing (inverse of ``prg_share_vector``)."""
    total = [v % field.modulus for v in explicit_share]
    p = field.modulus
    for seed in seeds:
        # repro: allow(plane-discipline) - scalar reconstruction API:
        # loop is over servers (small constant), not over submissions
        expanded = expand_seed(field, seed, len(total))
        total = [(a + b) % p for a, b in zip(total, expanded)]
    return total


def compressed_upload_elements(length: int, n_shares: int) -> int:
    """Field-element upload cost with PRG compression (for Fig 6 accounting).

    ``length`` explicit elements plus one seed per other server; seeds
    are charged as a constant ~1.5 elements' worth of bytes at the
    87-bit field size, reported separately by the wire format, so this
    returns just the element count.
    """
    del n_shares  # bandwidth is independent of s with compression
    return length
