"""Shamir threshold secret sharing (Appendix B extension).

Prio proper uses s-out-of-s additive sharing: robustness requires all
servers honest, and a single missing server halts the protocol.
Appendix B sketches the standard trade-off — replacing additive shares
with Shamir t-out-of-n shares tolerates ``n - t`` offline/faulty
servers, at the cost of weakening privacy to coalitions of at most
``t - 1`` servers.  This module implements that extension so the
trade-off can be measured (see ``benchmarks/bench_ablation_batch.py``
and the protocol tests).

A secret ``x`` is shared as evaluations of a random degree ``t - 1``
polynomial ``q`` with ``q(0) = x``; any ``t`` shares interpolate back.
Like additive sharing, Shamir sharing is linear, so the aggregation
step (summing accumulators) works unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.field.prime_field import FieldError, PrimeField
from repro.field.poly import lagrange_coefficients_at, poly_eval


def shamir_share_scalar(
    field: PrimeField, x: int, threshold: int, n_shares: int, rng
) -> list[tuple[int, int]]:
    """Split ``x`` into ``n_shares`` points; any ``threshold`` reconstruct.

    Returns ``(index, value)`` pairs with indices ``1..n_shares``.
    """
    if not 1 <= threshold <= n_shares:
        raise FieldError(
            f"need 1 <= threshold <= n_shares, got {threshold}/{n_shares}"
        )
    if n_shares >= field.modulus:
        raise FieldError("field too small for this many shares")
    coeffs = [x % field.modulus] + [
        field.rand(rng) for _ in range(threshold - 1)
    ]
    return [(i, poly_eval(field, coeffs, i)) for i in range(1, n_shares + 1)]


def shamir_reconstruct_scalar(
    field: PrimeField, shares: Sequence[tuple[int, int]]
) -> int:
    """Interpolate ``q(0)`` from at least ``threshold`` distinct shares."""
    if not shares:
        raise FieldError("cannot reconstruct from zero shares")
    xs = [i for i, _ in shares]
    ys = [v for _, v in shares]
    if len(set(xs)) != len(xs):
        raise FieldError("duplicate share indices")
    weights = lagrange_coefficients_at(field, xs, 0)
    return field.inner_product(weights, ys)


def shamir_share_vector(
    field: PrimeField,
    xs: Sequence[int],
    threshold: int,
    n_shares: int,
    rng,
) -> list[tuple[int, list[int]]]:
    """Component-wise Shamir sharing of a vector."""
    per_component = [
        shamir_share_scalar(field, x, threshold, n_shares, rng) for x in xs
    ]
    out = []
    for party in range(n_shares):
        index = party + 1
        values = [component[party][1] for component in per_component]
        out.append((index, values))
    return out


def shamir_reconstruct_vector(
    field: PrimeField, shares: Sequence[tuple[int, Sequence[int]]]
) -> list[int]:
    """Reconstruct a vector from per-party ``(index, values)`` shares."""
    if not shares:
        raise FieldError("cannot reconstruct from zero shares")
    xs = [i for i, _ in shares]
    if len(set(xs)) != len(xs):
        raise FieldError("duplicate share indices")
    weights = lagrange_coefficients_at(field, xs, 0)
    length = len(shares[0][1])
    p = field.modulus
    out = [0] * length
    for weight, (_, values) in zip(weights, shares):
        if len(values) != length:
            raise FieldError("ragged share vectors")
        for i, v in enumerate(values):
            out[i] = (out[i] + weight * v) % p
    return out
