"""Secret sharing: additive (core), PRG-compressed, and Shamir threshold."""

from repro.sharing.additive import (
    reconstruct_scalar,
    reconstruct_vector,
    share_of_constant,
    share_scalar,
    share_vector,
    share_vectors_client_batch,
    share_vectors_explicit_batch,
)
from repro.sharing.prg import (
    SEED_SIZE,
    PrgStream,
    compressed_upload_elements,
    expand_seed,
    expand_seed_batch,
    new_seed,
    prg_reconstruct_vector,
    prg_share_vector,
)
from repro.sharing.shamir import (
    shamir_reconstruct_scalar,
    shamir_reconstruct_vector,
    shamir_share_scalar,
    shamir_share_vector,
)

__all__ = [
    "reconstruct_scalar",
    "reconstruct_vector",
    "share_of_constant",
    "share_scalar",
    "share_vector",
    "share_vectors_client_batch",
    "share_vectors_explicit_batch",
    "SEED_SIZE",
    "PrgStream",
    "compressed_upload_elements",
    "expand_seed",
    "expand_seed_batch",
    "new_seed",
    "prg_reconstruct_vector",
    "prg_share_vector",
    "shamir_reconstruct_scalar",
    "shamir_reconstruct_vector",
    "shamir_share_scalar",
    "shamir_share_vector",
]
