"""Framing client for the Prio socket transport.

:class:`TransportClient` speaks the :mod:`repro.transport.framing`
stream protocol over TCP or a unix socket: it frames one upload per
submission, keeps a window of them in flight, and matches response
frames back to submissions by id (responses may interleave across the
server's verification batches).

Two call styles:

* :meth:`submit` — one submission, await its decision (tests, simple
  clients).
* :meth:`submit_many` — pipelined: up to ``window`` submissions in
  flight at once, per-submission latency recorded (the soak
  benchmark's hot loop).
"""

from __future__ import annotations

import asyncio

from repro.transport.framing import (
    FrameAssembler,
    Status,
    decode_response,
    encode_upload,
)

__all__ = ["TransportClient"]


class TransportClient:
    """One connection to a :class:`~repro.transport.server
    .PrioTransportServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._assembler = FrameAssembler()
        #: in-flight submission id -> (future, send-time)
        self._inflight: "dict[bytes, tuple[asyncio.Future, float]]" = {}
        #: seconds each decided submission spent in flight, send order
        self.latencies: "list[float]" = []
        self._reader_task: "asyncio.Task | None" = None
        self._closed = False

    # -- connection ------------------------------------------------------

    @classmethod
    async def connect_tcp(cls, host: str, port: int) -> "TransportClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    @classmethod
    async def connect_unix(cls, path: str) -> "TransportClient":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "TransportClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- response pump ---------------------------------------------------

    def _ensure_reader(self) -> None:
        if self._reader_task is None:
            self._reader_task = asyncio.ensure_future(self._pump())

    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                for payload in self._assembler.feed(data):
                    submission_id, status = decode_response(payload)
                    entry = self._inflight.pop(submission_id, None)
                    if entry is None:
                        continue  # duplicate/unknown: ignore
                    future, sent_at = entry
                    if not future.done():
                        self.latencies.append(loop.time() - sent_at)
                        future.set_result(status)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail the waiters
            self._fail_inflight(exc)
            return
        self._fail_inflight(ConnectionError("server closed the connection"))

    def _fail_inflight(self, exc: Exception) -> None:
        for future, _ in self._inflight.values():
            if not future.done():
                future.set_exception(exc)
        self._inflight.clear()

    # -- submission ------------------------------------------------------

    @staticmethod
    def frame_submission(submission, sealed: bool = False) -> bytes:
        """Encode a :class:`~repro.protocol.client.ClientSubmission`
        (or any object with ``.packets``) as one upload frame.

        With ``sealed=True`` the frame carries the submission's
        box-sealed packets (``envelope || box`` per server) instead of
        the cleartext ones; the submission must have been prepared by
        an encrypting client.
        """
        if sealed:
            if submission.sealed_packets is None:
                raise ValueError("submission carries no sealed packets")
            return encode_upload(list(submission.sealed_packets))
        return encode_upload([p.encode() for p in submission.packets])

    async def send_frame(
        self, frame: bytes, submission_id: bytes
    ) -> "asyncio.Future":
        """Write one pre-encoded upload frame; returns the decision
        future (resolves to a :class:`Status`)."""
        self._ensure_reader()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[submission_id] = (future, loop.time())
        self.writer.write(frame)
        await self.writer.drain()
        return future

    async def submit(self, submission, sealed: bool = False) -> Status:
        """Send one submission and await its decision."""
        future = await self.send_frame(
            self.frame_submission(submission, sealed=sealed),
            submission.submission_id,
        )
        return await future

    async def submit_many(
        self, frames: "list[tuple[bytes, bytes]]", window: int = 128
    ) -> "list[Status]":
        """Stream ``(submission_id, frame)`` pairs with a bounded
        in-flight window; returns one status per frame, send order."""
        futures: "list[asyncio.Future]" = []
        oldest = 0
        for submission_id, frame in frames:
            # Window the in-flight set: wait on the oldest decision
            # until there is room, so a slow (or read-paused) server
            # bounds this client's memory too.
            while len(self._inflight) >= window and oldest < len(futures):
                await futures[oldest]
                oldest += 1
            futures.append(await self.send_frame(frame, submission_id))
        return [await future for future in futures]
