"""Length-framed stream format for Prio uploads over sockets.

A client connection carries a sequence of *upload frames*; the server
answers each with one *response frame*.  All integers are big-endian.

Upload frame (client -> server)::

    u32 payload_len | payload

    payload = u8 n_packets | n_packets x ( u32 pkt_len | pkt_bytes )

Each ``pkt_bytes`` is one encoded :class:`~repro.protocol.wire
.ClientPacket` — or, when the deployment encrypts uploads, one sealed
packet (``envelope || box``; the envelope's ``b"PS"`` magic
distinguishes the two, see :func:`packet_submission_id`) — one per
logical Prio server, in server order.  The frame is the unit of
submission: all of one client value's packets travel together so the
front end can fan them out to every logical server as one batch
position.

Response frame (server -> client)::

    u32 payload_len (== 17) | submission_id(16) | status(1)

``status`` is a :class:`Status` value.  ``submission_id`` echoes the
id parsed from the upload's first packet — the raw header for
cleartext packets, the cleartext envelope for sealed ones — so clients
can match responses to in-flight submissions without per-connection
sequencing (responses may interleave across verification batches).

The parser (:class:`FrameAssembler`) is incremental and bounded: it
accepts arbitrary chunk boundaries, yields complete payloads, and
raises :class:`FrameError` the moment a length prefix exceeds the
configured maximum — *before* buffering the body — so an oversized
claim cannot balloon server memory.
"""

from __future__ import annotations

import enum

from repro.protocol.wire import (
    ENVELOPE_MAGIC,
    ENVELOPE_SID_END,
    ENVELOPE_SID_START,
)

__all__ = [
    "FrameAssembler",
    "FrameError",
    "RESPONSE_SIZE",
    "Status",
    "decode_response",
    "encode_response",
    "encode_upload",
    "is_sealed_packet",
    "packet_submission_id",
    "split_upload",
]

_LEN_SIZE = 4

#: largest value a u32 length prefix can carry; anything bigger must be
#: rejected as a FrameError *before* int.to_bytes raises a bare
#: OverflowError mid-write
_MAX_U32 = (1 << 32) - 1

#: response payload: 16-byte submission id + 1 status byte
RESPONSE_SIZE = 17

#: default cap on one frame's payload (1 MiB — the largest benchmark
#: circuit's upload is ~600 KiB across *all* servers; one packet is
#: far below this)
DEFAULT_MAX_FRAME = 1 << 20


class FrameError(ValueError):
    """Raised for a malformed or oversized frame."""


class Status(enum.IntEnum):
    """Per-submission verdict carried in a response frame."""

    ACCEPTED = 0
    REJECTED = 1
    #: load-shed: the submission was not processed at all; safe to retry
    BUSY = 2


def encode_upload(packet_bytes: "list[bytes]") -> bytes:
    """Frame one submission's per-server packets for the wire."""
    if not 0 < len(packet_bytes) < 256:
        raise FrameError("an upload frame carries 1..255 packets")
    parts = [bytes([len(packet_bytes)])]
    for data in packet_bytes:
        if len(data) > _MAX_U32:
            raise FrameError("packet too large for a u32 length prefix")
        parts.append(len(data).to_bytes(_LEN_SIZE, "big"))
        parts.append(data)
    payload = b"".join(parts)
    if len(payload) > _MAX_U32:
        raise FrameError("upload frame too large for a u32 length prefix")
    return len(payload).to_bytes(_LEN_SIZE, "big") + payload


def split_upload(payload: bytes) -> "list[bytes]":
    """Split an upload payload back into its per-server packet bytes."""
    view = memoryview(payload)
    if len(view) < 1:
        raise FrameError("empty upload payload")
    n_packets = view[0]
    if n_packets == 0:
        raise FrameError("upload frame carries no packets")
    packets: "list[bytes]" = []
    offset = 1
    for _ in range(n_packets):
        if offset + _LEN_SIZE > len(view):
            raise FrameError("truncated packet length in upload frame")
        length = int.from_bytes(view[offset:offset + _LEN_SIZE], "big")
        offset += _LEN_SIZE
        if offset + length > len(view):
            raise FrameError("truncated packet body in upload frame")
        packets.append(bytes(view[offset:offset + length]))
        offset += length
    if offset != len(view):
        raise FrameError("trailing bytes after last packet in upload frame")
    return packets


#: offsets of the submission id inside a raw encoded ClientPacket
#: (mirrors ``repro.protocol.wire``: magic(2) | version(1) | kind(1) |
#: id(16))
_PACKET_SID_START, _PACKET_SID_END = 4, 20


def is_sealed_packet(pkt: bytes) -> bool:
    """True when ``pkt`` opens with the sealed-envelope magic."""
    return bytes(pkt[:2]) == ENVELOPE_MAGIC


def packet_submission_id(pkt: bytes) -> bytes:
    """Submission id of one uploaded packet, raw or sealed.

    Raw packets carry the id in the :class:`~repro.protocol.wire
    .ClientPacket` header; sealed packets carry it in their cleartext
    envelope.  Either way it is a fixed-offset slice — the box itself
    is never touched here.  Raises :class:`FrameError` when the bytes
    are too short to hold the id.
    """
    if is_sealed_packet(pkt):
        if len(pkt) < ENVELOPE_SID_END:
            raise FrameError(
                "sealed packet too short to carry a submission id"
            )
        return bytes(pkt[ENVELOPE_SID_START:ENVELOPE_SID_END])
    if len(pkt) < _PACKET_SID_END:
        raise FrameError("packet too short to carry a submission id")
    return bytes(pkt[_PACKET_SID_START:_PACKET_SID_END])


def encode_response(submission_id: bytes, status: Status) -> bytes:
    if len(submission_id) != 16:
        raise FrameError("bad submission id size in response")
    payload = submission_id + bytes([int(status)])
    return RESPONSE_SIZE.to_bytes(_LEN_SIZE, "big") + payload


def decode_response(payload: bytes) -> "tuple[bytes, Status]":
    if len(payload) != RESPONSE_SIZE:
        raise FrameError("response frame has wrong size")
    try:
        status = Status(payload[16])
    except ValueError as exc:
        raise FrameError(f"unknown response status {payload[16]}") from exc
    return bytes(payload[:16]), status


class FrameAssembler:
    """Incremental length-prefix deframer with a hard size bound.

    Feed raw socket chunks with :meth:`feed`; it returns the list of
    complete frame payloads the chunk completed (possibly empty,
    possibly several).  State is a single compacted ``bytearray``, so
    memory is bounded by ``max_frame`` plus one socket read regardless
    of how adversarially the sender fragments.

    A length prefix above ``max_frame`` raises :class:`FrameError`
    immediately — the connection is poisoned before a single body byte
    is buffered.  Once raised, the assembler refuses further input.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        if max_frame < 1:
            raise ValueError("max_frame must be positive")
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held for an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> "list[bytes]":
        if self._poisoned:
            raise FrameError("assembler already poisoned")
        self._buffer.extend(data)
        frames: "list[bytes]" = []
        offset = 0
        buffer = self._buffer
        while True:
            if len(buffer) - offset < _LEN_SIZE:
                break
            length = int.from_bytes(buffer[offset:offset + _LEN_SIZE], "big")
            if length > self.max_frame:
                self._poisoned = True
                raise FrameError(
                    f"frame length {length} exceeds the {self.max_frame}"
                    "-byte maximum"
                )
            if len(buffer) - offset < _LEN_SIZE + length:
                break
            start = offset + _LEN_SIZE
            frames.append(bytes(buffer[start:start + length]))
            offset = start + length
        if offset:
            del buffer[:offset]
        return frames
