"""Asyncio socket front end for the batched Prio verification core.

:class:`PrioTransportServer` hosts a full logical server set behind
real TCP and/or unix-domain listeners.  Clients stream length-framed
uploads (:mod:`repro.transport.framing`); the front end groups them
into verification batches and drives the same batch-id-keyed op seam
(:class:`~repro.protocol.fanout._ServerOps`) the in-memory pipeline
uses — receive straight from wire bytes, plane ingest, the two SNIP
rounds, accumulate — so decisions are bit-identical to
:func:`~repro.protocol.pipeline.run_pipelined` on the same uploads.
Packet bytes go from the socket buffer to the fused batch decode with
no intermediate per-packet materialization: frames split into byte
slices, headers parse as fixed-offset views, and every body joins one
vectorized sweep per server per batch.

The production ingredients a real front end forces:

**Watermark backpressure.**  ``pending`` counts submissions accepted
off the wire but not yet decided.  At ``high_watermark`` every
connection's reads pause (``transport.pause_reading``); kernel socket
buffers then fill and TCP flow control pushes back to the clients.
Reads resume once verification drains ``pending`` to
``low_watermark``.  Server memory is bounded by the watermark, not by
client send rate.

**Load shedding.**  Frames that arrive while ``pending`` is at
``shed_limit`` (buffered bytes parsed after the pause, connections
racing the watermark) are answered ``BUSY`` without touching the
verification core — the submission was not processed and may be
retried.

**Per-connection rate limiting.**  A token bucket per connection
(``rate_limit`` frames/s, burst ``rate_burst``); a connection that
exceeds it has its reads paused until its bucket refills — the flood
slows down, honest connections are untouched.

**Poison-only-the-offender.**  A malformed or oversized frame
(unparseable structure, length prefix above ``max_frame``, packet too
short to carry a submission id, wrong packet count) closes that
connection alone.  Protocol-level badness inside a well-formed frame
(bad share ranges, replays, wrong lengths) stays per submission:
the offending upload is ``REJECTED``, batchmates are unaffected.

**Graceful drain.**  :meth:`stop` closes the listeners, flushes the
partial batch, waits for every in-flight batch to be *decided*,
answers stragglers ``BUSY``, releases any still-open ids (nothing is
ever stranded in ``_pending_ids``), merges worker state back
(process fan-out), and closes the connections.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.protocol.fanout import ServerFanout, resolve_fanout
from repro.protocol.server import PrioServer
from repro.transport.framing import (
    DEFAULT_MAX_FRAME,
    FrameAssembler,
    FrameError,
    Status,
    encode_response,
    is_sealed_packet,
    packet_submission_id,
    split_upload,
)

__all__ = ["PrioTransportServer", "TransportConfig", "TransportStats"]


@dataclass
class TransportConfig:
    """Tuning knobs for one :class:`PrioTransportServer`.

    Defaults derive from ``batch_size``: pause reads at four batches
    of undecided submissions, resume at two, shed at eight.
    """

    batch_size: int = 64
    #: seconds a partial batch may wait for more frames before it
    #: flushes to verification anyway
    linger_s: float = 0.005
    max_frame: int = DEFAULT_MAX_FRAME
    high_watermark: "int | None" = None
    low_watermark: "int | None" = None
    shed_limit: "int | None" = None
    #: per-connection sustained frames/second (None = unlimited)
    rate_limit: "float | None" = None
    #: per-connection burst allowance in frames
    rate_burst: "int | None" = None
    #: execution backend: "inline" | "thread" | "process" | "auto"
    #: (optionally with a ":K" shard suffix, e.g. "process:4"), a
    #: ready ServerFanout, or None for the host-sized default
    executor: object = None
    #: shard each logical server across this many workers of the
    #: selected executor kind (equivalent to the ":K" suffix)
    n_shards: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.high_watermark is None:
            self.high_watermark = 4 * self.batch_size
        if self.low_watermark is None:
            self.low_watermark = max(1, self.high_watermark // 2)
        if self.shed_limit is None:
            self.shed_limit = 2 * self.high_watermark
        if not (
            0 < self.low_watermark
            <= self.high_watermark
            <= self.shed_limit
        ):
            raise ValueError(
                "need 0 < low_watermark <= high_watermark <= shed_limit"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if self.rate_burst is None:
            self.rate_burst = max(8, self.batch_size)


@dataclass
class TransportStats:
    """Counters one server keeps across its whole serve lifetime."""

    n_connections: int = 0
    n_poisoned: int = 0
    n_submissions: int = 0
    n_accepted: int = 0
    n_rejected: int = 0
    n_shed: int = 0
    n_rate_limited: int = 0
    n_batches: int = 0
    #: submissions failed by a backend/worker crash (answered BUSY)
    n_worker_failures: int = 0
    #: watermark pause events (reads paused on every connection)
    n_pauses: int = 0
    #: highest undecided-submission count observed
    max_pending: int = 0
    executor: str = ""


class _TokenBucket:
    """Frames-per-second policing with pushback (may run negative)."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = now

    def consume(self, now: float) -> float:
        """Take one token; returns seconds to pause (0 when allowed)."""
        self.tokens = min(
            self.tokens + (now - self.last) * self.rate, self.burst
        )
        self.last = now
        self.tokens -= 1.0
        if self.tokens >= 0.0:
            return 0.0
        return -self.tokens / self.rate


@dataclass
class _PendingUpload:
    """One framed submission waiting for its verification batch."""

    __slots__ = ("conn", "submission_id", "payloads", "sealed")
    conn: "_UploadConnection"
    submission_id: bytes
    payloads: "list[bytes]"
    #: packets are box-sealed (envelope-prefixed); decides which
    #: receive op the verification batch runs
    sealed: bool


class _UploadConnection(asyncio.Protocol):
    """One client connection: deframe, rate-limit, hand off uploads."""

    def __init__(self, server: "PrioTransportServer") -> None:
        self.server = server
        self.transport: "asyncio.Transport | None" = None
        self.assembler = FrameAssembler(server.config.max_frame)
        self.bucket: "_TokenBucket | None" = None
        self.closed = False
        #: reads paused for the global watermark
        self.flow_paused = False
        #: reads paused by this connection's own rate limiter
        self.rate_paused = False
        self._rate_resume: "asyncio.TimerHandle | None" = None

    # -- asyncio.Protocol ------------------------------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        server = self.server
        config = server.config
        if config.rate_limit is not None:
            self.bucket = _TokenBucket(
                config.rate_limit, config.rate_burst,
                server._loop.time(),
            )
        server._register(self)

    def connection_lost(self, exc) -> None:  # noqa: ARG002
        self.closed = True
        if self._rate_resume is not None:
            self._rate_resume.cancel()
            self._rate_resume = None
        self.server._unregister(self)

    def data_received(self, data: bytes) -> None:
        try:
            frames = self.assembler.feed(data)
        except FrameError:
            self.poison()
            return
        for payload in frames:
            if not self.server._handle_upload(self, payload):
                return  # poisoned mid-iteration; drop the rest
        if self.bucket is not None and frames:
            now = self.server._loop.time()
            delay = 0.0
            for _ in frames:
                delay = self.bucket.consume(now)
            if delay > 0.0 and not self.rate_paused and not self.closed:
                self.rate_paused = True
                self.server.stats.n_rate_limited += 1
                self._apply_flow()
                self._rate_resume = self.server._loop.call_later(
                    delay, self._rate_refill
                )

    def eof_received(self) -> bool:
        return False  # close the transport

    # -- flow control ----------------------------------------------------

    def _rate_refill(self) -> None:
        self._rate_resume = None
        self.rate_paused = False
        self._apply_flow()

    def set_flow_paused(self, paused: bool) -> None:
        self.flow_paused = paused
        self._apply_flow()

    def _apply_flow(self) -> None:
        if self.closed or self.transport is None:
            return
        if self.flow_paused or self.rate_paused:
            self.transport.pause_reading()
        else:
            self.transport.resume_reading()

    # -- output ----------------------------------------------------------

    def send_response(self, submission_id: bytes, status: Status) -> None:
        if self.closed or self.transport is None:
            return
        self.transport.write(encode_response(submission_id, status))

    def poison(self) -> None:
        """Close this connection for a frame-level violation."""
        if self.closed:
            return
        self.closed = True
        self.server.stats.n_poisoned += 1
        if self.transport is not None:
            self.transport.close()


class PrioTransportServer:
    """Socket front end over one logical Prio server set.

    Typical use::

        server = PrioTransportServer(deployment.servers,
                                     TransportConfig(batch_size=64))
        await server.start()
        host, port = await server.serve_tcp("127.0.0.1", 0)
        ...                      # clients connect and stream uploads
        await server.stop()      # drain: every in-flight id decided

    The same instance may serve TCP and unix listeners at once; all
    feed one batcher and one verification worker.
    """

    def __init__(
        self,
        servers: "list[PrioServer]",
        config: "TransportConfig | None" = None,
    ) -> None:
        self.servers = servers
        self.config = config or TransportConfig()
        self.stats = TransportStats()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._fanout: "ServerFanout | None" = None
        self._owned_fanout = False
        self._listeners: "list[asyncio.AbstractServer]" = []
        self._connections: "set[_UploadConnection]" = set()
        self._batch: "list[_PendingUpload]" = []
        self._batch_q: "asyncio.Queue | None" = None
        self._linger: "asyncio.TimerHandle | None" = None
        self._worker: "asyncio.Task | None" = None
        self._pending = 0
        self._paused = False
        self._draining = False
        self._started = False
        self._next_batch_id = 0
        #: test/ops hook: clear to stall the verify worker mid-stream
        self._verify_gate: "asyncio.Event | None" = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Resolve the execution backend and start the verify worker."""
        if self._started:
            raise RuntimeError("transport server already started")
        self._loop = asyncio.get_running_loop()
        # Bounded by the shed gate's invariant: every queued batch holds
        # at least one pending upload and _handle_upload sheds once
        # _pending reaches shed_limit, so depth can never legitimately
        # reach shed_limit — QueueFull here means broken accounting, not
        # load, and beats growing without bound.
        self._batch_q = asyncio.Queue(maxsize=self.config.shed_limit)
        self._verify_gate = asyncio.Event()
        self._verify_gate.set()
        self._fanout, self._owned_fanout = resolve_fanout(
            self.servers, self.config.executor, self.config.batch_size,
            self.config.n_shards,
        )
        self.stats.executor = self._fanout.kind
        if not self._owned_fanout:
            # A reused backend may hold a previous run's worker state;
            # re-sync it from the driver-side servers (the same rule
            # the in-memory pipeline applies).
            self._fanout.begin_run()
        self._started = True
        self._draining = False
        self._worker = asyncio.create_task(self._verify_worker())

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "tuple[str, int]":
        """Listen on TCP; returns the bound ``(host, port)``."""
        self._require_started()
        listener = await self._loop.create_server(
            lambda: _UploadConnection(self), host, port
        )
        self._listeners.append(listener)
        sock = listener.sockets[0].getsockname()
        return sock[0], sock[1]

    async def serve_unix(self, path: str) -> str:
        """Listen on a unix-domain socket; returns the bound path."""
        self._require_started()
        listener = await self._loop.create_unix_server(
            lambda: _UploadConnection(self), path
        )
        self._listeners.append(listener)
        return path

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("call start() before serving")

    async def stop(self) -> None:
        """Graceful drain: decide everything in flight, then tear down.

        Listeners close first (no new connections), frames still
        arriving on live connections answer ``BUSY``, the partial
        batch flushes, and the call returns only after every queued
        batch has been decided and responded to.  No submission id is
        left pending at any logical server.
        """
        if not self._started:
            return
        self._draining = True
        # A held verification gate must not hang the drain: in-flight
        # batches get decided, not stranded.
        self._verify_gate.set()
        for listener in self._listeners:
            listener.close()
        for listener in self._listeners:
            await listener.wait_closed()
        self._listeners.clear()
        if self._linger is not None:
            self._linger.cancel()
            self._linger = None
        self._flush_batch()
        await self._batch_q.join()
        self._worker.cancel()
        try:
            await self._worker
        except asyncio.CancelledError:
            pass
        self._worker = None
        try:
            # Safety net: a crashed batch may have left ids pending at
            # a subset of servers; an honest retry must not look like
            # a replay, and plane matrices must not outlive the serve.
            await self._fanout.sweep(
                "abandon_open", [()] * len(self.servers)
            )
        except Exception:  # noqa: BLE001 - backend may be gone
            pass
        try:
            self._fanout.end_run()
        finally:
            if self._owned_fanout:
                self._fanout.close()
            self._fanout = None
        for conn in list(self._connections):
            if conn.transport is not None:
                conn.transport.close()
        self._started = False

    async def __aenter__(self) -> "PrioTransportServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- test/ops hooks --------------------------------------------------

    def hold_verification(self) -> None:
        """Stall the verify worker before its next batch (watermark
        drills, chaos testing).  Reads pause once ``pending`` crosses
        the high watermark; nothing is lost."""
        self._require_started()
        self._verify_gate.clear()

    def release_verification(self) -> None:
        self._require_started()
        self._verify_gate.set()

    @property
    def pending_submissions(self) -> int:
        """Submissions accepted off the wire but not yet decided."""
        return self._pending

    # -- connection registry --------------------------------------------

    def _register(self, conn: _UploadConnection) -> None:
        self.stats.n_connections += 1
        self._connections.add(conn)
        if self._paused:
            conn.set_flow_paused(True)

    def _unregister(self, conn: _UploadConnection) -> None:
        self._connections.discard(conn)

    # -- upload intake ---------------------------------------------------

    def _handle_upload(self, conn: _UploadConnection, payload: bytes) -> bool:
        """One complete upload frame; returns False when ``conn`` was
        poisoned (the caller drops the rest of its parsed frames)."""
        try:
            payloads = split_upload(payload)
            if len(payloads) != len(self.servers):
                raise FrameError(
                    f"upload carries {len(payloads)} packets for "
                    f"{len(self.servers)} servers"
                )
            # raw or sealed: the id sits at a fixed cleartext offset
            # either way, so the response frame can echo it
            submission_id = packet_submission_id(payloads[0])
        except FrameError:
            conn.poison()
            return False
        sealed = is_sealed_packet(payloads[0])
        self.stats.n_submissions += 1
        if self._draining or self._pending >= self.config.shed_limit:
            self.stats.n_shed += 1
            conn.send_response(submission_id, Status.BUSY)
            return True
        if self._batch and self._batch[0].sealed != sealed:
            # A verification batch runs one receive op; keep batches
            # homogeneous by flushing when sealed-ness flips.
            self._flush_batch()
        self._batch.append(
            _PendingUpload(conn, submission_id, payloads, sealed)
        )
        self._pending += 1
        if self._pending > self.stats.max_pending:
            self.stats.max_pending = self._pending
        if self._pending >= self.config.high_watermark and not self._paused:
            self._paused = True
            self.stats.n_pauses += 1
            for other in self._connections:
                other.set_flow_paused(True)
        if len(self._batch) >= self.config.batch_size:
            self._flush_batch()
        elif self._linger is None:
            self._linger = self._loop.call_later(
                self.config.linger_s, self._linger_flush
            )
        return True

    def _linger_flush(self) -> None:
        self._linger = None
        self._flush_batch()

    def _flush_batch(self) -> None:
        if self._linger is not None:
            self._linger.cancel()
            self._linger = None
        if not self._batch:
            return
        self._batch_q.put_nowait(self._batch)
        self._batch = []

    def _settle(self, n: int) -> None:
        """Account ``n`` decided submissions; resume reads below low."""
        self._pending -= n
        if self._paused and self._pending <= self.config.low_watermark:
            self._paused = False
            for conn in self._connections:
                conn.set_flow_paused(False)

    # -- verification worker --------------------------------------------

    async def _verify_worker(self) -> None:
        while True:
            batch = await self._batch_q.get()
            try:
                await self._verify_gate.wait()
                await self._process_batch(batch)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - isolate to the batch
                # Backend failure after receive may have left ids
                # pending at some servers; abandon so retries work.
                await self._cleanup_batch(self._next_batch_id - 1,
                                          "abandon_all")
                self.stats.n_worker_failures += len(batch)
                for upload in batch:
                    upload.conn.send_response(
                        upload.submission_id, Status.BUSY
                    )
                self._settle(len(batch))
            finally:
                self._batch_q.task_done()

    async def _cleanup_batch(self, batch_id: int, op: str) -> None:
        for s in range(len(self.servers)):
            try:
                await self._fanout.call(s, op, batch_id)
            except Exception:  # noqa: BLE001 - backend may be gone
                continue

    def _payloads_for(self, server_slot: int, batch) -> "list[bytes]":
        """One server's packet bytes, routed by *protocol* index (a
        shuffled server list still receives the packets addressed to
        it — frame positions follow server order on the wire)."""
        index = self.servers[server_slot].server_index
        return [upload.payloads[index] for upload in batch]

    async def _process_batch(self, batch: "list[_PendingUpload]") -> None:
        fanout = self._fanout
        n_servers = len(self.servers)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self.stats.n_batches += 1
        receive_op = "receive_sealed" if batch[0].sealed else "receive_wire"
        received = await fanout.sweep(receive_op, [
            (batch_id, self._payloads_for(s, batch))
            for s in range(n_servers)
        ])
        survivors: "list[_PendingUpload]" = []
        keep: "list[int]" = []
        for pos, upload in enumerate(batch):
            if any(received[s][pos] is not None for s in range(n_servers)):
                # At least one server refused the frame (replay, bad
                # range, wrong length...): reject this upload alone.
                # The ingest sweep below abandons it wherever receive
                # succeeded.
                self.stats.n_rejected += 1
                upload.conn.send_response(
                    upload.submission_id, Status.REJECTED
                )
            else:
                survivors.append(upload)
                keep.append(pos)
        self._settle(len(batch) - len(survivors))
        if not survivors:
            await fanout.sweep("ingest", [(batch_id, keep)] * n_servers)
            return
        try:
            await fanout.sweep("ingest", [(batch_id, keep)] * n_servers)
            round1 = await fanout.sweep(
                "round1", [(batch_id,)] * n_servers
            )
            round2 = await fanout.sweep(
                "round2", [(batch_id, round1)] * n_servers
            )
            decisions = self.servers[0].decide_batch(round2)
        except asyncio.CancelledError:
            raise
        except ValueError:
            # Defensive mirror of the in-memory pipeline: shapes were
            # validated at receive time, so reject the whole batch
            # rather than mis-credit any of it.
            await self._cleanup_batch(batch_id, "reject_all")
            self.stats.n_rejected += len(survivors)
            for upload in survivors:
                upload.conn.send_response(
                    upload.submission_id, Status.REJECTED
                )
            self._settle(len(survivors))
            return
        except Exception:
            # Worker/backend crash mid-rounds: nothing committed yet.
            await self._cleanup_batch(batch_id, "abandon_all")
            self.stats.n_worker_failures += len(survivors)
            for upload in survivors:
                upload.conn.send_response(upload.submission_id, Status.BUSY)
            self._settle(len(survivors))
            return
        # The commit point: accumulate must not be caught per batch —
        # a partial commit would leave the server set divergent.
        await fanout.sweep(
            "accumulate", [(batch_id, decisions)] * n_servers
        )
        for upload, accepted in zip(survivors, decisions):
            if accepted:
                self.stats.n_accepted += 1
                upload.conn.send_response(
                    upload.submission_id, Status.ACCEPTED
                )
            else:
                self.stats.n_rejected += 1
                upload.conn.send_response(
                    upload.submission_id, Status.REJECTED
                )
        self._settle(len(survivors))
