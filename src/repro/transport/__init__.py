"""Real socket transport for Prio uploads.

The in-memory pipeline (:mod:`repro.protocol.pipeline`) moves
submissions as Python packet objects; this package puts the same
batched verification core behind real sockets:

* :mod:`repro.transport.framing` — the length-framed stream format
  (one upload frame per submission, one response frame per decision)
  and an incremental, bounded frame parser.
* :mod:`repro.transport.server` — an asyncio TCP / unix-socket front
  end that frames uploads off the wire into per-server byte batches
  and drives the fan-out op seam (receive -> ingest -> rounds ->
  accumulate), with watermark backpressure, per-connection rate
  limiting, load shedding, and graceful drain.
* :mod:`repro.transport.client` — the matching framing client (used
  by the soak benchmark's client processes and the tests).

Decisions are bit-identical to the in-memory paths by construction:
the transport executes the same :class:`~repro.protocol.fanout._ServerOps`
implementation every other entry point uses.
"""

from repro.transport.framing import (
    FrameAssembler,
    FrameError,
    Status,
    decode_response,
    encode_response,
    encode_upload,
    split_upload,
)
from repro.transport.client import TransportClient
from repro.transport.server import PrioTransportServer, TransportConfig

__all__ = [
    "FrameAssembler",
    "FrameError",
    "PrioTransportServer",
    "Status",
    "TransportClient",
    "TransportConfig",
    "decode_response",
    "encode_response",
    "encode_upload",
    "split_upload",
]
