"""repro — a from-scratch reproduction of Prio (Corrigan-Gibbs & Boneh,
NSDI 2017): private, robust, and scalable computation of aggregate
statistics.

Quick start::

    import random
    from repro import IntegerSumAfe, PrioDeployment, FIELD87

    afe = IntegerSumAfe(FIELD87, n_bits=4)
    deployment = PrioDeployment.create(afe, n_servers=5)
    for value in [3, 7, 11]:
        deployment.submit(value)
    print(deployment.publish())   # 21 — and no server saw any value

Subpackages: ``repro.field`` (prime fields + NTT), ``repro.sharing``
(additive/PRG/Shamir sharing), ``repro.circuit`` (Valid predicates),
``repro.mpc`` (Beaver triples), ``repro.snip`` (the paper's core
contribution), ``repro.afe`` (encodings for every supported statistic),
``repro.ec``/``repro.crypto``/``repro.nizk`` (the public-key baseline),
``repro.protocol`` (the full pipeline), ``repro.simnet`` (deployment
simulation), and ``repro.workloads`` (Section 6.2 scenarios).
"""

from repro.afe import (
    Afe,
    AfeError,
    ApproxMaxAfe,
    BoolAndAfe,
    BoolOrAfe,
    CountMinSketchAfe,
    FrequencyCountAfe,
    GeometricMeanAfe,
    IntegerMeanAfe,
    IntegerSumAfe,
    LinRegAfe,
    MaxAfe,
    MinAfe,
    MostPopularStringAfe,
    ProductAfe,
    R2Afe,
    SetIntersectionAfe,
    SetUnionAfe,
    StddevAfe,
    VarianceAfe,
)
from repro.field import FIELD64, FIELD87, FIELD265, GF2, PrimeField
from repro.protocol import (
    NoPrivacyPipeline,
    NoRobustnessPipeline,
    PrioClient,
    PrioDeployment,
    PrioServer,
)
from repro.snip import (
    ServerRandomness,
    VerificationContext,
    build_proof,
    prove_and_share,
    verify_snip,
)

__version__ = "1.0.0"

__all__ = [
    "Afe",
    "AfeError",
    "ApproxMaxAfe",
    "BoolAndAfe",
    "BoolOrAfe",
    "CountMinSketchAfe",
    "FrequencyCountAfe",
    "GeometricMeanAfe",
    "IntegerMeanAfe",
    "IntegerSumAfe",
    "LinRegAfe",
    "MaxAfe",
    "MinAfe",
    "MostPopularStringAfe",
    "ProductAfe",
    "R2Afe",
    "SetIntersectionAfe",
    "SetUnionAfe",
    "StddevAfe",
    "VarianceAfe",
    "FIELD64",
    "FIELD87",
    "FIELD265",
    "GF2",
    "PrimeField",
    "NoPrivacyPipeline",
    "NoRobustnessPipeline",
    "PrioClient",
    "PrioDeployment",
    "PrioServer",
    "ServerRandomness",
    "VerificationContext",
    "build_proof",
    "prove_and_share",
    "verify_snip",
    "__version__",
]
