"""Section 6.2 application workloads: cell grids, browser stats,
surveys, and health-regression datasets."""

from repro.workloads.scenarios import (
    BROWSER_CONFIGS,
    CELL_GRIDS,
    HEALTH_DATASETS,
    SURVEYS,
    BrowserStatsAfe,
    CellSignalAfe,
    Scenario,
    SurveyAfe,
    all_scenarios,
    scenario_by_name,
)

__all__ = [
    "BROWSER_CONFIGS",
    "CELL_GRIDS",
    "HEALTH_DATASETS",
    "SURVEYS",
    "BrowserStatsAfe",
    "CellSignalAfe",
    "Scenario",
    "SurveyAfe",
    "all_scenarios",
    "scenario_by_name",
]
