"""The paper's Section 6.2 application scenarios, as reusable configs.

Each scenario bundles the AFE(s) the application needs, a synthetic
data generator with the right shape (the real UCI datasets and user
telemetry are not redistributable; only dimensionality and bit-width
affect cost and algebra), and the multiplication-gate count that
Figure 7 reports next to each workload name.

Figure 7's workloads:

======================  =======================================  ======
label                   configuration                            gates*
======================  =======================================  ======
Cell / Geneva..Tokyo    per-grid-cell 4-bit signal strength      64..8760
Browser / Low-,HighRes  2 sums + 16-URL count-min sketch         80 / 1410
Survey / Beck-21        21 questions, 1-4 scale                  84
Survey / PCRI-78        78 questions, 1-4 scale                  312
Survey / CPI-434        434 boolean questions                    434
LinReg / Heart          13 features (mixed widths)               174
LinReg / BrCa           30 features, 14-bit fixed point          930
======================  =======================================  ======

(*) the paper's gate counts; ours are computed from our circuits and
reported side by side in EXPERIMENTS.md — same order of magnitude, not
bit-identical, because encoding details differ slightly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.afe.base import Afe
from repro.afe.frequency import FrequencyCountAfe
from repro.afe.regression import LinRegAfe
from repro.afe.sketch import CountMinSketchAfe
from repro.afe.sums import IntegerSumAfe
from repro.field.parameters import FIELD87
from repro.field.prime_field import PrimeField


@dataclass
class Scenario:
    """One Figure 7 workload: an AFE plus a matching data generator."""

    name: str
    group: str
    afe: Afe
    generate: Callable[[Any], Any]  # rng -> one client value
    paper_mul_gates: int

    @property
    def mul_gates(self) -> int:
        circuit = self.afe.valid_circuit()
        return 0 if circuit is None else circuit.n_mul_gates


# ----------------------------------------------------------------------
# Cell signal strength (grid of 4-bit averages)
# ----------------------------------------------------------------------


class CellSignalAfe(IntegerSumAfe):
    """Sum of 4-bit signal strengths for one grid cell.

    A full deployment sums a vector with one slot per cell; for the
    Figure 7 client-cost benchmark what matters is the total number of
    4-bit integers, i.e. grid cells.  We model the submission as
    ``n_cells`` stacked 4-bit sum encodings.
    """

    def __init__(self, field: PrimeField, n_cells: int) -> None:
        super().__init__(field, 4)
        self.n_cells = n_cells
        self.k = (4 + 1) * n_cells
        self.k_prime = n_cells
        self.name = f"cell-signal-{n_cells}"

    def encode(self, values, rng=None):
        if len(values) != self.n_cells:
            from repro.afe.base import AfeError

            raise AfeError(f"expected {self.n_cells} cell readings")
        single = IntegerSumAfe(self.field, 4)
        out: list[int] = []
        bits: list[int] = []
        for v in values:
            enc = single.encode(v)
            out.append(enc[0])
            bits.extend(enc[1:])
        # Values first (the aggregated prefix), then all bits.
        return out + bits

    def valid_circuit(self):
        from repro.circuit.circuit import CircuitBuilder
        from repro.circuit.gadgets import assert_binary_decomposition

        # Input layout matches encode(): all cell values first (the
        # aggregated prefix), then the 4 bits of each cell in order.
        builder = CircuitBuilder(self.field, name=self.name)
        value_wires = builder.inputs(self.n_cells)
        bit_wires = builder.inputs(4 * self.n_cells)
        for i, value_wire in enumerate(value_wires):
            assert_binary_decomposition(
                builder, value_wire, bit_wires[4 * i : 4 * (i + 1)]
            )
        return builder.build()

    def decode(self, sigma, n_clients):
        del n_clients
        return list(sigma)


def _cell_generator(n_cells):
    def generate(rng):
        return [rng.randrange(16) for _ in range(n_cells)]

    return generate


#: (city, grid cells) — gate counts in Figure 7 are cells * 4 bits.
CELL_GRIDS = (
    ("geneva", 16, 64),
    ("seattle", 217, 868),
    ("chicago", 606, 2424),
    ("london", 1570, 6280),
    ("tokyo", 2190, 8760),
)


# ----------------------------------------------------------------------
# Anonymous surveys
# ----------------------------------------------------------------------


class SurveyAfe(Afe):
    """A battery of Likert-scale questions, each a frequency count.

    A q-question survey with c choices per question encodes as q
    stacked one-hot vectors; the aggregate is the per-question response
    histogram (how Prio collects "aggregate responses to sensitive
    surveys").
    """

    leakage = "per-question response histograms"

    def __init__(self, field: PrimeField, n_questions: int, n_choices: int):
        self.field = field
        self.n_questions = n_questions
        self.n_choices = n_choices
        self.k = n_questions * n_choices
        self.k_prime = self.k
        self.name = f"survey-{n_questions}x{n_choices}"
        self._single = FrequencyCountAfe(field, n_choices)

    def encode(self, answers, rng=None):
        from repro.afe.base import AfeError

        if len(answers) != self.n_questions:
            raise AfeError(f"expected {self.n_questions} answers")
        out: list[int] = []
        for answer in answers:
            out.extend(self._single.encode(answer))
        return out

    def valid_circuit(self):
        from repro.circuit.circuit import CircuitBuilder
        from repro.circuit.gadgets import assert_one_hot

        builder = CircuitBuilder(self.field, name=self.name)
        for _ in range(self.n_questions):
            wires = builder.inputs(self.n_choices)
            assert_one_hot(builder, wires)
        return builder.build()

    def decode(self, sigma, n_clients):
        del n_clients
        c = self.n_choices
        return [
            list(sigma[q * c : (q + 1) * c]) for q in range(self.n_questions)
        ]


def _survey_generator(n_questions, n_choices):
    def generate(rng):
        return [rng.randrange(n_choices) for _ in range(n_questions)]

    return generate


#: (name, questions, choices, paper gate count)
SURVEYS = (
    ("beck-21", 21, 4, 84),
    ("pcri-78", 78, 4, 312),
    ("cpi-434", 434, 2, 434),
)


# ----------------------------------------------------------------------
# Browser statistics (2 resource sums + URL count-min sketch)
# ----------------------------------------------------------------------


class BrowserStatsAfe(Afe):
    """Average CPU + memory usage plus 16-URL-root frequency counts.

    CPU and memory are 7-bit percentages (sum AFE); URL roots go into a
    count-min sketch.  Low/high resolution matches the paper's two
    parameter sets.
    """

    leakage = "CPU/memory sums plus the aggregate count-min sketch"

    def __init__(
        self, field: PrimeField, epsilon: float, delta: float
    ) -> None:
        self.field = field
        self._cpu = IntegerSumAfe(field, 7)
        self._mem = IntegerSumAfe(field, 7)
        self._sketch = CountMinSketchAfe(field, epsilon, delta)
        self.k = self._cpu.k + self._mem.k + self._sketch.k
        self.k_prime = 2 + self._sketch.k_prime
        self.name = f"browser-{self._sketch.depth}x{self._sketch.width}"

    def encode(self, value, rng=None):
        cpu, mem, url = value
        cpu_enc = self._cpu.encode(cpu)
        mem_enc = self._mem.encode(mem)
        sketch_enc = self._sketch.encode(url)
        # Aggregated prefix first: cpu total, mem total, sketch cells.
        return (
            [cpu_enc[0], mem_enc[0]]
            + sketch_enc
            + cpu_enc[1:]
            + mem_enc[1:]
        )

    def valid_circuit(self):
        from repro.circuit.circuit import CircuitBuilder
        from repro.circuit.gadgets import (
            assert_binary_decomposition,
            assert_one_hot,
        )

        builder = CircuitBuilder(self.field, name=self.name)
        cpu = builder.input()
        mem = builder.input()
        sketch_wires = builder.inputs(self._sketch.k)
        cpu_bits = builder.inputs(7)
        mem_bits = builder.inputs(7)
        width = self._sketch.width
        for row in range(self._sketch.depth):
            assert_one_hot(
                builder, sketch_wires[row * width : (row + 1) * width]
            )
        assert_binary_decomposition(builder, cpu, cpu_bits)
        assert_binary_decomposition(builder, mem, mem_bits)
        return builder.build()

    def decode(self, sigma, n_clients):
        from repro.afe.sketch import CountMinSketch

        cpu_total, mem_total = sigma[0], sigma[1]
        sketch = CountMinSketch(self._sketch, list(sigma[2:]))
        return {
            "cpu_mean": cpu_total / n_clients if n_clients else 0.0,
            "mem_mean": mem_total / n_clients if n_clients else 0.0,
            "url_sketch": sketch,
        }


_URL_ROOTS = tuple(f"site-{i}.example" for i in range(16))


def _browser_generator():
    def generate(rng):
        return (
            rng.randrange(100),
            rng.randrange(100),
            _URL_ROOTS[min(rng.randrange(20), 15)],  # skewed tail
        )

    return generate


#: (name, epsilon, delta, paper gate count)
BROWSER_CONFIGS = (
    ("lowres", 1 / 10, 2**-10, 80),
    ("highres", 1 / 100, 2**-20, 1410),
)


# ----------------------------------------------------------------------
# Health regression datasets
# ----------------------------------------------------------------------

#: (name, dimension, bits, paper gate count) — shapes of the UCI
#: heart-disease (13 mixed features) and Wisconsin breast-cancer
#: (30 features, 14-bit fixed point) datasets.
HEALTH_DATASETS = (
    ("heart", 13, 10, 174),
    ("brca", 30, 14, 930),
)


def _regression_generator(dimension, n_bits):
    def generate(rng):
        max_x = (1 << (n_bits // 2)) - 1
        features = [rng.randrange(max_x) for _ in range(dimension)]
        label = min(
            (1 << n_bits) - 1,
            sum(features) // dimension + rng.randrange(8),
        )
        return (features, label)

    return generate


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------


def all_scenarios(field: PrimeField = FIELD87) -> list[Scenario]:
    """Every Figure 7 workload, in the figure's left-to-right order."""
    out: list[Scenario] = []
    for city, cells, gates in CELL_GRIDS:
        out.append(
            Scenario(
                name=city,
                group="cell",
                afe=CellSignalAfe(field, cells),
                generate=_cell_generator(cells),
                paper_mul_gates=gates,
            )
        )
    for name, eps, delta, gates in BROWSER_CONFIGS:
        out.append(
            Scenario(
                name=name,
                group="browser",
                afe=BrowserStatsAfe(field, eps, delta),
                generate=_browser_generator(),
                paper_mul_gates=gates,
            )
        )
    for name, questions, choices, gates in SURVEYS:
        out.append(
            Scenario(
                name=name,
                group="survey",
                afe=SurveyAfe(field, questions, choices),
                generate=_survey_generator(questions, choices),
                paper_mul_gates=gates,
            )
        )
    for name, dim, bits, gates in HEALTH_DATASETS:
        out.append(
            Scenario(
                name=name,
                group="linreg",
                afe=LinRegAfe(field, dimension=dim, n_bits=bits),
                generate=_regression_generator(dim, bits),
                paper_mul_gates=gates,
            )
        )
    return out


def scenario_by_name(name: str, field: PrimeField = FIELD87) -> Scenario:
    for scenario in all_scenarios(field):
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}")
