"""Affine-aggregatable encodings: every statistic Prio can collect."""

from repro.afe.base import Afe, AfeError, bits_of, check_field_capacity
from repro.afe.boolean import BoolAndAfe, BoolOrAfe
from repro.afe.frequency import (
    FrequencyCountAfe,
    SetIntersectionAfe,
    SetUnionAfe,
)
from repro.afe.minmax import ApproxMaxAfe, MaxAfe, MinAfe
from repro.afe.popular import MostPopularStringAfe
from repro.afe.regression import LinRegAfe, R2Afe, pair_indices
from repro.afe.sketch import CountMinSketch, CountMinSketchAfe
from repro.afe.sums import (
    GeometricMeanAfe,
    VectorSumAfe,
    IntegerMeanAfe,
    IntegerSumAfe,
    ProductAfe,
)
from repro.afe.variance import StddevAfe, VarianceAfe

__all__ = [
    "Afe",
    "AfeError",
    "bits_of",
    "check_field_capacity",
    "BoolAndAfe",
    "BoolOrAfe",
    "FrequencyCountAfe",
    "SetIntersectionAfe",
    "SetUnionAfe",
    "ApproxMaxAfe",
    "MaxAfe",
    "MinAfe",
    "MostPopularStringAfe",
    "LinRegAfe",
    "R2Afe",
    "pair_indices",
    "CountMinSketch",
    "CountMinSketchAfe",
    "GeometricMeanAfe",
    "VectorSumAfe",
    "IntegerMeanAfe",
    "IntegerSumAfe",
    "ProductAfe",
    "StddevAfe",
    "VarianceAfe",
]
