"""Boolean OR / AND AFEs over GF(2)^lambda (Section 5.2).

``Encode(0) = 0^lambda``; ``Encode(1)`` is a *random* lambda-bit
string.  Aggregation over GF(2) is XOR, so the sum of encodings is the
XOR of random strings — all-zero iff (w.p. 1 - 2^-lambda) every input
was 0.  Every vector is a valid encoding, so ``Valid`` is trivially
true and these AFEs need no SNIP at all.

AND is OR under De Morgan: encode the *negated* input, decode the
negated OR.
"""

from __future__ import annotations

from typing import Sequence

from repro.afe.base import Afe, AfeError
from repro.field.parameters import GF2


class BoolOrAfe(Afe):
    """Logical OR of one bit per client; false-negative rate 2^-lambda."""

    leakage = "the OR of the inputs (plus a 2^-lambda decode error)"

    def __init__(self, lambda_bits: int = 80) -> None:
        if lambda_bits < 1:
            raise AfeError("lambda must be positive")
        self.field = GF2
        self.lambda_bits = lambda_bits
        self.k = lambda_bits
        self.k_prime = lambda_bits
        self.name = f"bool-or-{lambda_bits}"

    def encode(self, value: bool, rng=None) -> list[int]:
        if value not in (0, 1, True, False):
            raise AfeError("OR AFE input must be boolean")
        if not value:
            return [0] * self.lambda_bits
        if rng is None:
            raise AfeError("the OR encoding is randomized; pass an rng")
        return [rng.randrange(2) for _ in range(self.lambda_bits)]

    def decode(self, sigma: Sequence[int], n_clients: int) -> bool:
        del n_clients
        if len(sigma) != self.k_prime:
            raise AfeError(f"{self.name}: wrong sigma length")
        return any(v % 2 for v in sigma)


class BoolAndAfe(BoolOrAfe):
    """Logical AND, via De Morgan on the OR construction."""

    leakage = "the AND of the inputs (plus a 2^-lambda decode error)"

    def __init__(self, lambda_bits: int = 80) -> None:
        super().__init__(lambda_bits)
        self.name = f"bool-and-{lambda_bits}"

    def encode(self, value: bool, rng=None) -> list[int]:
        return super().encode(not value, rng)

    def decode(self, sigma: Sequence[int], n_clients: int) -> bool:
        return not super().decode(sigma, n_clients)
