"""Count-min sketch AFE for approximate counts over large domains (App. G).

The exact frequency-count AFE needs k = |domain| field elements — fine
for 16 URL roots, hopeless for "all URLs".  Following Melis et al. (as
the paper does), a client's item is instead inserted into a
``depth x width`` count-min sketch: ``depth = ceil(ln(1/delta))`` rows,
``width = ceil(e/epsilon)`` columns, one 1 per row at a public-hash
position.  Sketches sum linearly across clients, and a point query
returns the row-minimum: an overestimate by at most ``epsilon * n``
with probability ``1 - delta``.

The Valid circuit is one one-hot check per row — ``depth * width``
multiplication gates, "a few hundreds for realistic parameters", which
is what makes the composition with SNIPs efficient.  The paper's
browser-statistics benchmark uses two parameterizations:
``delta = 2^-10, epsilon = 1/10`` (low resolution) and
``delta = 2^-20, epsilon = 1/100`` (high resolution).
"""

from __future__ import annotations

import hashlib
import math
from typing import Sequence

from repro.afe.base import Afe, AfeError
from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.circuit.gadgets import assert_one_hot
from repro.field.prime_field import PrimeField


class CountMinSketchAfe(Afe):
    """Approximate multi-set counts; leakage is the summed sketch."""

    leakage = (
        "the aggregate count-min sketch (hashed, epsilon*n-noisy counts "
        "of every item, not just queried ones)"
    )

    def __init__(
        self,
        field: PrimeField,
        epsilon: float,
        delta: float,
        hash_seed: bytes = b"prio-cms",
    ) -> None:
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise AfeError("need 0 < epsilon, delta < 1")
        self.field = field
        self.epsilon = epsilon
        self.delta = delta
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self.width = max(2, math.ceil(math.e / epsilon))
        self.hash_seed = hash_seed
        self.k = self.depth * self.width
        self.k_prime = self.k
        self.name = f"count-min-{self.depth}x{self.width}"

    # ------------------------------------------------------------------

    def bucket(self, row: int, item: bytes | str) -> int:
        """Public per-row hash position for ``item``."""
        if isinstance(item, str):
            item = item.encode()
        digest = hashlib.shake_128(
            self.hash_seed + row.to_bytes(4, "big") + b"\x00" + item
        ).digest(8)
        return int.from_bytes(digest, "big") % self.width

    def encode(self, item: bytes | str, rng=None) -> list[int]:
        del rng
        out = [0] * self.k
        for row in range(self.depth):
            out[row * self.width + self.bucket(row, item)] = 1
        return out

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        for _ in range(self.depth):
            row_wires = builder.inputs(self.width)
            assert_one_hot(builder, row_wires)
        return builder.build()

    def decode(self, sigma: Sequence[int], n_clients: int) -> "CountMinSketch":
        del n_clients
        if len(sigma) != self.k:
            raise AfeError("wrong sigma length")
        return CountMinSketch(self, list(sigma))


class CountMinSketch:
    """A decoded aggregate sketch supporting point queries."""

    def __init__(self, afe: CountMinSketchAfe, cells: list[int]) -> None:
        self.afe = afe
        self.cells = cells

    def estimate(self, item: bytes | str) -> int:
        """Estimated count of ``item``: min over rows (never an underestimate)."""
        width = self.afe.width
        return min(
            self.cells[row * width + self.afe.bucket(row, item)]
            for row in range(self.afe.depth)
        )

    def heavy_hitters(
        self, candidates: Sequence[bytes | str], threshold: int
    ) -> list[tuple[str | bytes, int]]:
        """Candidates whose estimated count reaches the threshold."""
        out = []
        for item in candidates:
            count = self.estimate(item)
            if count >= threshold:
                out.append((item, count))
        out.sort(key=lambda pair: -pair[1])
        return out
