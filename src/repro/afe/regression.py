"""Least-squares regression and R^2 AFEs (Sections 5.3, Appendix G).

``LinRegAfe`` trains a d-dimensional linear model without the servers
ever seeing a training example.  Each client holds a feature vector
``x = (x_1..x_d)`` of b-bit integers and a b-bit label y, and encodes

    ( x_1..x_d,                       d      first moments
      {x_i * x_j} for i <= j,         d(d+1)/2   second moments
      y,
      {x_i * y},                      d      cross moments
      bits(x_1)..bits(x_d), bits(y) )        range-check payload

The servers aggregate only the moment prefix (k'); the decoded sums
fill the normal equations (the paper's equation (1), generalized),
which numpy solves for the coefficients.  Valid checks every bit and
every claimed product:  ``(d + 1) * b`` bit-check gates plus
``d(d+1)/2 + d`` product gates.

``R2Afe`` (Appendix G) evaluates a *public* linear model: clients
encode ``(y, y^2, (y - y_hat)^2, x, bits...)`` and the decoded sums
give the R^2 coefficient of determination.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.afe.base import Afe, AfeError, bits_of
from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.circuit.gadgets import assert_binary_decomposition, assert_product
from repro.field.prime_field import PrimeField


def pair_indices(d: int) -> list[tuple[int, int]]:
    """Index pairs (i, j), i <= j, in row-major order."""
    return [(i, j) for i in range(d) for j in range(i, d)]


class LinRegAfe(Afe):
    """d-dimensional least-squares regression on b-bit features."""

    leakage = (
        "the least-squares coefficients plus the full moment matrix "
        "(feature means, covariance, and feature-label correlations)"
    )

    def __init__(self, field: PrimeField, dimension: int, n_bits: int) -> None:
        if dimension < 1:
            raise AfeError("dimension must be positive")
        if n_bits < 1:
            raise AfeError("need at least one bit")
        self.field = field
        self.dimension = dimension
        self.n_bits = n_bits
        self.pairs = pair_indices(dimension)
        d = dimension
        #: moment prefix: x (d), x_i x_j (d(d+1)/2), y (1), x_i y (d)
        self.n_moments = d + len(self.pairs) + 1 + d
        #: bits: one decomposition per feature and for the label
        self.n_bit_elements = (d + 1) * n_bits
        self.k = self.n_moments + self.n_bit_elements
        self.k_prime = self.n_moments
        self.name = f"linreg-d{dimension}-{n_bits}bit"

    # ------------------------------------------------------------------

    def encode(
        self, value: tuple[Sequence[int], int], rng=None
    ) -> list[int]:
        """``value = (features, label)`` with b-bit integer components."""
        del rng
        features, label = value
        if len(features) != self.dimension:
            raise AfeError(
                f"expected {self.dimension} features, got {len(features)}"
            )
        f = self.field
        out: list[int] = []
        out.extend(features)
        out.extend(f.mul(features[i], features[j]) for i, j in self.pairs)
        out.append(label)
        out.extend(f.mul(x, label) for x in features)
        for x in features:
            out.extend(bits_of(x, self.n_bits))
        out.extend(bits_of(label, self.n_bits))
        return out

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        d = self.dimension
        feature_wires = builder.inputs(d)
        pair_wires = builder.inputs(len(self.pairs))
        label_wire = builder.input()
        cross_wires = builder.inputs(d)
        bit_wires = [builder.inputs(self.n_bits) for _ in range(d + 1)]

        for (i, j), claimed in zip(self.pairs, pair_wires):
            assert_product(builder, feature_wires[i], feature_wires[j], claimed)
        for x_wire, claimed in zip(feature_wires, cross_wires):
            assert_product(builder, x_wire, label_wire, claimed)
        for value_wire, bits in zip(feature_wires + [label_wire], bit_wires):
            assert_binary_decomposition(builder, value_wire, bits)
        return builder.build()

    # ------------------------------------------------------------------

    def moment_sums(self, sigma: Sequence[int], n_clients: int) -> dict:
        """Split the aggregated prefix into named moment sums."""
        if len(sigma) != self.k_prime:
            raise AfeError("wrong sigma length")
        d = self.dimension
        n_pairs = len(self.pairs)
        sum_x = list(sigma[:d])
        sum_xx = list(sigma[d : d + n_pairs])
        sum_y = sigma[d + n_pairs]
        sum_xy = list(sigma[d + n_pairs + 1 :])
        return {
            "n": n_clients,
            "sum_x": sum_x,
            "sum_xx": sum_xx,
            "sum_y": sum_y,
            "sum_xy": sum_xy,
        }

    def decode(self, sigma: Sequence[int], n_clients: int) -> list[float]:
        """Solve the normal equations; returns ``[c_0, c_1, ..., c_d]``.

        The (d+1)x(d+1) system (paper eq. (1) generalized):

            [ n       sum_x^T  ] [c0]   [ sum_y  ]
            [ sum_x   sum_xx   ] [c ] = [ sum_xy ]
        """
        if n_clients < 1:
            raise AfeError("cannot fit a model to zero clients")
        m = self.moment_sums(sigma, n_clients)
        d = self.dimension
        size = d + 1
        a = np.zeros((size, size), dtype=float)
        b = np.zeros(size, dtype=float)
        a[0, 0] = float(n_clients)
        for i in range(d):
            a[0, i + 1] = a[i + 1, 0] = float(m["sum_x"][i])
        for (i, j), value in zip(self.pairs, m["sum_xx"]):
            a[i + 1, j + 1] = a[j + 1, i + 1] = float(value)
        b[0] = float(m["sum_y"])
        for i in range(d):
            b[i + 1] = float(m["sum_xy"][i])
        try:
            solution = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise AfeError(f"normal equations are singular: {exc}") from exc
        return [float(c) for c in solution]

    def predict(self, coefficients: Sequence[float], features: Sequence[int]) -> float:
        if len(coefficients) != self.dimension + 1:
            raise AfeError("coefficient vector has wrong length")
        return coefficients[0] + sum(
            c * float(x) for c, x in zip(coefficients[1:], features)
        )


class R2Afe(Afe):
    """R^2 of a fixed public linear model (Appendix G).

    The model is ``y_hat = w_0 + sum_i w_i x_i`` with integer weights
    (fixed-point scaling is the caller's concern).  Encoding:
    ``(y, y^2, (y - y_hat)^2, x_1..x_d, bits(x_i)..., bits(y))``;
    k' = 3 (only the three leading sums aggregate).

    Valid: y^2 via one square gate; the residual square via one more
    (y - y_hat is an affine function of the encoding!); plus range
    checks.  This matches the paper's "only two multiplications" for
    the model checks.
    """

    leakage = (
        "the R^2 coefficient plus the mean and variance of the labels"
    )

    def __init__(
        self,
        field: PrimeField,
        weights: Sequence[int],
        n_bits: int,
    ) -> None:
        if len(weights) < 2:
            raise AfeError("weights must include an intercept and >= 1 slope")
        self.field = field
        self.weights = [w % field.modulus for w in weights]
        self.dimension = len(weights) - 1
        self.n_bits = n_bits
        d = self.dimension
        self.k = 3 + d + (d + 1) * n_bits
        self.k_prime = 3
        self.name = f"r2-d{d}-{n_bits}bit"

    def predict_int(self, features: Sequence[int]) -> int:
        f = self.field
        acc = self.weights[0]
        for w, x in zip(self.weights[1:], features):
            acc = f.add(acc, f.mul(w, x))
        return acc

    def encode(
        self, value: tuple[Sequence[int], int], rng=None
    ) -> list[int]:
        del rng
        features, label = value
        if len(features) != self.dimension:
            raise AfeError("feature vector has wrong length")
        f = self.field
        residual = f.sub(label, self.predict_int(features))
        out = [label, f.mul(label, label), f.mul(residual, residual)]
        out.extend(features)
        for x in features:
            out.extend(bits_of(x, self.n_bits))
        out.extend(bits_of(label, self.n_bits))
        return out

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        y = builder.input()
        y2 = builder.input()
        residual2 = builder.input()
        xs = builder.inputs(self.dimension)
        bit_wires = [builder.inputs(self.n_bits) for _ in range(self.dimension)]
        y_bits = builder.inputs(self.n_bits)

        from repro.circuit.gadgets import assert_square

        assert_square(builder, y, y2)
        # y_hat is affine in the inputs: w0 + sum w_i x_i.
        y_hat = builder.constant(self.weights[0])
        for w, x in zip(self.weights[1:], xs):
            y_hat = builder.add(y_hat, builder.mul_const(w, x))
        residual = builder.sub(y, y_hat)
        assert_square(builder, residual, residual2)
        for x, bits in zip(xs, bit_wires):
            assert_binary_decomposition(builder, x, bits)
        assert_binary_decomposition(builder, y, y_bits)
        return builder.build()

    def decode(self, sigma: Sequence[int], n_clients: int) -> float:
        """R^2 = 1 - sum (y - y_hat)^2 / (n * Var(y))."""
        if len(sigma) != self.k_prime:
            raise AfeError("wrong sigma length")
        if n_clients < 2:
            raise AfeError("R^2 needs at least two clients")
        sum_y, sum_y2, sum_residual2 = sigma
        var_y = Fraction(sum_y2, n_clients) - Fraction(sum_y, n_clients) ** 2
        if var_y == 0:
            raise AfeError("labels have zero variance; R^2 undefined")
        total_ss = float(var_y) * n_clients
        return 1.0 - float(sum_residual2) / total_ss
