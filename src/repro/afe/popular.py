"""Most-popular-string AFE (Appendix G, simplified Bassily-Smith).

When one b-bit string is held by *more than half* of the clients, the
per-bit majority recovers it: each client encodes its string as b
field elements (its bits), the servers sum them, and decode rounds each
bit-sum toward 0 or n.  Valid costs b bit-check gates.

The aggregate reveals, for every bit position, how many clients have a
1 there — strictly more than the winning string itself, and exactly
the leakage the paper documents for this AFE.
"""

from __future__ import annotations

from typing import Sequence

from repro.afe.base import Afe, AfeError, bits_of
from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.circuit.gadgets import assert_bits
from repro.field.prime_field import PrimeField


class MostPopularStringAfe(Afe):
    """Recovers a > 50%-popular b-bit string from per-bit counts."""

    leakage = "the number of clients with a 1 in every bit position"

    def __init__(self, field: PrimeField, n_bits: int) -> None:
        if n_bits < 1:
            raise AfeError("need at least one bit")
        self.field = field
        self.n_bits = n_bits
        self.k = n_bits
        self.k_prime = n_bits
        self.name = f"most-popular-{n_bits}bit"

    def encode(self, value: int | bytes | str, rng=None) -> list[int]:
        del rng
        return bits_of(self._to_int(value), self.n_bits)

    def _to_int(self, value: int | bytes | str) -> int:
        if isinstance(value, str):
            value = value.encode()
        if isinstance(value, bytes):
            value = int.from_bytes(value, "big")
        if value < 0 or value >= (1 << self.n_bits):
            raise AfeError(f"string does not fit in {self.n_bits} bits")
        return value

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        wires = builder.inputs(self.n_bits)
        assert_bits(builder, wires)
        return builder.build()

    def decode(self, sigma: Sequence[int], n_clients: int) -> int:
        """Round each per-bit count to the majority value.

        Correct whenever some string has popularity > 1/2 (each of its
        bit counts then lands on the right side of n/2).
        """
        if len(sigma) != self.k:
            raise AfeError("wrong sigma length")
        if n_clients < 1:
            raise AfeError("no clients")
        value = 0
        for i, count in enumerate(sigma):
            if 2 * count > n_clients:
                value |= 1 << i
        return value

    def decode_bytes(self, sigma: Sequence[int], n_clients: int) -> bytes:
        value = self.decode(sigma, n_clients)
        return value.to_bytes((self.n_bits + 7) // 8, "big")
