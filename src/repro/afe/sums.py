"""Integer sum / mean / product / geometric-mean AFEs (Section 5.2).

``IntegerSumAfe`` is the workhorse encoding: a b-bit integer is shipped
as ``(x, beta_0, ..., beta_{b-1})`` and the Valid circuit checks the
betas are bits that really decompose x.  Only the first component is
aggregated (k' = 1).

Mean divides the decoded sum by n over the rationals; product and
geometric mean reuse the sum machinery "in exactly the same manner,
except that we encode x using b-bit logarithms" — here fixed-point
base-2 logarithms, making the decoded product/geomean approximate
(documented on the class).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from repro.afe.base import Afe, AfeError, bits_of
from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.circuit.gadgets import assert_binary_decomposition
from repro.field.prime_field import PrimeField


class IntegerSumAfe(Afe):
    """Sum of b-bit unsigned integers.  k = b + 1, k' = 1.

    Valid costs b multiplication gates (the bit checks); the
    decomposition equality is affine.  Sum-private: the aggregate
    reveals exactly the sum.
    """

    leakage = "the sum of the inputs only"

    def __init__(self, field: PrimeField, n_bits: int) -> None:
        if n_bits < 1:
            raise AfeError("need at least one bit")
        self.field = field
        self.n_bits = n_bits
        self.k = n_bits + 1
        self.k_prime = 1
        self.name = f"int-sum-{n_bits}bit"

    def encode(self, value: int, rng=None) -> list[int]:
        del rng  # deterministic encoding
        return [value] + bits_of(value, self.n_bits)

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        value = builder.input()
        bit_wires = builder.inputs(self.n_bits)
        assert_binary_decomposition(builder, value, bit_wires)
        return builder.build()

    def decode(self, sigma: Sequence[int], n_clients: int) -> int:
        del n_clients
        if len(sigma) != self.k_prime:
            raise AfeError(f"{self.name}: sigma must have length 1")
        return sigma[0]


class VectorSumAfe(Afe):
    """Component-wise sum of a vector of b-bit integers.

    The workload of Figures 4-6 ("each client submits a vector of
    zero/one integers and the servers sum these vectors") is the
    ``n_bits = 1`` case; the cell-signal application stacks 4-bit
    integers the same way.  Layout: all values first (the aggregated
    prefix), then each value's bits.
    """

    leakage = "the component-wise sums only"

    def __init__(self, field: PrimeField, length: int, n_bits: int) -> None:
        if length < 1:
            raise AfeError("need at least one component")
        if n_bits < 1:
            raise AfeError("need at least one bit")
        self.field = field
        self.length = length
        self.n_bits = n_bits
        self.k = length * (n_bits + 1)
        self.k_prime = length
        self.name = f"vector-sum-{length}x{n_bits}bit"

    def encode(self, values: Sequence[int], rng=None) -> list[int]:
        del rng
        if len(values) != self.length:
            raise AfeError(f"expected {self.length} components")
        out = list(values)
        for v in values:
            out.extend(bits_of(v, self.n_bits))
        return out

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        value_wires = builder.inputs(self.length)
        bit_wires = builder.inputs(self.length * self.n_bits)
        b = self.n_bits
        for i, value_wire in enumerate(value_wires):
            assert_binary_decomposition(
                builder, value_wire, bit_wires[b * i : b * (i + 1)]
            )
        return builder.build()

    def decode(self, sigma: Sequence[int], n_clients: int) -> list[int]:
        del n_clients
        if len(sigma) != self.k_prime:
            raise AfeError("wrong sigma length")
        return list(sigma)


class IntegerMeanAfe(IntegerSumAfe):
    """Arithmetic mean: the sum AFE decoded with a division by n."""

    leakage = "the sum (equivalently the mean) of the inputs only"

    def __init__(self, field: PrimeField, n_bits: int) -> None:
        super().__init__(field, n_bits)
        self.name = f"int-mean-{n_bits}bit"

    def decode(self, sigma: Sequence[int], n_clients: int) -> Fraction:
        if n_clients < 1:
            raise AfeError("mean of zero clients")
        total = super().decode(sigma, n_clients)
        return Fraction(total, n_clients)


class ProductAfe(Afe):
    """Approximate product via fixed-point base-2 logarithms.

    ``encode(x)`` stores ``round(log2(x) * 2^frac_bits)`` as an
    ``n_bits``-bit integer (with its decomposition for Valid); the sum
    of logs decodes to ``2^(sum / 2^frac_bits)``.  Inputs must be >= 1.
    Relative error is bounded by ``n * 2^-frac_bits`` in the exponent.
    """

    leakage = "the sum of the quantized log2 values (hence the product)"

    def __init__(
        self, field: PrimeField, n_bits: int, frac_bits: int = 8
    ) -> None:
        if frac_bits < 1 or n_bits <= frac_bits:
            raise AfeError("need n_bits > frac_bits >= 1")
        self.field = field
        self.n_bits = n_bits
        self.frac_bits = frac_bits
        self.k = n_bits + 1
        self.k_prime = 1
        self.name = f"product-{n_bits}bit"
        self._sum = IntegerSumAfe(field, n_bits)
        self._sum.name = self.name

    def quantize(self, value: float) -> int:
        if value < 1:
            raise AfeError("product AFE needs inputs >= 1")
        fixed = round(math.log2(value) * (1 << self.frac_bits))
        if fixed >= (1 << self.n_bits):
            raise AfeError(f"log2({value}) overflows {self.n_bits} bits")
        return fixed

    def encode(self, value: float, rng=None) -> list[int]:
        return self._sum.encode(self.quantize(value), rng)

    def valid_circuit(self) -> Circuit:
        return self._sum.valid_circuit()

    def decode(self, sigma: Sequence[int], n_clients: int) -> float:
        del n_clients
        total = sigma[0]
        return 2.0 ** (total / (1 << self.frac_bits))


class GeometricMeanAfe(ProductAfe):
    """Geometric mean: the product AFE with an n-th root at decode."""

    leakage = "the sum of quantized log2 values (hence the geometric mean)"

    def __init__(
        self, field: PrimeField, n_bits: int, frac_bits: int = 8
    ) -> None:
        super().__init__(field, n_bits, frac_bits)
        self.name = f"geomean-{n_bits}bit"

    def decode(self, sigma: Sequence[int], n_clients: int) -> float:
        if n_clients < 1:
            raise AfeError("geometric mean of zero clients")
        total = sigma[0]
        return 2.0 ** (total / (1 << self.frac_bits) / n_clients)
