"""MIN / MAX AFEs: exact over small ranges, c-approximate over large ones.

Exact (Section 5.2): an integer in ``{0..B-1}`` becomes B boolean
blocks, block i meaning "my value >= i", each block OR-encoded over
GF(2)^lambda.  XOR-aggregating across clients:

* OR of the blocks: block i is set iff *some* client has x >= i, so the
  maximum is the largest set index;
* AND of the blocks (De Morgan): block i is set iff *every* client has
  x >= i, so the minimum is the largest fully-set index.

Approximate: for a large domain ``{0..B-1}`` use ``ceil(log_c B)``
logarithmic bins ``[c^j, c^{j+1})`` and run the exact construction on
bin indices — the answer is within a multiplicative factor c (the
paper's networking example: max of 64-bit packet counters).

All encodings are valid, so no SNIP is needed; privacy follows from
the OR AFE's.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.afe.base import Afe, AfeError
from repro.field.parameters import GF2


class _UnaryThresholdAfe(Afe):
    """Shared machinery: B threshold blocks of lambda bits over GF(2)."""

    def __init__(self, domain_size: int, lambda_bits: int, invert: bool) -> None:
        if domain_size < 2:
            raise AfeError("domain must have at least two values")
        if lambda_bits < 1:
            raise AfeError("lambda must be positive")
        self.field = GF2
        self.domain_size = domain_size
        self.lambda_bits = lambda_bits
        self.k = domain_size * lambda_bits
        self.k_prime = self.k
        #: invert=True gives the AND/min behaviour via De Morgan
        self.invert = invert

    def _encode_threshold(self, value: int, rng) -> list[int]:
        if not 0 <= value < self.domain_size:
            raise AfeError(
                f"value {value} outside domain [0, {self.domain_size})"
            )
        if rng is None:
            raise AfeError("randomized encoding; pass an rng")
        out: list[int] = []
        for i in range(self.domain_size):
            indicator = value >= i
            if self.invert:
                indicator = not indicator
            if indicator:
                out.extend(rng.randrange(2) for _ in range(self.lambda_bits))
            else:
                out.extend([0] * self.lambda_bits)
        return out

    def _set_blocks(self, sigma: Sequence[int]) -> list[bool]:
        if len(sigma) != self.k:
            raise AfeError("wrong sigma length")
        blocks = []
        lam = self.lambda_bits
        for i in range(self.domain_size):
            chunk = sigma[i * lam : (i + 1) * lam]
            blocks.append(any(v % 2 for v in chunk))
        return blocks

    def encode(self, value: int, rng=None) -> list[int]:
        return self._encode_threshold(value, rng)


class MaxAfe(_UnaryThresholdAfe):
    """Exact maximum over {0..B-1}; OR of threshold blocks."""

    leakage = "for each i, whether any client's value is >= i"

    def __init__(self, domain_size: int, lambda_bits: int = 80) -> None:
        super().__init__(domain_size, lambda_bits, invert=False)
        self.name = f"max-{domain_size}"

    def decode(self, sigma: Sequence[int], n_clients: int) -> int:
        del n_clients
        blocks = self._set_blocks(sigma)
        # Block 0 ("x >= 0") is always set for any client; the largest
        # set index is the maximum.
        best = 0
        for i, is_set in enumerate(blocks):
            if is_set:
                best = i
        return best


class MinAfe(_UnaryThresholdAfe):
    """Exact minimum over {0..B-1}; AND of threshold blocks."""

    leakage = "for each i, whether every client's value is >= i"

    def __init__(self, domain_size: int, lambda_bits: int = 80) -> None:
        super().__init__(domain_size, lambda_bits, invert=True)
        self.name = f"min-{domain_size}"

    def decode(self, sigma: Sequence[int], n_clients: int) -> int:
        del n_clients
        # Inverted encoding: the XOR block is zero iff ALL clients had
        # the threshold bit set (AND). The min is the largest i with
        # a zero block prefix; equivalently the last all-zero block in
        # the prefix run starting at 0.
        blocks = self._set_blocks(sigma)
        best = 0
        for i, is_set in enumerate(blocks):
            if not is_set:
                best = i
            else:
                break
        return best


class ApproxMaxAfe(Afe):
    """c-approximate maximum over a large domain {0..B-1}.

    Buckets values into ``n_bins = ceil(log_c(B)) + 1`` logarithmic
    bins and runs the exact MAX construction on bin indices; decode
    returns the upper edge of the winning bin, a c-overestimate at
    worst.
    """

    leakage = "which logarithmic bins contain at least one client value"

    def __init__(
        self, domain_size: int, factor: float = 2.0, lambda_bits: int = 80
    ) -> None:
        if factor <= 1.0:
            raise AfeError("approximation factor must exceed 1")
        if domain_size < 2:
            raise AfeError("domain must have at least two values")
        self.domain_size = domain_size
        self.factor = factor
        self.n_bins = int(math.ceil(math.log(domain_size, factor))) + 1
        self._inner = MaxAfe(self.n_bins, lambda_bits)
        self.field = GF2
        self.k = self._inner.k
        self.k_prime = self._inner.k_prime
        self.name = f"approx-max-{domain_size}-c{factor}"

    def bin_of(self, value: int) -> int:
        if not 0 <= value < self.domain_size:
            raise AfeError(f"value {value} outside domain")
        if value == 0:
            return 0
        return int(math.floor(math.log(value, self.factor))) + 1

    def encode(self, value: int, rng=None) -> list[int]:
        return self._inner.encode(self.bin_of(value), rng)

    def decode(self, sigma: Sequence[int], n_clients: int) -> float:
        bin_index = self._inner.decode(sigma, n_clients)
        if bin_index == 0:
            return 0.0
        # Upper edge of bin j = c^j (values in [c^(j-1), c^j)).
        return min(float(self.domain_size), self.factor ** bin_index)
