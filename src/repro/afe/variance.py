"""Variance and standard-deviation AFEs (Section 5.2).

``Var(X) = E[X^2] - E[X]^2``: each client encodes ``(x, x^2)`` plus the
bit decomposition of x; the Valid circuit range-checks x and verifies
the claimed square with a single extra multiplication gate.  The
aggregate reveals both the first and second moments, so this AFE is
private with respect to f-hat = (mean, variance) — strictly more than
the variance alone, exactly as the paper notes.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from repro.afe.base import Afe, AfeError, bits_of
from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.circuit.gadgets import assert_binary_decomposition, assert_square
from repro.field.prime_field import PrimeField


class VarianceAfe(Afe):
    """Variance of b-bit unsigned integers.

    Encoding: ``(x, x^2, beta_0..beta_{b-1})``; k = b + 2, k' = 2.
    Valid: b bit checks + 1 square check = b + 1 multiplication gates.
    The field must be large enough for ``n * (2^b - 1)^2``.
    """

    leakage = "both the mean and the variance of the inputs"

    def __init__(self, field: PrimeField, n_bits: int) -> None:
        if n_bits < 1:
            raise AfeError("need at least one bit")
        self.field = field
        self.n_bits = n_bits
        self.k = n_bits + 2
        self.k_prime = 2
        self.name = f"variance-{n_bits}bit"

    def encode(self, value: int, rng=None) -> list[int]:
        del rng
        bits = bits_of(value, self.n_bits)
        return [value, self.field.mul(value, value)] + bits

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        value = builder.input()
        square = builder.input()
        bit_wires = builder.inputs(self.n_bits)
        assert_binary_decomposition(builder, value, bit_wires)
        assert_square(builder, value, square)
        return builder.build()

    def moments(
        self, sigma: Sequence[int], n_clients: int
    ) -> tuple[Fraction, Fraction]:
        """(mean, variance) as exact rationals."""
        if n_clients < 1:
            raise AfeError("moments of zero clients")
        if len(sigma) != self.k_prime:
            raise AfeError(f"{self.name}: sigma must have length 2")
        sum_x, sum_x2 = sigma
        mean = Fraction(sum_x, n_clients)
        variance = Fraction(sum_x2, n_clients) - mean * mean
        return mean, variance

    def decode(
        self, sigma: Sequence[int], n_clients: int
    ) -> tuple[Fraction, Fraction]:
        return self.moments(sigma, n_clients)


class StddevAfe(VarianceAfe):
    """Standard deviation: sqrt of the decoded variance (as float)."""

    leakage = "both the mean and the standard deviation of the inputs"

    def __init__(self, field: PrimeField, n_bits: int) -> None:
        super().__init__(field, n_bits)
        self.name = f"stddev-{n_bits}bit"

    def decode(
        self, sigma: Sequence[int], n_clients: int
    ) -> tuple[Fraction, float]:
        mean, variance = self.moments(sigma, n_clients)
        return mean, math.sqrt(float(variance))
