"""Frequency-count (histogram) and set AFEs (Section 5.2).

Frequency count: a value in ``{0..B-1}`` encodes as the one-hot
indicator vector; summing across clients yields the exact histogram.
Valid costs B multiplication gates (bit checks; the sum-to-one check is
affine).  The histogram supports quantile queries for free.

Sets over a small universe encode as characteristic boolean vectors;
union is OR and intersection is AND, block-encoded over GF(2)^lambda
exactly like the boolean AFEs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.afe.base import Afe, AfeError
from repro.afe.boolean import BoolAndAfe, BoolOrAfe
from repro.circuit.circuit import Circuit, CircuitBuilder
from repro.circuit.gadgets import assert_one_hot
from repro.field.parameters import GF2
from repro.field.prime_field import PrimeField


class FrequencyCountAfe(Afe):
    """Exact histogram over a small domain {0..B-1}.  k = k' = B."""

    leakage = "the full histogram of client values (the function output)"

    def __init__(self, field: PrimeField, domain_size: int) -> None:
        if domain_size < 2:
            raise AfeError("domain must have at least two values")
        self.field = field
        self.domain_size = domain_size
        self.k = domain_size
        self.k_prime = domain_size
        self.name = f"freq-count-{domain_size}"

    def encode(self, value: int, rng=None) -> list[int]:
        del rng
        if not 0 <= value < self.domain_size:
            raise AfeError(f"value {value} outside domain")
        out = [0] * self.domain_size
        out[value] = 1
        return out

    def valid_circuit(self) -> Circuit:
        builder = CircuitBuilder(self.field, name=self.name)
        wires = builder.inputs(self.domain_size)
        assert_one_hot(builder, wires)
        return builder.build()

    def decode(self, sigma: Sequence[int], n_clients: int) -> list[int]:
        del n_clients
        if len(sigma) != self.k_prime:
            raise AfeError("wrong sigma length")
        return list(sigma)

    # -- histogram conveniences ----------------------------------------

    def quantile(
        self, histogram: Sequence[int], q: Fraction | float
    ) -> int:
        """The smallest value whose cumulative frequency reaches q."""
        total = sum(histogram)
        if total == 0:
            raise AfeError("empty histogram")
        if not 0 <= float(q) <= 1:
            raise AfeError("quantile must be in [0, 1]")
        threshold = float(q) * total
        running = 0
        for value, count in enumerate(histogram):
            running += count
            if running >= threshold and running > 0:
                return value
        return self.domain_size - 1

    def mode(self, histogram: Sequence[int]) -> int:
        return max(range(len(histogram)), key=lambda i: histogram[i])


class SetUnionAfe(Afe):
    """Union of subsets of a universe of B items (OR per item)."""

    leakage = "the exact union of the clients' sets"

    def __init__(self, universe_size: int, lambda_bits: int = 80) -> None:
        if universe_size < 1:
            raise AfeError("universe must be non-empty")
        self.field = GF2
        self.universe_size = universe_size
        self._or = BoolOrAfe(lambda_bits)
        self.k = universe_size * lambda_bits
        self.k_prime = self.k
        self.name = f"set-union-{universe_size}"

    def encode(self, members: Sequence[int], rng=None) -> list[int]:
        member_set = set(members)
        if member_set and (min(member_set) < 0 or max(member_set) >= self.universe_size):
            raise AfeError("set member outside the universe")
        out: list[int] = []
        for item in range(self.universe_size):
            out.extend(self._or.encode(item in member_set, rng))
        return out

    def decode(self, sigma: Sequence[int], n_clients: int) -> set[int]:
        if len(sigma) != self.k:
            raise AfeError("wrong sigma length")
        lam = self._or.lambda_bits
        return {
            item
            for item in range(self.universe_size)
            if self._or.decode(sigma[item * lam : (item + 1) * lam], n_clients)
        }


class SetIntersectionAfe(SetUnionAfe):
    """Intersection of subsets (AND per item, via De Morgan)."""

    leakage = "the exact intersection of the clients' sets"

    def __init__(self, universe_size: int, lambda_bits: int = 80) -> None:
        super().__init__(universe_size, lambda_bits)
        self._and = BoolAndAfe(lambda_bits)
        self.name = f"set-intersection-{universe_size}"

    def encode(self, members: Sequence[int], rng=None) -> list[int]:
        member_set = set(members)
        if member_set and (min(member_set) < 0 or max(member_set) >= self.universe_size):
            raise AfeError("set member outside the universe")
        out: list[int] = []
        for item in range(self.universe_size):
            out.extend(self._and.encode(item in member_set, rng))
        return out

    def decode(self, sigma: Sequence[int], n_clients: int) -> set[int]:
        if len(sigma) != self.k:
            raise AfeError("wrong sigma length")
        lam = self._and.lambda_bits
        return {
            item
            for item in range(self.universe_size)
            if self._and.decode(sigma[item * lam : (item + 1) * lam], n_clients)
        }
