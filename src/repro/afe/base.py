"""Affine-aggregatable encodings — the AFE interface (Section 5.1, App. F).

An AFE for an aggregation function ``f`` is a triple of algorithms over
a field F and integers ``k' <= k``:

* ``Encode: D -> F^k`` maps a client's data item to a field vector
  (possibly randomized);
* ``Valid: F^k -> {0,1}`` accepts exactly the well-formed encodings —
  here expressed as an arithmetic circuit whose assertion wires must
  all be zero, which is what the SNIP proves;
* ``Decode: F^k' -> A`` recovers ``f(x_1..x_n)`` from the *sum* of the
  (truncated) encodings.

The privacy contract: the truncated sum reveals only ``f-hat``, a
function that usually equals ``f`` but for some encodings leaks a
little more (e.g. the variance AFE also reveals the mean).  Every
concrete AFE documents its leakage in :attr:`Afe.leakage`.
"""

from __future__ import annotations

import abc
import functools
from typing import Any, Sequence

from repro.circuit.circuit import Circuit
from repro.field.prime_field import PrimeField


class AfeError(ValueError):
    """Raised for out-of-domain inputs or malformed aggregates."""


#: cache sentinel distinguishing "not built yet" from a ``None`` circuit
_UNBUILT = object()


def _memoize_valid_circuit(method):
    """Wrap ``valid_circuit`` to build the circuit once per instance.

    Concrete AFEs rebuild the whole gate list on every call; callers
    throughout the stack (the client, the server pipeline, the workload
    catalog's ``mul_gates`` property) call it freely.  One instance ==
    one circuit also makes the compiled-plan cache
    (:func:`repro.circuit.compiled.compile_circuit`, keyed by circuit
    identity) hit across those layers instead of recompiling per call
    site.
    """

    @functools.wraps(method)
    def wrapper(self):
        cached = getattr(self, "_valid_circuit_cache", _UNBUILT)
        if cached is _UNBUILT:
            cached = method(self)
            self._valid_circuit_cache = cached
        return cached

    wrapper._afe_memoized = True
    return wrapper


class Afe(abc.ABC):
    """Abstract affine-aggregatable encoding.

    Subclasses set ``field``, ``k`` (encoding length), ``k_prime``
    (aggregated prefix length), ``name`` and ``leakage``, and implement
    the three algorithms.  ``valid_circuit()`` returns ``None`` when
    *every* vector in F^k is a valid encoding (the boolean OR/AND
    family) — the protocol layer then skips the SNIP entirely.
    """

    field: PrimeField
    k: int
    k_prime: int
    name: str = "afe"
    #: human-readable statement of what the aggregate reveals (f-hat)
    leakage: str = "the aggregation function output only"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        method = cls.__dict__.get("valid_circuit")
        if method is not None and not getattr(
            method, "_afe_memoized", False
        ):
            cls.valid_circuit = _memoize_valid_circuit(method)

    @abc.abstractmethod
    def encode(self, value: Any, rng=None) -> list[int]:
        """Map a data item to its length-k field-vector encoding."""

    def valid_circuit(self) -> Circuit | None:
        """Arithmetic circuit for the Valid predicate, or None if all
        of F^k is valid.

        Overrides are memoized per instance (the circuit is built on
        first call and reused), so callers may invoke this freely.
        """
        return None

    @abc.abstractmethod
    def decode(self, sigma: Sequence[int], n_clients: int) -> Any:
        """Recover the aggregate from the summed, truncated encodings."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def truncate(self, encoding: Sequence[int]) -> list[int]:
        """Keep the first k' components (the aggregated prefix)."""
        if len(encoding) != self.k:
            raise AfeError(
                f"{self.name}: encoding length {len(encoding)} != k={self.k}"
            )
        return list(encoding[: self.k_prime])

    def aggregate(self, encodings: Sequence[Sequence[int]]) -> list[int]:
        """Reference aggregation: sum of truncated encodings.

        The real system accumulates shares server-side; this plaintext
        path is used by tests and by decode-level tooling.
        """
        if not encodings:
            raise AfeError(f"{self.name}: nothing to aggregate")
        return self.field.vec_sum([self.truncate(e) for e in encodings])

    def roundtrip(self, values: Sequence[Any], rng=None) -> Any:
        """Encode many values, aggregate, decode — the AFE correctness
        property (Definition 11) as an executable method."""
        encodings = [self.encode(v, rng) for v in values]
        return self.decode(self.aggregate(encodings), len(values))

    def check_valid(self, encoding: Sequence[int]) -> bool:
        """Plaintext Valid(): run the circuit directly (no SNIP)."""
        circuit = self.valid_circuit()
        if circuit is None:
            return len(encoding) == self.k
        if len(encoding) != self.k:
            return False
        return circuit.check(self.field, encoding)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, k={self.k}, "
            f"k_prime={self.k_prime}, field={self.field.name})"
        )


def bits_of(value: int, n_bits: int) -> list[int]:
    """Little-endian binary digits of ``value`` (AfeError if too wide)."""
    if value < 0 or value >= (1 << n_bits):
        raise AfeError(f"value {value} does not fit in {n_bits} bits")
    return [(value >> i) & 1 for i in range(n_bits)]


def check_field_capacity(
    field: PrimeField, max_value: int, n_clients_hint: int
) -> None:
    """Guard against aggregate overflow: the modulus must exceed the
    largest possible sum (Section 3's "does not overflow" condition)."""
    if max_value * n_clients_hint >= field.modulus:
        raise AfeError(
            f"field {field.name} too small: {n_clients_hint} clients with "
            f"values up to {max_value} could overflow the modulus"
        )
