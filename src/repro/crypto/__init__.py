"""Crypto substrate: stream cipher, HKDF, ECIES box, Schnorr signatures."""

from repro.crypto.box import (
    BoxKeyPair,
    box_overhead,
    open_box,
    seal,
    sealed_overhead,
)
from repro.crypto.primitives import (
    KEY_SIZE,
    MAC_SIZE,
    NONCE_SIZE,
    CryptoError,
    hkdf_sha256,
    keystream,
    mac_tag,
    mac_verify,
    stream_xor,
)
from repro.crypto.sign import SigningKeyPair, sign, verify, verify_or_raise

__all__ = [
    "BoxKeyPair",
    "box_overhead",
    "open_box",
    "seal",
    "sealed_overhead",
    "KEY_SIZE",
    "MAC_SIZE",
    "NONCE_SIZE",
    "CryptoError",
    "hkdf_sha256",
    "keystream",
    "mac_tag",
    "mac_verify",
    "stream_xor",
    "SigningKeyPair",
    "sign",
    "verify",
    "verify_or_raise",
]
