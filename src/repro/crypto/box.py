"""ECIES-style authenticated public-key encryption ("box").

Stands in for NaCl's box primitive (Section 6: "Clients encrypt and
sign their messages to servers using NaCl's 'box' primitive, which
obviates the need for client-to-server TLS connections").

seal:   ephemeral ECDH against the recipient's public key ->
        HKDF -> (stream key, mac key) -> ciphertext || tag,
        prefixed with the ephemeral public point.
open:   recompute the shared secret, verify, decrypt.

Both operations take optional *associated data*: cleartext bytes that
travel alongside the box (the wire envelope of
:mod:`repro.protocol.wire`) and are covered by the MAC without being
encrypted.  The tag binds ``len(ad) || ad || ciphertext``, so grafting
one box onto another message's associated data fails authentication.

One scalar multiplication per seal on the sender side (plus one to
make the ephemeral key) — the "single public-key encryption" per
client submission that Figure 7's analysis counts.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.crypto.primitives import (
    KEY_SIZE,
    MAC_SIZE,
    CryptoError,
    hkdf_sha256,
    mac_tag,
    mac_verify,
    stream_xor,
)
from repro.ec.p256 import GENERATOR, Point, random_scalar, scalar_mult


@dataclass(frozen=True)
class BoxKeyPair:
    """A long-term decryption key pair for one server."""

    secret: int
    public: Point

    @classmethod
    def generate(cls, rng=None) -> "BoxKeyPair":
        # Secrets must come from the OS CSPRNG by default; a seeded
        # Mersenne Twister is only acceptable when a test injects it.
        if rng is None:
            rng = _random.SystemRandom()
        secret = random_scalar(rng)
        return cls(secret=secret, public=scalar_mult(secret, GENERATOR))


_POINT_SIZE = 33

#: associated data is length-prefixed (u32) into the MAC input, so the
#: ad/ciphertext boundary is unambiguous; bound the length accordingly
_MAX_AD = (1 << 32) - 1


def _derive_keys(shared: Point, ephemeral_pub: Point) -> tuple[bytes, bytes]:
    ikm = shared.encode() + ephemeral_pub.encode()
    material = hkdf_sha256(ikm, salt=b"prio-box", info=b"keys", length=2 * KEY_SIZE)
    return material[:KEY_SIZE], material[KEY_SIZE:]


def _mac_input(associated_data: bytes, ciphertext: bytes) -> bytes:
    if len(associated_data) > _MAX_AD:
        raise CryptoError("associated data too large to authenticate")
    return (
        len(associated_data).to_bytes(4, "big")
        + associated_data
        + ciphertext
    )


def seal(
    recipient_public: Point,
    plaintext: bytes,
    rng=None,
    associated_data: bytes = b"",
) -> bytes:
    """Encrypt-and-authenticate ``plaintext`` to the recipient.

    ``associated_data`` is authenticated but not encrypted (and not
    included in the output): the opener must present the same bytes.
    """
    if rng is None:
        rng = _random.SystemRandom()
    ephemeral_secret = random_scalar(rng)
    ephemeral_pub = scalar_mult(ephemeral_secret, GENERATOR)
    shared = scalar_mult(ephemeral_secret, recipient_public)
    enc_key, mac_key = _derive_keys(shared, ephemeral_pub)
    nonce = ephemeral_pub.encode()[:16]
    ciphertext = stream_xor(enc_key, nonce, plaintext)
    tag = mac_tag(mac_key, _mac_input(associated_data, ciphertext))
    return ephemeral_pub.encode() + ciphertext + tag


def open_box(
    keypair: BoxKeyPair,
    sealed: bytes,
    associated_data: bytes = b"",
) -> bytes:
    """Verify and decrypt a sealed box; raises CryptoError on tamper."""
    if len(sealed) < _POINT_SIZE + MAC_SIZE:
        raise CryptoError("sealed box too short")
    try:
        ephemeral_pub = Point.decode(sealed[:_POINT_SIZE])
    except ValueError as exc:
        # Point.decode raises EcError (a bare ValueError); untrusted
        # bytes must surface as a typed crypto failure so batch callers
        # can poison only the offender.
        raise CryptoError("malformed ephemeral point in sealed box") from exc
    ciphertext = sealed[_POINT_SIZE:-MAC_SIZE]
    tag = sealed[-MAC_SIZE:]
    shared = scalar_mult(keypair.secret, ephemeral_pub)
    enc_key, mac_key = _derive_keys(shared, ephemeral_pub)
    if not mac_verify(mac_key, _mac_input(associated_data, ciphertext), tag):
        raise CryptoError("box authentication failed")
    nonce = ephemeral_pub.encode()[:16]
    return stream_xor(enc_key, nonce, ciphertext)


def box_overhead() -> int:
    """Bytes the box itself adds over its plaintext (point + tag)."""
    return _POINT_SIZE + MAC_SIZE


def sealed_overhead() -> int:
    """Bytes added per sealed *packet* (for wire-format accounting).

    A sealed packet on the wire is ``envelope || box``: the 21-byte
    cleartext envelope (:data:`repro.protocol.wire.ENVELOPE_SIZE`)
    plus the box's own point-and-tag overhead.
    """
    from repro.protocol.wire import ENVELOPE_SIZE

    return box_overhead() + ENVELOPE_SIZE
