"""ECIES-style authenticated public-key encryption ("box").

Stands in for NaCl's box primitive (Section 6: "Clients encrypt and
sign their messages to servers using NaCl's 'box' primitive, which
obviates the need for client-to-server TLS connections").

seal:   ephemeral ECDH against the recipient's public key ->
        HKDF -> (stream key, mac key) -> ciphertext || tag,
        prefixed with the ephemeral public point.
open:   recompute the shared secret, verify, decrypt.

One scalar multiplication per seal on the sender side (plus one to
make the ephemeral key) — the "single public-key encryption" per
client submission that Figure 7's analysis counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.primitives import (
    KEY_SIZE,
    MAC_SIZE,
    CryptoError,
    hkdf_sha256,
    mac_tag,
    mac_verify,
    stream_xor,
)
from repro.ec.p256 import GENERATOR, Point, random_scalar, scalar_mult


@dataclass(frozen=True)
class BoxKeyPair:
    """A long-term decryption key pair for one server."""

    secret: int
    public: Point

    @classmethod
    def generate(cls, rng=None) -> "BoxKeyPair":
        if rng is None:
            import random as _random

            rng = _random.Random(os.urandom(16))
        secret = random_scalar(rng)
        return cls(secret=secret, public=scalar_mult(secret, GENERATOR))


_POINT_SIZE = 33


def _derive_keys(shared: Point, ephemeral_pub: Point) -> tuple[bytes, bytes]:
    ikm = shared.encode() + ephemeral_pub.encode()
    material = hkdf_sha256(ikm, salt=b"prio-box", info=b"keys", length=2 * KEY_SIZE)
    return material[:KEY_SIZE], material[KEY_SIZE:]


def seal(recipient_public: Point, plaintext: bytes, rng=None) -> bytes:
    """Encrypt-and-authenticate ``plaintext`` to the recipient."""
    if rng is None:
        import random as _random

        rng = _random.Random(os.urandom(16))
    ephemeral_secret = random_scalar(rng)
    ephemeral_pub = scalar_mult(ephemeral_secret, GENERATOR)
    shared = scalar_mult(ephemeral_secret, recipient_public)
    enc_key, mac_key = _derive_keys(shared, ephemeral_pub)
    nonce = ephemeral_pub.encode()[:16]
    ciphertext = stream_xor(enc_key, nonce, plaintext)
    tag = mac_tag(mac_key, ciphertext)
    return ephemeral_pub.encode() + ciphertext + tag


def open_box(keypair: BoxKeyPair, sealed: bytes) -> bytes:
    """Verify and decrypt a sealed box; raises CryptoError on tamper."""
    if len(sealed) < _POINT_SIZE + MAC_SIZE:
        raise CryptoError("sealed box too short")
    ephemeral_pub = Point.decode(sealed[:_POINT_SIZE])
    ciphertext = sealed[_POINT_SIZE:-MAC_SIZE]
    tag = sealed[-MAC_SIZE:]
    shared = scalar_mult(keypair.secret, ephemeral_pub)
    enc_key, mac_key = _derive_keys(shared, ephemeral_pub)
    if not mac_verify(mac_key, ciphertext, tag):
        raise CryptoError("box authentication failed")
    nonce = ephemeral_pub.encode()[:16]
    return stream_xor(enc_key, nonce, ciphertext)


def sealed_overhead() -> int:
    """Bytes added per sealed packet (for wire-format accounting)."""
    return _POINT_SIZE + MAC_SIZE
