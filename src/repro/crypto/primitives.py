"""Symmetric primitives: XOF stream cipher, HKDF, and MAC tags.

The paper's prototype encrypts client->server packets with NaCl's
"box" (Curve25519 + XSalsa20-Poly1305).  Offline, the closest
buildable equivalent from the standard library is:

* key agreement over our own P-256 (:mod:`repro.crypto.box`),
* HKDF-SHA256 for key derivation (RFC 5869, implemented here),
* a SHAKE-256 keystream XOR cipher for confidentiality, and
* HMAC-SHA256 (truncated to 16 bytes) for integrity.

The message flow, per-packet overhead structure, and "one public-key
operation per client submission" property all match the original.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module


class CryptoError(ValueError):
    """Raised on authentication failures or malformed material."""


MAC_SIZE = 16
KEY_SIZE = 32
NONCE_SIZE = 16


def hkdf_sha256(
    ikm: bytes, salt: bytes, info: bytes, length: int
) -> bytes:
    """HKDF (extract-then-expand) per RFC 5869 with SHA-256."""
    if length > 255 * 32:
        raise CryptoError("HKDF output too long")
    prk = hmac_module.new(salt or b"\x00" * 32, ikm, hashlib.sha256).digest()
    out = b""
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac_module.new(
            prk, block + info + bytes([counter]), hashlib.sha256
        ).digest()
        out += block
        counter += 1
    return out[:length]


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """A SHAKE-256 keystream: PRF(key, nonce) expanded to ``length``."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"key must be {KEY_SIZE} bytes")
    return hashlib.shake_256(b"prio-stream" + key + nonce).digest(length)


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt by XOR with the keystream (an involution)."""
    stream = keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def mac_tag(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 tag truncated to MAC_SIZE bytes."""
    return hmac_module.new(key, data, hashlib.sha256).digest()[:MAC_SIZE]


def mac_verify(key: bytes, data: bytes, tag: bytes) -> bool:
    return hmac_module.compare_digest(mac_tag(key, data), tag)
