"""Schnorr signatures over P-256.

Used by the protocol layer's client-registration defence against the
selective denial-of-service / Sybil attacks of Section 7: "Prio clients
sign their submissions with the signing key corresponding to their
registered public key and the servers wait to publish their accumulator
values until a threshold number of registered clients have submitted
valid messages."

Standard Fiat-Shamir Schnorr:  R = kG,  e = H(R || pub || msg),
s = k + e*x (mod order);  verify  sG == R + e*Pub.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.crypto.primitives import CryptoError
from repro.ec.p256 import GENERATOR, ORDER, Point, random_scalar, scalar_mult


@dataclass(frozen=True)
class SigningKeyPair:
    secret: int
    public: Point

    @classmethod
    def generate(cls, rng=None) -> "SigningKeyPair":
        if rng is None:
            import random as _random

            rng = _random.Random(os.urandom(16))
        secret = random_scalar(rng)
        return cls(secret=secret, public=scalar_mult(secret, GENERATOR))


def _challenge(nonce_point: Point, public: Point, message: bytes) -> int:
    digest = hashlib.sha256(
        b"prio-schnorr" + nonce_point.encode() + public.encode() + message
    ).digest()
    return int.from_bytes(digest, "big") % ORDER


def sign(keypair: SigningKeyPair, message: bytes, rng=None) -> bytes:
    """Produce a 65-byte signature (33-byte R point + 32-byte scalar)."""
    if rng is None:
        import random as _random

        rng = _random.Random(os.urandom(16))
    k = random_scalar(rng)
    nonce_point = scalar_mult(k, GENERATOR)
    e = _challenge(nonce_point, keypair.public, message)
    s = (k + e * keypair.secret) % ORDER
    return nonce_point.encode() + s.to_bytes(32, "big")


def verify(public: Point, message: bytes, signature: bytes) -> bool:
    """Check a signature; False (never an exception) on any mismatch."""
    if len(signature) != 33 + 32:
        return False
    try:
        nonce_point = Point.decode(signature[:33])
    except Exception:
        return False
    s = int.from_bytes(signature[33:], "big")
    if s >= ORDER:
        return False
    e = _challenge(nonce_point, public, message)
    lhs = scalar_mult(s, GENERATOR)
    rhs = nonce_point + scalar_mult(e, public)
    return lhs == rhs


def verify_or_raise(public: Point, message: bytes, signature: bytes) -> None:
    if not verify(public, message, signature):
        raise CryptoError("bad signature")
