"""Client registration and publish gating (the Section 7 defences).

Prio publishes *exact* aggregates, so a network adversary who blocks
every honest client but one can read that client's value out of the
"aggregate" (the selective denial-of-service attack).  The paper's
standard defence:

    "have the servers keep a list of public keys of registered clients
    (e.g., the students enrolled at a university). Prio clients sign
    their submissions with the signing key corresponding to their
    registered public key and the servers wait to publish their
    accumulator values until a threshold number of registered clients
    have submitted valid messages."

This module implements that defence on top of the base pipeline:

* :class:`ClientRegistry` — the servers' shared list of registered
  Schnorr public keys;
* :class:`RegisteredClient` — wraps :class:`PrioClient`, signing every
  packet with the client's registered key;
* :class:`GatedServer` — wraps :class:`PrioServer`, rejecting packets
  from unregistered keys or with bad signatures, counting *distinct*
  registered contributors (a Sybil submitting twice counts once), and
  refusing to publish below the threshold.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass

from repro.afe.base import Afe
from repro.crypto.sign import SigningKeyPair, sign, verify
from repro.ec.p256 import Point
from repro.protocol.client import PrioClient
from repro.protocol.server import PendingSubmission, PrioServer, ProtocolError
from repro.protocol.wire import ClientPacket
from repro.snip.verifier import ServerRandomness


class RegistrationError(ProtocolError):
    """Raised for unregistered clients, bad signatures, or early publish."""


class ClientRegistry:
    """The deployment's list of registered client public keys."""

    def __init__(self) -> None:
        self._keys: dict[bytes, Point] = {}

    def register(self, public: Point) -> bytes:
        """Add a public key; returns the client id (the encoded point)."""
        client_id = public.encode()
        self._keys[client_id] = public
        return client_id

    def is_registered(self, client_id: bytes) -> bool:
        return client_id in self._keys

    def public_key(self, client_id: bytes) -> Point:
        if client_id not in self._keys:
            raise RegistrationError("unknown client id")
        return self._keys[client_id]

    def __len__(self) -> int:
        return len(self._keys)


@dataclass
class SignedPacket:
    """A wire packet plus the submitting client's identity proof."""

    packet: ClientPacket
    client_id: bytes
    signature: bytes

    def signed_bytes(self) -> bytes:
        return self.packet.encode()


class RegisteredClient:
    """A Prio client that signs every packet with its registered key."""

    def __init__(
        self,
        afe: Afe,
        n_servers: int,
        keypair: SigningKeyPair,
        rng=None,
    ) -> None:
        self.keypair = keypair
        self.client_id = keypair.public.encode()
        self.rng = rng if rng is not None else _random.Random(os.urandom(16))
        self._inner = PrioClient(afe, n_servers, rng=self.rng)

    def prepare_submission(self, value) -> list[SignedPacket]:
        submission = self._inner.prepare_submission(value)
        return [
            SignedPacket(
                packet=packet,
                client_id=self.client_id,
                signature=sign(self.keypair, packet.encode(), self.rng),
            )
            for packet in submission.packets
        ]


class GatedServer(PrioServer):
    """A PrioServer that enforces registration and publish gating."""

    def __init__(
        self,
        afe: Afe,
        server_index: int,
        n_servers: int,
        randomness: ServerRandomness,
        registry: ClientRegistry,
        publish_threshold: int,
        epoch_size: int = 1024,
    ) -> None:
        super().__init__(
            afe, server_index, n_servers, randomness, epoch_size=epoch_size
        )
        self.registry = registry
        self.publish_threshold = publish_threshold
        self._contributors: set[bytes] = set()

    def receive_signed(self, signed: SignedPacket) -> PendingSubmission:
        if not self.registry.is_registered(signed.client_id):
            raise RegistrationError("client is not registered")
        public = self.registry.public_key(signed.client_id)
        if not verify(public, signed.signed_bytes(), signed.signature):
            raise RegistrationError("bad submission signature")
        pending = self.receive(signed.packet)
        # Tag the pending submission with its contributor so acceptance
        # can be attributed (one Sybil key = one contributor).
        pending.contributor_id = signed.client_id  # type: ignore[attr-defined]
        return pending

    def _note_accepted(self, pending: PendingSubmission) -> None:
        # Hooks both Aggregate paths (scalar accumulate and the
        # vectorized accumulate_batch).
        super()._note_accepted(pending)
        contributor = getattr(pending, "contributor_id", None)
        if contributor is not None:
            self._contributors.add(contributor)

    @property
    def n_contributors(self) -> int:
        return len(self._contributors)

    def publish(self) -> list[int]:
        """Release the accumulator only past the contributor threshold.

        Below the threshold the aggregate could be dominated by an
        adversary's own values (the selective-DoS attack), so the
        server refuses.
        """
        if self.n_contributors < self.publish_threshold:
            raise RegistrationError(
                f"only {self.n_contributors} distinct registered clients "
                f"contributed; refusing to publish below the threshold of "
                f"{self.publish_threshold}"
            )
        return super().publish()


class GatedDeployment:
    """In-process deployment with registration + publish gating."""

    def __init__(
        self,
        afe: Afe,
        n_servers: int,
        publish_threshold: int,
        seed: bytes = b"gated-seed",
    ) -> None:
        if n_servers < 2:
            raise ProtocolError("Prio needs at least two servers")
        self.afe = afe
        self.registry = ClientRegistry()
        randomness = ServerRandomness(seed)
        self.servers = [
            GatedServer(
                afe, i, n_servers, randomness,
                registry=self.registry,
                publish_threshold=publish_threshold,
            )
            for i in range(n_servers)
        ]
        self.n_servers = n_servers

    def new_client(self, rng=None) -> RegisteredClient:
        keypair = SigningKeyPair.generate(rng)
        self.registry.register(keypair.public)
        return RegisteredClient(self.afe, self.n_servers, keypair, rng=rng)

    def deliver(self, signed_packets: list[SignedPacket]) -> bool:
        pendings = []
        try:
            for server, signed in zip(self.servers, signed_packets):
                pendings.append(server.receive_signed(signed))
        except ProtocolError:
            return False
        parties, round1 = [], []
        for server, pending in zip(self.servers, pendings):
            party, msg = server.begin_verification(pending)
            parties.append(party)
            round1.append(msg)
        round2 = [
            server.finish_verification(party, round1)
            for server, party in zip(self.servers, parties)
        ]
        accepted = self.servers[0].decide(round2)
        for server, pending in zip(self.servers, pendings):
            if accepted:
                server.accumulate(pending)
            else:
                server.reject(pending)
        return accepted

    def publish(self):
        shares = [server.publish() for server in self.servers]
        sigma = self.afe.field.vec_sum(shares)
        return self.afe.decode(sigma, self.servers[0].n_accepted)
