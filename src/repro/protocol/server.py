"""The Prio server (Appendix H, steps 2-4: Validate, Aggregate, Publish).

A :class:`PrioServer` holds one share of every client submission,
participates in the two-round SNIP verification with its peers, and on
success folds the truncated encoding share into its accumulator.
Publishing reveals only the accumulator — the sum of many clients'
shares — never an individual share.

Replay protection: submission ids are cached per epoch and duplicates
rejected before verification (the paper notes Prio packets "can be
replay-protected at the servers"); ids received but not yet decided
count too, so a replay *inside* a verification batch is caught.

The ``begin_verification_batch``/``finish_verification_batch``/
``decide_batch`` triple is the vectorized hot path: one
:class:`~repro.snip.verifier.BatchedSnipVerifierParty` sweep covers a
whole batch of submissions, with per-submission decisions.
"""

from __future__ import annotations

from repro.afe.base import Afe
from repro.crypto.box import BoxKeyPair, CryptoError, open_box
from repro.field.batch import (
    BatchVector,
    assemble_rows,
    decode_bytes_batch,
    tiny_batch_force_pure,
)
from repro.field.prime_field import FieldError
from repro.protocol.replay import ReplayCache, resolve_replay_cache
from repro.protocol.wire import (
    ENVELOPE_SIZE,
    ClientPacket,
    PacketKind,
    WireError,
    parse_envelope,
)
from repro.sharing.prg import SEED_SIZE, expand_seed, expand_seed_batch
from repro.snip.proof import SnipProofShare, proof_num_elements
from repro.snip.verifier import (
    BatchedSnipVerifierParty,
    Round1Batch,
    Round1Message,
    Round2Batch,
    Round2Message,
    ServerRandomness,
    SnipVerifierParty,
    VerificationContext,
)


class ProtocolError(ValueError):
    """Raised on protocol violations (wrong server, replayed id, ...)."""


class PendingSubmission:
    """A received, de-framed share awaiting verification.

    The share vector may be *latent*: a SEED packet stores just its
    16-byte PRG seed (expanded in one vectorized sweep when the batch
    is verified) and a plane-ingested EXPLICIT packet stores a row of
    limb planes.  ``x_share`` / ``proof_share`` materialize Python
    ints on first access — the scalar-verification fallback; the
    batched pipeline never touches them.
    """

    def __init__(
        self,
        submission_id: bytes,
        x_share: "list[int] | None" = None,
        proof_share: "SnipProofShare | None" = None,
    ) -> None:
        self.submission_id = submission_id
        self._x_share = x_share
        self._proof_share = proof_share
        #: latent sources (at most one is set before materialization)
        self._seed: bytes | None = None
        self._source: "tuple[BatchVector, int] | None" = None
        #: framing metadata needed to materialize and split lazily
        self._field = None
        self._n_inputs = len(x_share) if x_share is not None else None
        self._n_mul_gates: int | None = None
        self._n_elements: int | None = None

    @property
    def x_share(self) -> list[int]:
        self._materialize()
        return self._x_share

    @property
    def proof_share(self) -> "SnipProofShare | None":
        self._materialize()
        return self._proof_share

    def _materialize(self) -> None:
        if self._x_share is not None:
            return
        if self._source is not None:
            vector = self._source[0].row_ints(self._source[1])
        elif self._seed is not None:
            vector = expand_seed(self._field, self._seed, self._n_elements)
        else:
            raise ProtocolError("pending submission has no share source")
        k = self._n_inputs
        self._x_share = vector[:k]
        if self._n_mul_gates is not None:
            self._proof_share = SnipProofShare.unflatten(
                self._field, vector[k:], self._n_mul_gates
            )

    def release(self) -> None:
        """Drop every share source after the submission is decided.

        Long-running servers hold decided :class:`PendingSubmission`
        objects only for their ids; without this, each one would pin
        its materialized per-client bigints (``x_share`` /
        ``proof_share``) — and, transitively, whole ingested plane
        matrices — for as long as the caller keeps the handle.
        """
        self._x_share = None
        self._proof_share = None
        self._seed = None
        self._source = None


class PrioServer:
    """One aggregation server for a single collection task."""

    def __init__(
        self,
        afe: Afe,
        server_index: int,
        n_servers: int,
        randomness: ServerRandomness,
        epoch_size: int = 1024,
        box_keypair: BoxKeyPair | None = None,
        force_pure_backend: bool | None = None,
        replay_cache: "ReplayCache | str | None" = None,
    ) -> None:
        self.afe = afe
        self.field = afe.field
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.randomness = randomness
        self.epoch_size = epoch_size
        self.box_keypair = box_keypair
        #: batch-backend override (None = auto-select numpy/pure)
        self.force_pure_backend = force_pure_backend
        self.circuit = afe.valid_circuit()

        #: the Aggregate state, plane-resident: decoded to Python ints
        #: only at :meth:`publish` (or through the compatibility
        #: :attr:`accumulator` property)
        self._accumulator = BatchVector.zeros(
            self.field, (afe.k_prime,),
            tiny_batch_force_pure(afe.k_prime, force_pure_backend),
        )
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_replayed = 0
        #: replay protection behind the pluggable cache seam
        #: (:mod:`repro.protocol.replay`): the in-memory reference
        #: implementation by default, a tiered L1/L2 cache at scale
        self._replay: ReplayCache = resolve_replay_cache(replay_cache)
        #: ids received but not yet accumulated/rejected — closes the
        #: replay window *inside* a verification batch, where the first
        #: copy has not reached the replay cache yet
        self._pending_ids: set[bytes] = set()
        self._submissions_this_epoch = 0
        self._epoch = 0
        self._ctx: VerificationContext | None = None
        #: server-to-server field elements broadcast (Figure 6 metric)
        self.elements_broadcast = 0

    @property
    def _seen_ids(self) -> ReplayCache:
        """Compatibility view of the replay cache (``in``, ``len``,
        iteration, ``clear`` — everything the old ``set`` offered)."""
        return self._replay

    @property
    def accumulator(self) -> list[int]:
        """The accumulator as Python ints (decodes the limb plane)."""
        return self._accumulator.to_ints()

    @accumulator.setter
    def accumulator(self, values) -> None:
        """Replace the accumulator (e.g. after DP noising)."""
        self._accumulator = BatchVector.from_ints(
            self.field, list(values), self.force_pure_backend
        )

    # ------------------------------------------------------------------
    # Epoch / context management (the fixed-r optimization)
    # ------------------------------------------------------------------

    def _context(self) -> VerificationContext | None:
        if self.circuit is None:
            return None
        if self._ctx is None or self._submissions_this_epoch >= self.epoch_size:
            if self._submissions_this_epoch >= self.epoch_size:
                self._epoch += 1
                self._submissions_this_epoch = 0
            challenge = self.randomness.challenge(
                self.field, self.circuit, self._epoch
            )
            self._ctx = VerificationContext(self.field, self.circuit, challenge)
        return self._ctx

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def _batch_force(self, batch_size: int) -> "bool | None":
        """Backend choice for one ingest batch of ``batch_size`` rows.

        Explicit ``force_pure_backend`` wins; otherwise tiny batches
        (a batch of one over a small circuit) drop to the pure backend,
        which beats numpy dispatch overhead at that size.
        """
        k = self.afe.k
        m = self.circuit.n_mul_gates if self.circuit is not None else None
        n = k if m is None else k + proof_num_elements(m)
        return tiny_batch_force_pure(
            batch_size * n, self.force_pure_backend
        )

    def receive_sealed(self, sealed: bytes) -> PendingSubmission:
        """Receive one sealed packet (a batch of one).

        Same kernels, checks, and typed errors as
        :meth:`receive_sealed_batch`; the raised exception is the
        per-position result the batch path would have reported.
        """
        result = self.receive_sealed_batch([sealed])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def receive_sealed_batch(
        self, payloads: "list[bytes]"
    ) -> "list[PendingSubmission | Exception]":
        """Open a batch of sealed packets into the fused wire decode.

        ``payloads`` holds one ``envelope || box`` sealed packet per
        position (:mod:`repro.protocol.wire` envelope layout).  Per
        position: the envelope parses (cheap slice), the wrong-server
        and replay checks run against the *cleartext* envelope fields —
        before paying the two scalar multiplications of
        :func:`~repro.crypto.box.open_box` — then the box opens with
        the envelope as associated data (so a grafted envelope fails
        authentication), and the opened packet's inner header must
        agree with its envelope.  Survivors join one fused
        :meth:`receive_batch` sweep; every failure rejects its
        position alone with the typed error object.
        """
        if self.box_keypair is None:
            raise ProtocolError("server has no box key configured")
        out: "list[PendingSubmission | Exception]" = [None] * len(payloads)
        opened: "list[tuple[int, ClientPacket]]" = []
        for i, data in enumerate(payloads):
            data = bytes(data)
            try:
                sid, server_index, box_bytes = parse_envelope(data)
            except WireError as exc:
                out[i] = exc
                continue
            if server_index != self.server_index:
                out[i] = ProtocolError(
                    f"packet for server {server_index} delivered to "
                    f"server {self.server_index}"
                )
                continue
            # Replay pre-check on the envelope sid: a replayed upload
            # must not cost the server an ECDH.  An id that passes here
            # is re-checked (authenticated, inside receive_batch) after
            # the box opens, so a lying envelope cannot smuggle a
            # replay through.
            if sid in self._seen_ids or sid in self._pending_ids:
                self.n_replayed += 1
                out[i] = ProtocolError("replayed submission id")
                continue
            envelope = data[:ENVELOPE_SIZE]
            try:
                plaintext = open_box(
                    self.box_keypair, box_bytes, associated_data=envelope
                )
            except CryptoError as exc:
                out[i] = exc
                continue
            try:
                packet = ClientPacket.decode(plaintext, self.field)
            except WireError as exc:
                out[i] = exc
                continue
            if (
                packet.submission_id != sid
                or packet.server_index != server_index
            ):
                out[i] = ProtocolError(
                    "sealed packet header disagrees with its envelope"
                )
                continue
            opened.append((i, packet))
        if opened:
            results = self.receive_batch([pkt for _, pkt in opened])
            for (i, _), result in zip(opened, results):
                out[i] = result
        return out

    def _receive_framed(self, packet: ClientPacket) -> PendingSubmission:
        """Frame-validate one packet; leaves EXPLICIT bodies undecoded.

        Wrong server, replay, body-size inconsistency, and wrong
        share-vector length all raise here.  On success the packet's id
        is pending (replay-protected), and the caller owns the body
        decode — per packet in :meth:`receive`, batched with offender
        isolation in :meth:`receive_batch`.
        """
        if packet.server_index != self.server_index:
            raise ProtocolError(
                f"packet for server {packet.server_index} delivered to "
                f"server {self.server_index}"
            )
        if (
            packet.submission_id in self._seen_ids
            or packet.submission_id in self._pending_ids
        ):
            self.n_replayed += 1
            raise ProtocolError("replayed submission id")
        k = self.afe.k
        m = self.circuit.n_mul_gates if self.circuit is not None else None
        expected = k if m is None else k + proof_num_elements(m)
        if packet.kind is PacketKind.SEED:
            if len(packet.body) != SEED_SIZE:
                raise WireError("seed packet has wrong body size")
            n = packet.n_elements
        else:
            size = self.field.encoded_size
            if len(packet.body) != packet.n_elements * size:
                raise WireError("explicit packet has wrong body size")
            n = packet.n_elements
        if n != expected:
            if m is None:
                raise WireError("share vector has wrong length")
            raise WireError(
                f"share vector has {n} elements, expected {expected}"
            )
        pending = PendingSubmission(packet.submission_id)
        pending._field = self.field
        pending._n_inputs = k
        pending._n_mul_gates = m
        pending._n_elements = n
        if packet.kind is PacketKind.SEED:
            pending._seed = packet.body
        self._pending_ids.add(packet.submission_id)
        return pending

    def receive(self, packet: ClientPacket) -> PendingSubmission:
        """De-frame a packet into a (possibly latent) pending submission.

        Framing is validated eagerly — wrong server, replay, body-size
        inconsistency, wrong share-vector length, and (for EXPLICIT
        bodies) out-of-range elements all raise here, so a bad upload
        rejects alone.  The share *values* stay zero-copy: EXPLICIT
        bodies run through the checked batch byte decoder (a batch of
        one — the same kernel, range rejection, and wire hardening as
        every other batch size; no unchecked scalar decode remains),
        SEED bodies are kept as seeds and expanded in one vectorized
        sweep per verification batch.
        """
        pending = self._receive_framed(packet)
        if packet.kind is PacketKind.EXPLICIT:
            try:
                # Decode on the configured backend, not the tiny-batch
                # heuristic: a numpy-decoded row joins a later batched
                # assembly by plane copy, where a pure row would be
                # re-encoded element by element.
                pending._source = (
                    decode_bytes_batch(
                        self.field, [packet.body], self.force_pure_backend
                    ),
                    0,
                )
            except FieldError:
                self._pending_ids.discard(packet.submission_id)
                raise
        return pending

    def receive_batch(
        self, packets: "list[ClientPacket]"
    ) -> "list[PendingSubmission | Exception]":
        """Receive a whole batch; per-packet outcomes, one fused decode.

        Semantically equivalent to :meth:`receive` per packet — the
        result list holds a :class:`PendingSubmission` where that call
        would have succeeded and the raised exception object where it
        would have raised — but every EXPLICIT body in the batch
        decodes through a single checked byte-batch sweep.  An
        out-of-range element only evicts the offending packet: its row
        is cut from the batch and the remainder re-decodes (honest
        batches pay exactly one sweep).
        """
        out: "list[PendingSubmission | Exception]" = [None] * len(packets)
        explicit: "list[tuple[int, PendingSubmission, bytes]]" = []
        for i, packet in enumerate(packets):
            try:
                pending = self._receive_framed(packet)
            except (ProtocolError, WireError) as exc:
                out[i] = exc
                continue
            out[i] = pending
            if packet.kind is PacketKind.EXPLICIT:
                explicit.append((i, pending, packet.body))
        while explicit:
            try:
                decoded = decode_bytes_batch(
                    self.field,
                    [body for _, _, body in explicit],
                    self._batch_force(len(explicit)),
                )
            except FieldError as exc:
                row = getattr(exc, "batch_row", None)
                if row is None:
                    # No row attribution: evicting a guessed position
                    # would blame an innocent upload.  Release every
                    # still-pending id of this sweep (no decision was
                    # made) and fail the whole call loudly instead.
                    for result in out:
                        if isinstance(result, PendingSubmission):
                            self.abandon(result)
                    raise
                i, pending, _ = explicit.pop(row)
                self._pending_ids.discard(pending.submission_id)
                out[i] = exc
                continue
            for t, (i, pending, _) in enumerate(explicit):
                pending._source = (decoded, t)
            break
        return out

    def receive_wire_batch(
        self, payloads: "list[bytes]"
    ) -> "list[PendingSubmission | Exception]":
        """Receive a batch straight from wire bytes (the transport seam).

        ``payloads`` holds one encoded :class:`ClientPacket` per
        position, exactly as length-framed off a socket.  Header fields
        parse per packet (a cheap fixed-offset slice — bodies are never
        copied element-wise), and every well-framed packet joins the
        same fused :meth:`receive_batch` sweep; a malformed header
        rejects its position alone.
        """
        out: "list[PendingSubmission | Exception]" = [None] * len(payloads)
        packets: "list[ClientPacket]" = []
        positions: list[int] = []
        for i, data in enumerate(payloads):
            try:
                packets.append(ClientPacket.decode(bytes(data), self.field))
            except WireError as exc:
                out[i] = exc
            else:
                positions.append(i)
        if packets:
            for i, result in zip(positions, self.receive_batch(packets)):
                out[i] = result
        return out

    # ------------------------------------------------------------------
    # Verification rounds (lock-step with peers).  The batched plane
    # forms are the only implementation; the per-submission entry
    # points below them are thin batch-of-one wrappers.
    # ------------------------------------------------------------------

    def _ingest_batch(self, pendings: list[PendingSubmission]) -> BatchVector:
        """Assemble the batch's ``(B, n)`` share matrix, plane-resident.

        All latent SEED packets expand through one vectorized PRG
        sweep; plane-decoded EXPLICIT rows are copied limb-for-limb;
        already-materialized submissions (the scalar fallback) are
        re-encoded.  Each pending is re-pointed at its row of the
        assembled matrix, so later per-submission access (scalar
        verification, lazy ``x_share``, batched accumulation) shares
        the same planes.
        """
        force = self._batch_force(len(pendings))
        seed_pendings = [
            p for p in pendings
            if p._seed is not None and p._source is None and p._x_share is None
        ]
        if seed_pendings:
            expanded = expand_seed_batch(
                self.field,
                [p._seed for p in seed_pendings],
                seed_pendings[0]._n_elements,
                force,
            )
            for row, pending in enumerate(seed_pendings):
                pending._source = (expanded, row)
        sources: list = []
        for pending in pendings:
            if pending._source is not None:
                sources.append(pending._source)
            else:
                row = list(pending.x_share)
                if pending.proof_share is not None:
                    row += pending.proof_share.flatten()
                sources.append(row)
        matrix = assemble_rows(self.field, sources, force)
        for row, pending in enumerate(pendings):
            if pending._x_share is None:
                pending._source = (matrix, row)
        return matrix

    def begin_verification_batch(
        self, pendings: list[PendingSubmission]
    ) -> tuple["BatchedSnipVerifierParty | None", Round1Batch]:
        """Round 1 for a whole batch in one vectorized sweep.

        The entire batch is verified under a single epoch context (the
        context in force when the batch starts; epoch accounting still
        advances per submission, so rotation happens between batches).
        The batch goes wire-planes -> verdict: seeds expand vectorized,
        the share matrix is assembled from limb planes, the party
        consumes it via
        :meth:`~repro.snip.verifier.BatchedSnipVerifierParty.from_share_matrix`,
        and the round-1 broadcast comes back as a plane-form
        :class:`~repro.snip.verifier.Round1Batch` — no per-element
        Python-int crossing anywhere.
        """
        ctx = self._context()
        if ctx is None or not pendings:
            return None, Round1Batch.zeros(
                self.field, len(pendings), self.force_pure_backend
            )
        party = BatchedSnipVerifierParty.from_share_matrix(
            ctx, self.server_index, self.n_servers,
            self._ingest_batch(pendings),
        )
        batch = party.round1_all()
        self.elements_broadcast += 2 * len(pendings)
        return party, batch

    def finish_verification_batch(
        self,
        party: "BatchedSnipVerifierParty | None",
        round1_batches: "list[Round1Batch] | list[list[Round1Message]]",
    ) -> Round2Batch:
        """Round 2: one plane-form broadcast for the whole batch.

        ``round1_batches`` is one :class:`Round1Batch` per server (the
        legacy per-submission message-list layout is still accepted and
        converted by the party).
        """
        if party is None:
            if round1_batches and isinstance(round1_batches[0], Round1Batch):
                n = len(round1_batches[0])       # one batch per server
            else:
                n = len(round1_batches)          # one message list per sub
            return Round2Batch.zeros(
                self.field, n, self.force_pure_backend
            )
        batch = party.round2_all(round1_batches)
        self.elements_broadcast += 2 * len(batch)
        return batch

    def decide_batch(
        self, round2_batches: "list[Round2Batch]"
    ) -> list[bool]:
        """One independent accept/reject decision per submission."""
        if self.circuit is None:
            n = len(round2_batches[0]) if round2_batches else 0
            return [True] * n
        return Round2Batch.decide_all(round2_batches)

    # ------------------------------------------------------------------
    # Per-submission wrappers (a batch of one)
    # ------------------------------------------------------------------

    def begin_verification(
        self, pending: PendingSubmission
    ) -> tuple["BatchedSnipVerifierParty | None", Round1Message]:
        party, batch = self.begin_verification_batch([pending])
        return party, batch.at(0)

    def finish_verification(
        self,
        party: "BatchedSnipVerifierParty | None",
        round1_messages: list[Round1Message],
    ) -> Round2Message:
        return self.finish_verification_batch(
            party, [round1_messages]
        ).at(0)

    def decide(self, round2_messages: list[Round2Message]) -> bool:
        if self.circuit is None:
            return True
        return SnipVerifierParty.decide(self.field, round2_messages)

    # ------------------------------------------------------------------
    # Aggregate / publish
    # ------------------------------------------------------------------

    def accumulate_batch(
        self,
        pendings: list[PendingSubmission],
        decisions: list[bool],
    ) -> None:
        """Apply a batch's decisions: one vectorized Aggregate sweep.

        Accepted rows are truncated, column-summed, and folded into the
        plane-resident accumulator in a single batch operation — the
        Aggregate step consumes planes and produces planes; nothing
        crosses back to Python ints until :meth:`publish`.  Decided
        submissions drop their share sources (:meth:`PendingSubmission
        .release`), so the server retains only ids, not bigints.
        """
        if len(pendings) != len(decisions):
            raise ProtocolError("need one decision per pending submission")
        for pending, accepted in zip(pendings, decisions):
            if not accepted:
                self.reject(pending)
        accepted_pendings = [
            p for p, accepted in zip(pendings, decisions) if accepted
        ]
        if not accepted_pendings:
            return
        shared = (
            accepted_pendings[0]._source[0]
            if accepted_pendings[0]._source is not None
            else None
        )
        if shared is not None and all(
            p._source is not None and p._source[0] is shared
            for p in accepted_pendings
        ):
            # Verification already ingested these rows: reuse the plane
            # matrix directly (whole — the common all-accepted case —
            # or through one row gather).
            indices = [p._source[1] for p in accepted_pendings]
            if indices == list(range(shared.shape[0])):
                rows = shared
            else:
                rows = shared.take_rows(indices)
        else:
            # Proof-free AFEs (and scalar-materialized stragglers) skip
            # begin_verification_batch's ingest; give them the same
            # one-sweep expansion/assembly here.
            rows = self._ingest_batch(accepted_pendings)
        batch_sum = rows.slice_columns(self.afe.k_prime).sum_rows()
        if batch_sum.backend != self._accumulator.backend:
            batch_sum = BatchVector.from_ints(
                self.field, batch_sum.to_ints(),
                self._accumulator.force_pure,
            )
        self._accumulator = self._accumulator + batch_sum
        for pending in accepted_pendings:
            self._note_accepted(pending)

    def accumulate(self, pending: PendingSubmission) -> None:
        """Fold the truncated share into the accumulator (step 3).

        A batch of one — the identical plane-resident Aggregate sweep.
        """
        self.accumulate_batch([pending], [True])

    def _note_accepted(self, pending: PendingSubmission) -> None:
        """Post-accumulation bookkeeping (shared by both Aggregate paths).

        Order matters: the id enters the replay cache *before* leaving
        ``_pending_ids``, so a concurrent replay check (the async
        pipeline receives batch ``N+1`` on executor threads while batch
        ``N`` accumulates) always sees it in at least one set.
        """
        self._replay.add(pending.submission_id)
        self._pending_ids.discard(pending.submission_id)
        self._submissions_this_epoch += 1
        self.n_accepted += 1
        pending.release()

    def reject(self, pending: PendingSubmission) -> None:
        self._replay.add(pending.submission_id)
        self._pending_ids.discard(pending.submission_id)
        self._submissions_this_epoch += 1
        self.n_rejected += 1
        pending.release()

    def abandon(self, pending: PendingSubmission) -> None:
        """Release a received submission without deciding it.

        Used when a peer's receive failed mid-fan-out: this server's
        copy is dropped, and the id must not stay pending (which would
        make an honest retry look like a replay) nor enter
        ``_seen_ids`` (no decision was made).  The share sources are
        released like any other settled submission: an abandoned
        pending must not pin its seed or its row's whole ingested
        plane matrix for as long as the caller keeps the handle."""
        self._pending_ids.discard(pending.submission_id)
        pending.release()

    def add_dp_noise(
        self,
        epsilon: float,
        sensitivity: float,
        generator,
        n_servers: "int | None" = None,
    ) -> None:
        """Add this server's distributed-DP noise share (Section 7).

        Plane-resident: the batched Polya sampler's signed noise vector
        is embedded into limb planes and added to the accumulator plane
        — the aggregate still decodes to Python ints only at
        :meth:`publish`.  ``n_servers`` defaults to this deployment's
        server count (the noise-divisibility parameter ``s``).
        """
        from repro.protocol.dp import add_noise_to_accumulator

        self._accumulator = add_noise_to_accumulator(
            self.field,
            self._accumulator,
            epsilon,
            sensitivity,
            self.n_servers if n_servers is None else n_servers,
            generator,
        )

    # ------------------------------------------------------------------
    # State residency (the multi-process fan-out seam)
    # ------------------------------------------------------------------

    def begin_run(self) -> None:
        """Mark the start of a fan-out run.

        Snapshots taken after this point ship only the replay-cache
        *delta* — the ids added during the run — instead of the full
        multi-million-id history.  The process fan-out calls this when
        it installs a server in a worker; callers that never call it
        get full snapshots (the safe fallback).
        """
        self._replay.mark()

    def snapshot_state(self) -> dict:
        """Everything a run mutates, in one picklable snapshot.

        The process fan-out backend
        (:class:`~repro.protocol.fanout.ProcessFanout`) ships a server
        into a dedicated worker, runs batches there, and merges this
        snapshot back into the driver-side object afterward — the
        accumulator crosses as its limb plane
        (:class:`~repro.field.batch.BatchVector` pickles the int64
        plane buffer; no per-element Python-int round trip).  Replay
        state crosses as the delta since :meth:`begin_run`, never the
        whole seen set.
        """
        return {
            "accumulator_plane": self._accumulator,
            "n_accepted": self.n_accepted,
            "n_rejected": self.n_rejected,
            "n_replayed": self.n_replayed,
            "seen_delta": self._replay.delta(),
            "pending_ids": set(self._pending_ids),
            "submissions_this_epoch": self._submissions_this_epoch,
            "epoch": self._epoch,
            "elements_broadcast": self.elements_broadcast,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` snapshot (inverse operation).

        Counters and planes are absolute (the snapshotting side held
        the full state); replay ids merge as a delta — the driver-side
        cache already holds everything from before the run.  A legacy
        ``seen_ids`` snapshot (full set) replaces the cache contents
        instead.

        Drops the cached verification context: the epoch may have
        advanced elsewhere, and contexts re-derive deterministically
        from the shared randomness.
        """
        self._accumulator = state["accumulator_plane"]
        self.n_accepted = state["n_accepted"]
        self.n_rejected = state["n_rejected"]
        self.n_replayed = state["n_replayed"]
        if "seen_delta" in state:
            self._replay.update(state["seen_delta"])
        else:
            self._replay.clear()
            self._replay.update(state["seen_ids"])
        self._pending_ids = set(state["pending_ids"])
        self._submissions_this_epoch = state["submissions_this_epoch"]
        self._epoch = state["epoch"]
        self.elements_broadcast = state["elements_broadcast"]
        self._ctx = None

    # ------------------------------------------------------------------
    # Sharding (the per-server worker fan-out seam)
    # ------------------------------------------------------------------

    def make_shard(self) -> "PrioServer":
        """A fresh server of identical configuration and empty state.

        :class:`~repro.protocol.fanout.ShardedFanout` gives each
        logical server K of these; every shard owns its slice of the
        submission-id space (stable hash partition), so shard-local
        replay caches — spawned from this server's, hence the same
        tier configuration — give complete replay protection.
        """
        return PrioServer(
            self.afe,
            self.server_index,
            self.n_servers,
            self.randomness,
            epoch_size=self.epoch_size,
            box_keypair=self.box_keypair,
            force_pure_backend=self.force_pure_backend,
            replay_cache=self._replay.spawn(),
        )

    def sync_shard_epoch(self, shard: "PrioServer") -> None:
        """Align a shard's epoch clock with this logical server's."""
        shard._epoch = self._epoch
        shard._submissions_this_epoch = self._submissions_this_epoch
        shard._ctx = None

    def fold_shard_state(self, state: dict) -> None:
        """Merge one shard's *delta* snapshot into this logical server.

        Unlike :meth:`restore_state` (absolute counters from a worker
        that held the full state), a shard starts each run zeroed, so
        its counters, accumulator plane, and broadcast tally are pure
        deltas and *add*; replay ids union in; epoch position advances
        by the shard's submission count (all shards share the logical
        server's epoch schedule, synced at run start).
        """
        plane = state["accumulator_plane"]
        if plane.backend != self._accumulator.backend:
            plane = BatchVector.from_ints(
                self.field, plane.to_ints(), self._accumulator.force_pure
            )
        self._accumulator = self._accumulator + plane
        self.n_accepted += state["n_accepted"]
        self.n_rejected += state["n_rejected"]
        self.n_replayed += state["n_replayed"]
        self._replay.update(state["seen_delta"])
        self._pending_ids |= state["pending_ids"]
        # Advance the epoch position by the shard's settled count;
        # rotation itself stays lazy in ``_context()`` (which resets
        # the counter to zero on overshoot), exactly as unsharded.
        self._submissions_this_epoch += state["n_accepted"] + state["n_rejected"]
        self.elements_broadcast += state["elements_broadcast"]
        self._ctx = None

    def reset_run_deltas(self) -> None:
        """Zero the fold-as-delta state after a shard fold.

        Shard servers call this after each :meth:`fold_shard_state`
        so their next snapshot is again a pure per-run delta.  The
        replay cache is deliberately untouched — it stays the
        authoritative record of this shard's id slice across runs.
        """
        self._accumulator = BatchVector.zeros(
            self.field, (self.afe.k_prime,),
            tiny_batch_force_pure(self.afe.k_prime, self.force_pure_backend),
        )
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_replayed = 0
        self.elements_broadcast = 0
        self._pending_ids = set()

    def publish(self) -> list[int]:
        """Release the accumulator (step 4); safe by construction.

        This is the aggregate's single plane -> Python-int crossing:
        the accumulator lives as a limb plane for the server's whole
        life and decodes only here (and in the compatibility
        :attr:`accumulator` property).
        """
        return self._accumulator.to_ints()
