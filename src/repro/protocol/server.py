"""The Prio server (Appendix H, steps 2-4: Validate, Aggregate, Publish).

A :class:`PrioServer` holds one share of every client submission,
participates in the two-round SNIP verification with its peers, and on
success folds the truncated encoding share into its accumulator.
Publishing reveals only the accumulator — the sum of many clients'
shares — never an individual share.

Replay protection: submission ids are cached per epoch and duplicates
rejected before verification (the paper notes Prio packets "can be
replay-protected at the servers"); ids received but not yet decided
count too, so a replay *inside* a verification batch is caught.

The ``begin_verification_batch``/``finish_verification_batch``/
``decide_batch`` triple is the vectorized hot path: one
:class:`~repro.snip.verifier.BatchedSnipVerifierParty` sweep covers a
whole batch of submissions, with per-submission decisions.
"""

from __future__ import annotations

from repro.afe.base import Afe
from repro.crypto.box import BoxKeyPair, open_box
from repro.field.batch import BatchVector, assemble_rows, decode_bytes_batch, use_numpy
from repro.protocol.wire import ClientPacket, PacketKind, WireError
from repro.sharing.prg import SEED_SIZE, expand_seed, expand_seed_batch
from repro.snip.proof import SnipProofShare, proof_num_elements
from repro.snip.verifier import (
    BatchedSnipVerifierParty,
    Round1Message,
    Round2Message,
    ServerRandomness,
    SnipVerifierParty,
    VerificationContext,
)


class ProtocolError(ValueError):
    """Raised on protocol violations (wrong server, replayed id, ...)."""


class PendingSubmission:
    """A received, de-framed share awaiting verification.

    The share vector may be *latent*: a SEED packet stores just its
    16-byte PRG seed (expanded in one vectorized sweep when the batch
    is verified) and a plane-ingested EXPLICIT packet stores a row of
    limb planes.  ``x_share`` / ``proof_share`` materialize Python
    ints on first access — the scalar-verification fallback; the
    batched pipeline never touches them.
    """

    def __init__(
        self,
        submission_id: bytes,
        x_share: "list[int] | None" = None,
        proof_share: "SnipProofShare | None" = None,
    ) -> None:
        self.submission_id = submission_id
        self._x_share = x_share
        self._proof_share = proof_share
        #: latent sources (at most one is set before materialization)
        self._seed: bytes | None = None
        self._source: "tuple[BatchVector, int] | None" = None
        #: framing metadata needed to materialize and split lazily
        self._field = None
        self._n_inputs = len(x_share) if x_share is not None else None
        self._n_mul_gates: int | None = None
        self._n_elements: int | None = None

    @property
    def x_share(self) -> list[int]:
        self._materialize()
        return self._x_share

    @property
    def proof_share(self) -> "SnipProofShare | None":
        self._materialize()
        return self._proof_share

    def _materialize(self) -> None:
        if self._x_share is not None:
            return
        if self._source is not None:
            vector = self._source[0].row_ints(self._source[1])
        elif self._seed is not None:
            vector = expand_seed(self._field, self._seed, self._n_elements)
        else:
            raise ProtocolError("pending submission has no share source")
        k = self._n_inputs
        self._x_share = vector[:k]
        if self._n_mul_gates is not None:
            self._proof_share = SnipProofShare.unflatten(
                self._field, vector[k:], self._n_mul_gates
            )


class PrioServer:
    """One aggregation server for a single collection task."""

    def __init__(
        self,
        afe: Afe,
        server_index: int,
        n_servers: int,
        randomness: ServerRandomness,
        epoch_size: int = 1024,
        box_keypair: BoxKeyPair | None = None,
        force_pure_backend: bool | None = None,
    ) -> None:
        self.afe = afe
        self.field = afe.field
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.randomness = randomness
        self.epoch_size = epoch_size
        self.box_keypair = box_keypair
        #: batch-backend override (None = auto-select numpy/pure)
        self.force_pure_backend = force_pure_backend
        self.circuit = afe.valid_circuit()

        self.accumulator: list[int] = [0] * afe.k_prime
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_replayed = 0
        self._seen_ids: set[bytes] = set()
        #: ids received but not yet accumulated/rejected — closes the
        #: replay window *inside* a verification batch, where the first
        #: copy has not reached ``_seen_ids`` yet
        self._pending_ids: set[bytes] = set()
        self._submissions_this_epoch = 0
        self._epoch = 0
        self._ctx: VerificationContext | None = None
        #: server-to-server field elements broadcast (Figure 6 metric)
        self.elements_broadcast = 0

    # ------------------------------------------------------------------
    # Epoch / context management (the fixed-r optimization)
    # ------------------------------------------------------------------

    def _context(self) -> VerificationContext | None:
        if self.circuit is None:
            return None
        if self._ctx is None or self._submissions_this_epoch >= self.epoch_size:
            if self._submissions_this_epoch >= self.epoch_size:
                self._epoch += 1
                self._submissions_this_epoch = 0
            challenge = self.randomness.challenge(
                self.field, self.circuit, self._epoch
            )
            self._ctx = VerificationContext(self.field, self.circuit, challenge)
        return self._ctx

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def receive_sealed(self, sealed: bytes) -> PendingSubmission:
        if self.box_keypair is None:
            raise ProtocolError("server has no box key configured")
        return self.receive(
            ClientPacket.decode(open_box(self.box_keypair, sealed), self.field)
        )

    def receive(self, packet: ClientPacket) -> PendingSubmission:
        """De-frame a packet into a (possibly latent) pending submission.

        Framing is validated eagerly — wrong server, replay, body-size
        inconsistency, wrong share-vector length, and (for EXPLICIT
        bodies) out-of-range elements all raise here, so a bad upload
        rejects alone.  The share *values* stay zero-copy: EXPLICIT
        bodies are decoded wire-bytes -> limb planes (one numpy pass,
        no per-element ``int.from_bytes``), SEED bodies are kept as
        seeds and expanded in one vectorized sweep per verification
        batch.
        """
        if packet.server_index != self.server_index:
            raise ProtocolError(
                f"packet for server {packet.server_index} delivered to "
                f"server {self.server_index}"
            )
        if (
            packet.submission_id in self._seen_ids
            or packet.submission_id in self._pending_ids
        ):
            self.n_replayed += 1
            raise ProtocolError("replayed submission id")
        k = self.afe.k
        m = self.circuit.n_mul_gates if self.circuit is not None else None
        expected = k if m is None else k + proof_num_elements(m)
        if packet.kind is PacketKind.SEED:
            if len(packet.body) != SEED_SIZE:
                raise WireError("seed packet has wrong body size")
            n = packet.n_elements
        else:
            size = self.field.encoded_size
            if len(packet.body) != packet.n_elements * size:
                raise WireError("explicit packet has wrong body size")
            n = packet.n_elements
        if n != expected:
            if m is None:
                raise WireError("share vector has wrong length")
            raise WireError(
                f"share vector has {n} elements, expected {expected}"
            )
        pending = PendingSubmission(packet.submission_id)
        pending._field = self.field
        pending._n_inputs = k
        pending._n_mul_gates = m
        pending._n_elements = n
        if packet.kind is PacketKind.SEED:
            pending._seed = packet.body
        elif use_numpy(self.force_pure_backend):
            # Checked decode: rejects out-of-range elements, exactly
            # like the scalar ``field.decode_vector`` used to.
            pending._source = (
                decode_bytes_batch(
                    self.field, [packet.body], self.force_pure_backend
                ),
                0,
            )
        else:
            vector = self.field.decode_vector(packet.body)
            pending._x_share = vector[:k]
            if m is not None:
                pending._proof_share = SnipProofShare.unflatten(
                    self.field, vector[k:], m
                )
        self._pending_ids.add(packet.submission_id)
        return pending

    # ------------------------------------------------------------------
    # Verification rounds (lock-step with peers)
    # ------------------------------------------------------------------

    def begin_verification(
        self, pending: PendingSubmission
    ) -> tuple["SnipVerifierParty | None", Round1Message]:
        ctx = self._context()
        if ctx is None:
            # All-valid AFE: accept without proof (but still burn the
            # replay-protection slot).
            return None, Round1Message(d=0, e=0)
        party = SnipVerifierParty(
            ctx, self.server_index, self.n_servers,
            pending.x_share, pending.proof_share,
        )
        msg = party.round1()
        self.elements_broadcast += 2
        return party, msg

    def finish_verification(
        self,
        party: "SnipVerifierParty | None",
        round1_messages: list[Round1Message],
    ) -> Round2Message:
        if party is None:
            return Round2Message(sigma=0, assertion=0)
        msg = party.round2(round1_messages)
        self.elements_broadcast += 2
        return msg

    def decide(self, round2_messages: list[Round2Message]) -> bool:
        if self.circuit is None:
            return True
        return SnipVerifierParty.decide(self.field, round2_messages)

    # ------------------------------------------------------------------
    # Batched verification rounds (the vectorized hot path)
    # ------------------------------------------------------------------

    def _ingest_batch(self, pendings: list[PendingSubmission]) -> BatchVector:
        """Assemble the batch's ``(B, n)`` share matrix, plane-resident.

        All latent SEED packets expand through one vectorized PRG
        sweep; plane-decoded EXPLICIT rows are copied limb-for-limb;
        already-materialized submissions (the scalar fallback) are
        re-encoded.  Each pending is re-pointed at its row of the
        assembled matrix, so later per-submission access (scalar
        verification, lazy ``x_share``, batched accumulation) shares
        the same planes.
        """
        force = self.force_pure_backend
        seed_pendings = [
            p for p in pendings
            if p._seed is not None and p._source is None and p._x_share is None
        ]
        if seed_pendings:
            expanded = expand_seed_batch(
                self.field,
                [p._seed for p in seed_pendings],
                seed_pendings[0]._n_elements,
                force,
            )
            for row, pending in enumerate(seed_pendings):
                pending._source = (expanded, row)
        sources: list = []
        for pending in pendings:
            if pending._source is not None:
                sources.append(pending._source)
            else:
                row = list(pending.x_share)
                if pending.proof_share is not None:
                    row += pending.proof_share.flatten()
                sources.append(row)
        matrix = assemble_rows(self.field, sources, force)
        for row, pending in enumerate(pendings):
            if pending._x_share is None:
                pending._source = (matrix, row)
        return matrix

    def begin_verification_batch(
        self, pendings: list[PendingSubmission]
    ) -> tuple["BatchedSnipVerifierParty | None", list[Round1Message]]:
        """Round 1 for a whole batch in one vectorized sweep.

        The entire batch is verified under a single epoch context (the
        context in force when the batch starts; epoch accounting still
        advances per submission, so rotation happens between batches).
        The batch goes wire-planes -> verdict: seeds expand vectorized,
        the share matrix is assembled from limb planes, and the party
        consumes it via
        :meth:`~repro.snip.verifier.BatchedSnipVerifierParty.from_share_matrix`
        with no per-element Python-int crossing.
        """
        ctx = self._context()
        if ctx is None or not pendings:
            return None, [Round1Message(d=0, e=0)] * len(pendings)
        party = BatchedSnipVerifierParty.from_share_matrix(
            ctx, self.server_index, self.n_servers,
            self._ingest_batch(pendings),
        )
        msgs = party.round1_all()
        self.elements_broadcast += 2 * len(pendings)
        return party, msgs

    def finish_verification_batch(
        self,
        party: "BatchedSnipVerifierParty | None",
        round1_by_submission: list[list[Round1Message]],
    ) -> list[Round2Message]:
        if party is None:
            return [Round2Message(sigma=0, assertion=0)] * len(
                round1_by_submission
            )
        msgs = party.round2_all(round1_by_submission)
        self.elements_broadcast += 2 * len(msgs)
        return msgs

    def decide_batch(
        self, round2_by_submission: list[list[Round2Message]]
    ) -> list[bool]:
        """One independent accept/reject decision per submission."""
        return [self.decide(msgs) for msgs in round2_by_submission]

    # ------------------------------------------------------------------
    # Aggregate / publish
    # ------------------------------------------------------------------

    def accumulate(self, pending: PendingSubmission) -> None:
        """Fold the truncated share into the accumulator (step 3)."""
        share = pending.x_share[: self.afe.k_prime]
        p = self.field.modulus
        acc = self.accumulator
        for i, v in enumerate(share):
            acc[i] = (acc[i] + v) % p
        self._note_accepted(pending)

    def accumulate_batch(
        self,
        pendings: list[PendingSubmission],
        decisions: list[bool],
    ) -> None:
        """Apply a batch's decisions: one vectorized Aggregate sweep.

        Equivalent to per-submission :meth:`accumulate` /
        :meth:`reject` calls, but accepted rows that share an ingested
        plane matrix are truncated, column-summed, and folded into the
        accumulator in a single batch operation — the Aggregate step
        consumes planes, and only the k'-element batch total crosses
        back to Python ints.
        """
        if len(pendings) != len(decisions):
            raise ProtocolError("need one decision per pending submission")
        for pending, accepted in zip(pendings, decisions):
            if not accepted:
                self.reject(pending)
        accepted_pendings = [
            p for p, accepted in zip(pendings, decisions) if accepted
        ]
        if not accepted_pendings:
            return
        # Proof-free AFEs skip begin_verification_batch's ingest; give
        # their latent seeds the same one-sweep expansion here.
        if any(
            p._x_share is None and p._source is None
            for p in accepted_pendings
        ):
            self._ingest_batch(accepted_pendings)
        shared = (
            accepted_pendings[0]._source[0]
            if accepted_pendings[0]._source is not None
            else None
        )
        if shared is not None and all(
            p._source is not None and p._source[0] is shared
            for p in accepted_pendings
        ):
            batch_sum = (
                shared.take_rows([p._source[1] for p in accepted_pendings])
                .slice_columns(self.afe.k_prime)
                .sum_rows()
                .to_ints()
            )
            self.accumulator = self.field.vec_add(self.accumulator, batch_sum)
            for pending in accepted_pendings:
                self._note_accepted(pending)
        else:
            for pending in accepted_pendings:
                self.accumulate(pending)

    def _note_accepted(self, pending: PendingSubmission) -> None:
        """Post-accumulation bookkeeping (shared by both Aggregate paths)."""
        self._pending_ids.discard(pending.submission_id)
        self._seen_ids.add(pending.submission_id)
        self._submissions_this_epoch += 1
        self.n_accepted += 1

    def reject(self, pending: PendingSubmission) -> None:
        self._pending_ids.discard(pending.submission_id)
        self._seen_ids.add(pending.submission_id)
        self._submissions_this_epoch += 1
        self.n_rejected += 1

    def abandon(self, pending: PendingSubmission) -> None:
        """Release a received submission without deciding it.

        Used when a peer's receive failed mid-fan-out: this server's
        copy is dropped, and the id must not stay pending (which would
        make an honest retry look like a replay) nor enter
        ``_seen_ids`` (no decision was made)."""
        self._pending_ids.discard(pending.submission_id)

    def publish(self) -> list[int]:
        """Release the accumulator (step 4); safe by construction."""
        return list(self.accumulator)
