"""The Prio server (Appendix H, steps 2-4: Validate, Aggregate, Publish).

A :class:`PrioServer` holds one share of every client submission,
participates in the two-round SNIP verification with its peers, and on
success folds the truncated encoding share into its accumulator.
Publishing reveals only the accumulator — the sum of many clients'
shares — never an individual share.

Replay protection: submission ids are cached per epoch and duplicates
rejected before verification (the paper notes Prio packets "can be
replay-protected at the servers"); ids received but not yet decided
count too, so a replay *inside* a verification batch is caught.

The ``begin_verification_batch``/``finish_verification_batch``/
``decide_batch`` triple is the vectorized hot path: one
:class:`~repro.snip.verifier.BatchedSnipVerifierParty` sweep covers a
whole batch of submissions, with per-submission decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afe.base import Afe
from repro.crypto.box import BoxKeyPair, open_box
from repro.protocol.wire import ClientPacket, WireError
from repro.snip.proof import SnipProofShare, proof_num_elements
from repro.snip.verifier import (
    BatchedSnipVerifierParty,
    Round1Message,
    Round2Message,
    ServerRandomness,
    SnipVerifierParty,
    VerificationContext,
)


class ProtocolError(ValueError):
    """Raised on protocol violations (wrong server, replayed id, ...)."""


@dataclass
class PendingSubmission:
    """A received, de-framed share awaiting verification."""

    submission_id: bytes
    x_share: list[int]
    proof_share: SnipProofShare | None


class PrioServer:
    """One aggregation server for a single collection task."""

    def __init__(
        self,
        afe: Afe,
        server_index: int,
        n_servers: int,
        randomness: ServerRandomness,
        epoch_size: int = 1024,
        box_keypair: BoxKeyPair | None = None,
        force_pure_backend: bool | None = None,
    ) -> None:
        self.afe = afe
        self.field = afe.field
        self.server_index = server_index
        self.n_servers = n_servers
        self.is_leader = server_index == 0
        self.randomness = randomness
        self.epoch_size = epoch_size
        self.box_keypair = box_keypair
        #: batch-backend override (None = auto-select numpy/pure)
        self.force_pure_backend = force_pure_backend
        self.circuit = afe.valid_circuit()

        self.accumulator: list[int] = [0] * afe.k_prime
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_replayed = 0
        self._seen_ids: set[bytes] = set()
        #: ids received but not yet accumulated/rejected — closes the
        #: replay window *inside* a verification batch, where the first
        #: copy has not reached ``_seen_ids`` yet
        self._pending_ids: set[bytes] = set()
        self._submissions_this_epoch = 0
        self._epoch = 0
        self._ctx: VerificationContext | None = None
        #: server-to-server field elements broadcast (Figure 6 metric)
        self.elements_broadcast = 0

    # ------------------------------------------------------------------
    # Epoch / context management (the fixed-r optimization)
    # ------------------------------------------------------------------

    def _context(self) -> VerificationContext | None:
        if self.circuit is None:
            return None
        if self._ctx is None or self._submissions_this_epoch >= self.epoch_size:
            if self._submissions_this_epoch >= self.epoch_size:
                self._epoch += 1
                self._submissions_this_epoch = 0
            challenge = self.randomness.challenge(
                self.field, self.circuit, self._epoch
            )
            self._ctx = VerificationContext(self.field, self.circuit, challenge)
        return self._ctx

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def receive_sealed(self, sealed: bytes) -> PendingSubmission:
        if self.box_keypair is None:
            raise ProtocolError("server has no box key configured")
        return self.receive(
            ClientPacket.decode(open_box(self.box_keypair, sealed), self.field)
        )

    def receive(self, packet: ClientPacket) -> PendingSubmission:
        """De-frame a packet into x and proof shares."""
        if packet.server_index != self.server_index:
            raise ProtocolError(
                f"packet for server {packet.server_index} delivered to "
                f"server {self.server_index}"
            )
        if (
            packet.submission_id in self._seen_ids
            or packet.submission_id in self._pending_ids
        ):
            self.n_replayed += 1
            raise ProtocolError("replayed submission id")
        vector = packet.share_vector(self.field)
        k = self.afe.k
        if self.circuit is None:
            if len(vector) != k:
                raise WireError("share vector has wrong length")
            self._pending_ids.add(packet.submission_id)
            return PendingSubmission(packet.submission_id, vector, None)
        m = self.circuit.n_mul_gates
        expected = k + proof_num_elements(m)
        if len(vector) != expected:
            raise WireError(
                f"share vector has {len(vector)} elements, expected {expected}"
            )
        x_share = vector[:k]
        proof_share = SnipProofShare.unflatten(self.field, vector[k:], m)
        self._pending_ids.add(packet.submission_id)
        return PendingSubmission(packet.submission_id, x_share, proof_share)

    # ------------------------------------------------------------------
    # Verification rounds (lock-step with peers)
    # ------------------------------------------------------------------

    def begin_verification(
        self, pending: PendingSubmission
    ) -> tuple["SnipVerifierParty | None", Round1Message]:
        ctx = self._context()
        if ctx is None:
            # All-valid AFE: accept without proof (but still burn the
            # replay-protection slot).
            return None, Round1Message(d=0, e=0)
        party = SnipVerifierParty(
            ctx, self.server_index, self.n_servers,
            pending.x_share, pending.proof_share,
        )
        msg = party.round1()
        self.elements_broadcast += 2
        return party, msg

    def finish_verification(
        self,
        party: "SnipVerifierParty | None",
        round1_messages: list[Round1Message],
    ) -> Round2Message:
        if party is None:
            return Round2Message(sigma=0, assertion=0)
        msg = party.round2(round1_messages)
        self.elements_broadcast += 2
        return msg

    def decide(self, round2_messages: list[Round2Message]) -> bool:
        if self.circuit is None:
            return True
        return SnipVerifierParty.decide(self.field, round2_messages)

    # ------------------------------------------------------------------
    # Batched verification rounds (the vectorized hot path)
    # ------------------------------------------------------------------

    def begin_verification_batch(
        self, pendings: list[PendingSubmission]
    ) -> tuple["BatchedSnipVerifierParty | None", list[Round1Message]]:
        """Round 1 for a whole batch in one vectorized sweep.

        The entire batch is verified under a single epoch context (the
        context in force when the batch starts; epoch accounting still
        advances per submission, so rotation happens between batches).
        """
        ctx = self._context()
        if ctx is None:
            return None, [Round1Message(d=0, e=0)] * len(pendings)
        party = BatchedSnipVerifierParty(
            ctx, self.server_index, self.n_servers,
            [p.x_share for p in pendings],
            [p.proof_share for p in pendings],
            force_pure=self.force_pure_backend,
        )
        msgs = party.round1_all()
        self.elements_broadcast += 2 * len(pendings)
        return party, msgs

    def finish_verification_batch(
        self,
        party: "BatchedSnipVerifierParty | None",
        round1_by_submission: list[list[Round1Message]],
    ) -> list[Round2Message]:
        if party is None:
            return [Round2Message(sigma=0, assertion=0)] * len(
                round1_by_submission
            )
        msgs = party.round2_all(round1_by_submission)
        self.elements_broadcast += 2 * len(msgs)
        return msgs

    def decide_batch(
        self, round2_by_submission: list[list[Round2Message]]
    ) -> list[bool]:
        """One independent accept/reject decision per submission."""
        return [self.decide(msgs) for msgs in round2_by_submission]

    # ------------------------------------------------------------------
    # Aggregate / publish
    # ------------------------------------------------------------------

    def accumulate(self, pending: PendingSubmission) -> None:
        """Fold the truncated share into the accumulator (step 3)."""
        share = pending.x_share[: self.afe.k_prime]
        p = self.field.modulus
        acc = self.accumulator
        for i, v in enumerate(share):
            acc[i] = (acc[i] + v) % p
        self._pending_ids.discard(pending.submission_id)
        self._seen_ids.add(pending.submission_id)
        self._submissions_this_epoch += 1
        self.n_accepted += 1

    def reject(self, pending: PendingSubmission) -> None:
        self._pending_ids.discard(pending.submission_id)
        self._seen_ids.add(pending.submission_id)
        self._submissions_this_epoch += 1
        self.n_rejected += 1

    def abandon(self, pending: PendingSubmission) -> None:
        """Release a received submission without deciding it.

        Used when a peer's receive failed mid-fan-out: this server's
        copy is dropped, and the id must not stay pending (which would
        make an honest retry look like a replay) nor enter
        ``_seen_ids`` (no decision was made)."""
        self._pending_ids.discard(pending.submission_id)

    def publish(self) -> list[int]:
        """Release the accumulator (step 4); safe by construction."""
        return list(self.accumulator)
