"""Asyncio pipeline front end for the batched verification core.

The synchronous :meth:`~repro.protocol.runner.PrioDeployment.deliver_batch`
runs each verification batch start-to-finish before touching the next:
receive/ingest, the two SNIP rounds, accumulate.  This module stages
the same work over bounded :class:`asyncio.Queue` hops —

    submissions -> [batcher] -> [ingest] -> [verify+accumulate]

so expansion/decode of batch ``N+1`` overlaps verification of batch
``N``, and the per-server CPU work inside each stage fans out over a
thread pool (the hot kernels — SHAKE XOF digests and numpy limb
matmuls — release the GIL, so multi-core hosts verify servers
genuinely in parallel).  Queue bounds give backpressure: a slow verify
stage stalls ingest instead of buffering unbounded plane matrices.

Semantics are identical to the synchronous path — same per-submission
accept/reject decisions, same replay protection, same statistics; the
equivalence tests drive both and compare.  Every stage consumes and
produces plane-resident forms (ingested share matrices,
:class:`~repro.snip.verifier.Round1Batch`/``Round2Batch``); Python
ints appear nowhere between the wire and :meth:`PrioServer.publish`.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field

from repro.protocol.server import PendingSubmission, PrioServer

#: sentinel closing each stage's input queue
_DONE = object()


class _InlineExecutor:
    """Executor that runs work on the calling thread.

    On a single-CPU host, thread hand-offs cost latency and buy no
    parallelism (the GIL-releasing kernels have no second core to run
    on), so the pipeline keeps its staged structure but executes stage
    work inline.  Implements the two Executor methods asyncio uses.
    """

    def submit(self, fn, *args):
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirror Executor
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):  # noqa: ARG002 - Executor interface
        return None


def default_executor(n_servers: int):
    """Thread pool sized to the host, or inline when threads cannot help."""
    if (os.cpu_count() or 1) <= 1:
        return _InlineExecutor()
    return ThreadPoolExecutor(max_workers=max(2, n_servers))


@dataclass
class PipelineStats:
    """Counters the pipeline keeps per run (all per submission)."""

    n_batches: int = 0
    n_receive_failures: int = 0
    #: ingest batches that were in flight when verify started one —
    #: a direct measure of stage overlap (0 on a fully serial run)
    overlapped_batches: int = 0
    batch_sizes: list[int] = dc_field(default_factory=list)


@dataclass
class _IngestedBatch:
    """One verification batch, ingested and ready for the rounds."""

    #: positions (into the submission stream) that survived receive
    indices: list[int]
    #: per-server pendings for the survivors, plane-ingested
    pendings_by_server: "list[list[PendingSubmission]]"


class AsyncPrioPipeline:
    """Drives a server set through the staged verification pipeline.

    ``queue_depth`` bounds how many ingested-but-unverified batches may
    exist at once (the overlap window); ``executor`` is the thread pool
    for per-server CPU work (created per run when not supplied).
    """

    def __init__(
        self,
        servers: "list[PrioServer]",
        batch_size: int = 64,
        queue_depth: int = 2,
        executor: "ThreadPoolExecutor | None" = None,
        encrypt: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.servers = servers
        self.batch_size = batch_size
        self.queue_depth = queue_depth
        self.executor = executor
        self.encrypt = encrypt
        self.stats = PipelineStats()
        #: True while the verify stage is mid-batch (stage-overlap probe)
        self._verifying = False

    # ------------------------------------------------------------------

    def run(self, submissions) -> list[bool]:
        """Synchronous entry point: pipeline every submission, return
        one accept/reject decision per submission (stream order)."""
        return asyncio.run(self.run_async(submissions))

    async def run_async(self, submissions) -> list[bool]:
        submissions = list(submissions)
        results: "list[bool]" = [False] * len(submissions)
        own_executor = self.executor is None
        executor = self.executor or default_executor(len(self.servers))
        try:
            ingest_q: asyncio.Queue = asyncio.Queue(self.queue_depth)
            verify_q: asyncio.Queue = asyncio.Queue(self.queue_depth)
            tasks = [
                asyncio.create_task(
                    self._batcher(submissions, ingest_q)
                ),
                asyncio.create_task(
                    self._ingest_stage(
                        submissions, ingest_q, verify_q, results, executor
                    )
                ),
                asyncio.create_task(
                    self._verify_stage(verify_q, results, executor)
                ),
            ]
            try:
                await asyncio.gather(*tasks)
            except BaseException:
                for task in tasks:
                    task.cancel()
                raise
        finally:
            if own_executor:
                executor.shutdown(wait=False)
        return results

    # ------------------------------------------------------------------
    # Stage 1: group the stream into verification batches
    # ------------------------------------------------------------------

    async def _batcher(self, submissions, ingest_q: asyncio.Queue) -> None:
        batch: list[int] = []
        for index in range(len(submissions)):
            batch.append(index)
            if len(batch) >= self.batch_size:
                await ingest_q.put(batch)
                batch = []
        if batch:
            await ingest_q.put(batch)
        await ingest_q.put(_DONE)

    # ------------------------------------------------------------------
    # Stage 2: receive (framing) + plane ingest, per server in threads
    # ------------------------------------------------------------------

    def _receive_one_server(self, server, submissions, indices):
        """Frame-validate one server's packets for a batch.

        Returns one ``PendingSubmission | Exception`` per index, via
        the server's fused batch decoder.
        """
        if self.encrypt:
            out = []
            for i in indices:
                try:
                    out.append(
                        server.receive_sealed(
                            submissions[i].sealed_packets[server.server_index]
                        )
                    )
                except ValueError as exc:
                    out.append(exc)
            return out
        return server.receive_batch(
            [submissions[i].packets[server.server_index] for i in indices]
        )

    async def _ingest_stage(
        self, submissions, ingest_q, verify_q, results, executor
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await ingest_q.get()
            if batch is _DONE:
                await verify_q.put(_DONE)
                return
            # Receive mutates only per-server replay state, so the
            # servers' fused frame-check+decode sweeps fan out safely;
            # within one server the batch is processed in stream order.
            received = await asyncio.gather(*[
                loop.run_in_executor(
                    executor,
                    self._receive_one_server, server, submissions, batch,
                )
                for server in self.servers
            ])
            survivors: list[int] = []
            pendings_by_server: "list[list[PendingSubmission]]" = [
                [] for _ in self.servers
            ]
            for pos, index in enumerate(batch):
                row = [received[s][pos] for s in range(len(self.servers))]
                if any(isinstance(r, Exception) for r in row):
                    # Mirror of the synchronous fan-out rule: servers
                    # that did receive must release the id so an honest
                    # retry is not mistaken for a replay.
                    for server, r in zip(self.servers, row):
                        if isinstance(r, PendingSubmission):
                            server.abandon(r)
                    self.stats.n_receive_failures += 1
                    results[index] = False
                    continue
                survivors.append(index)
                for s, r in enumerate(row):
                    pendings_by_server[s].append(r)
            if survivors:
                # The heavy part — PRG expansion and byte decode into
                # plane matrices — fans out per server on the pool.
                await asyncio.gather(*[
                    loop.run_in_executor(
                        executor, server._ingest_batch, pendings
                    )
                    for server, pendings in zip(
                        self.servers, pendings_by_server
                    )
                    if pendings
                ])
            self.stats.n_batches += 1
            self.stats.batch_sizes.append(len(survivors))
            if self._verifying:
                self.stats.overlapped_batches += 1
            await verify_q.put(
                _IngestedBatch(
                    indices=survivors,
                    pendings_by_server=pendings_by_server,
                )
            )

    # ------------------------------------------------------------------
    # Stage 3: the two SNIP rounds + decide + accumulate
    # ------------------------------------------------------------------

    async def _verify_stage(self, verify_q, results, executor) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await verify_q.get()
            if item is _DONE:
                return
            if not item.indices:
                continue
            self._verifying = True
            try:
                begun = await asyncio.gather(*[
                    loop.run_in_executor(
                        executor,
                        server.begin_verification_batch,
                        pendings,
                    )
                    for server, pendings in zip(
                        self.servers, item.pendings_by_server
                    )
                ])
                parties = [party for party, _ in begun]
                round1_batches = [round1 for _, round1 in begun]
                round2_batches = [
                    server.finish_verification_batch(party, round1_batches)
                    for server, party in zip(self.servers, parties)
                ]
                decisions = self.servers[0].decide_batch(round2_batches)
            except ValueError:
                # Defensive mirror of the synchronous path: shapes were
                # validated at receive time, so fail the whole batch
                # rather than mis-credit any of it.
                for server, pendings in zip(
                    self.servers, item.pendings_by_server
                ):
                    for pending in pendings:
                        server.reject(pending)
                for index in item.indices:
                    results[index] = False
                continue
            finally:
                self._verifying = False
            for server, pendings in zip(
                self.servers, item.pendings_by_server
            ):
                server.accumulate_batch(pendings, decisions)
            for index, accepted in zip(item.indices, decisions):
                results[index] = accepted


def run_pipelined(
    servers: "list[PrioServer]",
    submissions,
    batch_size: int = 64,
    queue_depth: int = 2,
    encrypt: bool = False,
    executor: "ThreadPoolExecutor | None" = None,
) -> tuple[list[bool], PipelineStats]:
    """One-call pipeline run over prepared submissions.

    Returns ``(decisions, stats)`` with one decision per submission in
    stream order — the async counterpart of calling
    ``deliver_batch`` chunk by chunk.
    """
    pipeline = AsyncPrioPipeline(
        servers,
        batch_size=batch_size,
        queue_depth=queue_depth,
        executor=executor,
        encrypt=encrypt,
    )
    decisions = pipeline.run(submissions)
    return decisions, pipeline.stats
