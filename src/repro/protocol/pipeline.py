"""Asyncio pipeline front end for the batched verification core.

The synchronous :meth:`~repro.protocol.runner.PrioDeployment.deliver_batch`
runs each verification batch start-to-finish before touching the next:
receive/ingest, the two SNIP rounds, accumulate.  This module stages
the same work over bounded :class:`asyncio.Queue` hops —

    submissions -> [batcher] -> [ingest] -> [verify+accumulate]

so expansion/decode of batch ``N+1`` overlaps verification of batch
``N``, and the per-server CPU work inside each stage fans out over an
execution backend (:mod:`repro.protocol.fanout`).  With
:meth:`AsyncPrioPipeline.run_values` the *client* joins the pipeline
as a producer stage —

    values -> [batched client prover] -> [ingest] -> [verify+accumulate]

— each chunk proved, shared, and framed through the plane-resident
batched prover (bit-identical to the scalar client) while the servers
verify the previous chunk, so both halves of the protocol are batched
and overlapped:

``executor="thread"`` (the default)
    A shared thread pool; the hot kernels — SHAKE XOF digests and
    numpy limb matmuls — release the GIL, so multi-core hosts overlap
    servers for the kernel-dominated portions of a batch.

``executor="process"``
    One dedicated worker process per server.  Each server's whole
    state lives in its worker; batches cross the boundary in plane
    form (wire bytes in, ``Round1Batch``/``Round2Batch`` planes
    between rounds).  This removes the GIL from the picture entirely —
    the Python-level glue between kernels parallelizes too — which is
    what breaks the single-host throughput ceiling the thread backend
    hits (see ``benchmarks/bench_fanout.py``).

``executor="inline"``
    Stage work on the calling thread (single-CPU hosts, debugging).

Queue bounds give backpressure: a slow verify stage stalls ingest
instead of buffering unbounded plane matrices.

Semantics are identical across backends and to the synchronous path —
same per-submission accept/reject decisions, same replay protection,
same statistics; every backend executes the one shared op
implementation (:class:`~repro.protocol.fanout._ServerOps`), and the
equivalence tests drive all of them and compare.  Failure isolation is
per batch: an exception thrown inside a worker (a crashed process, a
poisoned batch) rejects that batch's submissions alone, and the
pipeline keeps draining the stream.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field

from repro.protocol.fanout import ServerFanout, resolve_fanout
from repro.protocol.server import PrioServer

__all__ = [
    "AsyncPrioPipeline",
    "PipelineStats",
    "run_pipelined",
]

#: sentinel closing each stage's input queue
_DONE = object()


@dataclass
class PipelineStats:
    """Counters the pipeline keeps per run (all per submission)."""

    n_batches: int = 0
    n_receive_failures: int = 0
    #: submissions failed by a worker/backend crash (not a protocol
    #: rejection): the batch was rejected and the stream continued
    n_worker_failures: int = 0
    #: ingest batches that were in flight when verify started one —
    #: a direct measure of stage overlap (0 on a fully serial run)
    overlapped_batches: int = 0
    batch_sizes: list[int] = dc_field(default_factory=list)
    #: resolved execution backend ("inline" | "thread" | "process")
    executor: str = ""
    #: client-producer counters (run_values only): batches the batched
    #: prover framed, and their total upload bytes
    client_batches: int = 0
    upload_bytes: int = 0


@dataclass
class _IngestedBatch:
    """One verification batch, ingested and ready for the rounds.

    The ingested share planes themselves stay wherever the backend
    keeps server state (driver process or per-server worker), keyed by
    ``batch_id``; only the bookkeeping crosses stages.
    """

    batch_id: int
    #: positions (into the submission stream) that survived receive
    indices: list[int]


class AsyncPrioPipeline:
    """Drives a server set through the staged verification pipeline.

    ``queue_depth`` bounds how many ingested-but-unverified batches may
    exist at once (the overlap window); ``executor`` selects the
    per-server execution backend — ``"thread"`` / ``"process"`` /
    ``"inline"`` / ``"auto"``, a ready
    :class:`~repro.protocol.fanout.ServerFanout` (reused across runs,
    caller-owned), a plain ``concurrent.futures`` executor
    (caller-owned), or ``None`` for the host-sized default.
    """

    def __init__(
        self,
        servers: "list[PrioServer]",
        batch_size: int = 64,
        queue_depth: int = 2,
        executor: "str | ServerFanout | ThreadPoolExecutor | None" = None,
        encrypt: bool = False,
        n_shards: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.servers = servers
        self.batch_size = batch_size
        self.queue_depth = queue_depth
        self.executor = executor
        self.encrypt = encrypt
        #: shard each logical server across this many workers of the
        #: selected executor kind (equivalent to a ``"kind:K"`` spec)
        self.n_shards = n_shards
        self.stats = PipelineStats()
        #: True while the verify stage is mid-batch (stage-overlap probe)
        self._verifying = False
        #: False when a reused backend could not be state-synced for
        #: this run (ops must not run against stale worker state)
        self._backend_ready = True
        self._next_batch_id = 0

    # ------------------------------------------------------------------

    def run(self, submissions) -> list[bool]:
        """Synchronous entry point: pipeline every submission, return
        one accept/reject decision per submission (stream order)."""
        return asyncio.run(self.run_async(submissions))

    def run_values(self, client, values) -> list[bool]:
        """Synchronous entry point for the client-producer pipeline."""
        return asyncio.run(self.run_values_async(client, values))

    async def run_values_async(self, client, values) -> list[bool]:
        """Pipeline raw *values* with the batched client as a producer.

        Stage 0 proves and frames the values in client batches of
        ``batch_size`` through the plane-resident batched prover
        (:meth:`~repro.protocol.client.PrioClient.prepare_submissions`),
        off the event loop's thread, so the client proves/frames chunk
        ``N+1`` while the servers ingest and verify chunk ``N`` — the
        protocol's two halves are batched *and* overlapped.  Decisions,
        replay protection, and statistics match preparing everything up
        front and calling :meth:`run_async` (the batched prover is
        bit-identical to the scalar client).
        """
        values = list(values)
        submissions: list = [None] * len(values)

        def producer(ingest_q):
            return self._producer(client, values, submissions, ingest_q)

        return await self._run_stream(submissions, producer)

    async def run_async(self, submissions) -> list[bool]:
        submissions = list(submissions)

        def producer(ingest_q):
            return self._batcher(submissions, ingest_q)

        return await self._run_stream(submissions, producer)

    async def _run_stream(self, submissions, make_producer) -> list[bool]:
        # A pipeline object is reusable: every run starts from fresh
        # per-run state.  Without this, a second run() reports the
        # previous run's counters folded into its own and resumes
        # batch ids mid-stream (confusing any op log keyed on them).
        self.stats = PipelineStats()
        self._verifying = False
        self._next_batch_id = 0
        results: "list[bool]" = [False] * len(submissions)
        fanout, owned = resolve_fanout(
            self.servers, self.executor, self.batch_size, self.n_shards
        )
        self.stats.executor = fanout.kind
        synced = True
        try:
            if not owned:
                # A reused backend may hold state from a previous run;
                # re-sync it from the driver-side servers.  A failed
                # push is not fatal — every batch below fails without
                # touching the backend — but the run must NOT execute
                # ops against whatever stale state the workers kept,
                # and end_run must not clobber the driver-side servers
                # with it either.
                try:
                    fanout.begin_run()
                except Exception:  # noqa: BLE001
                    synced = False
            self._backend_ready = synced
            ingest_q: asyncio.Queue = asyncio.Queue(self.queue_depth)
            verify_q: asyncio.Queue = asyncio.Queue(self.queue_depth)
            tasks = [
                asyncio.create_task(make_producer(ingest_q)),
                asyncio.create_task(
                    self._ingest_stage(
                        submissions, ingest_q, verify_q, results, fanout
                    )
                ),
                asyncio.create_task(
                    self._verify_stage(verify_q, results, fanout)
                ),
            ]
            try:
                await asyncio.gather(*tasks)
            except BaseException:
                # Cancel *and await* the stages: an abandoned pending
                # task would otherwise die with "task was destroyed but
                # it is pending" after the loop closes.
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                # In-flight batches were received but will never be
                # decided: release their ids (an honest retry must not
                # look like a replay) and their batch state (a reused
                # backend must not pin plane matrices forever).
                try:
                    await fanout.sweep(
                        "abandon_open", [()] * len(self.servers)
                    )
                except BaseException:  # noqa: BLE001 - cleanup only
                    pass
                raise
        finally:
            try:
                if synced:
                    fanout.end_run()
            finally:
                if owned:
                    # wait=True: a fire-and-forget shutdown leaks one
                    # worker set per run() call.
                    fanout.close()
        return results

    # ------------------------------------------------------------------
    # Stage 1: group the stream into verification batches
    # ------------------------------------------------------------------

    async def _batcher(self, submissions, ingest_q: asyncio.Queue) -> None:
        batch: list[int] = []
        for index in range(len(submissions)):
            batch.append(index)
            if len(batch) >= self.batch_size:
                await ingest_q.put(batch)
                batch = []
        if batch:
            await ingest_q.put(batch)
        await ingest_q.put(_DONE)

    async def _producer(
        self, client, values, submissions, ingest_q: asyncio.Queue
    ) -> None:
        """Stage 0: the batched client prover as a pipeline producer.

        Each client batch proves/shares/frames on a worker thread (the
        batch NTT and byte-encode kernels release the GIL on the numpy
        backend) and lands in ``submissions`` before its index batch is
        queued, so the ingest stage's payload lookups always hit ready
        uploads.  Queue backpressure applies to the client too: a slow
        verify stage stalls proving instead of buffering every upload.
        """
        for start in range(0, len(values), self.batch_size):
            indices = list(
                range(start, min(start + self.batch_size, len(values)))
            )
            prepared = await asyncio.to_thread(
                client.prepare_submissions, [values[i] for i in indices]
            )
            for index, submission in zip(indices, prepared):
                submissions[index] = submission
                self.stats.upload_bytes += submission.upload_bytes
            self.stats.client_batches += 1
            await ingest_q.put(indices)
        await ingest_q.put(_DONE)

    # ------------------------------------------------------------------
    # Stage 2: receive (framing) + plane ingest, per server in workers
    # ------------------------------------------------------------------

    def _payloads_for(self, server_slot: int, submissions, indices):
        """One server's slice of a batch, in cross-boundary form.

        Packets are selected by the server's *protocol* index, not its
        position in ``self.servers`` — a shuffled server list must
        still route every share to the server it was addressed to.
        """
        index = self.servers[server_slot].server_index
        if self.encrypt:
            return [submissions[i].sealed_packets[index] for i in indices]
        return [submissions[i].packets[index] for i in indices]

    async def _cleanup_batch(self, fanout, batch_id: int, op: str) -> None:
        """Best-effort per-server sweep after a mid-batch failure."""
        for s in range(len(self.servers)):
            try:
                await fanout.call(s, op, batch_id)
            except Exception:  # noqa: BLE001 - backend may be gone
                continue

    async def _ingest_stage(
        self, submissions, ingest_q, verify_q, results, fanout
    ) -> None:
        n_servers = len(self.servers)
        while True:
            batch = await ingest_q.get()
            if batch is _DONE:
                await verify_q.put(_DONE)
                return
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            self.stats.n_batches += 1
            if not self._backend_ready:
                # State push failed on a reused backend: running ops
                # would execute against stale worker state.  Fail the
                # stream without touching the backend at all.
                self.stats.n_worker_failures += len(batch)
                self.stats.batch_sizes.append(0)
                continue
            try:
                # Receive mutates only per-server replay state, so the
                # servers' fused frame-check+decode sweeps fan out
                # safely; within one server the batch stays in stream
                # order.
                received = await fanout.sweep("receive", [
                    (
                        batch_id,
                        self._payloads_for(s, submissions, batch),
                        self.encrypt,
                    )
                    for s in range(n_servers)
                ])
            except asyncio.CancelledError:
                raise
            except Exception:
                # A worker died mid-receive: fail this batch alone.
                # Servers that did receive must release the ids so an
                # honest retry is not mistaken for a replay.
                await self._cleanup_batch(fanout, batch_id, "abandon_all")
                self.stats.n_worker_failures += len(batch)
                self.stats.batch_sizes.append(0)
                continue
            survivors: list[int] = []
            keep: list[int] = []
            for pos, index in enumerate(batch):
                if any(received[s][pos] is not None for s in range(n_servers)):
                    # Mirror of the synchronous fan-out rule; the
                    # ingest op below abandons this position at the
                    # servers whose receive succeeded.
                    self.stats.n_receive_failures += 1
                    results[index] = False
                else:
                    survivors.append(index)
                    keep.append(pos)
            try:
                # The heavy part — PRG expansion and byte decode into
                # plane matrices — fans out per server.
                await fanout.sweep(
                    "ingest", [(batch_id, keep)] * n_servers
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                await self._cleanup_batch(fanout, batch_id, "abandon_all")
                self.stats.n_worker_failures += len(survivors)
                self.stats.batch_sizes.append(0)
                continue
            self.stats.batch_sizes.append(len(survivors))
            if self._verifying:
                self.stats.overlapped_batches += 1
            if survivors:
                await verify_q.put(
                    _IngestedBatch(batch_id=batch_id, indices=survivors)
                )

    # ------------------------------------------------------------------
    # Stage 3: the two SNIP rounds + decide + accumulate
    # ------------------------------------------------------------------

    async def _verify_stage(self, verify_q, results, fanout) -> None:
        n_servers = len(self.servers)
        while True:
            item = await verify_q.get()
            if item is _DONE:
                return
            self._verifying = True
            try:
                round1_batches = await fanout.sweep(
                    "round1", [(item.batch_id,)] * n_servers
                )
                # The round-1/round-2 broadcasts stay in plane form —
                # every server consumes the same per-server batches.
                round2_batches = await fanout.sweep(
                    "round2",
                    [(item.batch_id, round1_batches)] * n_servers,
                )
                decisions = self.servers[0].decide_batch(round2_batches)
            except asyncio.CancelledError:
                raise
            except ValueError:
                # Defensive mirror of the synchronous path: shapes were
                # validated at receive time, so fail the whole batch
                # rather than mis-credit any of it.
                await self._cleanup_batch(fanout, item.batch_id, "reject_all")
                for index in item.indices:
                    results[index] = False
                continue
            except Exception:
                # A worker died mid-round: nothing was committed yet,
                # so reject this batch alone and keep draining.
                await self._cleanup_batch(fanout, item.batch_id, "reject_all")
                self.stats.n_worker_failures += len(item.indices)
                for index in item.indices:
                    results[index] = False
                continue
            finally:
                self._verifying = False
            # The commit point.  A failure here cannot be isolated to
            # the batch: servers that already folded it into their
            # accumulators cannot roll back, so a partial commit leaves
            # the server set divergent (shares would no longer cancel
            # at publish).  Let the exception propagate — the run fails
            # loudly instead of silently publishing garbage (PR 3
            # likewise ran Aggregate outside its defensive net).
            await fanout.sweep(
                "accumulate", [(item.batch_id, decisions)] * n_servers
            )
            for index, accepted in zip(item.indices, decisions):
                results[index] = accepted


def run_pipelined(
    servers: "list[PrioServer]",
    submissions,
    batch_size: int = 64,
    queue_depth: int = 2,
    encrypt: bool = False,
    executor: "str | ServerFanout | ThreadPoolExecutor | None" = None,
    n_shards: int = 1,
) -> tuple[list[bool], PipelineStats]:
    """One-call pipeline run over prepared submissions.

    Returns ``(decisions, stats)`` with one decision per submission in
    stream order — the async counterpart of calling
    ``deliver_batch`` chunk by chunk.  ``executor`` selects the
    per-server backend and ``n_shards`` the per-server worker shard
    count (see :class:`AsyncPrioPipeline`).
    """
    pipeline = AsyncPrioPipeline(
        servers,
        batch_size=batch_size,
        queue_depth=queue_depth,
        executor=executor,
        encrypt=encrypt,
        n_shards=n_shards,
    )
    decisions = pipeline.run(submissions)
    return decisions, pipeline.stats
