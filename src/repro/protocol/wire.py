"""Binary wire format for client->server uploads, with byte accounting.

Each client submission becomes one packet per server.  With PRG share
compression (Appendix I), all but the last server receive a 16-byte
seed instead of an explicit share vector, so the total upload is
``L + proof`` field elements plus ``s - 1`` seeds — the bandwidth
numbers behind Figure 6 and Table 2's "data transfer" row.

Packet layout (big-endian):

    magic(2) | version(1) | kind(1) | submission_id(16) |
    server_index(2) | n_elements(4) | body

``kind`` is SEED (body = 16-byte PRG seed) or EXPLICIT (body =
``n_elements`` fixed-width field elements).  Packets may additionally
be sealed with the recipient server's box key at the transport layer
(:mod:`repro.crypto.box`); sealing adds a constant 49 bytes.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

from repro.field.prime_field import PrimeField
from repro.sharing.prg import SEED_SIZE

MAGIC = b"PR"
VERSION = 1
SUBMISSION_ID_SIZE = 16
_HEADER_SIZE = 2 + 1 + 1 + SUBMISSION_ID_SIZE + 2 + 4


class WireError(ValueError):
    """Raised for malformed packets."""


class PacketKind(enum.IntEnum):
    SEED = 0
    EXPLICIT = 1


@dataclass(frozen=True)
class ClientPacket:
    """One server's slice of a client submission."""

    submission_id: bytes
    server_index: int
    kind: PacketKind
    #: total share-vector length in field elements (both kinds)
    n_elements: int
    #: seed bytes (SEED) or encoded field elements (EXPLICIT)
    body: bytes

    def encode(self) -> bytes:
        if len(self.submission_id) != SUBMISSION_ID_SIZE:
            raise WireError("bad submission id size")
        return (
            MAGIC
            + bytes([VERSION, int(self.kind)])
            + self.submission_id
            + self.server_index.to_bytes(2, "big")
            + self.n_elements.to_bytes(4, "big")
            + self.body
        )

    @classmethod
    def decode(cls, data: bytes, field: PrimeField) -> "ClientPacket":
        if len(data) < _HEADER_SIZE:
            raise WireError("packet too short")
        if data[:2] != MAGIC:
            raise WireError("bad magic")
        if data[2] != VERSION:
            raise WireError(f"unsupported version {data[2]}")
        try:
            kind = PacketKind(data[3])
        except ValueError as exc:
            raise WireError(f"unknown packet kind {data[3]}") from exc
        submission_id = data[4:20]
        server_index = int.from_bytes(data[20:22], "big")
        n_elements = int.from_bytes(data[22:26], "big")
        body = data[26:]
        if kind is PacketKind.SEED and len(body) != SEED_SIZE:
            raise WireError("seed packet has wrong body size")
        if kind is PacketKind.EXPLICIT and (
            len(body) != n_elements * field.encoded_size
        ):
            raise WireError("explicit packet has wrong body size")
        return cls(
            submission_id=submission_id,
            server_index=server_index,
            kind=kind,
            n_elements=n_elements,
            body=body,
        )

    def share_vector(self, field: PrimeField) -> list[int]:
        """Materialize this packet's share vector."""
        if self.kind is PacketKind.SEED:
            from repro.sharing.prg import expand_seed

            return expand_seed(field, self.body, self.n_elements)
        return field.decode_vector(self.body)

    def encoded_size(self) -> int:
        return _HEADER_SIZE + len(self.body)


def new_submission_id(rng=None) -> bytes:
    if rng is None:
        return os.urandom(SUBMISSION_ID_SIZE)
    return rng.randbytes(SUBMISSION_ID_SIZE)


def packets_for_shares(
    field: PrimeField,
    submission_id: bytes,
    seeds: list[bytes],
    explicit_share: list[int],
) -> list[ClientPacket]:
    """Build the per-server packets from a PRG-compressed sharing."""
    n_elements = len(explicit_share)
    packets = [
        ClientPacket(
            submission_id=submission_id,
            server_index=i,
            kind=PacketKind.SEED,
            n_elements=n_elements,
            body=seed,
        )
        for i, seed in enumerate(seeds)
    ]
    packets.append(
        ClientPacket(
            submission_id=submission_id,
            server_index=len(seeds),
            kind=PacketKind.EXPLICIT,
            n_elements=n_elements,
            body=field.encode_vector(explicit_share),
        )
    )
    return packets


def packets_for_explicit_shares(
    field: PrimeField,
    submission_id: bytes,
    shares: list[list[int]],
) -> list[ClientPacket]:
    """Uncompressed variant (the PRG ablation's baseline)."""
    return [
        ClientPacket(
            submission_id=submission_id,
            server_index=i,
            kind=PacketKind.EXPLICIT,
            n_elements=len(share),
            body=field.encode_vector(share),
        )
        for i, share in enumerate(shares)
    ]


def total_upload_bytes(packets: list[ClientPacket]) -> int:
    """Client upload cost across all servers for one submission."""
    return sum(p.encoded_size() for p in packets)
