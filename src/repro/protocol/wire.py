"""Binary wire format for client->server uploads, with byte accounting.

Each client submission becomes one packet per server.  With PRG share
compression (Appendix I), all but the last server receive a 16-byte
seed instead of an explicit share vector, so the total upload is
``L + proof`` field elements plus ``s - 1`` seeds — the bandwidth
numbers behind Figure 6 and Table 2's "data transfer" row.

Packet layout (big-endian):

    magic(2) | version(1) | kind(1) | submission_id(16) |
    server_index(2) | n_elements(4) | body

``kind`` is SEED (body = 16-byte PRG seed) or EXPLICIT (body =
``n_elements`` fixed-width field elements).

Sealed packets.  Packets may additionally be sealed with the recipient
server's box key (:mod:`repro.crypto.box`).  A sealed packet is not a
bare box: it carries a cleartext *envelope header* so that routing
infrastructure (the socket transport's response frames, the sharded
fan-out's id partition) can see the submission id without holding a
decryption key::

    envelope = magic(2)="PS" | version(1) | submission_id(16) |
               server_index(2)
    sealed packet = envelope || box(packet_bytes, ad=envelope)

The envelope is passed to the box as *associated data*, so the box MAC
covers ``envelope || ciphertext``: an attacker cannot graft envelope A
onto box B without failing authentication, and the server additionally
rejects any opened packet whose inner header disagrees with its
envelope.  The trust story is deliberately asymmetric — the cleartext
envelope is trusted only for *routing* and the cheap replay pre-check
(both of which the server re-validates against the authenticated inner
header after opening); share data, packet kind, and lengths come
exclusively from inside the box.  Sealing therefore adds a constant
``sealed_overhead()`` = 21 (envelope) + 49 (point + tag) = 70 bytes
per packet.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

from repro.crypto.box import seal
from repro.field.prime_field import FieldError, PrimeField
from repro.sharing.prg import SEED_SIZE

MAGIC = b"PR"
VERSION = 1
SUBMISSION_ID_SIZE = 16
_HEADER_SIZE = 2 + 1 + 1 + SUBMISSION_ID_SIZE + 2 + 4

#: sealed-packet envelope: magic(2) | version(1) | sid(16) | index(2)
ENVELOPE_MAGIC = b"PS"
ENVELOPE_VERSION = 1
ENVELOPE_SIZE = 2 + 1 + SUBMISSION_ID_SIZE + 2
#: offsets of the submission id inside an envelope
ENVELOPE_SID_START = 3
ENVELOPE_SID_END = ENVELOPE_SID_START + SUBMISSION_ID_SIZE

#: Upper bound on the ``n_elements`` a packet header may claim.  The
#: header field is attacker-controlled and feeds body-size arithmetic,
#: so it is sanity-bounded before being trusted; 2^22 elements is
#: ~44 MiB of body at the 87-bit field — far beyond any real
#: submission (the largest benchmark circuit ships ~2^19 elements).
MAX_N_ELEMENTS = 1 << 22


class WireError(ValueError):
    """Raised for malformed packets."""


class PacketKind(enum.IntEnum):
    SEED = 0
    EXPLICIT = 1


@dataclass(frozen=True)
class ClientPacket:
    """One server's slice of a client submission."""

    submission_id: bytes
    server_index: int
    kind: PacketKind
    #: total share-vector length in field elements (both kinds)
    n_elements: int
    #: seed bytes (SEED) or encoded field elements (EXPLICIT)
    body: bytes

    def encode(self) -> bytes:
        if len(self.submission_id) != SUBMISSION_ID_SIZE:
            raise WireError("bad submission id size")
        # Mirror of the decode-side hardening: a value the fixed-width
        # header cannot represent must fail as a WireError here, not
        # escape as a bare OverflowError from ``to_bytes`` (or worse,
        # encode an n_elements no decoder will ever accept).
        if not 0 <= self.server_index < (1 << 16):
            raise WireError(
                f"server_index {self.server_index} does not fit the "
                "2-byte header field"
            )
        if not 0 <= self.n_elements <= MAX_N_ELEMENTS:
            raise WireError(
                f"n_elements {self.n_elements} outside "
                f"[0, {MAX_N_ELEMENTS}]"
            )
        return (
            MAGIC
            + bytes([VERSION, int(self.kind)])
            + self.submission_id
            + self.server_index.to_bytes(2, "big")
            + self.n_elements.to_bytes(4, "big")
            + self.body
        )

    @classmethod
    def decode(cls, data: bytes, field: PrimeField) -> "ClientPacket":
        if len(data) < _HEADER_SIZE:
            raise WireError("packet too short")
        if data[:2] != MAGIC:
            raise WireError("bad magic")
        if data[2] != VERSION:
            raise WireError(f"unsupported version {data[2]}")
        try:
            kind = PacketKind(data[3])
        except ValueError as exc:
            raise WireError(f"unknown packet kind {data[3]}") from exc
        submission_id = data[4:20]
        server_index = int.from_bytes(data[20:22], "big")
        n_elements = int.from_bytes(data[22:26], "big")
        if n_elements > MAX_N_ELEMENTS:
            raise WireError(
                f"n_elements {n_elements} exceeds the maximum "
                f"{MAX_N_ELEMENTS}"
            )
        body = data[26:]
        if kind is PacketKind.SEED:
            if len(body) < SEED_SIZE:
                raise WireError("seed packet body too short")
            if len(body) > SEED_SIZE:
                raise WireError("seed packet has trailing bytes")
        if kind is PacketKind.EXPLICIT and (
            len(body) != n_elements * field.encoded_size
        ):
            raise WireError("explicit packet has wrong body size")
        return cls(
            submission_id=submission_id,
            server_index=server_index,
            kind=kind,
            n_elements=n_elements,
            body=body,
        )

    def share_vector(self, field: PrimeField) -> list[int]:
        """Materialize this packet's share vector."""
        if self.kind is PacketKind.SEED:
            from repro.sharing.prg import expand_seed

            return expand_seed(field, self.body, self.n_elements)
        return field.decode_vector(self.body)

    def encoded_size(self) -> int:
        return _HEADER_SIZE + len(self.body)


def encode_envelope(submission_id: bytes, server_index: int) -> bytes:
    """The cleartext routing header prefixed to a sealed packet."""
    if len(submission_id) != SUBMISSION_ID_SIZE:
        raise WireError("bad submission id size")
    if not 0 <= server_index < (1 << 16):
        raise WireError(
            f"server_index {server_index} does not fit the "
            "2-byte envelope field"
        )
    return (
        ENVELOPE_MAGIC
        + bytes([ENVELOPE_VERSION])
        + submission_id
        + server_index.to_bytes(2, "big")
    )


def parse_envelope(data: bytes) -> "tuple[bytes, int, bytes]":
    """Split a sealed packet into ``(sid, server_index, box_bytes)``.

    Only the envelope is parsed — the box stays sealed.  The returned
    fields are *routing hints* until the box is opened and the inner
    header confirmed; see the module docstring for the trust story.
    """
    if len(data) < ENVELOPE_SIZE:
        raise WireError("sealed packet too short for its envelope")
    if data[:2] != ENVELOPE_MAGIC:
        raise WireError("bad envelope magic")
    if data[2] != ENVELOPE_VERSION:
        raise WireError(f"unsupported envelope version {data[2]}")
    submission_id = bytes(data[ENVELOPE_SID_START:ENVELOPE_SID_END])
    server_index = int.from_bytes(data[ENVELOPE_SID_END:ENVELOPE_SIZE], "big")
    return submission_id, server_index, bytes(data[ENVELOPE_SIZE:])


def seal_packet(recipient_public, packet: ClientPacket, rng=None) -> bytes:
    """Seal one packet to its server: ``envelope || box(.., ad=env)``."""
    envelope = encode_envelope(packet.submission_id, packet.server_index)
    return envelope + seal(
        recipient_public, packet.encode(), rng, associated_data=envelope
    )


def share_vectors_batch(field: PrimeField, packets, force_pure=None):
    """Materialize many packets' share vectors as one ``(B, n)`` batch.

    The zero-copy ingest entry point: SEED bodies expand through the
    vectorized PRG (:func:`repro.sharing.prg.expand_seed_batch`) and
    EXPLICIT bodies decode straight from wire bytes to limb planes
    (:func:`repro.field.batch.decode_bytes_batch`), then both merge —
    plane copies, no per-element Python ints — into a single
    :class:`~repro.field.batch.BatchVector` whose row order matches
    ``packets``.  Row ``i`` is bit-identical to
    ``packets[i].share_vector(field)``.

    All packets must agree on ``n_elements`` (one verification batch
    shares one AFE).  Malformed bodies raise :class:`WireError`;
    out-of-range explicit elements raise
    :class:`~repro.field.prime_field.FieldError` naming the batch
    position.

    This is the one-call entry point for callers that hold a whole
    batch of packets at once (benchmarks, offline re-verification,
    custom transports).  :class:`~repro.protocol.server.PrioServer`
    builds its share matrix from the same three kernels but splits the
    dispatch across its receive/verify phases — EXPLICIT bodies decode
    (checked) per packet at ``receive`` time so an out-of-range upload
    rejects *alone*, while SEED expansion and row assembly happen in
    the per-batch ``_ingest_batch`` sweep; a whole-batch raise here
    could not express that isolation.
    """
    from repro.field.batch import (
        _out_of_range_error,
        assemble_rows,
        decode_bytes_batch,
    )
    from repro.sharing.prg import expand_seed_batch

    packets = list(packets)
    if not packets:
        raise WireError("share_vectors_batch needs at least one packet")
    n = packets[0].n_elements
    for packet in packets:
        if packet.n_elements != n:
            raise WireError("mixed share-vector lengths in batch")
        if packet.kind is PacketKind.SEED and len(packet.body) != SEED_SIZE:
            raise WireError("seed packet has wrong body size")
        if packet.kind is PacketKind.EXPLICIT and (
            len(packet.body) != n * field.encoded_size
        ):
            raise WireError("explicit packet has wrong body size")
    seed_idx = [
        i for i, p in enumerate(packets) if p.kind is PacketKind.SEED
    ]
    expl_idx = [
        i for i, p in enumerate(packets) if p.kind is PacketKind.EXPLICIT
    ]
    sources: list = [None] * len(packets)
    if seed_idx:
        expanded = expand_seed_batch(
            field, [packets[i].body for i in seed_idx], n, force_pure
        )
        for t, i in enumerate(seed_idx):
            sources[i] = (expanded, t)
    if expl_idx:
        try:
            decoded = decode_bytes_batch(
                field, [packets[i].body for i in expl_idx], force_pure
            )
        except FieldError as exc:
            # Remap the EXPLICIT-subset position to the caller's
            # packet order before reporting.
            row = getattr(exc, "batch_row", None)
            if row is None:
                raise
            raise _out_of_range_error(
                expl_idx[row], exc.batch_element
            ) from exc
        for t, i in enumerate(expl_idx):
            sources[i] = (decoded, t)
    return assemble_rows(field, sources, force_pure)


def new_submission_id(rng=None) -> bytes:
    if rng is None:
        return os.urandom(SUBMISSION_ID_SIZE)
    return rng.randbytes(SUBMISSION_ID_SIZE)


def packets_for_share_bodies(
    submission_id: bytes,
    seeds: list[bytes],
    explicit_body: bytes,
    n_elements: int,
) -> list[ClientPacket]:
    """PRG-compressed packet layout from an already-encoded body.

    The one place the compressed layout is defined: SEED packets for
    servers ``0 .. len(seeds) - 1``, the explicit share at the last
    index.  Both the scalar client (via :func:`packets_for_shares`)
    and the batched client (bodies from
    :func:`~repro.field.batch.encode_bytes_batch`) build here.
    """
    packets = [
        ClientPacket(
            submission_id=submission_id,
            server_index=i,
            kind=PacketKind.SEED,
            n_elements=n_elements,
            body=seed,
        )
        for i, seed in enumerate(seeds)
    ]
    packets.append(
        ClientPacket(
            submission_id=submission_id,
            server_index=len(seeds),
            kind=PacketKind.EXPLICIT,
            n_elements=n_elements,
            body=explicit_body,
        )
    )
    return packets


def packets_for_shares(
    field: PrimeField,
    submission_id: bytes,
    seeds: list[bytes],
    explicit_share: list[int],
) -> list[ClientPacket]:
    """Build the per-server packets from a PRG-compressed sharing."""
    return packets_for_share_bodies(
        submission_id,
        seeds,
        field.encode_vector(explicit_share),
        len(explicit_share),
    )


def packets_for_explicit_bodies(
    submission_id: bytes,
    bodies: list[bytes],
    n_elements: int,
) -> list[ClientPacket]:
    """Uncompressed packet layout from already-encoded bodies."""
    return [
        ClientPacket(
            submission_id=submission_id,
            server_index=i,
            kind=PacketKind.EXPLICIT,
            n_elements=n_elements,
            body=body,
        )
        for i, body in enumerate(bodies)
    ]


def packets_for_explicit_shares(
    field: PrimeField,
    submission_id: bytes,
    shares: list[list[int]],
) -> list[ClientPacket]:
    """Uncompressed variant (the PRG ablation's baseline)."""
    if not shares:
        return []
    return packets_for_explicit_bodies(
        submission_id,
        [field.encode_vector(share) for share in shares],
        len(shares[0]),
    )


def total_upload_bytes(packets: list[ClientPacket]) -> int:
    """Client upload cost across all servers for one submission."""
    return sum(p.encoded_size() for p in packets)
