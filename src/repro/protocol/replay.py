"""Pluggable replay-id caches for the Prio servers.

The paper notes Prio packets "can be replay-protected at the servers";
until this module that protection was a single in-memory Python
``set`` per server — perfectly adequate for tests, hopeless for the
succinct-sketches regime of tens of millions of users, where the seen
set alone would cost multiple GB of pointer-heavy Python objects and
would be re-pickled whole on every process-fan-out state merge.

:class:`ReplayCache` is the seam :class:`~repro.protocol.server
.PrioServer` now speaks.  Two implementations ship:

:class:`InMemoryReplayCache`
    A thin wrapper over the original ``set`` — the test/reference
    implementation, byte-for-byte the old behavior.

:class:`TieredReplayCache`
    A bounded hot L1 (insertion-ordered dict of the most recently
    added ids) over a SQLite-backed L2 on disk.  When L1 overflows,
    the oldest ids spill to L2 in one batched write; membership checks
    hit L1 first and fall through to an indexed L2 lookup.  Sized for
    tens of millions of ids: L1 costs Python-set rates (~100 B/id all
    in) only for the configured hot window, L2 costs SQLite b-tree
    rates (~32 B/id on disk) for everything else, and nothing is ever
    lost — eviction moves ids between tiers, never drops them.

Both implementations share the **incremental snapshot** protocol the
fan-out backends rely on: :meth:`ReplayCache.mark` starts a run,
:meth:`ReplayCache.delta` returns exactly the ids added since the
mark, and :meth:`ReplayCache.update` merges a delta in.  A long-lived
sharded deployment therefore ships per-run deltas across process
boundaries, not the full multi-million-id history (the PR-4 snapshot
path re-pickled the entire seen set on every run-end merge).

Caches pickle for the process fan-out: the in-memory cache pickles its
set; the tiered cache pickles its L1 and the L2 *path* — the worker
process reopens the same database file, so L2 contents never cross the
boundary at all.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
from typing import Iterable, Iterator

__all__ = [
    "InMemoryReplayCache",
    "ReplayCache",
    "ReplayCacheError",
    "TieredReplayCache",
    "resolve_replay_cache",
]


class ReplayCacheError(ValueError):
    """Raised for an unknown replay-cache selection."""


class ReplayCache:
    """The replay-protection contract a Prio server drives.

    Semantically a grow-only set of submission ids (``bytes``) with a
    run-delta protocol on top.  Implementations must be picklable (the
    process fan-out ships servers — and therefore their caches — into
    worker processes) and safe to call from executor threads (the
    thread fan-out runs server ops on a pool).
    """

    # -- membership -----------------------------------------------------

    def __contains__(self, sid: bytes) -> bool:
        raise NotImplementedError

    def add(self, sid: bytes) -> None:
        raise NotImplementedError

    def update(self, sids: Iterable[bytes]) -> None:
        for sid in sids:
            self.add(sid)

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[bytes]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    # -- run deltas (the incremental-snapshot seam) ---------------------

    def mark(self) -> None:
        """Begin a run: subsequent :meth:`delta` calls report only ids
        added after this point.  Re-marking resets the window."""
        raise NotImplementedError

    def delta(self) -> "set[bytes]":
        """Ids added since the last :meth:`mark` (all ids if never
        marked) — the only replay state a run-end merge must ship."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------

    def spawn(self) -> "ReplayCache":
        """A fresh, empty cache of the same configuration (per-shard
        caches are spawned from the logical server's)."""
        raise NotImplementedError

    def close(self) -> None:
        return None


class InMemoryReplayCache(ReplayCache):
    """The original per-server ``set``, behind the pluggable seam."""

    def __init__(self, ids: Iterable[bytes] = ()) -> None:
        self._ids: set[bytes] = set(ids)
        self._delta: "set[bytes] | None" = None

    def __contains__(self, sid: bytes) -> bool:
        return sid in self._ids

    def add(self, sid: bytes) -> None:
        self._ids.add(sid)
        if self._delta is not None:
            self._delta.add(sid)

    def update(self, sids: Iterable[bytes]) -> None:
        sids = set(sids)
        self._ids |= sids
        if self._delta is not None:
            self._delta |= sids

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._ids)

    def clear(self) -> None:
        self._ids.clear()
        if self._delta is not None:
            self._delta = set()

    def mark(self) -> None:
        self._delta = set()

    def delta(self) -> "set[bytes]":
        if self._delta is None:
            return set(self._ids)
        return set(self._delta)

    def spawn(self) -> "InMemoryReplayCache":
        return InMemoryReplayCache()


class TieredReplayCache(ReplayCache):
    """Bounded hot L1 over a SQLite L2 — replay protection at scale.

    ``l1_capacity`` bounds the in-process id set; beyond it, the
    oldest quarter of L1 spills to the ``path`` database in a single
    batched transaction (insertion order approximates recency for a
    replay cache: honest replays cluster near their original
    submission, so the hot window catches the common case without
    touching disk).  ``path=None`` creates a private temp file removed
    by :meth:`close`.

    Memory math (the sizing note in ``benchmarks/README.md``): a
    Python ``set`` of 16-byte ids costs ~100 B/id (bytes object +
    hash-table slot), so 10^7 ids ≈ 1 GB resident; L2 stores the same
    ids as a SQLite ``BLOB PRIMARY KEY`` b-tree at ~32 B/id on disk,
    so the same 10^7 ids ≈ 320 MB of disk and a handful of MB of page
    cache.  With the default 10^6-id L1 a server absorbs tens of
    millions of users in bounded memory.
    """

    def __init__(
        self,
        l1_capacity: int = 1_000_000,
        path: "str | None" = None,
    ) -> None:
        if l1_capacity < 1:
            raise ReplayCacheError("l1_capacity must be >= 1")
        self.l1_capacity = l1_capacity
        if path is None:
            fd, path = tempfile.mkstemp(
                prefix="prio-replay-", suffix=".sqlite"
            )
            os.close(fd)
            self._owns_path = True
        else:
            self._owns_path = False
        self.path = path
        #: insertion-ordered hot tier (dict keys preserve order)
        self._l1: "dict[bytes, None]" = {}
        self._delta: "set[bytes] | None" = None
        self._lock = threading.Lock()
        self._conn: "sqlite3.Connection | None" = None
        #: observability counters (the contract tests pin eviction
        #: behavior through these)
        self.n_evicted = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self._init_db()

    # -- L2 plumbing ----------------------------------------------------

    def _init_db(self) -> None:
        conn = sqlite3.connect(self.path, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS seen_ids (id BLOB PRIMARY KEY)"
            " WITHOUT ROWID"
        )
        conn.commit()
        self._conn = conn

    def _db(self) -> sqlite3.Connection:
        if self._conn is None:
            self._init_db()
        return self._conn

    def _spill(self) -> None:
        """Move the oldest quarter of L1 into L2 (one transaction)."""
        n_evict = max(1, self.l1_capacity // 4)
        victims = []
        for sid in self._l1:
            victims.append(sid)
            if len(victims) >= n_evict:
                break
        conn = self._db()
        conn.executemany(
            "INSERT OR IGNORE INTO seen_ids (id) VALUES (?)",
            [(sid,) for sid in victims],
        )
        conn.commit()
        for sid in victims:
            del self._l1[sid]
        self.n_evicted += len(victims)

    def _l2_contains(self, sid: bytes) -> bool:
        row = self._db().execute(
            "SELECT 1 FROM seen_ids WHERE id = ? LIMIT 1", (sid,)
        ).fetchone()
        return row is not None

    # -- ReplayCache ----------------------------------------------------

    def __contains__(self, sid: bytes) -> bool:
        with self._lock:
            if sid in self._l1:
                self.l1_hits += 1
                return True
            if self._l2_contains(sid):
                self.l2_hits += 1
                return True
            self.misses += 1
            return False

    def add(self, sid: bytes) -> None:
        with self._lock:
            self._add_locked(sid)

    def _add_locked(self, sid: bytes) -> None:
        if sid not in self._l1:
            self._l1[sid] = None
            if len(self._l1) > self.l1_capacity:
                self._spill()
        if self._delta is not None:
            self._delta.add(sid)

    def update(self, sids: Iterable[bytes]) -> None:
        with self._lock:
            for sid in sids:
                self._add_locked(sid)

    def __len__(self) -> int:
        with self._lock:
            (n_l2,) = self._db().execute(
                "SELECT COUNT(*) FROM seen_ids"
            ).fetchone()
            # Ids can live in both tiers (update() of a spilled id);
            # count the overlap in bounded-parameter chunks.
            n_both = 0
            l1_ids = list(self._l1)
            for start in range(0, len(l1_ids), 500):
                chunk = l1_ids[start:start + 500]
                marks = ",".join("?" for _ in chunk)
                (n,) = self._db().execute(
                    f"SELECT COUNT(*) FROM seen_ids WHERE id IN ({marks})",
                    chunk,
                ).fetchone()
                n_both += n
            return len(self._l1) + n_l2 - n_both

    def __iter__(self) -> Iterator[bytes]:
        with self._lock:
            ids = dict(self._l1)
            for (sid,) in self._db().execute("SELECT id FROM seen_ids"):
                ids[bytes(sid)] = None
        return iter(list(ids))

    def clear(self) -> None:
        with self._lock:
            self._l1.clear()
            self._db().execute("DELETE FROM seen_ids")
            self._db().commit()
            if self._delta is not None:
                self._delta = set()

    def mark(self) -> None:
        with self._lock:
            self._delta = set()

    def delta(self) -> "set[bytes]":
        with self._lock:
            if self._delta is not None:
                return set(self._delta)
        return set(self)

    def spawn(self) -> "TieredReplayCache":
        return TieredReplayCache(l1_capacity=self.l1_capacity)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            if self._owns_path and os.path.exists(self.path):
                try:
                    os.unlink(self.path)
                    for suffix in ("-wal", "-shm"):
                        side = self.path + suffix
                        if os.path.exists(side):
                            os.unlink(side)
                except OSError:
                    pass

    # -- pickling (the process-fan-out crossing) ------------------------

    def __getstate__(self) -> dict:
        with self._lock:
            # Make sure the worker-side reopen sees every spilled id:
            # WAL content is shared through the file system, but an
            # un-committed transaction would not be.  (All writes
            # commit eagerly, so this is belt and braces.)
            if self._conn is not None:
                self._conn.commit()
            return {
                "l1_capacity": self.l1_capacity,
                "path": self.path,
                "l1": list(self._l1),
                "delta": None if self._delta is None else set(self._delta),
                "n_evicted": self.n_evicted,
            }

    def __setstate__(self, state: dict) -> None:
        self.l1_capacity = state["l1_capacity"]
        self.path = state["path"]
        #: an unpickled copy never owns the backing file — the
        #: driver-side original does; a worker must not unlink it
        self._owns_path = False
        self._l1 = dict.fromkeys(state["l1"])
        self._delta = state["delta"]
        self._lock = threading.Lock()
        self._conn = None
        self.n_evicted = state["n_evicted"]
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0


def resolve_replay_cache(spec: "ReplayCache | str | None") -> ReplayCache:
    """Resolve the server's ``replay_cache`` knob.

    ``None`` or ``"memory"`` give the in-memory reference cache;
    ``"tiered"`` a default-sized :class:`TieredReplayCache`; a ready
    :class:`ReplayCache` instance passes through.
    """
    if spec is None or spec == "memory":
        return InMemoryReplayCache()
    if spec == "tiered":
        return TieredReplayCache()
    if isinstance(spec, ReplayCache):
        return spec
    raise ReplayCacheError(f"unknown replay cache selection: {spec!r}")
