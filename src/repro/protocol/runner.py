"""In-process deployment runner: wires clients and servers lock-step.

``PrioDeployment`` is the high-level API most examples use:

    deployment = PrioDeployment.create(afe, n_servers=5)
    for value in private_values:
        deployment.submit(value)
    aggregate = deployment.publish()

It executes the full Appendix H protocol — upload (optionally sealed),
two-round SNIP verification, accumulate, publish, decode — with every
server as a real :class:`~repro.protocol.server.PrioServer` instance,
and keeps the bandwidth/acceptance statistics the benchmarks report.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass, field as dc_field

from repro.afe.base import Afe
from repro.crypto.box import BoxKeyPair
from repro.protocol.client import ClientSubmission, PrioClient
from repro.protocol.server import PendingSubmission, PrioServer, ProtocolError
from repro.snip.verifier import ServerRandomness


@dataclass
class DeploymentStats:
    n_submitted: int = 0
    n_accepted: int = 0
    n_rejected: int = 0
    upload_bytes_total: int = 0
    #: per-server broadcast elements (verification traffic)
    broadcast_elements: list[int] = dc_field(default_factory=list)


class PrioDeployment:
    """A full in-process Prio deployment for one aggregation task."""

    def __init__(
        self,
        afe: Afe,
        servers: list[PrioServer],
        client: PrioClient,
        encrypt: bool,
    ) -> None:
        self.afe = afe
        self.servers = servers
        self.client = client
        self.encrypt = encrypt
        self.stats = DeploymentStats()

    @classmethod
    def create(
        cls,
        afe: Afe,
        n_servers: int,
        seed: bytes | None = None,
        use_prg_compression: bool = True,
        encrypt: bool = False,
        epoch_size: int = 1024,
        rng=None,
    ) -> "PrioDeployment":
        if n_servers < 2:
            raise ProtocolError("Prio needs at least two servers")
        if rng is None:
            rng = _random.Random(os.urandom(16))
        randomness = ServerRandomness(seed or rng.randbytes(16))
        box_keys = None
        box_keypairs: list[BoxKeyPair | None] = [None] * n_servers
        if encrypt:
            box_keypairs = [BoxKeyPair.generate(rng) for _ in range(n_servers)]
            box_keys = [kp.public for kp in box_keypairs]
        servers = [
            PrioServer(
                afe, i, n_servers, randomness,
                epoch_size=epoch_size, box_keypair=box_keypairs[i],
            )
            for i in range(n_servers)
        ]
        client = PrioClient(
            afe, n_servers,
            use_prg_compression=use_prg_compression,
            server_box_keys=box_keys,
            rng=rng,
        )
        return cls(afe=afe, servers=servers, client=client, encrypt=encrypt)

    # ------------------------------------------------------------------

    def submit(self, value, mutate=None) -> bool:
        """Run one client's value through the full pipeline.

        ``mutate``, if given, receives the :class:`ClientSubmission`
        before delivery and may corrupt it — the robustness tests'
        fault-injection hook.
        """
        submission = self.client.prepare_submission(value)
        if mutate is not None:
            mutate(submission)
        return self.deliver(submission)

    def deliver(self, submission: ClientSubmission) -> bool:
        self.stats.n_submitted += 1
        self.stats.upload_bytes_total += submission.upload_bytes

        pendings: list[PendingSubmission] = []
        try:
            for i, server in enumerate(self.servers):
                if self.encrypt:
                    pendings.append(
                        server.receive_sealed(submission.sealed_packets[i])
                    )
                else:
                    pendings.append(server.receive(submission.packets[i]))
        except (ProtocolError, ValueError):
            self.stats.n_rejected += 1
            return False

        parties = []
        round1 = []
        try:
            for server, pending in zip(self.servers, pendings):
                party, msg = server.begin_verification(pending)
                parties.append(party)
                round1.append(msg)
            round2 = [
                server.finish_verification(party, round1)
                for server, party in zip(self.servers, parties)
            ]
        except (ProtocolError, ValueError):
            for server, pending in zip(self.servers, pendings):
                server.reject(pending)
            self.stats.n_rejected += 1
            return False

        accepted = self.servers[0].decide(round2)
        for server, pending in zip(self.servers, pendings):
            if accepted:
                server.accumulate(pending)
            else:
                server.reject(pending)
        if accepted:
            self.stats.n_accepted += 1
        else:
            self.stats.n_rejected += 1
        return accepted

    def submit_many(self, values) -> int:
        """Submit a batch; returns the number accepted."""
        return sum(1 for v in values if self.submit(v))

    # ------------------------------------------------------------------

    def publish_shares(self) -> list[list[int]]:
        return [server.publish() for server in self.servers]

    def publish(self):
        """Combine accumulators and AFE-decode the aggregate."""
        shares = self.publish_shares()
        sigma = self.afe.field.vec_sum(shares)
        n = self.servers[0].n_accepted
        self.stats.broadcast_elements = [
            server.elements_broadcast for server in self.servers
        ]
        return self.afe.decode(sigma, n)
