"""In-process deployment runner: wires clients and servers lock-step.

``PrioDeployment`` is the high-level API most examples use:

    deployment = PrioDeployment.create(afe, n_servers=5)
    for value in private_values:
        deployment.submit(value)
    aggregate = deployment.publish()

It executes the full Appendix H protocol — upload (optionally sealed),
two-round SNIP verification, accumulate, publish, decode — with every
server as a real :class:`~repro.protocol.server.PrioServer` instance,
and keeps the bandwidth/acceptance statistics the benchmarks report.

With ``batch_size > 1`` the deployment proves and verifies
submissions in chunks of that size through the vectorized batch
backend (:mod:`repro.field.batch`): one fused sweep per server per
batch instead of per-submission work.  Acceptance decisions, replay
protection, and every statistic remain per submission — a bad upload
rejects alone, and ``n_rejected``/``upload_bytes_total`` count
submissions, never batches.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass, field as dc_field

from repro.afe.base import Afe
from repro.crypto.box import BoxKeyPair
from repro.protocol.client import ClientSubmission, PrioClient
from repro.protocol.server import PendingSubmission, PrioServer, ProtocolError
from repro.snip.verifier import ServerRandomness


@dataclass
class DeploymentStats:
    n_submitted: int = 0
    n_accepted: int = 0
    n_rejected: int = 0
    upload_bytes_total: int = 0
    #: per-server broadcast elements (verification traffic)
    broadcast_elements: list[int] = dc_field(default_factory=list)


class PrioDeployment:
    """A full in-process Prio deployment for one aggregation task."""

    def __init__(
        self,
        afe: Afe,
        servers: list[PrioServer],
        client: PrioClient,
        encrypt: bool,
        batch_size: int = 1,
        executor=None,
    ) -> None:
        self.afe = afe
        self.servers = servers
        self.client = client
        self.encrypt = encrypt
        self.batch_size = batch_size
        #: pipeline execution backend ("thread" | "process" | "inline" |
        #: "auto", a ServerFanout, or None for the host-sized default)
        self.executor = executor
        #: backend resolved from a string `executor`, cached so repeated
        #: pipelined calls reuse one worker-pool set (spawning process
        #: workers per call would dwarf the fan-out win); released by
        #: :meth:`close`
        self._fanout = None
        self.stats = DeploymentStats()

    @classmethod
    def create(
        cls,
        afe: Afe,
        n_servers: int,
        seed: bytes | None = None,
        use_prg_compression: bool = True,
        encrypt: bool = False,
        epoch_size: int = 1024,
        batch_size: int = 1,
        force_pure_backend: bool | None = None,
        rng=None,
        executor=None,
        replay_cache=None,
    ) -> "PrioDeployment":
        """``batch_size`` makes servers accumulate and verify submissions
        in batches of that size (``submit_many`` chunks accordingly);
        decisions and statistics remain per submission.  ``executor``
        selects the pipelined paths' per-server execution backend
        (``"thread"``/``"process"``/``"inline"``/``"auto"``, optionally
        with a ``":K"`` shard suffix; see :mod:`repro.protocol.fanout`).
        ``replay_cache`` selects each server's replay store
        (``"memory"``/``"tiered"``; see :mod:`repro.protocol.replay`) —
        only a string spec is accepted here because every server needs
        its own independent cache."""
        if n_servers < 2:
            raise ProtocolError("Prio needs at least two servers")
        if batch_size < 1:
            raise ProtocolError("batch_size must be >= 1")
        if replay_cache is not None and not isinstance(replay_cache, str):
            raise ProtocolError(
                "replay_cache must be a string spec here (each server "
                "needs its own cache instance); pass instances to "
                "PrioServer directly"
            )
        if rng is None:
            rng = _random.Random(os.urandom(16))
        randomness = ServerRandomness(seed or rng.randbytes(16))
        box_keys = None
        box_keypairs: list[BoxKeyPair | None] = [None] * n_servers
        if encrypt:
            box_keypairs = [BoxKeyPair.generate(rng) for _ in range(n_servers)]
            box_keys = [kp.public for kp in box_keypairs]
        servers = [
            PrioServer(
                afe, i, n_servers, randomness,
                epoch_size=epoch_size, box_keypair=box_keypairs[i],
                force_pure_backend=force_pure_backend,
                replay_cache=replay_cache,
            )
            for i in range(n_servers)
        ]
        client = PrioClient(
            afe, n_servers,
            use_prg_compression=use_prg_compression,
            server_box_keys=box_keys,
            rng=rng,
        )
        return cls(
            afe=afe, servers=servers, client=client, encrypt=encrypt,
            batch_size=batch_size, executor=executor,
        )

    # ------------------------------------------------------------------

    def _resolve_executor(self, override):
        """Backend for one pipelined call: per-call override wins; a
        deployment-level *string* selection resolves once and the
        resulting fan-out (its worker pools) is reused across calls."""
        if override is not None:
            return override
        if isinstance(self.executor, str):
            if self._fanout is None:
                from repro.protocol.fanout import resolve_fanout

                self._fanout, _ = resolve_fanout(
                    self.servers, self.executor, self.batch_size
                )
            return self._fanout
        return self.executor

    def close(self) -> None:
        """Release any worker pools the deployment created, plus each
        server's replay cache (tiered caches own on-disk databases);
        idempotent."""
        if self._fanout is not None:
            self._fanout.close()
            self._fanout = None
        for server in self.servers:
            server._replay.close()

    def __enter__(self) -> "PrioDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def submit(self, value, mutate=None) -> bool:
        """Run one client's value through the full pipeline.

        ``mutate``, if given, receives the :class:`ClientSubmission`
        before delivery and may corrupt it — the robustness tests'
        fault-injection hook.
        """
        submission = self.client.prepare_submission(value)
        if mutate is not None:
            mutate(submission)
        return self.deliver(submission)

    def deliver(self, submission: ClientSubmission) -> bool:
        """Run one prepared submission through the pipeline (a batch
        of one — the batched path is bit-identical at every size)."""
        return self.deliver_batch([submission])[0]

    def deliver_batch(self, submissions) -> list[bool]:
        """Run a batch of prepared submissions through the pipeline.

        Framing errors (wrong length, replay, bad seal) reject the
        offending submission alone; the rest of the batch proceeds to
        one vectorized SNIP verification sweep per server, after which
        every submission is accepted or rejected — and counted in the
        statistics — individually.
        """
        submissions = list(submissions)
        results: list[bool | None] = [None] * len(submissions)
        received: list[tuple[int, list[PendingSubmission]]] = []
        for idx, submission in enumerate(submissions):
            self.stats.n_submitted += 1
            self.stats.upload_bytes_total += submission.upload_bytes
            pendings: list[PendingSubmission] = []
            try:
                for i, server in enumerate(self.servers):
                    if self.encrypt:
                        pendings.append(
                            server.receive_sealed(submission.sealed_packets[i])
                        )
                    else:
                        pendings.append(server.receive(submission.packets[i]))
            except (ProtocolError, ValueError):
                # Servers that did receive must release the id: no
                # decision was made, and an honest retry must not be
                # mistaken for a replay.
                for server, pending in zip(self.servers, pendings):
                    server.abandon(pending)
                self.stats.n_rejected += 1
                results[idx] = False
                continue
            received.append((idx, pendings))

        if received:
            try:
                parties = []
                round1_by_server = []
                for s, server in enumerate(self.servers):
                    party, round1 = server.begin_verification_batch(
                        [pendings[s] for _, pendings in received]
                    )
                    parties.append(party)
                    round1_by_server.append(round1)
                # The round-1/round-2 broadcasts stay in plane form —
                # every server consumes the same per-server batches.
                round2_by_server = [
                    server.finish_verification_batch(party, round1_by_server)
                    for server, party in zip(self.servers, parties)
                ]
                decisions = self.servers[0].decide_batch(round2_by_server)
            except (ProtocolError, ValueError):
                # Shapes were validated at receive time, so this is a
                # defensive path: fail the whole batch, one submission
                # at a time, rather than mis-credit any of it.
                for idx, pendings in received:
                    for server, pending in zip(self.servers, pendings):
                        server.reject(pending)
                    self.stats.n_rejected += 1
                    results[idx] = False
                return [bool(r) for r in results]

            # Aggregate consumes the ingested planes: one vectorized
            # fold per server for the whole batch's accepted rows.
            for s, server in enumerate(self.servers):
                server.accumulate_batch(
                    [pendings[s] for _, pendings in received], decisions
                )
            for (idx, _), accepted in zip(received, decisions):
                if accepted:
                    self.stats.n_accepted += 1
                else:
                    self.stats.n_rejected += 1
                results[idx] = accepted
        return [bool(r) for r in results]

    def deliver_pipelined(
        self, submissions, queue_depth: int = 2, executor=None
    ) -> list[bool]:
        """Run prepared submissions through the asyncio staged pipeline.

        Same decisions, replay protection, and statistics as chunked
        :meth:`deliver_batch` calls, but ingest of batch ``N+1``
        overlaps verification of batch ``N`` and per-server work fans
        out over the deployment's execution backend — threads by
        default, one worker process per server with
        ``executor="process"``
        (:class:`~repro.protocol.pipeline.AsyncPrioPipeline`).
        """
        from repro.protocol.pipeline import run_pipelined

        submissions = list(submissions)
        for submission in submissions:
            self.stats.n_submitted += 1
            self.stats.upload_bytes_total += submission.upload_bytes
        decisions, _ = run_pipelined(
            self.servers,
            submissions,
            batch_size=self.batch_size,
            queue_depth=queue_depth,
            encrypt=self.encrypt,
            executor=self._resolve_executor(executor),
        )
        self.stats.n_accepted += sum(decisions)
        self.stats.n_rejected += len(decisions) - sum(decisions)
        return decisions

    def submit_many_pipelined(
        self, values, queue_depth: int = 2, executor=None,
        client_batched: bool = True,
    ) -> int:
        """Prepare and pipeline many values; returns the number accepted.

        With ``client_batched`` (the default) the batched plane prover
        runs as a *producer stage* of the async pipeline
        (:meth:`~repro.protocol.pipeline.AsyncPrioPipeline.run_values`):
        the client proves and frames chunk ``N+1`` while the servers
        ingest and verify chunk ``N``.  ``client_batched=False``
        prepares every upload up front through the scalar client
        (identical bytes — the batched prover is bit-identical — just
        no batching or overlap on the client half).
        """
        from repro.protocol.pipeline import AsyncPrioPipeline

        values = list(values)
        if not client_batched:
            submissions = self.client.prepare_submissions(
                values, batched=False
            )
            return sum(
                self.deliver_pipelined(submissions, queue_depth, executor)
            )
        pipeline = AsyncPrioPipeline(
            self.servers,
            batch_size=self.batch_size,
            queue_depth=queue_depth,
            executor=self._resolve_executor(executor),
            encrypt=self.encrypt,
        )
        decisions = pipeline.run_values(self.client, values)
        self.stats.n_submitted += len(values)
        self.stats.upload_bytes_total += pipeline.stats.upload_bytes
        self.stats.n_accepted += sum(decisions)
        self.stats.n_rejected += len(decisions) - sum(decisions)
        return sum(decisions)

    def submit_batch(self, values, mutate=None) -> list[bool]:
        """Prepare and deliver ``values`` as one server-side batch.

        Client proof generation is batched too
        (:meth:`~repro.protocol.client.PrioClient.prepare_submissions`).
        ``mutate``, if given, receives ``(index, submission)`` for each
        prepared submission — the batched fault-injection hook.
        """
        submissions = self.client.prepare_submissions(values)
        if mutate is not None:
            for index, submission in enumerate(submissions):
                mutate(index, submission)
        return self.deliver_batch(submissions)

    def submit_many(self, values) -> int:
        """Submit many values; returns the number accepted.

        With ``batch_size > 1`` the values run through the batched
        prove/verify pipeline in chunks of ``batch_size``; otherwise
        one at a time (identical outcomes either way).
        """
        values = list(values)
        if self.batch_size > 1:
            accepted = 0
            for start in range(0, len(values), self.batch_size):
                chunk = values[start:start + self.batch_size]
                accepted += sum(self.submit_batch(chunk))
            return accepted
        return sum(1 for v in values if self.submit(v))

    # ------------------------------------------------------------------

    def publish_shares(self) -> list[list[int]]:
        return [server.publish() for server in self.servers]

    def publish(self):
        """Combine accumulators and AFE-decode the aggregate."""
        shares = self.publish_shares()
        sigma = self.afe.field.vec_sum(shares)
        n = self.servers[0].n_accepted
        self.stats.broadcast_elements = [
            server.elements_broadcast for server in self.servers
        ]
        return self.afe.decode(sigma, n)
