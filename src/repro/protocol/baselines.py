"""The two baseline pipelines of Section 6.1.

*No privacy*: "a dummy scheme in which a single server accepts
encrypted client data submissions directly from the clients with no
privacy protection whatsoever."  The server sees plaintext encodings,
range-checks them directly, and accumulates.

*No robustness*: "a secret-sharing-based private aggregation scheme
(a la Section 3) with no robustness protection."  Clients split their
encoding into shares; servers accumulate without any validity check —
one malicious client can corrupt the whole aggregate, which the
robustness tests demonstrate.

Both share the AFE layer, so the three pipelines differ only in the
security work — exactly the contrast Figures 4/5/8 and Table 9 draw.
"""

from __future__ import annotations

import os
import random as _random

from repro.afe.base import Afe
from repro.protocol.server import ProtocolError
from repro.sharing.additive import share_vector
from repro.sharing.prg import prg_reconstruct_vector, prg_share_vector


class NoPrivacyPipeline:
    """Single plaintext-collecting server with direct validity checks."""

    def __init__(self, afe: Afe) -> None:
        self.afe = afe
        self.accumulator = [0] * afe.k_prime
        self.n_accepted = 0
        self.n_rejected = 0

    def submit_encoding(self, encoding: list[int]) -> bool:
        if not self.afe.check_valid(encoding):
            self.n_rejected += 1
            return False
        p = self.afe.field.modulus
        for i, v in enumerate(encoding[: self.afe.k_prime]):
            self.accumulator[i] = (self.accumulator[i] + v) % p
        self.n_accepted += 1
        return True

    def submit(self, value, rng=None) -> bool:
        return self.submit_encoding(self.afe.encode(value, rng))

    def publish(self):
        return self.afe.decode(self.accumulator, self.n_accepted)


class NoRobustnessPipeline:
    """Section 3's scheme: secret-shared sums, no validity checking."""

    def __init__(
        self, afe: Afe, n_servers: int, use_prg_compression: bool = True,
        rng=None,
    ) -> None:
        if n_servers < 2:
            raise ProtocolError("private aggregation needs >= 2 servers")
        self.afe = afe
        self.n_servers = n_servers
        self.use_prg_compression = use_prg_compression
        self.rng = rng if rng is not None else _random.Random(os.urandom(16))
        self.accumulators = [[0] * afe.k_prime for _ in range(n_servers)]
        self.n_accepted = 0

    def submit_encoding(self, encoding: list[int]) -> bool:
        field = self.afe.field
        truncated = encoding[: self.afe.k_prime]
        if self.use_prg_compression:
            seeds, explicit = prg_share_vector(
                field, truncated, self.n_servers, self.rng
            )
            shares = [
                prg_reconstruct_vector(field, [seed], [0] * len(truncated))
                for seed in seeds
            ] + [explicit]
        else:
            shares = share_vector(field, truncated, self.n_servers, self.rng)
        p = field.modulus
        for acc, share in zip(self.accumulators, shares):
            for i, v in enumerate(share):
                acc[i] = (acc[i] + v) % p
        self.n_accepted += 1
        return True

    def submit(self, value, rng=None) -> bool:
        return self.submit_encoding(
            self.afe.encode(value, rng if rng is not None else self.rng)
        )

    def publish(self):
        sigma = self.afe.field.vec_sum(self.accumulators)
        return self.afe.decode(sigma, self.n_accepted)
