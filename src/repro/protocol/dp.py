"""Distributed differential-privacy noise (the Section 7 extension).

Prio publishes *exact* aggregates, so an intersection attack (run the
protocol with and without one client) can reveal an individual's value.
The paper's recommended defence: "the servers can add differential
privacy noise to the results before publishing them ... in a
distributed fashion to ensure that as long as at least one server is
honest, no server sees the un-noised aggregate" (citing Dwork et al.).

Construction: the discrete Laplace (two-sided geometric) distribution
is infinitely divisible —

    DLap(alpha)  =  sum_{j=1}^{s} [ Polya(1/s, alpha) - Polya(1/s, alpha) ]

so each of the s servers independently samples the difference of two
Polya(1/s, alpha) variables and adds it to its accumulator share before
publishing.  The published total then carries exactly DLap(alpha) noise
with ``alpha = exp(-epsilon / sensitivity)``, giving epsilon-DP, while
no proper subset of servers knows the total noise.

Polya(r, alpha) is sampled as a Gamma(r)-mixed Poisson.

Noising is *plane-resident*: :func:`server_noise_vector` draws every
component's two Polya variables in two batched numpy calls (one
``gamma`` sweep, one ``poisson`` sweep), and
:func:`add_noise_to_accumulator` maps the signed difference into the
field with :func:`repro.field.batch.signed_delta_batch` — limb
shift/mask passes plus one vectorized modular subtraction — then adds
it to the accumulator's limb planes.  A server's accumulator therefore
stays a plane from the first accepted share to ``publish()``, noise
included; no per-component Python-int field ops anywhere.  The scalar
:func:`server_noise_share` remains as the reference sampler the
distributional tests compare against.
"""

from __future__ import annotations

import math

from repro.field.batch import BatchVector, signed_delta_batch
from repro.field.prime_field import PrimeField

try:  # numpy drives the samplers; the module stays importable without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    np = None


class DpError(ValueError):
    pass


def _check_parameters(
    epsilon: float, sensitivity: float, n_servers: int
) -> float:
    if np is None:
        raise DpError("differential-privacy noise sampling needs numpy")
    if epsilon <= 0:
        raise DpError("epsilon must be positive")
    if sensitivity <= 0:
        raise DpError("sensitivity must be positive")
    if n_servers < 1:
        raise DpError("need at least one server")
    return math.exp(-epsilon / sensitivity)


def _polya_sample(generator, r: float, alpha: float) -> int:
    """One Polya(r, alpha) draw: Poisson with Gamma(r, alpha/(1-alpha)) rate."""
    rate = generator.gamma(shape=r, scale=alpha / (1.0 - alpha))
    return int(generator.poisson(rate))


def server_noise_share(
    epsilon: float,
    sensitivity: float,
    n_servers: int,
    generator,
) -> int:
    """One server's additive noise share (a signed integer).

    Summing all ``n_servers`` shares yields a discrete Laplace variable
    calibrated for ``epsilon``-DP at the given query sensitivity.
    """
    alpha = _check_parameters(epsilon, sensitivity, n_servers)
    r = 1.0 / n_servers
    return _polya_sample(generator, r, alpha) - _polya_sample(
        generator, r, alpha
    )


def server_noise_vector(
    n_components: int,
    epsilon: float,
    sensitivity: float,
    n_servers: int,
    generator,
):
    """One server's noise shares for every component, batched.

    Distributionally identical to ``n_components`` independent
    :func:`server_noise_share` draws (each component's share is the
    difference of two Polya(1/s, alpha) variables) but sampled in one
    ``gamma`` sweep and one ``poisson`` sweep.  Returns the pair
    ``(positives, negatives)`` of nonnegative ``int64`` arrays — kept
    unsubtracted so the field embedding can stay vectorized
    (:func:`repro.field.batch.signed_delta_batch`); the signed share
    vector is ``positives - negatives``.
    """
    alpha = _check_parameters(epsilon, sensitivity, n_servers)
    if n_components < 0:
        raise DpError("n_components must be nonnegative")
    r = 1.0 / n_servers
    rates = generator.gamma(
        shape=r, scale=alpha / (1.0 - alpha), size=(2, n_components)
    )
    draws = generator.poisson(rates)
    return draws[0], draws[1]


def add_noise_to_accumulator(
    field: PrimeField,
    accumulator: "BatchVector | list[int]",
    epsilon: float,
    sensitivity: float,
    n_servers: int,
    generator,
):
    """Noise every accumulator component (per-component epsilon).

    ``accumulator`` may be the server's plane-resident
    :class:`~repro.field.batch.BatchVector` (the no-int-crossing path:
    the noise vector is sampled batched, embedded into limb planes, and
    plane-added; a ``BatchVector`` on the same backend comes back) or a
    plain ``list[int]`` (compatibility seam — one batched encode in,
    one batched decode out).

    Callers splitting an epsilon budget across components should divide
    epsilon accordingly before calling.
    """
    plane_resident = isinstance(accumulator, BatchVector)
    if plane_resident:
        if len(accumulator.shape) != 1:
            raise DpError("accumulator must be a 1-D vector")
        acc = accumulator
    else:
        acc = BatchVector.from_ints(field, list(accumulator))
    positives, negatives = server_noise_vector(
        acc.shape[0], epsilon, sensitivity, n_servers, generator
    )
    delta = signed_delta_batch(
        field, positives, negatives, force_pure=acc.force_pure
    )
    noised = acc + delta
    return noised if plane_resident else noised.to_ints()


def discrete_laplace_scale(epsilon: float, sensitivity: float) -> float:
    """Standard deviation of the total published noise (for accuracy
    accounting in experiments)."""
    alpha = math.exp(-epsilon / sensitivity)
    return math.sqrt(2 * alpha) / (1 - alpha)
