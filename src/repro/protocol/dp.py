"""Distributed differential-privacy noise (the Section 7 extension).

Prio publishes *exact* aggregates, so an intersection attack (run the
protocol with and without one client) can reveal an individual's value.
The paper's recommended defence: "the servers can add differential
privacy noise to the results before publishing them ... in a
distributed fashion to ensure that as long as at least one server is
honest, no server sees the un-noised aggregate" (citing Dwork et al.).

Construction: the discrete Laplace (two-sided geometric) distribution
is infinitely divisible —

    DLap(alpha)  =  sum_{j=1}^{s} [ Polya(1/s, alpha) - Polya(1/s, alpha) ]

so each of the s servers independently samples the difference of two
Polya(1/s, alpha) variables and adds it to its accumulator share before
publishing.  The published total then carries exactly DLap(alpha) noise
with ``alpha = exp(-epsilon / sensitivity)``, giving epsilon-DP, while
no proper subset of servers knows the total noise.

Polya(r, alpha) is sampled as a Gamma(r)-mixed Poisson.
"""

from __future__ import annotations

import math

import numpy as np

from repro.field.prime_field import PrimeField


class DpError(ValueError):
    pass


def _polya_sample(generator: np.random.Generator, r: float, alpha: float) -> int:
    """One Polya(r, alpha) draw: Poisson with Gamma(r, alpha/(1-alpha)) rate."""
    rate = generator.gamma(shape=r, scale=alpha / (1.0 - alpha))
    return int(generator.poisson(rate))


def server_noise_share(
    epsilon: float,
    sensitivity: float,
    n_servers: int,
    generator: np.random.Generator,
) -> int:
    """One server's additive noise share (a signed integer).

    Summing all ``n_servers`` shares yields a discrete Laplace variable
    calibrated for ``epsilon``-DP at the given query sensitivity.
    """
    if epsilon <= 0:
        raise DpError("epsilon must be positive")
    if sensitivity <= 0:
        raise DpError("sensitivity must be positive")
    if n_servers < 1:
        raise DpError("need at least one server")
    alpha = math.exp(-epsilon / sensitivity)
    r = 1.0 / n_servers
    return _polya_sample(generator, r, alpha) - _polya_sample(
        generator, r, alpha
    )


def add_noise_to_accumulator(
    field: PrimeField,
    accumulator: list[int],
    epsilon: float,
    sensitivity: float,
    n_servers: int,
    generator: np.random.Generator,
) -> list[int]:
    """Noise every accumulator component (per-component epsilon).

    Callers splitting an epsilon budget across components should divide
    epsilon accordingly before calling.
    """
    return [
        field.add(
            value,
            field.from_signed(
                server_noise_share(epsilon, sensitivity, n_servers, generator)
            ),
        )
        for value in accumulator
    ]


def discrete_laplace_scale(epsilon: float, sensitivity: float) -> float:
    """Standard deviation of the total published noise (for accuracy
    accounting in experiments)."""
    alpha = math.exp(-epsilon / sensitivity)
    return math.sqrt(2 * alpha) / (1 - alpha)
