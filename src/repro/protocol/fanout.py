"""Per-server execution backends for the verification pipeline.

PR 3 staged the pipeline over asyncio queues with per-server *thread*
fan-out.  The hot kernels (SHAKE digests, numpy limb matmuls) release
the GIL, but everything between them — the Barrett carry loops, the
per-limb convolution dispatch, the round algebra at small batch sizes
— runs under it, which caps single-host overlap well below the core
count (the ROADMAP's "GIL ceiling").  Prio's deployment model assumes
each server runs on its own hardware (NSDI 2017 §6); this module makes
that real on one host: an ``executor="process"`` backend gives every
:class:`~repro.protocol.server.PrioServer` a dedicated worker process
that owns the server's entire state (replay sets, epoch counters, the
plane-resident accumulator) for the duration of a run.

Three backends, one semantics
-----------------------------

Every backend drives the *same* op implementation, :class:`_ServerOps`
— a thin batch-id-keyed wrapper over the ``PrioServer`` batch entry
points — so accept/reject decisions are bit-identical by construction:

``inline``
    Ops run on the calling thread.  Right on single-CPU hosts, where
    hand-offs cost latency and buy nothing.

``thread``
    Ops run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`
    (the PR-3 behavior, still the default: at tiny batches the work per
    op is far below process-crossing cost).

``process``
    One single-worker :class:`~concurrent.futures.ProcessPoolExecutor`
    per server.  The single worker pins each server's mutable state to
    exactly one process — ops for server ``i`` always execute where
    server ``i`` lives — while distinct servers verify genuinely in
    parallel, GIL-free.

What crosses the process boundary
---------------------------------

Everything crosses in plane form, never as per-element Python ints:

* **inbound** — each server's slice of a batch's wire packets
  (``bytes`` bodies; seeds stay 16-byte seeds and expand worker-side),
* **between rounds** — :class:`~repro.snip.verifier.Round1Batch` /
  ``Round2Batch``, i.e. two ``(B,)`` limb planes each (pickling a
  :class:`~repro.field.batch.BatchVector` serializes the int64 plane
  buffer directly),
* **outbound** — per-position receive verdicts and, at run end, one
  state snapshot per server (plane accumulator + counters + replay
  ids) merged back into the driver's server objects so ``publish()``
  and the deployment statistics keep working unchanged.

The ingested ``(B, z_len)`` share matrix and the verifier party never
cross at all: they are born and die inside the worker.

Worker lifecycle is strict: pools shut down with ``wait=True`` so
repeated runs leak neither threads nor child processes, and a crashed
worker (``BrokenProcessPool``) fails the affected batches without
hanging the pipeline.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from repro.field.batch import concat_vectors
from repro.protocol.server import PendingSubmission, PrioServer
from repro.snip.verifier import Round1Batch, Round2Batch

#: executor knob values accepted everywhere the pipeline is exposed;
#: any kind also accepts a ``":K"`` suffix (e.g. ``"process:4"``) to
#: shard each logical server across K workers of that kind
EXECUTOR_KINDS = ("inline", "thread", "process", "auto")

#: ``executor="auto"`` picks the process backend only at or above this
#: batch size — below it, process-crossing overhead beats the GIL win
AUTO_PROCESS_MIN_BATCH = 32


class FanoutError(ValueError):
    """Raised for an unknown ``executor`` selection."""


class _InlineExecutor:
    """Executor that runs work on the calling thread.

    On a single-CPU host, thread hand-offs cost latency and buy no
    parallelism (the GIL-releasing kernels have no second core to run
    on), so the pipeline keeps its staged structure but executes stage
    work inline.  Implements the two Executor methods asyncio uses.
    """

    def submit(self, fn, *args):
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirror Executor
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):  # noqa: ARG002 - Executor interface
        return None


def default_executor(n_servers: int):
    """Thread pool sized to the host, or inline when threads cannot help."""
    if (os.cpu_count() or 1) <= 1:
        return _InlineExecutor()
    return ThreadPoolExecutor(max_workers=max(2, n_servers))


# ----------------------------------------------------------------------
# The shared op implementation
# ----------------------------------------------------------------------


class _BatchState:
    """One in-flight verification batch at one server."""

    __slots__ = ("received", "pendings", "party")

    def __init__(self) -> None:
        #: per-position ``PendingSubmission | Exception`` (receive output)
        self.received: "list | None" = None
        #: survivors, in stream order (set at ingest)
        self.pendings: "list[PendingSubmission] | None" = None
        self.party = None


class _ServerOps:
    """Batch-id-keyed pipeline ops over one :class:`PrioServer`.

    Every backend — inline, thread, process — executes exactly this
    class, so the pipeline's semantics cannot drift between them.  In
    process mode an instance lives in the worker that owns the server;
    locally one instance per server lives in the driver process.

    The pipeline ops (`receive`/`ingest`/`round1`/`round2`/
    `accumulate`) key state by an opaque ``batch_id``; the simulated
    cluster uses the submission-id-keyed group ops below them.
    """

    def __init__(self, server: PrioServer) -> None:
        self.server = server
        self._batches: dict[int, _BatchState] = {}
        #: undecided cluster pendings, keyed by submission id
        self._by_sid: dict[bytes, PendingSubmission] = {}
        #: cluster verification groups, keyed by group id
        self._groups: dict[int, "tuple[list[PendingSubmission], object]"] = {}

    # -- pipeline ops ---------------------------------------------------

    def receive(self, batch_id: int, payloads, encrypt: bool):
        """Frame-validate one server's packets; pendings stay resident.

        Returns one ``None`` (success) or the raised exception per
        position — the cross-boundary form; the heavy
        :class:`PendingSubmission` objects (latent seeds, decoded
        planes) never leave this process.
        """
        server = self.server
        if encrypt:
            received = server.receive_sealed_batch(payloads)
        else:
            received = server.receive_batch(payloads)
        state = self._batches[batch_id] = _BatchState()
        state.received = received
        return [r if isinstance(r, Exception) else None for r in received]

    def receive_sealed(self, batch_id: int, payloads):
        """Frame-validate sealed packets (the encrypted transport seam).

        ``payloads`` holds one ``envelope || box`` sealed packet per
        position.  Boxes open worker-side (the shard owns its server's
        box key), plaintexts join the fused batch decode.  Same
        cross-boundary verdict form as :meth:`receive`.
        """
        received = self.server.receive_sealed_batch(payloads)
        state = self._batches[batch_id] = _BatchState()
        state.received = received
        return [r if isinstance(r, Exception) else None for r in received]

    def receive_wire(self, batch_id: int, payloads):
        """Frame-validate raw wire-packet bytes (the transport seam).

        ``payloads`` holds one length-framed packet per position,
        exactly as read off a socket — bytes cross the worker boundary
        (cheap to pickle), headers parse worker-side, and bodies join
        the server's fused batch decode.  Same cross-boundary verdict
        form as :meth:`receive`.
        """
        received = self.server.receive_wire_batch(payloads)
        state = self._batches[batch_id] = _BatchState()
        state.received = received
        return [r if isinstance(r, Exception) else None for r in received]

    def ingest(self, batch_id: int, keep) -> None:
        """Commit receive: abandon non-survivors, plane-ingest the rest.

        ``keep`` holds the positions (into this batch's payloads) that
        every server received successfully.  Positions this server
        received but a peer did not are abandoned — the mirror of the
        synchronous fan-out rule: no decision was made, so an honest
        retry must not be mistaken for a replay.
        """
        state = self._batches[batch_id]
        keep_set = set(keep)
        survivors: list[PendingSubmission] = []
        for pos, received in enumerate(state.received):
            if not isinstance(received, PendingSubmission):
                continue
            if pos in keep_set:
                survivors.append(received)
            else:
                self.server.abandon(received)
        state.received = None
        state.pendings = survivors
        if survivors:
            self.server._ingest_batch(survivors)
        else:
            # Nothing to verify: the batch is settled here and now.
            del self._batches[batch_id]

    def round1(self, batch_id: int):
        state = self._batches[batch_id]
        state.party, batch = self.server.begin_verification_batch(
            state.pendings
        )
        return batch

    def round2(self, batch_id: int, round1_batches):
        state = self._batches[batch_id]
        return self.server.finish_verification_batch(
            state.party, round1_batches
        )

    def accumulate(self, batch_id: int, decisions) -> None:
        state = self._batches[batch_id]
        self.server.accumulate_batch(state.pendings, decisions)
        del self._batches[batch_id]

    def _settle_undecided(self, batch_id: int, settle) -> None:
        """Apply ``settle`` to every undecided pending of a batch."""
        state = self._batches.pop(batch_id, None)
        if state is None:
            return
        for pending in state.pendings or ():
            settle(pending)
        for received in state.received or ():
            if isinstance(received, PendingSubmission):
                settle(received)

    def reject_all(self, batch_id: int) -> None:
        """Defensive sweep: reject every undecided pending of a batch.

        Used when a verification round failed mid-batch (the mirror of
        the synchronous path's whole-batch rejection) — shapes were
        validated at receive time, so rather than mis-credit anything,
        every received submission is rejected individually.
        """
        self._settle_undecided(batch_id, self.server.reject)

    def abandon_all(self, batch_id: int) -> None:
        """Release every received-but-undecided pending of a batch.

        Used when receive/ingest failed partway across the server
        fan-out: ids must not stay pending (honest retries would look
        like replays) and must not enter the seen set (no decision)."""
        self._settle_undecided(batch_id, self.server.abandon)

    def abandon_open(self) -> None:
        """Release every batch still open at this server.

        The pipeline's abnormal-exit sweep (cancellation, fatal error):
        in-flight batches were received but will never be decided, so
        their ids must leave the pending set — an honest retry of the
        same submissions after the interrupted run must succeed — and
        their plane share matrices must not outlive the run on a
        reused backend."""
        for batch_id in list(self._batches):
            self.abandon_all(batch_id)

    # -- cluster (group) ops -------------------------------------------

    def receive_one(self, packet):
        """Scalar receive for the simulated cluster; returns the id."""
        pending = self.server.receive(packet)
        self._by_sid[pending.submission_id] = pending
        return pending.submission_id

    def begin_group(self, gid: int, sids):
        pendings = [self._by_sid.pop(sid) for sid in sids]
        party, round1 = self.server.begin_verification_batch(pendings)
        self._groups[gid] = (pendings, party)
        return round1

    def finish_group(self, gid: int, round1_batches):
        _, party = self._groups[gid]
        return self.server.finish_verification_batch(party, round1_batches)

    def settle_group(self, gid: int, decisions) -> None:
        pendings, _ = self._groups.pop(gid)
        self.server.accumulate_batch(pendings, decisions)

    # -- state sync (process backend) ----------------------------------

    def snapshot(self):
        return self.server.snapshot_state()


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


def _consume_exception(future) -> None:
    """Mark a future's exception retrieved (cancellation cleanup)."""
    if not future.cancelled():
        future.exception()


class ServerFanout:
    """Executes :class:`_ServerOps` calls for a set of servers.

    ``call`` is the asyncio seam the pipeline awaits; ``call_sync`` is
    the blocking seam the simulated cluster drives from its event loop.
    ``begin_run``/``end_run`` bracket one pipeline run (the process
    backend pushes/pulls server state there); ``close`` releases every
    worker, waiting for them — no leaked threads or child processes.
    """

    kind = "base"

    def call(self, s: int, op: str, *args):
        raise NotImplementedError

    async def sweep(self, op: str, args_per_server):
        """One ``op`` per server, all submitted before any is awaited.

        The pipeline's workhorse: submission happens eagerly (so
        thread/process backends run the servers genuinely in parallel)
        and awaiting a completed future suspends nothing (so the inline
        backend pays no ``gather`` scheduling overhead — this is what
        keeps batch-of-one at parity with PR 3).  The first failure is
        re-raised after every future has been drained, so no worker
        exception goes unretrieved.
        """
        futures = [
            self.call(s, op, *args)
            for s, args in enumerate(args_per_server)
        ]
        results = []
        error: "BaseException | None" = None
        for position, future in enumerate(futures):
            try:
                results.append(await future)
            except asyncio.CancelledError:
                # The *stage task* is being cancelled (worker futures
                # themselves never cancel — executors run them to
                # completion).  Cancellation must win over any earlier
                # worker error: folding it into the error slot would
                # consume the task's one-shot cancellation and leave
                # the pipeline waiting on stages that already stopped
                # producing.  Silence the undrained futures first so no
                # worker exception goes unretrieved.
                for remaining in futures[position:]:
                    remaining.add_done_callback(_consume_exception)
                raise
            except BaseException as exc:  # noqa: BLE001 - drain them all
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def call_sync(self, s: int, op: str, *args):
        raise NotImplementedError

    def begin_run(self) -> None:
        return None

    def end_run(self) -> None:
        return None

    def close(self) -> None:
        return None


class LocalFanout(ServerFanout):
    """Ops against the driver-process servers, inline or on a thread pool."""

    def __init__(
        self,
        servers: "list[PrioServer]",
        executor=None,
        own_executor: "bool | None" = None,
    ) -> None:
        self.servers = servers
        self.ops = [_ServerOps(server) for server in servers]
        self._own_executor = (
            executor is None if own_executor is None else own_executor
        )
        self.executor = (
            default_executor(len(servers)) if executor is None else executor
        )
        self.kind = (
            "inline" if isinstance(self.executor, _InlineExecutor)
            else "thread"
        )

    def call(self, s: int, op: str, *args):
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(
            self.executor, getattr(self.ops[s], op), *args
        )

    def call_sync(self, s: int, op: str, *args):
        return self.executor.submit(getattr(self.ops[s], op), *args).result()

    def close(self) -> None:
        # wait=True: repeated runs must not accumulate worker threads.
        if self._own_executor:
            self.executor.shutdown(wait=True)


# Worker-process global: the one server this worker owns.
_WORKER_OPS: "_ServerOps | None" = None


def _worker_install(server: PrioServer) -> None:
    global _WORKER_OPS
    # Mark the replay cache: the run-end snapshot then ships only the
    # ids added during this run, not the full (possibly multi-million
    # id) history the server arrived with.
    server.begin_run()
    _WORKER_OPS = _ServerOps(server)


def _worker_call(op: str, args):
    return getattr(_WORKER_OPS, op)(*args)


class ProcessFanout(ServerFanout):
    """One single-worker process pool per server (state residency).

    ``max_workers=1`` is load-bearing: it guarantees every op for
    server ``i`` executes in the one process that holds server ``i``'s
    replay sets, epoch counters, in-flight batch planes, and
    accumulator.  Parallelism comes from the *pools* being distinct —
    the per-server work of a batch runs on as many cores as there are
    servers, with no GIL in common.

    ``begin_run`` ships each (picklable) server into its worker;
    ``end_run`` pulls a state snapshot back and merges it into the
    driver-process server objects, so publishes, statistics, and replay
    protection carry across runs and across backend switches.
    """

    kind = "process"
    #: set by end_run when a dead worker's state could not be merged
    #: back — the server set may be divergent (see the warning there)
    degraded = False

    def __init__(self, servers: "list[PrioServer]", mp_context=None) -> None:
        import multiprocessing

        if mp_context is None:
            # Follow the interpreter's default start method (fork on
            # Linux <= 3.13, forkserver afterward — upstream moved away
            # from forking inside threaded processes for good reason);
            # REPRO_MP_START overrides for hosts that need e.g. spawn.
            method = os.environ.get("REPRO_MP_START")
            mp_context = multiprocessing.get_context(method or None)
        self.servers = servers
        self.pools: "list[ProcessPoolExecutor]" = []
        try:
            for _ in servers:
                self.pools.append(
                    ProcessPoolExecutor(max_workers=1, mp_context=mp_context)
                )
            self.begin_run()
        except BaseException:
            self.close()
            raise

    def begin_run(self) -> None:
        # Push current driver-side state into every worker (one pickle
        # of the whole server: afe, warm verification context, replay
        # sets, plane accumulator).  Fanned out, then awaited.
        futures = [
            pool.submit(_worker_install, server)
            for pool, server in zip(self.pools, self.servers)
        ]
        for future in futures:
            future.result()

    def end_run(self) -> None:
        futures = []
        for pool in self.pools:
            try:
                futures.append(pool.submit(_worker_call, "snapshot", ()))
            except Exception:  # noqa: BLE001 - broken pool: keep old state
                futures.append(None)
        stale: list[int] = []
        for s, (server, future) in enumerate(zip(self.servers, futures)):
            if future is None:
                stale.append(s)
                continue
            try:
                server.restore_state(future.result())
            except Exception:  # noqa: BLE001 - a dead worker keeps old state
                stale.append(s)
        if stale:
            # A worker died after possibly committing batches its
            # driver-side server never sees: the server set may now be
            # divergent (shares no longer cancel at publish).  The run
            # already failed its remaining batches; make the state loss
            # visible too rather than letting publish() present a
            # silently corrupted aggregate.
            import warnings

            self.degraded = True
            warnings.warn(
                f"process fan-out lost worker state for server(s) "
                f"{stale}: driver-side state kept its pre-run snapshot; "
                "aggregates from this server set may be divergent",
                RuntimeWarning,
                stacklevel=2,
            )

    def call(self, s: int, op: str, *args):
        return asyncio.wrap_future(
            self.pools[s].submit(_worker_call, op, args)
        )

    def call_sync(self, s: int, op: str, *args):
        return self.pools[s].submit(_worker_call, op, args).result()

    def close(self) -> None:
        for pool in self.pools:
            pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Sharded fan-out: K workers per logical server
# ----------------------------------------------------------------------


def shard_of(sid: bytes, n_shards: int) -> int:
    """Stable shard assignment for a submission id.

    The low 8 id bytes (little-endian) mod K — identical at every
    server (all servers see the same submission ids), so a submission's
    shares land on the *same shard index* everywhere and the SNIP
    rounds run shard-local with no cross-shard coordination.
    """
    return int.from_bytes(sid[:8], "little") % n_shards


#: wire-frame offsets of the submission id (mirrors
#: ``repro.protocol.wire``: magic(2) | version(1) | kind(1) | id(16))
_WIRE_SID_START, _WIRE_SID_END = 4, 20

#: sealed-envelope offsets of the submission id (mirrors
#: ``repro.protocol.wire``: magic(2) | version(1) | id(16) | index(2))
_ENVELOPE_SID_START, _ENVELOPE_SID_END = 3, 19


class _ShardPlan:
    """Driver-side bookkeeping for one batch across one server's shards."""

    __slots__ = ("positions", "ok", "shard_order", "ranks", "n_survivors")

    def __init__(self, positions: "list[list[int]]") -> None:
        #: per shard: global payload positions routed there (ascending)
        self.positions = positions
        #: global positions this server received successfully
        self.ok: "set[int]" = set()
        #: shards holding >= 1 survivor, in ascending shard order
        self.shard_order: "list[int]" = []
        #: per entry of ``shard_order``: the global survivor ranks of
        #: that shard's survivors, in shard-local (ascending) order
        self.ranks: "list[list[int]]" = []
        self.n_survivors = 0


class ShardedFanout(ServerFanout):
    """K sharded workers per logical server, behind the one-op seam.

    Submissions partition by submission id (:func:`shard_of`); each
    shard is a full :class:`PrioServer` (:meth:`PrioServer.make_shard`)
    owning its slice of the id space — replay cache, epoch counters,
    plane accumulator — and runs the ordinary :class:`_ServerOps` over
    its sub-batch on an inner backend (``inline``/``thread``/
    ``process``) resolved over the ``S x K`` flat shard-server list.
    Because the partition is identical across servers, shard ``k`` at
    every server holds the same submissions and the SNIP rounds run
    shard-local; the driver merges each shard's ``(B_k,)`` round planes
    into the global survivor order (one plane concat + gather), so the
    pipeline, the transport, and ``decide_batch`` are unchanged.

    Replay protection is exact: a given id always routes to the same
    shard, so shard-local caches (pending sets included) see every copy.
    Sealed payloads carry the id in their cleartext envelope
    (:mod:`repro.protocol.wire`), so encrypted batches partition
    across shards exactly like raw frames; a forged envelope sid can
    only misroute its own upload to a shard that then rejects it when
    the authenticated inner header disagrees.

    ``begin_run``/``end_run`` bracket a run: shards sync their epoch
    clock from the logical server and mark their replay caches, run,
    then fold their *delta* state (plane add, counter sums, replay-id
    union) back into the logical server via
    :meth:`PrioServer.fold_shard_state` — so ``publish()``, statistics,
    and cross-run replay protection keep working unchanged.
    """

    def __init__(
        self,
        servers: "list[PrioServer]",
        n_shards: int,
        executor=None,
        batch_size: int = 1,
    ) -> None:
        if n_shards < 1:
            raise FanoutError("n_shards must be >= 1")
        self.servers = servers
        self.n_shards = n_shards
        #: per logical server: its K shard servers (driver-side objects;
        #: persistent across runs — they hold the shard replay slices)
        self.shards: "list[list[PrioServer]]" = []
        flat: "list[PrioServer]" = []
        for server in servers:
            shard_row = [server.make_shard() for _ in range(n_shards)]
            # One-time partition of pre-existing replay ids, so replays
            # of submissions seen before this fan-out existed are still
            # caught at the shard that now owns their slice.
            for sid in server._seen_ids:
                shard_row[shard_of(sid, n_shards)]._replay.add(sid)
            self.shards.append(shard_row)
            flat.extend(shard_row)
        self.inner, self._own_inner = resolve_fanout(
            flat, executor, batch_size
        )
        self.kind = f"sharded({self.inner.kind}x{n_shards})"
        #: per logical server: batch_id -> plan / group_id -> plan
        self._plans: "list[dict[int, _ShardPlan]]" = [{} for _ in servers]
        self._gplans: "list[dict[int, _ShardPlan]]" = [{} for _ in servers]
        self._run_open = False
        try:
            self.begin_run()
        except BaseException:
            self.close()
            raise

    @property
    def degraded(self) -> bool:
        return getattr(self.inner, "degraded", False)

    # -- run lifecycle --------------------------------------------------

    def begin_run(self) -> None:
        for server, shard_row in zip(self.servers, self.shards):
            for shard in shard_row:
                server.sync_shard_epoch(shard)
                shard.begin_run()
        self.inner.begin_run()
        self._run_open = True

    def end_run(self) -> None:
        # Pull worker-side state into the driver-side shard objects
        # first (process inner; no-op for inline/thread).
        self.inner.end_run()
        if not self._run_open:
            # Idempotence guard: a second fold would double-add the
            # shard accumulators into the logical servers.
            return
        self._run_open = False
        for server, shard_row in zip(self.servers, self.shards):
            for shard in shard_row:
                server.fold_shard_state(shard.snapshot_state())
                shard.reset_run_deltas()

    def close(self) -> None:
        if self._own_inner:
            self.inner.close()
        for shard_row in self.shards:
            for shard in shard_row:
                shard._replay.close()

    # -- the op seam ----------------------------------------------------

    def call(self, s: int, op: str, *args):
        calls, merge = self._plan(s, op, args)
        futures = [
            self.inner.call(s * self.n_shards + k, op, *shard_args)
            for k, shard_args in calls
        ]
        return asyncio.ensure_future(self._finish(futures, merge))

    async def _finish(self, futures, merge):
        try:
            results = await asyncio.gather(*futures, return_exceptions=True)
        except asyncio.CancelledError:
            for future in futures:
                future.add_done_callback(_consume_exception)
            raise
        for result in results:
            if isinstance(result, BaseException):
                return_exceptions_error = result
                break
        else:
            return merge(list(results))
        raise return_exceptions_error

    def call_sync(self, s: int, op: str, *args):
        calls, merge = self._plan(s, op, args)
        results = [
            self.inner.call_sync(s * self.n_shards + k, op, *shard_args)
            for k, shard_args in calls
        ]
        return merge(results)

    def _plan(self, s: int, op: str, args):
        """Partition one logical-server op into per-shard calls.

        Returns ``(calls, merge)``: ``calls`` is ``[(shard_index,
        shard_args), ...]`` and ``merge`` combines the per-shard
        results (in ``calls`` order) into the logical result.  Planning
        and merging are pure driver-side bookkeeping; every shard call
        is dispatched before any result is awaited.
        """
        planner = getattr(self, "_plan_" + op, None)
        if planner is None:
            raise FanoutError(f"op not supported by the sharded fan-out: {op}")
        return planner(s, *args)

    # -- pipeline ops ---------------------------------------------------

    def _route_positions(self, sids) -> "list[list[int]]":
        positions: "list[list[int]]" = [[] for _ in range(self.n_shards)]
        for pos, sid in enumerate(sids):
            positions[shard_of(sid, self.n_shards)].append(pos)
        return positions

    def _receive_plan(self, s, batch_id, payloads, positions, extra):
        plan = _ShardPlan(positions)
        self._plans[s][batch_id] = plan
        calls = [
            (k, (batch_id, [payloads[p] for p in pos]) + extra)
            for k, pos in enumerate(positions)
            if pos
        ]

        def merge(results):
            out = [None] * len(payloads)
            for (k, _), shard_out in zip(calls, results):
                for p, verdict in zip(positions[k], shard_out):
                    out[p] = verdict
            plan.ok = {p for p, v in enumerate(out) if v is None}
            return out

        return calls, merge

    def _sealed_positions(self, payloads) -> "list[list[int]]":
        # Sealed packets carry their submission id in the cleartext
        # envelope; route on it like raw frames.  Too-short payloads
        # route to shard 0, whose receive rejects them with the same
        # WireError the unsharded path raises.  (The envelope sid is
        # only a routing hint — each shard re-validates it against the
        # authenticated inner header after opening the box.)
        return self._route_positions(
            [
                bytes(data[_ENVELOPE_SID_START:_ENVELOPE_SID_END])
                for data in payloads
            ]
        )

    def _plan_receive(self, s, batch_id, payloads, encrypt):
        if encrypt:
            positions = self._sealed_positions(payloads)
        else:
            positions = self._route_positions(
                [packet.submission_id for packet in payloads]
            )
        return self._receive_plan(
            s, batch_id, payloads, positions, (encrypt,)
        )

    def _plan_receive_sealed(self, s, batch_id, payloads):
        return self._receive_plan(
            s, batch_id, payloads, self._sealed_positions(payloads), ()
        )

    def _plan_receive_wire(self, s, batch_id, payloads):
        # Raw frames: the id sits at a fixed header offset.  Too-short
        # frames route to shard 0, whose receive rejects them with the
        # same WireError the unsharded path raises.
        positions = self._route_positions(
            [bytes(data[_WIRE_SID_START:_WIRE_SID_END]) for data in payloads]
        )
        return self._receive_plan(s, batch_id, payloads, positions, ())

    def _plan_ingest(self, s, batch_id, keep):
        plan = self._plans[s][batch_id]
        keep_set = set(keep)
        calls = []
        survivor_positions: "list[list[int]]" = []
        plan.shard_order = []
        for k, pos in enumerate(plan.positions):
            if not pos:
                continue
            local_keep = [
                i for i, g in enumerate(pos)
                if g in keep_set and g in plan.ok
            ]
            calls.append((k, (batch_id, local_keep)))
            if local_keep:
                plan.shard_order.append(k)
                survivor_positions.append([pos[i] for i in local_keep])
        # Global survivor order is ascending stream position — exactly
        # what the unsharded server produces.  Store each shard's
        # survivor *ranks* in that order for the round merge/split.
        flat = [g for group in survivor_positions for g in group]
        order = sorted(range(len(flat)), key=flat.__getitem__)
        rank_of = [0] * len(flat)
        for rank, i in enumerate(order):
            rank_of[i] = rank
        plan.ranks = []
        offset = 0
        for group in survivor_positions:
            plan.ranks.append(rank_of[offset:offset + len(group)])
            offset += len(group)
        plan.n_survivors = len(flat)
        if not plan.shard_order:
            # No survivors anywhere: every shard's ingest settles its
            # sub-batch (the unsharded op deletes the batch likewise).
            del self._plans[s][batch_id]
        return calls, lambda results: None

    def _merge_round(self, s, plan, parts, build):
        server = self.servers[s]
        force = server.force_pure_backend
        inv = [0] * plan.n_survivors
        for i, rank in enumerate(
            r for ranks in plan.ranks for r in ranks
        ):
            inv[rank] = i
        first = concat_vectors(
            server.field, [p[0] for p in parts], force
        ).take_elements(inv)
        second = concat_vectors(
            server.field, [p[1] for p in parts], force
        ).take_elements(inv)
        return build(first, second)

    def _plan_round1(self, s, batch_id):
        plan = self._plans[s][batch_id]
        calls = [(k, (batch_id,)) for k in plan.shard_order]

        def merge(results):
            return self._merge_round(
                s, plan,
                [(batch.d, batch.e) for batch in results],
                lambda d, e: Round1Batch(d=d, e=e),
            )

        return calls, merge

    def _split_round1(self, round1_batches, indices):
        return [
            Round1Batch(
                d=batch.d.take_elements(indices),
                e=batch.e.take_elements(indices),
            )
            for batch in round1_batches
        ]

    def _plan_round2(self, s, batch_id, round1_batches):
        plan = self._plans[s][batch_id]
        calls = [
            (k, (batch_id, self._split_round1(round1_batches, indices)))
            for k, indices in zip(plan.shard_order, plan.ranks)
        ]

        def merge(results):
            return self._merge_round(
                s, plan,
                [(batch.sigma, batch.assertion) for batch in results],
                lambda sg, an: Round2Batch(sigma=sg, assertion=an),
            )

        return calls, merge

    def _plan_accumulate(self, s, batch_id, decisions):
        plan = self._plans[s][batch_id]
        calls = [
            (k, (batch_id, [decisions[r] for r in indices]))
            for k, indices in zip(plan.shard_order, plan.ranks)
        ]

        def merge(results):
            self._plans[s].pop(batch_id, None)
            return None

        return calls, merge

    def _settle_plan(self, s, op, batch_id):
        # Cleanup sweeps go to every shard: the per-shard op tolerates
        # unknown batch ids, and a partially-dispatched batch may be
        # open at any subset of them.
        self._plans[s].pop(batch_id, None)
        calls = [(k, (batch_id,)) for k in range(self.n_shards)]
        return calls, lambda results: None

    def _plan_reject_all(self, s, batch_id):
        return self._settle_plan(s, "reject_all", batch_id)

    def _plan_abandon_all(self, s, batch_id):
        return self._settle_plan(s, "abandon_all", batch_id)

    def _plan_abandon_open(self, s):
        self._plans[s].clear()
        self._gplans[s].clear()
        calls = [(k, ()) for k in range(self.n_shards)]
        return calls, lambda results: None

    # -- cluster (group) ops -------------------------------------------

    def _plan_receive_one(self, s, packet):
        k = shard_of(packet.submission_id, self.n_shards)
        return [(k, (packet,))], lambda results: results[0]

    def _plan_begin_group(self, s, gid, sids):
        sids = list(sids)
        positions = self._route_positions(sids)
        plan = _ShardPlan(positions)
        plan.n_survivors = len(sids)
        calls = []
        for k, pos in enumerate(positions):
            if not pos:
                continue
            plan.shard_order.append(k)
            plan.ranks.append(pos)     # caller order == global rank
            calls.append((k, (gid, [sids[i] for i in pos])))
        self._gplans[s][gid] = plan

        def merge(results):
            return self._merge_round(
                s, plan,
                [(batch.d, batch.e) for batch in results],
                lambda d, e: Round1Batch(d=d, e=e),
            )

        return calls, merge

    def _plan_finish_group(self, s, gid, round1_batches):
        plan = self._gplans[s][gid]
        calls = [
            (k, (gid, self._split_round1(round1_batches, indices)))
            for k, indices in zip(plan.shard_order, plan.ranks)
        ]

        def merge(results):
            return self._merge_round(
                s, plan,
                [(batch.sigma, batch.assertion) for batch in results],
                lambda sg, an: Round2Batch(sigma=sg, assertion=an),
            )

        return calls, merge

    def _plan_settle_group(self, s, gid, decisions):
        plan = self._gplans[s][gid]
        calls = [
            (k, (gid, [decisions[r] for r in indices]))
            for k, indices in zip(plan.shard_order, plan.ranks)
        ]

        def merge(results):
            self._gplans[s].pop(gid, None)
            return None

        return calls, merge


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


def resolve_fanout(
    servers: "list[PrioServer]",
    executor=None,
    batch_size: int = 1,
    n_shards: int = 1,
) -> "tuple[ServerFanout, bool]":
    """Resolve the ``executor`` knob to a backend instance.

    Accepts ``None`` (the PR-3 default: threads, or inline on a
    single-CPU host), one of :data:`EXECUTOR_KINDS` — optionally with a
    ``":K"`` shard-count suffix (``"process:4"`` = four sharded workers
    of that kind per logical server) — a ready :class:`ServerFanout`
    (reused verbatim — the caller owns it), or a plain
    ``concurrent.futures`` executor (wrapped, caller-owned).  Returns
    ``(fanout, owned)``; the pipeline closes only backends it owns.
    ``n_shards > 1`` wraps the resolved kind in a
    :class:`ShardedFanout` the same way the suffix does.

    ``"process"`` falls back to the thread backend automatically when
    worker processes cannot be created (restricted sandboxes, missing
    ``multiprocessing`` support); ``"auto"`` additionally requires a
    multi-core host and a batch size of at least
    :data:`AUTO_PROCESS_MIN_BATCH` — below that, per-op
    process-crossing overhead outweighs what the GIL was costing.
    """
    if isinstance(executor, str) and ":" in executor:
        kind, _, count = executor.partition(":")
        try:
            suffix_shards = int(count)
        except ValueError:
            raise FanoutError(
                f"bad shard count in executor spec: {executor!r}"
            ) from None
        if n_shards != 1 and n_shards != suffix_shards:
            raise FanoutError(
                f"executor spec {executor!r} conflicts with "
                f"n_shards={n_shards}"
            )
        executor, n_shards = kind, suffix_shards
    if n_shards != 1:
        if n_shards < 1:
            raise FanoutError("n_shards must be >= 1")
        if isinstance(executor, ServerFanout):
            raise FanoutError(
                "cannot shard a ready ServerFanout instance; pass an "
                'executor kind (e.g. "process:4") instead'
            )
        return ShardedFanout(
            servers, n_shards, executor, batch_size
        ), True
    if isinstance(executor, ServerFanout):
        return executor, False
    if executor is None:
        return LocalFanout(servers), True
    if executor == "thread":
        # Explicit request: a real pool even on a single-CPU host (the
        # None default still auto-drops to inline there).
        return LocalFanout(
            servers,
            ThreadPoolExecutor(max_workers=max(2, len(servers))),
            own_executor=True,
        ), True
    if executor == "inline":
        return LocalFanout(servers, _InlineExecutor()), True
    if executor == "auto":
        if (
            (os.cpu_count() or 1) > 1
            and batch_size >= AUTO_PROCESS_MIN_BATCH
        ):
            executor = "process"
        else:
            return LocalFanout(servers), True
    if executor == "process":
        try:
            return ProcessFanout(servers), True
        except Exception as exc:  # noqa: BLE001 - automatic fallback
            import warnings

            warnings.warn(
                f"process fan-out unavailable ({exc!r}); falling back to "
                "the thread backend",
                RuntimeWarning,
                stacklevel=2,
            )
            # The same real pool an explicit "thread" request gets —
            # the warning must describe what actually happens, even on
            # a single-CPU host.
            return resolve_fanout(servers, "thread", batch_size)
    if isinstance(executor, ProcessPoolExecutor):
        # Wrapping a raw process pool in LocalFanout would mutate
        # throwaway pickled server copies in the workers — every
        # submission would silently reject.  Process fan-out needs
        # state residency; that is what executor="process" provides.
        raise FanoutError(
            "a raw ProcessPoolExecutor cannot back the fan-out (server "
            'state must live with its worker); use executor="process" '
            "or a ProcessFanout instance instead"
        )
    if hasattr(executor, "submit"):
        return LocalFanout(servers, executor), False
    raise FanoutError(f"unknown executor selection: {executor!r}")
