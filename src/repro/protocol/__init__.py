"""The full Prio protocol: client, servers, wire format, and baselines."""

from repro.protocol.baselines import NoPrivacyPipeline, NoRobustnessPipeline
from repro.protocol.client import ClientSubmission, PrioClient
from repro.protocol.dp import (
    DpError,
    add_noise_to_accumulator,
    discrete_laplace_scale,
    server_noise_share,
    server_noise_vector,
)
from repro.protocol.fanout import (
    EXECUTOR_KINDS,
    FanoutError,
    LocalFanout,
    ProcessFanout,
    ServerFanout,
    ShardedFanout,
    resolve_fanout,
    shard_of,
)
from repro.protocol.replay import (
    InMemoryReplayCache,
    ReplayCache,
    ReplayCacheError,
    TieredReplayCache,
    resolve_replay_cache,
)
from repro.protocol.pipeline import (
    AsyncPrioPipeline,
    PipelineStats,
    run_pipelined,
)
from repro.protocol.registration import (
    ClientRegistry,
    GatedDeployment,
    GatedServer,
    RegisteredClient,
    RegistrationError,
    SignedPacket,
)
from repro.protocol.runner import DeploymentStats, PrioDeployment
from repro.protocol.server import PendingSubmission, PrioServer, ProtocolError
from repro.protocol.wire import (
    MAX_N_ELEMENTS,
    ClientPacket,
    PacketKind,
    WireError,
    new_submission_id,
    packets_for_explicit_bodies,
    packets_for_explicit_shares,
    packets_for_share_bodies,
    packets_for_shares,
    share_vectors_batch,
    total_upload_bytes,
)

__all__ = [
    "NoPrivacyPipeline",
    "NoRobustnessPipeline",
    "ClientSubmission",
    "PrioClient",
    "DpError",
    "add_noise_to_accumulator",
    "discrete_laplace_scale",
    "server_noise_share",
    "server_noise_vector",
    "EXECUTOR_KINDS",
    "FanoutError",
    "LocalFanout",
    "ProcessFanout",
    "ServerFanout",
    "ShardedFanout",
    "resolve_fanout",
    "shard_of",
    "InMemoryReplayCache",
    "ReplayCache",
    "ReplayCacheError",
    "TieredReplayCache",
    "resolve_replay_cache",
    "ClientRegistry",
    "GatedDeployment",
    "GatedServer",
    "RegisteredClient",
    "RegistrationError",
    "SignedPacket",
    "AsyncPrioPipeline",
    "PipelineStats",
    "run_pipelined",
    "DeploymentStats",
    "PrioDeployment",
    "PendingSubmission",
    "PrioServer",
    "ProtocolError",
    "MAX_N_ELEMENTS",
    "ClientPacket",
    "PacketKind",
    "WireError",
    "new_submission_id",
    "packets_for_explicit_bodies",
    "packets_for_explicit_shares",
    "packets_for_share_bodies",
    "packets_for_shares",
    "share_vectors_batch",
    "total_upload_bytes",
]
