"""The Prio client (Appendix H, step 1 — "Upload").

``PrioClient.prepare_submission`` performs the full client pipeline:

1. AFE-encode the private value (Section 5),
2. build the SNIP proof for the AFE's Valid circuit (Section 4) —
   skipped entirely for AFEs where every vector is valid,
3. concatenate ``encoding || proof`` and split it into per-server
   shares, PRG-compressed by default (Appendix I), and
4. frame one wire packet per server, optionally sealed with each
   server's box public key.

The client triad of costs the paper measures — encode time (Table 3,
Figures 7/8), upload bytes (Figure 6), and "one public-key operation"
(the box seal) — all live in this method.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass

from repro.afe.base import Afe
from repro.crypto.box import seal
from repro.ec.p256 import Point
from repro.sharing.additive import share_vector
from repro.sharing.prg import prg_share_vector
from repro.snip.prover import build_proof, prove_many
from repro.protocol.wire import (
    ClientPacket,
    new_submission_id,
    packets_for_explicit_shares,
    packets_for_shares,
    total_upload_bytes,
)


@dataclass
class ClientSubmission:
    """The client's upload: one packet per server (possibly sealed)."""

    submission_id: bytes
    packets: list[ClientPacket]
    sealed_packets: list[bytes] | None = None

    @property
    def upload_bytes(self) -> int:
        if self.sealed_packets is not None:
            return sum(len(p) for p in self.sealed_packets)
        return total_upload_bytes(self.packets)


class PrioClient:
    """A client configured for one aggregation task (one AFE)."""

    def __init__(
        self,
        afe: Afe,
        n_servers: int,
        use_prg_compression: bool = True,
        server_box_keys: list[Point] | None = None,
        rng=None,
    ) -> None:
        self.afe = afe
        self.field = afe.field
        self.n_servers = n_servers
        self.use_prg_compression = use_prg_compression
        self.server_box_keys = server_box_keys
        self.rng = rng if rng is not None else _random.Random(os.urandom(16))
        self.circuit = afe.valid_circuit()

    def prepare_submission(self, value) -> ClientSubmission:
        """Encode, prove, share, and frame one private value."""
        encoding = self.afe.encode(value, self.rng)
        if self.circuit is not None:
            proof = build_proof(self.field, self.circuit, encoding, self.rng)
            vector = encoding + proof.flatten()
        else:
            vector = list(encoding)
        return self._frame_vector(vector)

    def prepare_submissions(self, values) -> list[ClientSubmission]:
        """Encode, prove, share, and frame many values at once.

        The SNIP proof polynomials for all values are computed in one
        vectorized sweep (:func:`repro.snip.prover.prove_many`);
        encoding, sharing, and framing stay per submission.  Produces
        the same wire format as repeated :meth:`prepare_submission`
        calls.
        """
        values = list(values)
        encodings = [self.afe.encode(v, self.rng) for v in values]
        if self.circuit is not None:
            proofs = prove_many(self.field, self.circuit, encodings, self.rng)
            vectors = [
                enc + proof.flatten()
                for enc, proof in zip(encodings, proofs)
            ]
        else:
            vectors = [list(enc) for enc in encodings]
        return [self._frame_vector(vector) for vector in vectors]

    def _frame_vector(self, vector: list[int]) -> ClientSubmission:
        """Share and frame one already-proved submission vector."""
        submission_id = new_submission_id(self.rng)
        if self.use_prg_compression and self.n_servers > 1:
            seeds, explicit = prg_share_vector(
                self.field, vector, self.n_servers, self.rng
            )
            packets = packets_for_shares(
                self.field, submission_id, seeds, explicit
            )
        else:
            shares = share_vector(self.field, vector, self.n_servers, self.rng)
            packets = packets_for_explicit_shares(
                self.field, submission_id, shares
            )
        sealed = None
        if self.server_box_keys is not None:
            if len(self.server_box_keys) != self.n_servers:
                raise ValueError("need one box key per server")
            sealed = [
                seal(key, packet.encode(), self.rng)
                for key, packet in zip(self.server_box_keys, packets)
            ]
        return ClientSubmission(
            submission_id=submission_id, packets=packets, sealed_packets=sealed
        )

    def submission_elements(self) -> int:
        """Share-vector length in field elements (Figures 4/6 x-axis is
        the data part; the proof rides along)."""
        from repro.snip.proof import proof_num_elements

        if self.circuit is None:
            return self.afe.k
        return self.afe.k + proof_num_elements(self.circuit.n_mul_gates)
