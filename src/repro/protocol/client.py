"""The Prio client (Appendix H, step 1 — "Upload").

``PrioClient.prepare_submission`` performs the full client pipeline:

1. AFE-encode the private value (Section 5),
2. build the SNIP proof for the AFE's Valid circuit (Section 4) —
   skipped entirely for AFEs where every vector is valid,
3. concatenate ``encoding || proof`` and split it into per-server
   shares, PRG-compressed by default (Appendix I), and
4. frame one wire packet per server, optionally sealed with each
   server's box public key.

The client triad of costs the paper measures — encode time (Table 3,
Figures 7/8), upload bytes (Figure 6), and "one public-key operation"
(the box seal) — all live in this method.

``prepare_submissions`` runs the same pipeline for a whole batch of
values through the plane-resident batch prover
(:mod:`repro.snip.batch_prover`), producing uploads bit-identical to
the per-value path under the same rng — see its docstring.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass

from repro.afe.base import Afe
from repro.ec.p256 import Point
from repro.field.batch import (
    BatchVector,
    encode_bytes_batch,
    tiny_batch_force_pure,
)
from repro.sharing.additive import (
    share_vector,
    share_vectors_client_batch,
    share_vectors_explicit_batch,
)
from repro.sharing.prg import new_seed, prg_share_vector
from repro.circuit.compiled import compile_circuit
from repro.mpc.beaver import generate_triple
from repro.snip.batch_prover import (
    ProofRandomness,
    h_planes_batch,
    submission_planes,
)
from repro.snip.proof import SnipError
from repro.snip.prover import build_proof
from repro.protocol.wire import (
    ClientPacket,
    new_submission_id,
    packets_for_explicit_bodies,
    packets_for_explicit_shares,
    packets_for_share_bodies,
    packets_for_shares,
    seal_packet,
    total_upload_bytes,
)


@dataclass
class ClientSubmission:
    """The client's upload: one packet per server (possibly sealed)."""

    submission_id: bytes
    packets: list[ClientPacket]
    sealed_packets: list[bytes] | None = None

    @property
    def upload_bytes(self) -> int:
        if self.sealed_packets is not None:
            return sum(len(p) for p in self.sealed_packets)
        return total_upload_bytes(self.packets)


class PrioClient:
    """A client configured for one aggregation task (one AFE)."""

    def __init__(
        self,
        afe: Afe,
        n_servers: int,
        use_prg_compression: bool = True,
        server_box_keys: list[Point] | None = None,
        rng=None,
    ) -> None:
        self.afe = afe
        self.field = afe.field
        self.n_servers = n_servers
        self.use_prg_compression = use_prg_compression
        self.server_box_keys = server_box_keys
        self.rng = rng if rng is not None else _random.Random(os.urandom(16))
        self.circuit = afe.valid_circuit()

    def prepare_submission(self, value) -> ClientSubmission:
        """Encode, prove, share, and frame one private value."""
        encoding = self.afe.encode(value, self.rng)
        if self.circuit is not None:
            proof = build_proof(self.field, self.circuit, encoding, self.rng)
            vector = encoding + proof.flatten()
        else:
            vector = list(encoding)
        return self._frame_vector(vector)

    def prepare_submissions(
        self,
        values,
        batched: "bool | None" = None,
        force_pure: "bool | None" = None,
    ) -> list[ClientSubmission]:
        """Encode, prove, share, and frame many values at once.

        With ``batched=True`` (the default) the whole batch runs
        through the plane-resident client prover: proof polynomials
        for every value ride one batch NTT sweep
        (:mod:`repro.snip.batch_prover`), the PRG-compressed sharing
        expands all seeds in one vectorized pass
        (:func:`~repro.sharing.additive.share_vectors_client_batch`),
        and the explicit wire bodies come straight out of
        :func:`~repro.field.batch.encode_bytes_batch` — no per-element
        Python-int crossing between the circuit trace and the wire
        bytes.  ``batched=False`` falls back to per-value
        :meth:`prepare_submission` calls.

        Per-submission randomness is drawn in exactly scalar order, so
        both paths produce *bit-identical* uploads to repeated
        :meth:`prepare_submission` calls under the same rng (asserted
        by ``tests/snip/test_client_batch_equivalence.py``) — except
        when sealing is configured, where the batched path seals after
        the whole batch's shares are drawn (equivalent in
        distribution, not bit-identical).  ``force_pure`` overrides the
        batch backend for this call (``None`` auto-selects).
        """
        values = list(values)
        if batched is None:
            batched = True
        if not batched:
            return [self.prepare_submission(v) for v in values]
        return self._prepare_submissions_batched(values, force_pure)

    def _prepare_submissions_batched(
        self, values, force_pure: "bool | None"
    ) -> list[ClientSubmission]:
        """The plane-resident batch path (see :meth:`prepare_submissions`)."""
        if not values:
            return []
        field = self.field
        n_servers = self.n_servers
        compress = self.use_prg_compression and n_servers > 1
        n_total = self.submission_elements()
        plan = (
            compile_circuit(field, self.circuit)
            if self.circuit is not None
            else None
        )
        has_muls = self.circuit is not None and self.circuit.n_mul_gates > 0
        # Phase 1 — every rng draw, per submission, in scalar order:
        # encode, f(0)/g(0)/triple, submission id, share seeds/randoms.
        # The circuit trace itself consumes no randomness, so it lifts
        # out of this loop into one compiled-plan sweep below without
        # perturbing the draw sequence.
        encodings: list[list[int]] = []
        randoms: list = []
        sids: list[bytes] = []
        seed_rows: list[list[bytes]] = []
        random_rows: list[list[list[int]]] = []
        for value in values:
            encoding = self.afe.encode(value, self.rng)
            if has_muls:
                u0 = field.rand(self.rng)
                v0 = field.rand(self.rng)
                randoms.append(
                    ProofRandomness(
                        u0=u0, v0=v0,
                        triple=generate_triple(field, self.rng),
                    )
                )
            elif self.circuit is not None:
                randoms.append(None)
            encodings.append(encoding)
            sids.append(new_submission_id(self.rng))
            if compress:
                seed_rows.append(
                    [new_seed(self.rng) for _ in range(n_servers - 1)]
                )
            else:
                random_rows.append(
                    [
                        field.rand_vector(n_total, self.rng)
                        for _ in range(n_servers - 1)
                    ]
                )
        # Phase 2 — deterministic batch work: the compiled-plan trace,
        # h sweep, x || proof assembly, sharing, wire bodies; planes
        # throughout.
        force = tiny_batch_force_pure(len(values) * n_total, force_pure)
        if plan is not None:
            trace = plan.evaluate_batch(encodings, force)
            if not trace.all_valid:
                raise SnipError(
                    f"input does not satisfy {self.circuit.name}; "
                    f"refusing to prove"
                )
            h = h_planes_batch(field, self.circuit, trace, randoms, force)
            vectors = submission_planes(
                field, self.circuit, encodings, randoms, h, force
            )
        else:
            vectors = BatchVector.from_ints(field, encodings, force)
        if compress:
            _, explicit = share_vectors_client_batch(
                field, vectors, n_servers, seeds=seed_rows, force_pure=force
            )
            bodies = encode_bytes_batch(field, explicit, explicit.force_pure)
            packet_lists = [
                packets_for_share_bodies(
                    sid, seed_rows[i], bodies[i], n_total
                )
                for i, sid in enumerate(sids)
            ]
        else:
            shares = share_vectors_explicit_batch(
                field, vectors, n_servers,
                random_rows=random_rows, force_pure=force,
            )
            bodies_by_server = [
                encode_bytes_batch(field, share, share.force_pure)
                for share in shares
            ]
            packet_lists = [
                packets_for_explicit_bodies(
                    sid,
                    [bodies_by_server[j][i] for j in range(n_servers)],
                    n_total,
                )
                for i, sid in enumerate(sids)
            ]
        # Phase 3 — framing bookkeeping (and the optional box seal, the
        # client's one public-key operation per server).
        return [
            self._seal_and_wrap(sid, packets)
            for sid, packets in zip(sids, packet_lists)
        ]

    def _seal_and_wrap(
        self, submission_id: bytes, packets: "list[ClientPacket]"
    ) -> ClientSubmission:
        """Optionally box-seal framed packets and wrap the submission.

        Shared by the scalar and batched framers so the sealing rules
        (one key per server, one seal per packet) live in one place.
        """
        sealed = None
        if self.server_box_keys is not None:
            if len(self.server_box_keys) != self.n_servers:
                raise ValueError("need one box key per server")
            # envelope || box(packet, ad=envelope): the cleartext
            # envelope lets the transport and the sharded fan-out
            # route on the submission id without a decryption key.
            sealed = [
                seal_packet(key, packet, self.rng)
                for key, packet in zip(self.server_box_keys, packets)
            ]
        return ClientSubmission(
            submission_id=submission_id, packets=packets, sealed_packets=sealed
        )

    def _frame_vector(self, vector: list[int]) -> ClientSubmission:
        """Share and frame one already-proved submission vector."""
        submission_id = new_submission_id(self.rng)
        if self.use_prg_compression and self.n_servers > 1:
            seeds, explicit = prg_share_vector(
                self.field, vector, self.n_servers, self.rng
            )
            packets = packets_for_shares(
                self.field, submission_id, seeds, explicit
            )
        else:
            shares = share_vector(self.field, vector, self.n_servers, self.rng)
            packets = packets_for_explicit_shares(
                self.field, submission_id, shares
            )
        return self._seal_and_wrap(submission_id, packets)

    def submission_elements(self) -> int:
        """Share-vector length in field elements (Figures 4/6 x-axis is
        the data part; the proof rides along)."""
        from repro.snip.proof import proof_num_elements

        if self.circuit is None:
            return self.afe.k
        return self.afe.k + proof_num_elements(self.circuit.n_mul_gates)
