"""Compile Valid circuits into plane-resident batched evaluation plans.

:meth:`Circuit.evaluate` walks the gate list one Python step at a time —
fine as the batch-of-one oracle, but tracing ``B`` submissions of a
Figure 7 circuit costs ``B x gates`` interpreted steps, and that scalar
island dominates client cost for the large workloads (count-min
sketches, cell grids, linreg) whose throughput the paper shows is
governed by gate count.

This module compiles a circuit **once** into a :class:`CompiledCircuit`
and evaluates whole batches with a handful of fused limb-plane kernels
from :mod:`repro.field.batch`:

* Every non-MUL wire is an *affine* function of the inputs and of
  earlier multiplication-gate outputs (the same fact the verifier's
  share-local reconstruction exploits).  A single forward sweep over
  the gate list therefore collapses all ADD/SUB/MUL_CONST/CONST chains
  into sparse affine forms over the base columns
  ``[1 | x_0..x_{k-1} | w_1..w_M]`` — the compile-time analogue of
  constant folding plus linear-combination fusion.
* Only the MUL gates survive as runtime ops.  They are scheduled into
  *levels* by multiplicative depth (level 0 reads inputs only; every
  Figure 7 circuit is single-level), and each level's left/right input
  forms run as one :class:`SparseAffineMap` apply — a column gather
  plus at most one broadcast row add when every form is a
  unit-coefficient wire plus a constant (the ``x`` / ``x - 1`` shape
  of every Figure 7 mul input: no modular multiply at all), and one
  fused gather / lazy-scale / segment-sum kernel with a single
  Barrett reduction in general.  The level's outputs are one plane
  Hadamard product, scattered back into the base matrix.
* The assertion wires evaluate as one more :class:`SparseAffineMap`
  apply; per-row validity is a single limb comparison.

The result, a :class:`BatchTrace`, holds exactly what the SNIP needs —
the ``(B, M)`` left/right mul-input matrices and mul outputs as
:class:`~repro.field.batch.BatchVector` planes plus per-row validity —
so the batched prover's f/g rows assemble by plane copy with no
per-gate (or per-element) Python-int crossing.  Both backends are
bit-exact against the scalar oracle, which
``tests/circuit/test_compiled_equivalence.py`` asserts row for row.

Plans are cached per ``(circuit identity, modulus)`` in a
:class:`~weakref.WeakKeyDictionary`, so the compile cost is paid once
per AFE instance (whose ``valid_circuit()`` is itself memoized), not
once per batch — and dropping the circuit drops its plans.
"""

from __future__ import annotations

from typing import Sequence
from weakref import WeakKeyDictionary

from repro.circuit.circuit import Circuit, CircuitError, Op
from repro.field.batch import (
    BatchVector,
    concat_columns,
    sparse_affine_columns,
)
from repro.field.prime_field import PrimeField

__all__ = [
    "BatchTrace",
    "CompiledCircuit",
    "SparseAffineMap",
    "compile_circuit",
]


class SparseAffineMap:
    """``n_out`` sparse affine forms over base columns, in CSR layout.

    Form ``j`` is ``sum_i coeffs[i] * base[:, srcs[i]]`` over
    ``i in offsets[j]:offsets[j+1]``; constants ride as terms on the
    all-ones column 0.  :meth:`apply` picks the cheapest plane
    schedule the forms allow:

    * every form is at most one unit-coefficient variable term plus a
      constant (the *affine-gather* shape: ``x`` and ``x - 1`` mul
      inputs of one-hot and bit-check circuits — every Figure 7
      left/right map) — one column gather plus at most one broadcast
      row add, no modular multiply at all;
    * a mix (assertion maps: thousands of single-wire bit asserts next
      to a handful of wide one-hot sums) — the gather-shaped rows go
      through the gather path, only the general rows pay arithmetic,
      and the two column sets scatter into one output;
    * general — one fused
      :func:`~repro.field.batch.sparse_affine_columns` call: gather,
      lazy small-coefficient scale, CSR segment sum, and a single
      Barrett reduction on the narrow output.
    """

    __slots__ = (
        "n_out",
        "offsets",
        "srcs",
        "coeffs",
        "_gather_srcs",
        "_gather_consts",
        "_mixed",
    )

    def __init__(
        self, exprs: "Sequence[dict[int, int]]", modulus: int
    ) -> None:
        offsets = [0]
        srcs: list[int] = []
        coeffs: list[int] = []
        for expr in exprs:
            if expr:
                for src, coeff in sorted(expr.items()):
                    srcs.append(src)
                    coeffs.append(coeff)
            else:
                # An explicit zero term: keeps every CSR segment
                # non-empty (reduceat semantics) and gathers column 0.
                srcs.append(0)
                coeffs.append(0)
            offsets.append(len(srcs))
        self.n_out = len(offsets) - 1
        self.offsets = offsets
        self.srcs = srcs
        self.coeffs = coeffs
        rows = [self._cheap_row(expr, modulus) for expr in exprs]
        self._gather_srcs = self._gather_consts = self._mixed = None
        if self.n_out and all(
            row is not None and row[0] == "g" for row in rows
        ):
            self._gather_srcs = [row[1] for row in rows]
            consts = [row[2] for row in rows]
            self._gather_consts = consts if any(consts) else None
        elif any(row is not None for row in rows):
            gather_pos = [
                j for j, row in enumerate(rows) if row and row[0] == "g"
            ]
            diff_pos = [
                j for j, row in enumerate(rows) if row and row[0] == "d"
            ]
            general_pos = [j for j, row in enumerate(rows) if row is None]
            gconsts = [rows[j][2] for j in gather_pos]
            dconsts = [rows[j][3] for j in diff_pos]
            self._mixed = (
                (
                    gather_pos,
                    [rows[j][1] for j in gather_pos],
                    gconsts if any(gconsts) else None,
                ),
                (
                    diff_pos,
                    [rows[j][1] for j in diff_pos],
                    [rows[j][2] for j in diff_pos],
                    dconsts if any(dconsts) else None,
                ),
                general_pos,
                SparseAffineMap([exprs[j] for j in general_pos], modulus)
                if general_pos
                else None,
            )

    @staticmethod
    def _cheap_row(expr, modulus):
        """Classify a form as gather or difference, else None.

        ``("g", src, const)`` — one unit-coefficient term plus a
        constant; ``("d", plus, minus, const)`` — a unit term minus a
        unit term plus a constant (the ``w - b`` shape of bit
        assertions).  A form with no variable term still gathers —
        column 0 is the all-ones plane, so a pure constant ``c`` is
        column 0 plus the row constant ``c - 1`` (the zero form
        gathers 1 and adds -1).
        """
        const = 0
        plus = None
        minus = None
        for s, c in expr.items():
            if s == 0:
                const = c
            elif c == 1 and plus is None:
                plus = s
            elif c == modulus - 1 and minus is None:
                minus = s
            else:
                return None
        if minus is None:
            if plus is None:
                return "g", 0, (const - 1) % modulus
            return "g", plus, const
        if plus is None:
            # const - b: column 0 gathers 1, fold the -1 into const.
            plus, const = 0, (const - 1) % modulus
        return "d", plus, minus, const

    def apply(self, base: BatchVector) -> BatchVector:
        """Evaluate every form over a ``(B, n_base)`` batch: ``(B, n_out)``."""
        if self.n_out == 0:
            return BatchVector.zeros(
                base.field, (base.shape[0], 0), base.force_pure
            )
        if self._gather_srcs is not None:
            out = base.take_columns(self._gather_srcs)
            if self._gather_consts is not None:
                out = out.add_row(self._gather_consts)
            return out
        if self._mixed is not None:
            gathers, diffs, general_pos, sub = self._mixed
            out = BatchVector.zeros(
                base.field, (base.shape[0], self.n_out), base.force_pure
            )
            gather_pos, gsrcs, gconsts = gathers
            if gather_pos:
                gathered = base.take_columns(gsrcs)
                if gconsts is not None:
                    gathered = gathered.add_row(gconsts)
                out.set_columns(gather_pos, gathered)
            diff_pos, dplus, dminus, dconsts = diffs
            if diff_pos:
                delta = base.take_columns(dplus) - base.take_columns(
                    dminus
                )
                if dconsts is not None:
                    delta = delta.add_row(dconsts)
                out.set_columns(diff_pos, delta)
            if sub is not None:
                out.set_columns(general_pos, sub.apply(base))
            return out
        return sparse_affine_columns(
            base, self.srcs, self.coeffs, self.offsets
        )


class _MulLevel:
    """One multiplicative level: which mul gates fire, and their inputs."""

    __slots__ = ("positions", "left", "right")

    def __init__(
        self,
        positions: list[int],
        left: SparseAffineMap,
        right: SparseAffineMap,
    ) -> None:
        self.positions = positions  # 0-based mul indices t, topo order
        self.left = left
        self.right = right


class BatchTrace:
    """A whole batch's worth of :class:`EvaluationTrace`, plane-resident.

    ``mul_inputs_left`` / ``mul_inputs_right`` / ``mul_outputs`` are
    ``(B, M)`` batches (column ``t`` is mul gate ``t``'s wire value per
    submission) and ``assertion_values`` is ``(B, A)`` — exactly the
    scalar trace fields, transposed into planes.  ``valid`` is the
    per-row Valid verdict.
    """

    __slots__ = (
        "mul_inputs_left",
        "mul_inputs_right",
        "mul_outputs",
        "assertion_values",
        "valid",
    )

    def __init__(
        self,
        mul_inputs_left: BatchVector,
        mul_inputs_right: BatchVector,
        mul_outputs: BatchVector,
        assertion_values: BatchVector,
        valid: list[bool],
    ) -> None:
        self.mul_inputs_left = mul_inputs_left
        self.mul_inputs_right = mul_inputs_right
        self.mul_outputs = mul_outputs
        self.assertion_values = assertion_values
        self.valid = valid

    def __len__(self) -> int:
        return len(self.valid)

    @property
    def all_valid(self) -> bool:
        return all(self.valid)

    def first_invalid(self) -> int | None:
        """Index of the first invalid row, or None if the batch is valid."""
        for i, ok in enumerate(self.valid):
            if not ok:
                return i
        return None


class CompiledCircuit:
    """A circuit's batched evaluation plan; build via :func:`compile_circuit`.

    Base-column layout (shared by every sparse form):
    ``[0] = 1``, ``[1..k] = inputs``, ``[k+1..k+M] = mul outputs`` in
    topological order.
    """

    def __init__(self, field: PrimeField, circuit: Circuit) -> None:
        self.field = field
        self.circuit = circuit
        self.n_inputs = circuit.n_inputs
        self.n_mul_gates = circuit.n_mul_gates
        (
            self.left_exprs,
            self.right_exprs,
            self.assertion_exprs,
        ) = _sparse_affine_sweep(field, circuit)
        self.levels = _schedule_levels(
            self.n_inputs, self.left_exprs, self.right_exprs, field.modulus
        )
        self.assert_map = SparseAffineMap(
            self.assertion_exprs, field.modulus
        )
        #: True when every mul reads inputs only (all Figure 7 circuits):
        #: the level's gathered inputs *are* the (B, M) matrices.
        self._flat = len(self.levels) <= 1

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.circuit.name!r}, "
            f"muls={self.n_mul_gates}, levels={len(self.levels)}, "
            f"assertions={len(self.assertion_exprs)})"
        )

    # ------------------------------------------------------------------

    def evaluate_batch(
        self,
        inputs: "BatchVector | Sequence[Sequence[int]]",
        force_pure: bool | None = None,
    ) -> BatchTrace:
        """Trace ``B`` input rows in a handful of plane ops.

        ``inputs`` is a ``(B, k)`` :class:`BatchVector` (its backend
        wins) or ``B`` int rows.  Row ``i`` of the result is
        bit-identical to ``circuit.evaluate(field, inputs[i])`` — the
        scalar interpreter is exactly this plan at batch size one.
        """
        field = self.field
        k = self.n_inputs
        M = self.n_mul_gates
        if isinstance(inputs, BatchVector):
            if len(inputs.shape) != 2 or inputs.shape[1] != k:
                raise CircuitError(
                    f"{self.circuit.name} expects (B, {k}) inputs, got "
                    f"{inputs.shape}"
                )
            B = inputs.shape[0]
            force_pure = inputs.force_pure
            input_part: "BatchVector | list[list[int]]" = inputs
        else:
            rows = [list(x) for x in inputs]
            for x in rows:
                if len(x) != k:
                    raise CircuitError(
                        f"{self.circuit.name} expects {k} inputs, "
                        f"got {len(x)}"
                    )
            B = len(rows)
            input_part = rows
        if B == 0:
            empty = BatchVector.zeros(field, (0, M), force_pure)
            return BatchTrace(
                empty, empty, empty,
                BatchVector.zeros(
                    field, (0, len(self.assertion_exprs)), force_pure
                ),
                [],
            )
        base = concat_columns(
            field,
            [
                [[1]] * B,
                input_part,
                BatchVector.zeros(field, (B, M), force_pure),
            ],
            force_pure,
        )
        left_all = right_all = out_all = None
        if not self._flat and M:
            left_all = BatchVector.zeros(field, (B, M), base.force_pure)
            right_all = BatchVector.zeros(field, (B, M), base.force_pure)
            out_all = BatchVector.zeros(field, (B, M), base.force_pure)
        for level in self.levels:
            left = level.left.apply(base)
            right = level.right.apply(base)
            outs = left * right
            base.set_columns(
                [1 + k + t for t in level.positions], outs
            )
            if self._flat:
                left_all, right_all, out_all = left, right, outs
            else:
                left_all.set_columns(level.positions, left)
                right_all.set_columns(level.positions, right)
                out_all.set_columns(level.positions, outs)
        if M == 0:
            left_all = right_all = out_all = BatchVector.zeros(
                field, (B, 0), base.force_pure
            )
        assertions = self.assert_map.apply(base)
        return BatchTrace(
            mul_inputs_left=left_all,
            mul_inputs_right=right_all,
            mul_outputs=out_all,
            assertion_values=assertions,
            valid=assertions.rows_zero(),
        )


# ----------------------------------------------------------------------
# Compilation: forward sparse-affine sweep + level scheduling
# ----------------------------------------------------------------------


def _sparse_affine_sweep(field: PrimeField, circuit: Circuit):
    """Collapse every affine region into sparse forms over the base.

    One forward pass; each wire's form is a dict ``{base_col: coeff}``
    with all coefficients canonical mod p.  Use counts let the sweep
    *steal* a wire's dict on its last use instead of copying, so the
    builder's long ``acc = add(acc, term)`` chains (wire sums, linear
    combinations) compile in O(total terms), not O(chain length^2).
    """
    p = field.modulus
    gates = circuit.gates
    k = circuit.n_inputs
    use = [0] * len(gates)
    for gate in gates:
        if gate.op in (Op.ADD, Op.SUB, Op.MUL):
            use[gate.left] += 1
            use[gate.right] += 1
        elif gate.op is Op.MUL_CONST:
            use[gate.left] += 1
    for wire in circuit.assertions:
        use[wire] += 1
    exprs: list[dict[int, int] | None] = [None] * len(gates)

    def take(wire: int) -> dict[int, int]:
        # Consume one use; return an owned dict (stolen on last use).
        use[wire] -= 1
        expr = exprs[wire]
        if use[wire] <= 0:
            exprs[wire] = None
            return expr if expr is not None else {}
        return dict(expr)

    def merge(acc: dict[int, int], other: dict[int, int], sign: int):
        for src, coeff in other.items():
            v = (acc.get(src, 0) + sign * coeff) % p
            if v:
                acc[src] = v
            else:
                acc.pop(src, None)
        return acc

    left_exprs: list[dict[int, int]] = []
    right_exprs: list[dict[int, int]] = []
    for i, gate in enumerate(gates):
        if gate.op is Op.INPUT:
            exprs[i] = {1 + gate.payload: 1}
        elif gate.op is Op.CONST:
            c = gate.payload % p
            exprs[i] = {0: c} if c else {}
        elif gate.op is Op.ADD:
            acc = take(gate.left)
            exprs[i] = merge(acc, take(gate.right), 1)
        elif gate.op is Op.SUB:
            acc = take(gate.left)
            exprs[i] = merge(acc, take(gate.right), -1)
        elif gate.op is Op.MUL_CONST:
            c = gate.payload % p
            expr = take(gate.left)
            if c == 0:
                exprs[i] = {}
            elif c == 1:
                exprs[i] = expr
            else:
                exprs[i] = {
                    src: coeff * c % p for src, coeff in expr.items()
                }
        else:  # MUL: becomes a base column; inputs recorded as forms
            t = len(left_exprs)
            left_exprs.append(take(gate.left))
            right_exprs.append(take(gate.right))
            exprs[i] = {1 + k + t: 1}
    assertion_exprs = [take(wire) for wire in circuit.assertions]
    return left_exprs, right_exprs, assertion_exprs


def _schedule_levels(
    k: int,
    left_exprs: "Sequence[dict[int, int]]",
    right_exprs: "Sequence[dict[int, int]]",
    modulus: int,
) -> list[_MulLevel]:
    """Group mul gates by multiplicative depth, topo order within."""
    M = len(left_exprs)
    if M == 0:
        return []
    depth = [0] * M

    def expr_depth(expr: dict[int, int]) -> int:
        d = 0
        for src in expr:
            if src > k:
                d = max(d, depth[src - k - 1] + 1)
        return d

    n_levels = 1
    for t in range(M):
        depth[t] = max(expr_depth(left_exprs[t]), expr_depth(right_exprs[t]))
        n_levels = max(n_levels, depth[t] + 1)
    levels = []
    for d in range(n_levels):
        positions = [t for t in range(M) if depth[t] == d]
        levels.append(
            _MulLevel(
                positions,
                SparseAffineMap(
                    [left_exprs[t] for t in positions], modulus
                ),
                SparseAffineMap(
                    [right_exprs[t] for t in positions], modulus
                ),
            )
        )
    return levels


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------

_PLAN_CACHE: "WeakKeyDictionary[Circuit, dict[int, CompiledCircuit]]" = (
    WeakKeyDictionary()
)


def compile_circuit(field: PrimeField, circuit: Circuit) -> CompiledCircuit:
    """The circuit's plan for this field, compiled at most once.

    Keyed by circuit *identity* (not structure) plus modulus: AFE
    instances memoize their ``valid_circuit()``, so every batch of a
    deployment's lifetime hits the same plan, and garbage-collecting
    the circuit releases it.
    """
    per_field = _PLAN_CACHE.get(circuit)
    if per_field is None:
        per_field = _PLAN_CACHE.setdefault(circuit, {})
    plan = per_field.get(field.modulus)
    if plan is None:
        plan = per_field[field.modulus] = CompiledCircuit(field, circuit)
    return plan
